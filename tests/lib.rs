//! Shared helpers for the cross-crate integration tests.

#![warn(missing_docs)]

use cad_graph::{GraphSequence, WeightedGraph};

/// A path graph with unit weights.
pub fn path_graph(n: usize) -> WeightedGraph {
    let edges: Vec<_> = (0..n - 1).map(|i| (i, i + 1, 1.0)).collect();
    WeightedGraph::from_edges(n, &edges).expect("path edges are valid")
}

/// Two dense clusters of size `k` joined by one bridge of the given
/// weight; total `2k` nodes, bridge between nodes `k-1` and `k`.
pub fn two_clusters(k: usize, intra: f64, bridge: f64) -> WeightedGraph {
    let mut edges = Vec::new();
    for base in [0, k] {
        for i in 0..k {
            for j in (i + 1)..k {
                edges.push((base + i, base + j, intra));
            }
        }
    }
    edges.push((k - 1, k, bridge));
    WeightedGraph::from_edges(2 * k, &edges).expect("cluster edges are valid")
}

/// Sequence from explicit edge lists over a fixed vertex count.
pub fn seq_from(n: usize, instants: &[&[(usize, usize, f64)]]) -> GraphSequence {
    let graphs = instants
        .iter()
        .map(|edges| WeightedGraph::from_edges(n, edges).expect("valid edges"))
        .collect();
    GraphSequence::new(graphs).expect("valid sequence")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn helpers_build() {
        assert_eq!(path_graph(4).n_edges(), 3);
        let g = two_clusters(3, 2.0, 0.5);
        assert_eq!(g.n_nodes(), 6);
        assert_eq!(g.n_edges(), 7);
        assert!(g.is_connected());
        let s = seq_from(2, &[&[(0, 1, 1.0)], &[(0, 1, 2.0)]]);
        assert_eq!(s.n_transitions(), 1);
    }
}
