//! End-to-end observability contracts: the JSON run report survives a
//! serialize → parse round trip losslessly, its deterministic metric
//! aggregates are bit-identical for any worker-thread count, and the
//! schema validator accepts what the pipeline emits (and rejects
//! corruptions of it).

use cad_commute::{EmbeddingOptions, EngineOptions};
use cad_core::{CadDetector, CadOptions, DetectionMetrics, ThresholdPolicy};
use cad_datasets::{GmmBenchmark, GmmBenchmarkOptions};
use cad_graph::GraphSequence;
use cad_obs::{Report, Summary};

/// A four-instance GMM sequence (two chained two-instance benchmarks).
fn workload(seed: u64, n: usize) -> GraphSequence {
    let mut graphs = Vec::new();
    for s in [seed, seed.wrapping_add(1)] {
        let mut opts = GmmBenchmarkOptions::with_n(n);
        opts.seed = s;
        let bench = GmmBenchmark::generate(&opts).expect("gmm benchmark");
        graphs.extend(bench.seq.graphs().iter().cloned());
    }
    GraphSequence::new(graphs).expect("valid sequence")
}

fn metered_report(threads: usize, seed: u64) -> (Report, DetectionMetrics) {
    let seq = workload(seed, 40);
    let det = CadDetector::new(CadOptions {
        engine: EngineOptions::Approximate(EmbeddingOptions {
            k: 12,
            threads: threads.max(1),
            ..Default::default()
        }),
        threads,
        ..Default::default()
    });
    let (_result, metrics) = det
        .detect_with_policy_metered(&seq, ThresholdPolicy::TargetNodesPerTransition(3))
        .expect("metered detection");
    let mut report = Report::new("observability-test");
    metrics.fill_report(&mut report);
    (report, metrics)
}

fn assert_summary_bits(a: &Summary, b: &Summary, what: &str) {
    assert_eq!(a.count, b.count, "{what}: count");
    assert_eq!(a.sum.to_bits(), b.sum.to_bits(), "{what}: sum");
    assert_eq!(a.min.to_bits(), b.min.to_bits(), "{what}: min");
    assert_eq!(a.max.to_bits(), b.max.to_bits(), "{what}: max");
}

#[test]
fn report_round_trips_through_json_losslessly() {
    let (mut report, _) = metered_report(1, 11);
    // Exercise every section of the schema, including counters and a
    // summary that only exists at the report level.
    report.counters.insert("test.counter".into(), 42);
    report
        .summaries
        .insert("test.series".into(), Summary::of([0.1, -3.5, 7.25]));

    let text = report.to_json_string();
    let value = cad_obs::parse_json(&text).expect("emitted JSON parses");
    let back = Report::from_json(&value).expect("emitted JSON validates");

    assert_eq!(back.schema_version, report.schema_version);
    assert_eq!(back.tool, report.tool);
    assert_eq!(back.host.os, report.host.os);
    assert_eq!(back.counters, report.counters);
    assert_eq!(back.instances.len(), report.instances.len());
    for (a, b) in back.instances.iter().zip(&report.instances) {
        assert_eq!(a.t, b.t);
        assert_eq!(a.backend, b.backend);
        assert_eq!(a.build_secs.to_bits(), b.build_secs.to_bits());
        assert_eq!(a.jl_dim, b.jl_dim);
        assert_eq!(a.n_solves, b.n_solves);
        assert_summary_bits(&a.iterations, &b.iterations, "instance iterations");
        assert_summary_bits(&a.residuals, &b.residuals, "instance residuals");
    }
    assert_eq!(back.transitions.len(), report.transitions.len());
    for (a, b) in back.transitions.iter().zip(&report.transitions) {
        assert_eq!(a.t, b.t);
        assert_eq!(a.score_secs.to_bits(), b.score_secs.to_bits());
        assert_eq!(a.n_scored, b.n_scored);
        assert_summary_bits(&a.score, &b.score, "transition scores");
    }
    assert_eq!(back.solves.len(), report.solves.len());
    for (a, b) in back.solves.iter().zip(&report.solves) {
        assert_eq!(a.context, b.context);
        assert_eq!(a.iterations, b.iterations);
        assert_eq!(a.residual.to_bits(), b.residual.to_bits());
        assert_eq!(a.converged, b.converged);
    }
    for (key, sum) in &report.summaries {
        assert_summary_bits(&back.summaries[key], sum, key);
    }
}

#[test]
fn metric_aggregates_are_thread_count_invariant() {
    // Wall-times (build_secs, score_secs, phases) legitimately vary;
    // every *metric* field must be bit-identical between a sequential
    // and a parallel run.
    let (serial, _) = metered_report(1, 23);
    for threads in [4usize] {
        let (par, _) = metered_report(threads, 23);
        assert_eq!(par.instances.len(), serial.instances.len());
        for (a, b) in par.instances.iter().zip(&serial.instances) {
            assert_eq!(a.t, b.t);
            assert_eq!(a.backend, b.backend, "t={}", a.t);
            assert_eq!(a.jl_dim, b.jl_dim);
            assert_eq!(a.n_solves, b.n_solves);
            assert_summary_bits(&a.iterations, &b.iterations, "iterations");
            assert_summary_bits(&a.residuals, &b.residuals, "residuals");
        }
        assert_eq!(par.solves.len(), serial.solves.len());
        for (a, b) in par.solves.iter().zip(&serial.solves) {
            assert_eq!(a.context, b.context);
            assert_eq!(a.iterations, b.iterations, "{}", a.context);
            assert_eq!(a.residual.to_bits(), b.residual.to_bits(), "{}", a.context);
            assert_eq!(a.converged, b.converged);
        }
        assert_eq!(par.transitions.len(), serial.transitions.len());
        for (a, b) in par.transitions.iter().zip(&serial.transitions) {
            assert_eq!(a.n_scored, b.n_scored, "t={}", a.t);
            assert_eq!(a.n_edges_flagged, b.n_edges_flagged);
            assert_eq!(a.n_nodes_flagged, b.n_nodes_flagged);
            assert_summary_bits(&a.score, &b.score, "scores");
        }
        assert_summary_bits(
            &par.summaries["detect.scores"],
            &serial.summaries["detect.scores"],
            "pooled detect.scores",
        );
    }
}

#[test]
fn validator_accepts_pipeline_output_and_rejects_corruption() {
    let (report, _) = metered_report(1, 5);
    let good = cad_obs::parse_json(&report.to_json_string()).expect("parses");
    assert_eq!(Report::validate_json(&good), Ok(()));

    // Corrupt the schema version: must be rejected with a pointed error.
    let text =
        report
            .to_json_string()
            .replacen("\"schema_version\": 4", "\"schema_version\": \"x\"", 1);
    let bad = cad_obs::parse_json(&text).expect("still valid JSON");
    let errs = Report::validate_json(&bad).expect_err("corruption detected");
    assert!(
        errs.iter().any(|e| e.contains("schema_version")),
        "{errs:?}"
    );

    // A non-object is rejected outright.
    let scalar = cad_obs::parse_json("3").unwrap();
    assert!(Report::validate_json(&scalar).is_err());
}
