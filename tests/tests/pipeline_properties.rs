//! Property-based integration tests: invariants of the CAD pipeline
//! that must hold on *any* valid input, checked with proptest-generated
//! graph sequences.

use cad_core::{CadDetector, CadOptions, NodeScorer, ScoreKind};
use cad_graph::{GraphSequence, WeightedGraph};
use proptest::prelude::*;

/// Strategy: a pair of random graphs over `n` nodes sharing most edges.
fn graph_pair(n: usize) -> impl Strategy<Value = GraphSequence> {
    let edge = (0..n as u32, 0..n as u32, 0.1f64..5.0);
    proptest::collection::vec(edge, 1..30).prop_map(move |edges| {
        let as_edges = |skip_last: bool| {
            let take = if skip_last {
                edges.len().saturating_sub(1)
            } else {
                edges.len()
            };
            edges[..take]
                .iter()
                .filter(|&&(u, v, _)| u != v)
                .map(|&(u, v, w)| (u as usize, v as usize, w))
                .collect::<Vec<_>>()
        };
        let g0 = WeightedGraph::from_edges(n, &as_edges(true)).expect("valid");
        let g1 = WeightedGraph::from_edges(n, &as_edges(false)).expect("valid");
        GraphSequence::new(vec![g0, g1]).expect("two instances")
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn scores_are_nonnegative_finite_and_sorted(seq in graph_pair(12)) {
        for kind in [ScoreKind::Cad, ScoreKind::Adj, ScoreKind::Com] {
            let det = CadDetector::new(CadOptions { kind, ..Default::default() });
            let scored = det.score_sequence(&seq).expect("scores");
            for e in &scored[0] {
                prop_assert!(e.score >= 0.0);
                prop_assert!(e.score.is_finite());
                prop_assert!(e.u < e.v);
            }
            prop_assert!(scored[0].windows(2).all(|w| w[0].score >= w[1].score));
        }
    }

    #[test]
    fn identical_instances_produce_no_cad_anomalies(seq in graph_pair(10)) {
        let frozen = GraphSequence::new(vec![
            seq.graph(0).clone(),
            seq.graph(0).clone(),
        ]).expect("sequence");
        let det = CadDetector::default();
        let scored = det.score_sequence(&frozen).expect("scores");
        prop_assert!(scored[0].is_empty());
        let result = det.detect_top_l(&frozen, 3).expect("detect");
        prop_assert_eq!(result.total_nodes(), 0);
    }

    #[test]
    fn node_scores_sum_to_twice_edge_scores(seq in graph_pair(12)) {
        let det = CadDetector::default();
        let scored = det.score_sequence(&seq).expect("scores");
        let nodes = det.node_scores(&seq).expect("node scores");
        let edge_mass: f64 = scored[0].iter().map(|e| e.score).sum();
        let node_mass: f64 = nodes[0].iter().sum();
        prop_assert!((node_mass - 2.0 * edge_mass).abs() < 1e-9 * edge_mass.max(1.0));
    }

    #[test]
    fn time_reversal_preserves_cad_scores(seq in graph_pair(12)) {
        // ΔE is symmetric in t and t+1: reversing the sequence must give
        // the same scores on the same edges.
        let reversed = GraphSequence::new(vec![
            seq.graph(1).clone(),
            seq.graph(0).clone(),
        ]).expect("sequence");
        let det = CadDetector::default();
        let fwd = det.score_sequence(&seq).expect("fwd");
        let bwd = det.score_sequence(&reversed).expect("bwd");
        prop_assert_eq!(fwd[0].len(), bwd[0].len());
        let lookup: std::collections::HashMap<(usize, usize), f64> =
            bwd[0].iter().map(|e| ((e.u, e.v), e.score)).collect();
        for e in &fwd[0] {
            let b = lookup.get(&(e.u, e.v)).copied().expect("same support");
            prop_assert!((e.score - b).abs() <= 1e-9 * e.score.max(1.0),
                "edge ({},{}) fwd {} bwd {}", e.u, e.v, e.score, b);
        }
    }

    #[test]
    fn delta_monotonicity(seq in graph_pair(12)) {
        // Raising δ never grows the anomaly sets.
        let det = CadDetector::default();
        let scored = det.score_sequence(&seq).expect("scores");
        let total: f64 = scored[0].iter().map(|e| e.score).sum();
        if total > 0.0 {
            let lo = det.detect(&seq, total * 0.1).expect("lo");
            let hi = det.detect(&seq, total * 0.9).expect("hi");
            prop_assert!(hi.transitions[0].edges.len() <= lo.transitions[0].edges.len());
        }
    }

    #[test]
    fn node_relabeling_permutes_scores(seq in graph_pair(10)) {
        // Relabeling nodes by a fixed permutation permutes ΔN the same
        // way (the detector has no positional bias). Uses the exact
        // engine so the check is deterministic and tight.
        let n = 10;
        let perm: Vec<usize> = (0..n).map(|i| (i * 7 + 3) % n).collect();
        let permute = |g: &WeightedGraph| {
            let edges: Vec<_> = g
                .edges()
                .map(|(u, v, w)| (perm[u], perm[v], w))
                .collect();
            WeightedGraph::from_edges(n, &edges).expect("permuted")
        };
        let permuted = GraphSequence::new(vec![
            permute(seq.graph(0)),
            permute(seq.graph(1)),
        ]).expect("sequence");
        let det = CadDetector::new(CadOptions {
            engine: cad_commute::EngineOptions::Exact,
            ..Default::default()
        });
        let orig = det.node_scores(&seq).expect("orig");
        let perm_scores = det.node_scores(&permuted).expect("permuted");
        for i in 0..n {
            prop_assert!(
                (orig[0][i] - perm_scores[0][perm[i]]).abs()
                    <= 1e-7 * orig[0][i].abs().max(1.0),
                "node {i}: {} vs {}", orig[0][i], perm_scores[0][perm[i]]
            );
        }
    }
}
