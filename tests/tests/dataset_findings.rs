//! The paper's qualitative findings (§4.2) as integration tests over
//! the dataset simulators — each anecdote is an assertion here.

use cad_baselines::ActDetector;
use cad_commute::EngineOptions;
use cad_core::{CadDetector, CadOptions, DetectionResult, NodeScorer};
use cad_datasets::{
    DblpSim, DblpSimOptions, EnronSim, EnronSimOptions, PrecipSim, PrecipSimOptions,
};
use std::sync::OnceLock;

fn exact_cad() -> CadDetector {
    CadDetector::new(CadOptions {
        engine: EngineOptions::Exact,
        ..Default::default()
    })
}

// The simulators and their detection runs are the expensive part; each
// is computed once and shared by every assertion below.
fn enron() -> &'static (EnronSim, DetectionResult) {
    static CELL: OnceLock<(EnronSim, DetectionResult)> = OnceLock::new();
    CELL.get_or_init(|| {
        let sim = EnronSim::generate(&EnronSimOptions::default()).expect("sim");
        let det = exact_cad().detect_top_l(&sim.seq, 5).expect("detection");
        (sim, det)
    })
}

fn dblp() -> &'static (DblpSim, DetectionResult) {
    static CELL: OnceLock<(DblpSim, DetectionResult)> = OnceLock::new();
    CELL.get_or_init(|| {
        let sim = DblpSim::generate(&DblpSimOptions::default()).expect("sim");
        let det = CadDetector::default()
            .detect_top_l(&sim.seq, 20)
            .expect("detection");
        (sim, det)
    })
}

fn precip() -> &'static (PrecipSim, Vec<Vec<cad_core::EdgeScore>>) {
    static CELL: OnceLock<(PrecipSim, Vec<Vec<cad_core::EdgeScore>>)> = OnceLock::new();
    CELL.get_or_init(|| {
        let sim = PrecipSim::generate(&PrecipSimOptions::default()).expect("sim");
        let scored = CadDetector::default()
            .score_sequence(&sim.seq)
            .expect("scores");
        (sim, scored)
    })
}

#[test]
fn enron_ceo_localized_at_eruption() {
    let (_, result) = enron();
    // Kenneth-Lay analogue: flagged at 32 -> 33 with the most edges.
    let tr = &result.transitions[32];
    assert!(tr.nodes.contains(&EnronSim::CEO));
    let ceo_edges = tr
        .edges
        .iter()
        .filter(|e| e.u == EnronSim::CEO || e.v == EnronSim::CEO)
        .count();
    assert!(2 * ceo_edges > tr.edges.len());
}

#[test]
fn enron_assistant_and_trader_events_found() {
    let (sim, result) = enron();
    // Rosalie-Fleming analogue at 23 -> 24.
    assert!(result.transitions[23].nodes.contains(&EnronSim::ASSISTANT));
    // Chris-Germany analogue at 11 -> 12 (trader node from the event).
    let trader = sim.events[0].responsible[0];
    assert!(result.transitions[11].nodes.contains(&trader));
}

#[test]
fn enron_volume_surge_distracts_act_not_cad() {
    // The Steffes/Lay anecdote: at the same month an executive's volume
    // with existing contacts explodes. ACT's attribution prefers the
    // executive; CAD's ΔN prefers the CEO.
    let (sim, _) = enron();
    let cad_scores = exact_cad().node_scores(&sim.seq).expect("cad");
    let act_scores = ActDetector::with_window(3)
        .node_scores(&sim.seq)
        .expect("act");
    let argmax = |s: &[f64]| {
        (0..s.len())
            .max_by(|&a, &b| s[a].partial_cmp(&s[b]).expect("finite"))
            .unwrap()
    };
    assert_eq!(argmax(&cad_scores[32]), EnronSim::CEO);
    assert_ne!(argmax(&act_scores[32]), EnronSim::CEO);
}

#[test]
fn dblp_switch_severity_ordering() {
    let (sim, result) = dblp();
    let (far_author, _, switch_year) = sim.far_switcher;
    let (near_author, _, _) = sim.near_switcher;
    let edges = &result.transitions[switch_year - 1].edges;
    let best = |a: usize| {
        edges
            .iter()
            .filter(|e| e.u == a || e.v == a)
            .map(|e| e.score)
            .fold(0.0f64, f64::max)
    };
    assert!(best(far_author) > best(near_author));
    assert!(best(near_author) > 0.0);
}

#[test]
fn dblp_severed_tie_found() {
    let (sim, result) = dblp();
    let (a, b, year) = sim.severed;
    assert!(result.transitions[year - 1]
        .edges
        .iter()
        .any(|e| (e.u, e.v) == (a.min(b), a.max(b))));
}

#[test]
fn precip_event_transition_dominates() {
    let (sim, scored) = precip();
    let mass: Vec<f64> = scored
        .iter()
        .map(|s| s.iter().map(|e| e.score).sum())
        .collect();
    let top = (0..mass.len())
        .max_by(|&a, &b| mass[a].partial_cmp(&mass[b]).expect("finite"))
        .unwrap();
    assert_eq!(top, sim.event_year - 1);
}

#[test]
fn precip_top_edges_touch_shifted_regions() {
    let (sim, scored) = precip();
    let event_t = sim.event_year - 1;
    let affected: std::collections::HashSet<usize> = sim.affected_locations().into_iter().collect();
    let hits = scored[event_t][..20]
        .iter()
        .filter(|e| affected.contains(&e.u) || affected.contains(&e.v))
        .count();
    assert!(hits >= 16, "only {hits}/20 top edges touch shifted regions");
}
