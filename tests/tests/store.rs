//! Storage-layer integration contracts (the `cad-store` crate):
//!
//! * packing a sequence to disk and loading it back feeds the detector
//!   the *same bits* — scores from the loaded sequence are bit-identical
//!   to scores from the in-memory original, for every commute engine and
//!   at both 1 and 4 worker threads (property-tested over random
//!   connected sequences);
//! * a content-addressed oracle cache makes a warm `detect` run build
//!   zero oracles (asserted on the `commute.oracle_builds` counter)
//!   while producing a bit-identical result;
//! * a cache keyed on a different engine or different snapshot never
//!   hits.
//!
//! The cache tests read the process-wide counter sinks, so they
//! serialize on [`GLOBAL_SINKS`] and call [`cad_obs::reset`] at entry
//! (the pattern set by `telemetry.rs`).

use cad_commute::{EmbeddingOptions, EngineOptions};
use cad_core::{CadDetector, CadOptions};
use cad_graph::{GraphSequence, WeightedGraph};
use cad_store::OracleStore;
use proptest::prelude::*;
use std::sync::{Arc, Mutex};

/// Serializes every test that asserts on the process-wide metric sinks.
static GLOBAL_SINKS: Mutex<()> = Mutex::new(());

fn counter(name: &str) -> u64 {
    cad_obs::counters::snapshot()
        .into_iter()
        .find(|(n, _)| *n == name)
        .map(|(_, v)| v)
        .unwrap_or(0)
}

fn temp_dir(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join("cad-store-itests").join(name);
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("mk temp dir");
    dir
}

/// The four engines the acceptance contract names. Small `k` keeps the
/// embedding cheap; the seed default makes it deterministic.
fn engines() -> Vec<EngineOptions> {
    vec![
        EngineOptions::Exact,
        EngineOptions::Approximate(EmbeddingOptions {
            k: 6,
            ..Default::default()
        }),
        EngineOptions::ShortestPath,
        EngineOptions::Corrected,
    ]
}

/// A strategy for short sequences of small *connected* graphs: a path
/// backbone guarantees connectivity, extra chords and per-instance
/// weight jitter make the transitions non-trivial.
fn sequence_strategy() -> impl Strategy<Value = GraphSequence> {
    (
        4usize..9,
        2usize..4,
        proptest::collection::vec(0.25f64..4.0, 40),
        0u64..1_000_000_000,
    )
        .prop_map(|(n, len, weights, salt)| {
            let mut w = weights.into_iter().cycle();
            let graphs: Vec<WeightedGraph> = (0..len)
                .map(|t| {
                    let mut edges = Vec::new();
                    for i in 0..n - 1 {
                        edges.push((i, i + 1, w.next().unwrap()));
                    }
                    // Deterministic pseudo-random chords from the salt.
                    for i in 0..n {
                        for j in (i + 2)..n {
                            let h = salt
                                .wrapping_mul(6364136223846793005)
                                .wrapping_add((t * n * n + i * n + j) as u64);
                            if (h >> 33) % 3 == 0 {
                                edges.push((i, j, w.next().unwrap()));
                            }
                        }
                    }
                    WeightedGraph::from_edges(n, &edges).unwrap()
                })
                .collect();
            GraphSequence::new(graphs).unwrap()
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Acceptance contract: for every engine, pack → load → score is
    /// bit-identical to score on the in-memory sequence, at 1 and at 4
    /// threads.
    #[test]
    fn pack_load_score_is_bit_identical_for_every_engine(seq in sequence_strategy()) {
        let dir = std::env::temp_dir().join("cad-store-itests");
        std::fs::create_dir_all(&dir).expect("mk temp dir");
        let path = dir.join(format!("prop-{}.cadpack", std::process::id()));
        cad_store::write_pack(&path, &seq, "prop").expect("pack");
        let loaded = cad_store::read_pack(&path).expect("load");
        prop_assert_eq!(loaded.len(), seq.len());

        for engine in engines() {
            for threads in [1usize, 4] {
                let det = CadDetector::new(CadOptions {
                    engine,
                    threads,
                    ..Default::default()
                });
                let direct = det.score_sequence(&seq).expect("score original");
                let via_pack = det.score_sequence(&loaded).expect("score loaded");
                prop_assert_eq!(direct.len(), via_pack.len());
                for (a, b) in direct.iter().zip(&via_pack) {
                    prop_assert_eq!(a.len(), b.len());
                    for (x, y) in a.iter().zip(b) {
                        prop_assert_eq!((x.u, x.v), (y.u, y.v));
                        prop_assert_eq!(x.score.to_bits(), y.score.to_bits());
                    }
                }
            }
        }
    }
}

/// Two triangle clusters joined by a weak link; `bridge > 0` adds the
/// cross-cluster edge whose appearance is the anomaly. `base` jitters
/// the intra-cluster weight so every instance is byte-distinct — the
/// cache keys on snapshot bytes, and identical snapshots would share
/// an artifact, muddying the hit/miss accounting the tests assert.
fn instance(bridge: f64, base: f64) -> WeightedGraph {
    let mut edges = vec![
        (0, 1, base),
        (0, 2, 3.0),
        (1, 2, 3.0),
        (3, 4, 3.0),
        (3, 5, 3.0),
        (4, 5, 3.0),
        (2, 3, 0.2),
    ];
    if bridge > 0.0 {
        edges.push((0, 5, bridge));
    }
    WeightedGraph::from_edges(6, &edges).unwrap()
}

fn bridge_sequence() -> GraphSequence {
    GraphSequence::new(vec![
        instance(0.0, 3.0),
        instance(0.0, 3.01),
        instance(1.5, 3.02),
        instance(0.0, 3.03),
    ])
    .unwrap()
}

/// Acceptance contract: a warm-cache `detect` performs **zero** oracle
/// builds — every oracle is deserialized from the store — and the
/// result is bit-identical to the cold run.
#[test]
fn warm_cache_detect_builds_zero_oracles() {
    let _guard = GLOBAL_SINKS.lock().unwrap();
    let seq = bridge_sequence();
    let store: Arc<dyn cad_commute::OracleProvider> =
        Arc::new(OracleStore::open(temp_dir("warm")).unwrap());
    let det = CadDetector::new(CadOptions::default()).with_provider(store);

    cad_obs::reset();
    let cold = det.detect(&seq, 0.4).unwrap();
    assert_eq!(
        counter("commute.oracle_builds"),
        seq.len() as u64,
        "cold run builds one oracle per instance"
    );
    assert_eq!(counter("store.cache_misses"), seq.len() as u64);
    assert_eq!(counter("store.cache_hits"), 0);

    cad_obs::reset();
    let warm = det.detect(&seq, 0.4).unwrap();
    assert_eq!(
        counter("commute.oracle_builds"),
        0,
        "warm run must not build any oracle"
    );
    assert_eq!(counter("store.cache_hits"), seq.len() as u64);
    assert_eq!(counter("store.cache_misses"), 0);
    assert!(
        counter("store.bytes_read") > 0,
        "warm run reads artifacts from disk"
    );

    assert_eq!(cold.transitions.len(), warm.transitions.len());
    for (c, w) in cold.transitions.iter().zip(&warm.transitions) {
        assert_eq!(c.nodes, w.nodes);
        assert_eq!(c.edges.len(), w.edges.len());
        for (a, b) in c.edges.iter().zip(&w.edges) {
            assert_eq!((a.u, a.v), (b.u, b.v));
            assert_eq!(a.score.to_bits(), b.score.to_bits());
            assert_eq!(a.d_commute.to_bits(), b.d_commute.to_bits());
        }
    }
}

/// Mirror of [`cache_keys_separate_engines_and_snapshots`] for the
/// partition layout: a cache populated by the monolithic oracle never
/// serves a partitioned request, two different layouts never share
/// artifacts, and re-running one layout hits every artifact it wrote.
#[test]
fn cache_keys_separate_partition_layouts() {
    let _guard = GLOBAL_SINKS.lock().unwrap();
    let seq = bridge_sequence();
    let store: Arc<dyn cad_commute::OracleProvider> =
        Arc::new(OracleStore::open(temp_dir("part-keys")).unwrap());

    // Monolithic exact populates the unpartitioned namespace.
    cad_obs::reset();
    let mono = CadDetector::new(CadOptions {
        engine: EngineOptions::Exact,
        ..Default::default()
    })
    .with_provider(Arc::clone(&store));
    mono.detect(&seq, 0.4).unwrap();
    assert_eq!(counter("store.cache_misses"), seq.len() as u64);

    // Same engine, same snapshots, but a partition layout: all misses.
    let two_blocks = cad_commute::PartitionSpec {
        blocks: 2,
        mode: cad_commute::PartitionMode::Bfs,
    };
    cad_obs::reset();
    let part = CadDetector::new(CadOptions {
        engine: EngineOptions::Exact,
        partition: Some(two_blocks),
        ..Default::default()
    })
    .with_provider(Arc::clone(&store));
    part.detect(&seq, 0.4).unwrap();
    assert_eq!(
        counter("store.cache_hits"),
        0,
        "partition layout is part of the key"
    );
    assert_eq!(counter("store.cache_misses"), seq.len() as u64);

    // The same layout again: every artifact hits.
    cad_obs::reset();
    part.detect(&seq, 0.4).unwrap();
    assert_eq!(counter("store.cache_hits"), seq.len() as u64);
    assert_eq!(counter("store.cache_misses"), 0);

    // A different block count is a different layout: all misses again.
    cad_obs::reset();
    let three_blocks = CadDetector::new(CadOptions {
        engine: EngineOptions::Exact,
        partition: Some(cad_commute::PartitionSpec {
            blocks: 3,
            mode: cad_commute::PartitionMode::Bfs,
        }),
        ..Default::default()
    })
    .with_provider(Arc::clone(&store));
    three_blocks.detect(&seq, 0.4).unwrap();
    assert_eq!(
        counter("store.cache_hits"),
        0,
        "block count is part of the key"
    );
    assert_eq!(counter("store.cache_misses"), seq.len() as u64);
}

/// A cache populated by one engine never serves another engine's
/// request, and a perturbed snapshot never hits a stale artifact.
#[test]
fn cache_keys_separate_engines_and_snapshots() {
    let _guard = GLOBAL_SINKS.lock().unwrap();
    let seq = bridge_sequence();
    let store: Arc<dyn cad_commute::OracleProvider> =
        Arc::new(OracleStore::open(temp_dir("keys")).unwrap());

    cad_obs::reset();
    let exact = CadDetector::new(CadOptions {
        engine: EngineOptions::Exact,
        ..Default::default()
    })
    .with_provider(Arc::clone(&store));
    exact.detect(&seq, 0.4).unwrap();
    assert_eq!(counter("store.cache_misses"), seq.len() as u64);

    // Different engine, same snapshots: all misses.
    cad_obs::reset();
    let corrected = CadDetector::new(CadOptions {
        engine: EngineOptions::Corrected,
        ..Default::default()
    })
    .with_provider(Arc::clone(&store));
    corrected.detect(&seq, 0.4).unwrap();
    assert_eq!(counter("store.cache_hits"), 0, "engine is part of the key");
    assert_eq!(counter("store.cache_misses"), seq.len() as u64);

    // Same engine, one perturbed snapshot: exactly the unchanged
    // instances hit.
    cad_obs::reset();
    let mut graphs: Vec<WeightedGraph> = (0..seq.len()).map(|t| seq.graph(t).clone()).collect();
    graphs[2] = instance(1.5000001, 3.02);
    let perturbed = GraphSequence::new(graphs).unwrap();
    exact.detect(&perturbed, 0.4).unwrap();
    assert_eq!(counter("store.cache_hits"), 3);
    assert_eq!(
        counter("store.cache_misses"),
        1,
        "only the perturbed snapshot rebuilds"
    );
}
