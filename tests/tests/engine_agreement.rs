//! Cross-crate consistency: the exact and approximate commute-time
//! engines must agree (within JL error) across graph families, and the
//! CAD pipeline must produce consistent anomaly rankings regardless of
//! engine, solver strategy or preconditioner.

use cad_commute::{
    CommuteEmbedding, CommuteTimeEngine, EmbeddingOptions, EngineOptions, ExactCommute,
};
use cad_core::{CadDetector, CadOptions};
use cad_graph::generators::gmm::{sample_gmm, similarity_graph, GmmParams};
use cad_graph::generators::grid::grid_graph;
use cad_graph::generators::random::erdos_renyi;
use cad_graph::{GraphSequence, WeightedGraph};
use cad_integration_tests::{path_graph, two_clusters};
use cad_linalg::solve::laplacian::PrecondKind;
use cad_linalg::solve::{CgOptions, LaplacianSolverOptions, SolverKind};

fn assert_engines_agree(g: &WeightedGraph, k: usize, rel_tol: f64) {
    let exact = ExactCommute::compute(g).expect("exact");
    let approx = CommuteEmbedding::compute(
        g,
        &EmbeddingOptions {
            k,
            seed: 99,
            ..Default::default()
        },
    )
    .expect("embedding");
    let n = g.n_nodes();
    let mut worst: f64 = 0.0;
    for i in 0..n {
        for j in (i + 1)..n {
            let e = exact.commute_distance(i, j);
            let a = approx.commute_distance(i, j);
            if e > 1e-9 {
                worst = worst.max((a - e).abs() / e);
            }
        }
    }
    assert!(worst <= rel_tol, "worst relative error {worst} > {rel_tol}");
}

#[test]
fn engines_agree_on_path() {
    assert_engines_agree(&path_graph(12), 800, 0.25);
}

#[test]
fn engines_agree_on_grid() {
    let g = grid_graph(5, 5, 1.0).expect("grid");
    assert_engines_agree(&g, 800, 0.25);
}

#[test]
fn engines_agree_on_clusters() {
    assert_engines_agree(&two_clusters(6, 2.0, 0.3), 800, 0.25);
}

#[test]
fn engines_agree_on_random_graph() {
    let g = erdos_renyi(30, 0.2, 5).expect("er graph");
    assert_engines_agree(&g, 800, 0.3);
}

#[test]
fn engines_agree_on_kernel_graph() {
    let (pts, _) = sample_gmm(60, &GmmParams::default(), 8);
    let g = similarity_graph(&pts, 1e-4).expect("kernel graph");
    assert_engines_agree(&g, 800, 0.3);
}

#[test]
fn solver_strategies_agree() {
    // Grounded vs regularized, and all three preconditioners, give the
    // same embedding distances up to solver tolerance + regularization
    // bias.
    let g = two_clusters(8, 2.0, 0.4);
    let base = EmbeddingOptions {
        k: 64,
        seed: 5,
        ..Default::default()
    };
    let reference = CommuteEmbedding::compute(&g, &base).expect("reference");
    let variants = [
        LaplacianSolverOptions {
            kind: SolverKind::Regularized(1e-9),
            ..Default::default()
        },
        LaplacianSolverOptions {
            precond: PrecondKind::IncompleteCholesky,
            ..Default::default()
        },
        LaplacianSolverOptions {
            precond: PrecondKind::SpanningTree,
            ..Default::default()
        },
        LaplacianSolverOptions {
            precond: PrecondKind::None,
            cg: CgOptions {
                tol: 1e-10,
                max_iter: None,
                ..Default::default()
            },
            ..Default::default()
        },
    ];
    for (vi, solver) in variants.into_iter().enumerate() {
        let emb = CommuteEmbedding::compute(&g, &EmbeddingOptions { solver, ..base })
            .expect("variant embedding");
        for i in 0..g.n_nodes() {
            for j in (i + 1)..g.n_nodes() {
                let (a, b) = (reference.resistance(i, j), emb.resistance(i, j));
                assert!(
                    (a - b).abs() <= 1e-3 * a.max(1.0),
                    "variant {vi}: r({i},{j}) {b} vs reference {a}"
                );
            }
        }
    }
}

#[test]
fn cad_ranking_stable_across_engines() {
    // Anomaly ranking on a cluster-bridging change is engine-invariant.
    let g0 = two_clusters(8, 3.0, 0.2);
    let mut edges: Vec<_> = g0.edges().collect();
    edges.push((0, 15, 1.5)); // cross-cluster edge appears
    edges[0].2 += 0.3; // benign jitter
    let g1 = WeightedGraph::from_edges(16, &edges).expect("edited");
    let seq = GraphSequence::new(vec![g0, g1]).expect("sequence");

    for engine in [
        EngineOptions::Exact,
        EngineOptions::Approximate(EmbeddingOptions {
            k: 128,
            ..Default::default()
        }),
    ] {
        let det = CadDetector::new(CadOptions {
            engine,
            ..Default::default()
        });
        let scored = det.score_sequence(&seq).expect("scores");
        assert_eq!(
            (scored[0][0].u, scored[0][0].v),
            (0, 15),
            "top anomaly must be the bridge for {engine:?}"
        );
        assert!(scored[0][0].score > 5.0 * scored[0][1].score);
    }
}

#[test]
fn auto_engine_switches_at_threshold() {
    let small = path_graph(10);
    let e = CommuteTimeEngine::compute(
        &small,
        &EngineOptions::Auto {
            threshold: 16,
            embedding: Default::default(),
        },
    )
    .expect("engine");
    assert!(e.is_exact());
    let big = path_graph(32);
    let e = CommuteTimeEngine::compute(
        &big,
        &EngineOptions::Auto {
            threshold: 16,
            embedding: Default::default(),
        },
    )
    .expect("engine");
    assert!(!e.is_exact());
}
