//! Scaled-down versions of the paper's quantitative experiments
//! (Figures 5–6) run as CI-friendly integration tests.

use cad_baselines::{ActDetector, AdjDetector, ComDetector};
use cad_commute::{EmbeddingOptions, EngineOptions};
use cad_core::{CadDetector, CadOptions, NodeScorer};
use cad_datasets::{GmmBenchmark, GmmBenchmarkOptions};
use cad_eval::auc;

fn bench(n: usize, seed: u64) -> GmmBenchmark {
    let mut opts = GmmBenchmarkOptions::with_n(n);
    opts.seed = seed;
    GmmBenchmark::generate(&opts).expect("benchmark realization")
}

#[test]
fn figure6_cad_dominates_baselines() {
    // Mini Figure 6: average over 3 realizations at n = 150.
    let mut cad_sum = 0.0;
    let mut best_baseline: f64 = 0.0;
    let trials = 3;
    for t in 0..trials {
        let b = bench(150, 100 + t);
        let cad = CadDetector::default().node_scores(&b.seq).expect("cad");
        cad_sum += auc(&cad[0], &b.node_labels);
        for scores in [
            ActDetector::with_window(1)
                .node_scores(&b.seq)
                .expect("act"),
            ComDetector::new().node_scores(&b.seq).expect("com"),
            AdjDetector::new().node_scores(&b.seq).expect("adj"),
        ] {
            best_baseline = best_baseline.max(auc(&scores[0], &b.node_labels));
        }
    }
    let cad_auc = cad_sum / trials as f64;
    assert!(cad_auc > 0.85, "CAD AUC too low: {cad_auc}");
    assert!(
        cad_auc > best_baseline + 0.1,
        "CAD ({cad_auc}) must dominate the best baseline ({best_baseline})"
    );
}

#[test]
fn figure5_auc_plateau_in_k() {
    // Mini Figure 5: k = 25 and k = 100 within a few AUC points of each
    // other and of exact; k = 2 notably worse or equal.
    let b = bench(150, 7);
    let auc_at = |engine: EngineOptions| {
        let det = CadDetector::new(CadOptions {
            engine,
            ..Default::default()
        });
        let scores = det.node_scores(&b.seq).expect("scores");
        auc(&scores[0], &b.node_labels)
    };
    let exact = auc_at(EngineOptions::Exact);
    let k25 = auc_at(EngineOptions::Approximate(EmbeddingOptions {
        k: 25,
        ..Default::default()
    }));
    let k100 = auc_at(EngineOptions::Approximate(EmbeddingOptions {
        k: 100,
        ..Default::default()
    }));
    assert!((k25 - exact).abs() < 0.08, "k=25 {k25} vs exact {exact}");
    assert!((k100 - exact).abs() < 0.05, "k=100 {k100} vs exact {exact}");
    assert!(exact > 0.85);
}

#[test]
fn anomalous_edges_rank_above_benign_noise() {
    // Edge-level view: cross-cluster noise must outrank same-magnitude
    // intra-cluster noise — the paper's §2.5 discrimination argument.
    let b = bench(150, 11);
    let det = CadDetector::default();
    let scored = det.score_sequence(&b.seq).expect("scores");
    let rank_of = |u: usize, v: usize| {
        scored[0]
            .iter()
            .position(|e| (e.u, e.v) == (u, v))
            .expect("edge scored")
    };
    let mean_anom_rank: f64 = b
        .anomalous_edges
        .iter()
        .map(|&(u, v)| rank_of(u, v) as f64)
        .sum::<f64>()
        / b.anomalous_edges.len() as f64;
    let mean_benign_rank: f64 = b
        .benign_noise_edges
        .iter()
        .map(|&(u, v)| rank_of(u, v) as f64)
        .sum::<f64>()
        / b.benign_noise_edges.len() as f64;
    assert!(
        mean_anom_rank * 3.0 < mean_benign_rank,
        "anomalous mean rank {mean_anom_rank} vs benign {mean_benign_rank}"
    );
}

#[test]
fn threshold_policy_recovers_planted_nodes() {
    let b = bench(200, 13);
    let det = CadDetector::default();
    let planted = b.n_anomalous_nodes();
    let result = det.detect_top_l(&b.seq, planted).expect("detection");
    let found = &result.transitions[0].nodes;
    let hits = found.iter().filter(|&&n| b.node_labels[n]).count();
    let precision = hits as f64 / found.len().max(1) as f64;
    assert!(
        precision >= 0.7,
        "δ-selected node set should be mostly planted anomalies: {precision}"
    );
}
