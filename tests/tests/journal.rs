//! Durability properties of the per-session write-ahead log: a session
//! interrupted after *any* prefix of pushes — with or without an
//! intervening snapshot compaction — and rebuilt from its journal must
//! continue bit-identically to a session that was never interrupted,
//! for every oracle engine.
//!
//! Two layers are exercised:
//!
//! * the checkpoint codec alone (`encode_checkpoint`,
//!   `decode_checkpoint`, `OnlineCad::resume`), across engines × thread counts — serve
//!   pins sessions to one thread, so the thread axis only exists here;
//! * the full on-disk lifecycle (`append* → compact → append* → kill →
//!   recover_root → replay`), the exact path `cad serve --journal-dir`
//!   takes across a crash.

use cad_commute::{EmbeddingOptions, EngineOptions};
use cad_core::{CadOptions, OnlineCad, ScoreKind, ThresholdMode, TransitionAnomalies, UpdateMode};
use cad_graph::WeightedGraph;
use cad_integration_tests::two_clusters;
use cad_journal::{FsyncPolicy, JournalConfig, RecordKind, SessionJournal};
use cad_serve::journal::{decode_checkpoint, encode_checkpoint, spec_to_json};
use cad_serve::{parse_spec, replay};
use proptest::prelude::*;
use std::path::PathBuf;

fn engines() -> [(&'static str, EngineOptions); 4] {
    [
        ("exact", EngineOptions::Exact),
        (
            "approx",
            EngineOptions::Approximate(EmbeddingOptions {
                k: 6,
                ..Default::default()
            }),
        ),
        ("shortest-path", EngineOptions::ShortestPath),
        ("corrected", EngineOptions::Corrected),
    ]
}

fn tmp_root(tag: &str) -> PathBuf {
    static NEXT: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
    let id = NEXT.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    std::env::temp_dir().join(format!("cad-int-journal-{tag}-{}-{id}", std::process::id()))
}

/// Everything a transition asserts on, with float bits kept exact.
type TransitionDigest = (usize, Vec<(usize, usize, u64, u64, u64)>, Vec<usize>);

fn digest(tr: &Option<TransitionAnomalies>) -> Option<TransitionDigest> {
    tr.as_ref().map(|t| {
        (
            t.t,
            t.edges
                .iter()
                .map(|e| {
                    (
                        e.u,
                        e.v,
                        e.score.to_bits(),
                        e.d_weight.to_bits(),
                        e.d_commute.to_bits(),
                    )
                })
                .collect(),
            t.nodes.clone(),
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Checkpoint + resume at any cut point reproduces the
    /// uninterrupted session's remaining transitions and final state
    /// bit for bit, for all four engines × {1, 4} threads.
    #[test]
    fn checkpoint_resume_is_bit_identical_for_every_engine_and_thread_count(
        bridges in proptest::collection::vec(0.1f64..3.0, 2..6),
        cut_frac in 0.0f64..1.0,
    ) {
        let graphs: Vec<WeightedGraph> = bridges
            .iter()
            .map(|&b| two_clusters(6, 3.0, b))
            .collect();
        let cut = ((graphs.len() as f64) * cut_frac) as usize;
        for (_name, engine) in engines() {
            for threads in [1usize, 4] {
                let mk = || {
                    OnlineCad::with_mode(
                        CadOptions {
                            engine,
                            kind: ScoreKind::Cad,
                            threads,
                            partition: None,
                        },
                        ThresholdMode::Fixed(0.4),
                    )
                    .with_update_mode(UpdateMode::Rebuild)
                };
                let mut full = mk();
                let mut full_out = Vec::new();
                for g in &graphs {
                    full_out.push(digest(&full.push(g.clone()).unwrap()));
                }

                let mut pre = mk();
                for g in &graphs[..cut] {
                    pre.push(g.clone()).unwrap();
                }
                let bytes = encode_checkpoint("spec-under-test", &pre.state());
                let (spec_str, state) = decode_checkpoint(&bytes).unwrap();
                prop_assert_eq!(spec_str, "spec-under-test");
                let mut resumed = mk().resume(state).unwrap();
                let mut resumed_out = Vec::new();
                for g in &graphs[cut..] {
                    resumed_out.push(digest(&resumed.push(g.clone()).unwrap()));
                }
                prop_assert_eq!(&full_out[cut..], &resumed_out[..]);
                prop_assert_eq!(
                    encode_checkpoint("spec-under-test", &full.state()),
                    encode_checkpoint("spec-under-test", &resumed.state())
                );
            }
        }
    }

    /// The on-disk lifecycle: records appended before every push, an
    /// optional mid-stream compaction, the process "killed" (journal
    /// dropped, never destroyed), then recovery replays the journal
    /// into a session whose state — and whose next push — is
    /// bit-identical to a session that never died.
    #[test]
    fn journaled_session_recovers_bit_identically_around_compaction(
        bridges in proptest::collection::vec(0.1f64..3.0, 2..6),
        cut_frac in 0.0f64..1.0,
        compact_mid_sel in 0u32..2,
    ) {
        let graphs: Vec<WeightedGraph> = bridges
            .iter()
            .map(|&b| two_clusters(6, 3.0, b))
            .collect();
        let cut = ((graphs.len() as f64) * cut_frac) as usize;
        let compact_mid = compact_mid_sel == 1;
        for (name, _) in engines() {
            let root = tmp_root(name);
            std::fs::create_dir_all(&root).unwrap();
            let spec_body = format!(
                r#"{{"nodes": 12, "engine": "{name}", "k": 6, "delta": 0.4, "update_mode": "rebuild"}}"#
            );
            let spec = parse_spec(spec_body.as_bytes()).unwrap();
            let spec_json = spec_to_json(&spec, UpdateMode::Rebuild);
            let mk = || {
                OnlineCad::with_mode(spec.opts, spec.mode)
                    .with_update_mode(UpdateMode::Rebuild)
            };

            // The session that never dies.
            let mut reference = mk();
            for g in &graphs {
                reference.push(g.clone()).unwrap();
            }

            // The journaled twin: delta appended before each push (the
            // server's ordering), compacted mid-stream when asked.
            let cfg = JournalConfig {
                fsync: FsyncPolicy::Never,
                ..Default::default()
            };
            let mut journal = SessionJournal::create(&root, 1, cfg).unwrap();
            journal
                .append(RecordKind::Create, spec_json.as_bytes())
                .unwrap();
            let mut live = mk();
            let mut current: Option<WeightedGraph> = None;
            for (i, g) in graphs.iter().enumerate() {
                if compact_mid && i == cut {
                    journal
                        .compact(&encode_checkpoint(&spec_json, &live.state()))
                        .unwrap();
                }
                let base = match &current {
                    Some(b) => b.clone(),
                    None => WeightedGraph::from_edges(12, &[]).unwrap(),
                };
                journal
                    .append(RecordKind::Delta, &cad_store::encode_edge_delta(&base, g))
                    .unwrap();
                live.push(g.clone()).unwrap();
                current = Some(g.clone());
            }
            drop(journal); // kill -9: no destroy, no final sync

            let recovered = cad_journal::recover_root(&root).unwrap();
            prop_assert_eq!(recovered.len(), 1);
            let mut rs = replay(&recovered[0], None).unwrap();
            prop_assert_eq!(rs.instances, graphs.len());
            prop_assert_eq!(
                encode_checkpoint(&spec_json, &rs.online.state()),
                encode_checkpoint(&spec_json, &reference.state())
            );
            // And the *next* push after recovery matches too.
            let extra = two_clusters(6, 3.0, 2.2);
            prop_assert_eq!(
                digest(&rs.online.push(extra.clone()).unwrap()),
                digest(&reference.push(extra).unwrap())
            );
            std::fs::remove_dir_all(&root).unwrap();
        }
    }
}
