//! The incremental-oracle contract, cross-crate: for every engine,
//! `apply_delta` against the previous instance's oracle must agree with
//! a fresh build on the new instance.
//!
//! Two regimes, matching the documented contract in
//! `cad_commute::update`:
//!
//! * **incremental paths** (`UpdateOutcome::Applied`) are
//!   tolerance-bounded: every pairwise distance agrees with the fresh
//!   build within `UPDATE_REL_TOL · (1 + d_fresh)`;
//! * **rebuild-fallback paths** (structural deltas, backends without
//!   update support) discard the updated oracle and build fresh — and a
//!   fresh build is *bit-identical* to any other fresh build, which is
//!   what keeps `--update-mode incremental` safe to run against the
//!   batch detector.
//!
//! All four engines are exercised, at 1 and 4 worker threads.

use cad_commute::{
    CommuteTimeEngine, EdgeDelta, EmbeddingOptions, EngineOptions, SharedOracle, UpdateOutcome,
    UPDATE_REL_TOL,
};
use cad_datasets::{GmmBenchmark, GmmBenchmarkOptions};
use cad_graph::WeightedGraph;
use proptest::prelude::*;

/// The four engine configurations under test, with the worker-thread
/// count threaded into the one backend that parallelizes its build.
fn engines(threads: usize) -> Vec<EngineOptions> {
    vec![
        EngineOptions::Exact,
        EngineOptions::Approximate(EmbeddingOptions {
            k: 24,
            threads,
            ..Default::default()
        }),
        EngineOptions::ShortestPath,
        EngineOptions::Corrected,
    ]
}

/// Two consecutive GMM instances over a shared vertex set.
fn gmm_pair(seed: u64, n: usize) -> (WeightedGraph, WeightedGraph) {
    let mut opts = GmmBenchmarkOptions::with_n(n);
    opts.seed = seed;
    let bench = GmmBenchmark::generate(&opts).expect("gmm benchmark");
    let graphs = bench.seq.graphs();
    (graphs[0].clone(), graphs[1].clone())
}

/// Every pairwise distance of `a` and `b`, compared bit-for-bit.
fn assert_bit_identical(a: &SharedOracle, b: &SharedOracle, what: &str) {
    assert_eq!(a.n_nodes(), b.n_nodes());
    for i in 0..a.n_nodes() {
        for j in (i + 1)..a.n_nodes() {
            assert_eq!(
                a.distance(i, j).to_bits(),
                b.distance(i, j).to_bits(),
                "{what}: d({i},{j}) not bit-identical"
            );
        }
    }
}

/// Apply `old → new` to a clone of `old`'s oracle and check the
/// contract for whichever path the update takes.
fn check_engine(opts: &EngineOptions, old: &WeightedGraph, new: &WeightedGraph) {
    let prev = CommuteTimeEngine::compute(old, opts).expect("oracle on old");
    let fresh = CommuteTimeEngine::compute(new, opts).expect("oracle on new");
    let delta = EdgeDelta::between(old, new);

    let mut candidate = prev.clone_box();
    let outcome = match candidate.as_updatable() {
        Some(upd) => upd.apply_delta(&delta).expect("apply_delta"),
        // Backend without update support: the documented fallback.
        None => {
            let rebuilt = CommuteTimeEngine::compute(new, opts).expect("rebuild");
            assert_bit_identical(&rebuilt, &fresh, "unsupported-backend rebuild");
            return;
        }
    };
    match outcome {
        UpdateOutcome::Applied { .. } => {
            assert_eq!(candidate.n_nodes(), fresh.n_nodes());
            for i in 0..fresh.n_nodes() {
                for j in (i + 1)..fresh.n_nodes() {
                    let d_upd = candidate.distance(i, j);
                    let d_fresh = fresh.distance(i, j);
                    assert!(
                        (d_upd - d_fresh).abs() <= UPDATE_REL_TOL * (1.0 + d_fresh.abs()),
                        "incremental d({i},{j}) = {d_upd} vs fresh {d_fresh} \
                         exceeds the documented bound"
                    );
                }
            }
        }
        UpdateOutcome::RebuildRequired(reason) => {
            // The candidate may be partially mutated and is discarded;
            // the replacement fresh build must be bit-identical to any
            // other fresh build.
            drop(candidate);
            let rebuilt = CommuteTimeEngine::compute(new, opts).expect("rebuild");
            assert_bit_identical(&rebuilt, &fresh, &format!("fallback ({})", reason.name()));
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    #[test]
    fn apply_delta_agrees_with_fresh_build(seed in 0u64..1_000, n in 24usize..40) {
        let (old, new) = gmm_pair(seed, n);
        for threads in [1usize, 4] {
            for opts in engines(threads) {
                check_engine(&opts, &old, &new);
            }
        }
    }
}

/// A stream that disconnects forces the structural fallback on every
/// engine; the rebuild must stay bit-identical to a batch build.
#[test]
fn structural_delta_falls_back_bit_identically_on_every_engine() {
    let joined = WeightedGraph::from_edges(
        8,
        &[
            (0, 1, 1.0),
            (1, 2, 2.0),
            (2, 3, 1.0),
            (3, 4, 0.5),
            (4, 5, 1.0),
            (5, 6, 2.0),
            (6, 7, 1.0),
        ],
    )
    .unwrap();
    // Dropping the {3,4} bridge splits the graph in two.
    let split = WeightedGraph::from_edges(
        8,
        &[
            (0, 1, 1.0),
            (1, 2, 2.0),
            (2, 3, 1.0),
            (4, 5, 1.0),
            (5, 6, 2.0),
            (6, 7, 1.0),
        ],
    )
    .unwrap();
    let delta = EdgeDelta::between(&joined, &split);
    assert!(delta.structural);
    for threads in [1usize, 4] {
        for opts in engines(threads) {
            check_engine(&opts, &joined, &split);
        }
    }
}

/// A pure weight perturbation takes the incremental path on every
/// updatable engine (and the resulting volume matches the fresh build
/// bit-for-bit, because the update recomputes it from the new graph).
#[test]
fn weight_only_delta_updates_in_place() {
    let (old, _) = gmm_pair(11, 30);
    // Perturb a handful of existing edge weights, keeping the topology.
    let edges: Vec<(usize, usize, f64)> = old
        .edges()
        .enumerate()
        .map(|(idx, (u, v, w))| {
            let scale = if idx % 3 == 0 { 1.25 } else { 1.0 };
            (u, v, w * scale)
        })
        .collect();
    let new = WeightedGraph::from_edges(old.n_nodes(), &edges).unwrap();
    let delta = EdgeDelta::between(&old, &new);
    assert!(!delta.structural);
    assert!(!delta.is_empty());

    for opts in [EngineOptions::Exact, EngineOptions::Corrected] {
        let prev = CommuteTimeEngine::compute(&old, &opts).unwrap();
        let fresh = CommuteTimeEngine::compute(&new, &opts).unwrap();
        let mut candidate = prev.clone_box();
        let outcome = candidate
            .as_updatable()
            .expect("updatable backend")
            .apply_delta(&delta)
            .unwrap();
        assert!(matches!(outcome, UpdateOutcome::Applied { .. }));
        assert_eq!(
            candidate.volume().map(f64::to_bits),
            fresh.volume().map(f64::to_bits),
            "volume maintenance must match the fresh build exactly"
        );
    }
}
