//! End-to-end reproduction of the paper's toy-example results
//! (Tables 1–2, Figures 2–3) as assertable integration tests.

use cad_baselines::ActDetector;
use cad_commute::eigenmap::laplacian_eigenmap;
use cad_commute::EngineOptions;
use cad_core::node_scores::normalize_by_max;
use cad_core::{CadDetector, CadOptions, NodeScorer};
use cad_graph::generators::toy::{b, r, toy_example};

fn exact_detector() -> CadDetector {
    CadDetector::new(CadOptions {
        engine: EngineOptions::Exact,
        ..Default::default()
    })
}

#[test]
fn table1_edge_score_separation() {
    let toy = toy_example();
    let scored = exact_detector().score_sequence(&toy.seq).expect("scores");
    let score_of = |u: usize, v: usize| {
        scored[0]
            .iter()
            .find(|e| (e.u, e.v) == (u.min(v), u.max(v)))
            .map_or(0.0, |e| e.score)
    };
    // Exactly the five changed edges carry non-zero support.
    assert_eq!(scored[0].len(), 5);
    // Anomalous edges dominate benign ones by an order of magnitude.
    let anomalous_min = toy
        .anomalous_edges
        .iter()
        .map(|&(u, v)| score_of(u, v))
        .fold(f64::INFINITY, f64::min);
    let benign_max = toy
        .benign_changed_edges
        .iter()
        .map(|&(u, v)| score_of(u, v))
        .fold(0.0f64, f64::max);
    assert!(
        benign_max > 0.0,
        "benign changed edges have small but non-zero scores"
    );
    assert!(
        anomalous_min > 10.0 * benign_max,
        "Table 1 separation: {anomalous_min} vs {benign_max}"
    );
}

#[test]
fn table2_node_scores() {
    let toy = toy_example();
    let det = exact_detector();
    let ns = det.node_scores(&toy.seq).expect("node scores");
    // The six responsible nodes dominate (Table 2).
    let responsible_min = toy
        .anomalous_nodes
        .iter()
        .map(|&n| ns[0][n])
        .fold(f64::INFINITY, f64::min);
    let innocent_max = (0..17)
        .filter(|n| !toy.anomalous_nodes.contains(n))
        .map(|n| ns[0][n])
        .fold(0.0f64, f64::max);
    assert!(responsible_min > 10.0 * innocent_max);
    // Structurally untouched nodes score exactly zero (b6, b8, r2..r6, r9).
    for label_zero in [b(6), b(8), r(2), r(3), r(4), r(5), r(6), r(9)] {
        assert_eq!(
            ns[0][label_zero], 0.0,
            "node {label_zero} should be untouched"
        );
    }
}

#[test]
fn figure2_eigenmap_movements() {
    // The 2-D eigenmap reproduces the paper's qualitative observations:
    // (a) at time t the red and blue clusters are separated;
    // (b) at t+1 nodes r4, r6, r8, r9 drift away from the rest;
    // (c) b1 and r1 move closer; (d) b4 and b5 move closer.
    let toy = toy_example();
    let e0 = laplacian_eigenmap(toy.seq.graph(0), 2).expect("eigenmap t");
    let e1 = laplacian_eigenmap(toy.seq.graph(1), 2).expect("eigenmap t+1");
    let d = |e: &Vec<Vec<f64>>, i: usize, j: usize| {
        ((e[i][0] - e[j][0]).powi(2) + (e[i][1] - e[j][1]).powi(2)).sqrt()
    };
    // (a) blue-blue pairs closer than blue-red pairs at time t.
    let intra = d(&e0, b(1), b(2));
    let inter = d(&e0, b(1), r(1));
    assert!(
        inter > intra,
        "clusters should separate at t: {inter} vs {intra}"
    );
    // (b) the cut-off red subgroup moves away from r1 at t+1.
    assert!(d(&e1, r(8), r(1)) > d(&e0, r(8), r(1)));
    // (c) b1 and r1 get closer.
    assert!(d(&e1, b(1), r(1)) < d(&e0, b(1), r(1)));
    // (d) b4 and b5 get closer.
    assert!(d(&e1, b(4), b(5)) < d(&e0, b(4), b(5)));
}

#[test]
fn figure3_cad_sharper_than_act() {
    let toy = toy_example();
    let cad_scores = exact_detector().node_scores(&toy.seq).expect("CAD");
    let act_scores = ActDetector::with_window(1)
        .node_scores(&toy.seq)
        .expect("ACT");
    let cad = normalize_by_max(&cad_scores[0]);
    let act = normalize_by_max(&act_scores[0]);

    // Margin between the weakest responsible node and the strongest
    // innocent node — CAD's must be decisively larger (Figure 3).
    let margin = |scores: &[f64]| {
        let resp_min = toy
            .anomalous_nodes
            .iter()
            .map(|&n| scores[n])
            .fold(f64::INFINITY, f64::min);
        let innocent_max = (0..17)
            .filter(|n| !toy.anomalous_nodes.contains(n))
            .map(|n| scores[n])
            .fold(0.0f64, f64::max);
        resp_min - innocent_max
    };
    let (m_cad, m_act) = (margin(&cad), margin(&act));
    assert!(
        m_cad > 0.2,
        "CAD must cleanly separate responsible nodes: {m_cad}"
    );
    assert!(
        m_cad > m_act + 0.1,
        "CAD margin {m_cad} must beat ACT margin {m_act} decisively"
    );

    // ACT assigns non-trivial scores to affected-but-innocent nodes
    // (r4, r6, r9 drift with the structure) — the false-alarm failure
    // mode the paper criticizes.
    let affected_innocent = [r(4), r(6), r(9)];
    let act_affected_max = affected_innocent
        .iter()
        .map(|&n| act[n])
        .fold(0.0f64, f64::max);
    let cad_affected_max = affected_innocent
        .iter()
        .map(|&n| cad[n])
        .fold(0.0f64, f64::max);
    assert!(
        act_affected_max > 0.2,
        "ACT flags affected nodes: {act_affected_max}"
    );
    assert_eq!(
        cad_affected_max, 0.0,
        "CAD never flags affected-but-innocent nodes"
    );
}

#[test]
fn detection_recovers_exact_ground_truth() {
    let toy = toy_example();
    let result = exact_detector()
        .detect_top_l(&toy.seq, 6)
        .expect("detection");
    let tr = &result.transitions[0];
    assert_eq!(tr.nodes, {
        let mut want = toy.anomalous_nodes.clone();
        want.sort_unstable();
        want
    });
    let mut found: Vec<(usize, usize)> = tr.edges.iter().map(|e| (e.u, e.v)).collect();
    found.sort_unstable();
    let mut want = toy.anomalous_edges.clone();
    want.sort_unstable();
    assert_eq!(found, want);
}

#[test]
fn approximate_engine_reproduces_toy_ordering() {
    // Even with the k = 50 embedding (the paper's default), the three
    // anomalous edges stay on top.
    let toy = toy_example();
    let det = CadDetector::new(CadOptions {
        engine: EngineOptions::Approximate(Default::default()),
        ..Default::default()
    });
    let scored = det.score_sequence(&toy.seq).expect("scores");
    let top3: Vec<(usize, usize)> = scored[0].iter().take(3).map(|e| (e.u, e.v)).collect();
    for edge in &toy.anomalous_edges {
        assert!(
            top3.contains(edge),
            "{edge:?} missing from approximate top-3: {top3:?}"
        );
    }
}
