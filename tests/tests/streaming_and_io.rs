//! Integration tests for the streaming detector, the I/O layer and the
//! sparse eigenmap — the pieces a deployment would wire together.

use cad_commute::eigenmap::{laplacian_eigenmap, laplacian_eigenmap_sparse};
use cad_core::online::OnlineCad;
use cad_core::{render_report, CadDetector, CadOptions, ReportOptions};
use cad_datasets::{EnronSim, EnronSimOptions};
use cad_graph::generators::toy::{node_label, toy_example};
use cad_graph::io::{read_sequence, write_sequence};
use cad_graph::stats::GraphStats;

#[test]
fn online_detector_replays_enron_stream() {
    // Feed the monthly instances one by one; the online detector must
    // flag the CEO eruption as it happens, and its final re-evaluation
    // must match the offline result.
    let sim = EnronSim::generate(&EnronSimOptions::default()).expect("sim");
    let opts = CadOptions {
        engine: cad_commute::EngineOptions::Exact,
        ..Default::default()
    };
    let mut online = OnlineCad::new(opts, 5);
    let mut eruption_hit = false;
    for (month, g) in sim.seq.graphs().iter().cloned().enumerate() {
        if let Some(tr) = online.push(g).expect("push") {
            if month == 33 && tr.nodes.contains(&EnronSim::CEO) {
                eruption_hit = true;
            }
        }
    }
    assert!(
        eruption_hit,
        "streaming detector must flag the CEO at the eruption"
    );

    let final_sets = online.reevaluate_all();
    let offline = CadDetector::new(opts)
        .detect_top_l(&sim.seq, 5)
        .expect("offline detection");
    for (on, off) in final_sets.iter().zip(&offline.transitions) {
        assert_eq!(on.nodes, off.nodes, "transition {}", on.t);
    }
}

#[test]
fn sequence_io_roundtrip_preserves_detection() {
    // Serialize the toy sequence, read it back, detect: identical output.
    let toy = toy_example();
    let mut buf = Vec::new();
    write_sequence(&mut buf, &toy.seq).expect("write");
    let back = read_sequence(&buf[..]).expect("read");
    let det = CadDetector::new(CadOptions {
        engine: cad_commute::EngineOptions::Exact,
        ..Default::default()
    });
    let a = det.detect_top_l(&toy.seq, 6).expect("original");
    let b = det.detect_top_l(&back, 6).expect("roundtripped");
    assert_eq!(a.transitions[0].nodes, b.transitions[0].nodes);
    assert_eq!(a.transitions[0].edges.len(), b.transitions[0].edges.len());
}

#[test]
fn report_renders_with_labels() {
    let toy = toy_example();
    let det = CadDetector::new(CadOptions {
        engine: cad_commute::EngineOptions::Exact,
        ..Default::default()
    });
    let result = det.detect_top_l(&toy.seq, 6).expect("detection");
    let label = |n: usize| node_label(n);
    let text = render_report(
        &result,
        &ReportOptions {
            label: Some(&label),
            ..Default::default()
        },
    );
    assert!(text.contains("b4 -- b5"), "{text}");
    assert!(text.contains("r7 -- r8"), "{text}");
    assert!(text.contains("nodes: b1, b4, b5, r1, r7, r8"), "{text}");
}

#[test]
fn sparse_eigenmap_reproduces_figure2_movements() {
    // The Lanczos route reaches the same Figure-2 conclusions as the
    // dense route on the toy graphs.
    let toy = toy_example();
    use cad_graph::generators::toy::{b, r};
    let dist = |e: &Vec<Vec<f64>>, i: usize, j: usize| {
        e[i].iter()
            .zip(&e[j])
            .map(|(a, b)| (a - b) * (a - b))
            .sum::<f64>()
            .sqrt()
    };
    let s0 = laplacian_eigenmap_sparse(toy.seq.graph(0), 2).expect("sparse t");
    let s1 = laplacian_eigenmap_sparse(toy.seq.graph(1), 2).expect("sparse t+1");
    assert!(dist(&s1, b(1), r(1)) < dist(&s0, b(1), r(1)));
    assert!(dist(&s1, b(4), b(5)) < dist(&s0, b(4), b(5)));
    assert!(dist(&s1, r(8), r(1)) > dist(&s0, r(8), r(1)));

    // And pairwise distances agree with the dense route.
    let d0 = laplacian_eigenmap(toy.seq.graph(0), 2).expect("dense t");
    for i in 0..17 {
        for j in (i + 1)..17 {
            let (a, b) = (dist(&d0, i, j), dist(&s0, i, j));
            assert!((a - b).abs() < 1e-6 * a.max(1.0), "({i},{j}): {a} vs {b}");
        }
    }
}

#[test]
fn simulator_stats_match_corpus_shape() {
    // The simulated e-mail network should look like the real corpus:
    // sparse, clustered, one dominant component.
    let sim = EnronSim::generate(&EnronSimOptions::default()).expect("sim");
    let stats = GraphStats::compute(sim.seq.graph(10));
    assert_eq!(stats.n_nodes, 151);
    assert!(stats.n_edges > 150 && stats.n_edges < 800, "{stats}");
    assert!(stats.density < 0.1, "{stats}");
    assert!(
        stats.clustering > 0.02,
        "real contact networks cluster: {stats}"
    );
    assert!(stats.n_components < 15, "{stats}");
}
