//! End-to-end tests for the `cad-serve` detection service: real TCP
//! connections against a running [`cad_serve::Server`].
//!
//! The anchor test proves the transport claim: a sequence pushed
//! snapshot-by-snapshot over HTTP yields, per transition, *bit-identical*
//! anomaly sets and scores to batch `cad detect` over the same sequence —
//! for every oracle engine.

use cad_commute::{EmbeddingOptions, EngineOptions};
use cad_core::{CadDetector, CadOptions, ScoreKind};
use cad_graph::{GraphSequence, WeightedGraph};
use cad_integration_tests::two_clusters;
use cad_obs::Json;
use cad_serve::{ServeConfig, Server};
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

fn test_config() -> ServeConfig {
    ServeConfig {
        read_timeout: Duration::from_secs(2),
        write_timeout: Duration::from_secs(2),
        ..Default::default()
    }
}

/// One request on a fresh connection; returns (status, headers, body).
fn call(addr: SocketAddr, method: &str, path: &str, body: &[u8]) -> (u16, String, String) {
    let mut conn = TcpStream::connect(addr).expect("connect");
    send_request(&mut conn, method, path, body);
    read_response(&mut conn)
}

fn send_request(conn: &mut TcpStream, method: &str, path: &str, body: &[u8]) {
    let head = format!(
        "{method} {path} HTTP/1.1\r\nHost: t\r\nConnection: close\r\nContent-Length: {}\r\n\r\n",
        body.len()
    );
    conn.write_all(head.as_bytes()).expect("write head");
    conn.write_all(body).expect("write body");
}

fn read_response(conn: &mut TcpStream) -> (u16, String, String) {
    let mut reader = BufReader::new(conn);
    let mut status_line = String::new();
    reader.read_line(&mut status_line).expect("status line");
    let status: u16 = status_line
        .split_whitespace()
        .nth(1)
        .unwrap_or_else(|| panic!("bad status line {status_line:?}"))
        .parse()
        .expect("numeric status");
    let mut headers = String::new();
    let mut content_length = 0usize;
    loop {
        let mut line = String::new();
        reader.read_line(&mut line).expect("header");
        if line.trim_end().is_empty() {
            break;
        }
        if let Some(v) = line
            .to_ascii_lowercase()
            .strip_prefix("content-length:")
            .map(str::trim)
        {
            content_length = v.parse().expect("length");
        }
        headers.push_str(&line);
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body).expect("body");
    (status, headers, String::from_utf8(body).expect("utf-8"))
}

fn json(body: &str) -> Json {
    cad_obs::parse_json(body).unwrap_or_else(|e| panic!("bad json {body:?}: {e}"))
}

/// JSON edge-list body for one snapshot.
fn snapshot_body(g: &WeightedGraph) -> String {
    let list: Vec<String> = g
        .edges()
        .map(|(u, v, w)| format!("[{u}, {v}, {w:?}]"))
        .collect();
    format!(
        r#"{{"nodes": {}, "edges": [{}]}}"#,
        g.n_nodes(),
        list.join(", ")
    )
}

/// The shared workload: two 8-node clusters whose bridge strengthens
/// twice (transitions 1 and 3 are anomalous under a fixed δ).
fn bridge_sequence() -> GraphSequence {
    let graphs: Vec<WeightedGraph> = [0.3, 0.3, 3.0, 0.3, 1.5]
        .iter()
        .map(|&b| two_clusters(8, 3.0, b))
        .collect();
    GraphSequence::new(graphs).expect("valid sequence")
}

fn create_session(addr: SocketAddr, spec: &str) -> u64 {
    let (status, _, body) = call(addr, "POST", "/v1/sequences", spec.as_bytes());
    assert_eq!(status, 201, "{body}");
    json(&body).get("id").and_then(Json::as_u64).expect("id")
}

/// Push every instance of `seq` into session `id`, returning the
/// `transition` JSON of each push from the second on.
fn push_sequence(addr: SocketAddr, id: u64, seq: &GraphSequence) -> Vec<Json> {
    let path = format!("/v1/sequences/{id}/snapshots");
    let mut transitions = Vec::new();
    for (i, g) in seq.graphs().iter().enumerate() {
        let (status, _, body) = call(addr, "POST", &path, snapshot_body(g).as_bytes());
        assert_eq!(status, 200, "push {i}: {body}");
        let v = json(&body);
        assert_eq!(v.get("instance").and_then(Json::as_u64), Some(i as u64));
        match v.get("transition") {
            Some(Json::Null) => assert_eq!(i, 0, "only the first push has no transition"),
            Some(tr) => transitions.push(tr.clone()),
            None => panic!("push {i} response lacks `transition`: {body}"),
        }
    }
    transitions
}

/// Assert an HTTP transition object equals a batch transition bit for
/// bit: edge set, every score component, and the node set.
fn assert_transition_matches(engine: &str, http: &Json, batch: &cad_core::TransitionAnomalies) {
    assert_eq!(
        http.get("t").and_then(Json::as_u64),
        Some(batch.t as u64),
        "[{engine}] transition index"
    );
    let edges = http.get("edges").and_then(Json::as_arr).expect("edges");
    assert_eq!(
        edges.len(),
        batch.edges.len(),
        "[{engine}] edge count at t={}",
        batch.t
    );
    for (got, want) in edges.iter().zip(&batch.edges) {
        assert_eq!(got.get("u").and_then(Json::as_u64), Some(want.u as u64));
        assert_eq!(got.get("v").and_then(Json::as_u64), Some(want.v as u64));
        for (field, expect) in [
            ("score", want.score),
            ("d_weight", want.d_weight),
            ("d_commute", want.d_commute),
        ] {
            let value = got.get(field).and_then(Json::as_f64).expect(field);
            assert_eq!(
                value.to_bits(),
                expect.to_bits(),
                "[{engine}] {field} of edge ({}, {}) at t={} differs: {value:?} vs {expect:?}",
                want.u,
                want.v,
                batch.t
            );
        }
    }
    let nodes: Vec<u64> = http
        .get("nodes")
        .and_then(Json::as_arr)
        .expect("nodes")
        .iter()
        .filter_map(Json::as_u64)
        .collect();
    let want: Vec<u64> = batch.nodes.iter().map(|&n| n as u64).collect();
    assert_eq!(nodes, want, "[{engine}] node set at t={}", batch.t);
}

#[test]
fn http_pushed_sequences_are_bit_identical_to_batch_detect_for_every_engine() {
    let seq = bridge_sequence();
    let delta = 0.4;
    let engines: [(&str, EngineOptions); 4] = [
        ("exact", EngineOptions::Exact),
        (
            "approx",
            EngineOptions::Approximate(EmbeddingOptions {
                k: 6,
                ..Default::default()
            }),
        ),
        ("shortest-path", EngineOptions::ShortestPath),
        ("corrected", EngineOptions::Corrected),
    ];
    let server = Server::start(test_config()).expect("start");
    let addr = server.addr();
    for (name, engine) in engines {
        let batch = CadDetector::new(CadOptions {
            engine,
            kind: ScoreKind::Cad,
            threads: 1,
            partition: None,
        })
        .detect(&seq, delta)
        .expect("batch detection");
        assert!(
            batch.transitions.iter().any(|tr| !tr.edges.is_empty()),
            "[{name}] the workload must flag something or the test is vacuous"
        );

        let spec = format!(r#"{{"nodes": 16, "engine": "{name}", "k": 6, "delta": {delta}}}"#);
        let id = create_session(addr, &spec);
        let transitions = push_sequence(addr, id, &seq);
        assert_eq!(transitions.len(), batch.transitions.len(), "[{name}]");
        for (http, want) in transitions.iter().zip(&batch.transitions) {
            assert_transition_matches(name, http, want);
        }
        let (status, _, _) = call(addr, "DELETE", &format!("/v1/sequences/{id}"), b"");
        assert_eq!(status, 200);
    }
    server.drain();
}

/// The full trace round trip: the push response announces its trace id
/// in `X-Cad-Trace-Id`, `/v1/debug/trace` shows that id's span events
/// (queue wait and update outcome), and the access log carries the same
/// id on the request's NDJSON line.
#[test]
fn trace_ids_round_trip_header_flight_recorder_and_access_log() {
    let dir = std::env::temp_dir().join("cad-integration-serve-tests");
    std::fs::create_dir_all(&dir).unwrap();
    let log_path = dir.join(format!("trace-roundtrip-{}.ndjson", std::process::id()));
    let _ = std::fs::remove_file(&log_path);
    let server = Server::start(ServeConfig {
        access_log: Some(log_path.display().to_string()),
        ..test_config()
    })
    .expect("start");
    let addr = server.addr();

    let id = create_session(addr, r#"{"nodes": 16, "engine": "exact", "delta": 0.4}"#);
    let g = two_clusters(8, 3.0, 0.3);
    let path = format!("/v1/sequences/{id}/snapshots");
    let (status, headers, body) = call(addr, "POST", &path, snapshot_body(&g).as_bytes());
    assert_eq!(status, 200, "{body}");
    let trace_hex = headers
        .lines()
        .find_map(|l| {
            l.to_ascii_lowercase()
                .starts_with("x-cad-trace-id:")
                .then(|| l.split(':').nth(1).unwrap().trim().to_string())
        })
        .expect("push must answer with X-Cad-Trace-Id");
    assert_eq!(trace_hex.len(), 16, "{trace_hex}");
    assert!(trace_hex.chars().all(|c| c.is_ascii_hexdigit()));

    // The flight recorder attributes this request's events to the id.
    let (status, _, body) = call(addr, "GET", "/v1/debug/trace?limit=256", b"");
    assert_eq!(status, 200, "{body}");
    let events: Vec<Json> = json(&body)
        .get("events")
        .and_then(Json::as_arr)
        .expect("events")
        .iter()
        .filter(|e| e.get("trace_id").and_then(Json::as_str) == Some(trace_hex.as_str()))
        .cloned()
        .collect();
    let kinds: Vec<&str> = events
        .iter()
        .filter_map(|e| e.get("kind").and_then(Json::as_str))
        .collect();
    assert!(kinds.contains(&"queue_wait"), "{kinds:?}");
    assert!(kinds.contains(&"update"), "{kinds:?}");
    assert!(kinds.contains(&"request"), "{kinds:?}");
    for e in &events {
        assert_eq!(e.get("session").and_then(Json::as_u64), Some(id));
    }

    server.drain();

    // The access log's line for the push carries the same trace id.
    let log = std::fs::read_to_string(&log_path).expect("access log written");
    let push_line = log
        .lines()
        .map(json)
        .find(|v| v.get("path").and_then(Json::as_str) == Some(path.as_str()))
        .expect("push line in access log");
    assert_eq!(
        push_line.get("trace_id").and_then(Json::as_str),
        Some(trace_hex.as_str())
    );
    assert_eq!(
        push_line.get("status").and_then(Json::as_u64),
        Some(200),
        "{log}"
    );
    let _ = std::fs::remove_file(&log_path);
}

/// Observability must be free of observer effects: the same sequence
/// pushed with the access log on and off yields byte-identical
/// transition objects (anomaly sets, every score bit) and the same
/// session aggregates.
#[test]
fn tracing_and_access_logging_never_perturb_detection_results() {
    let seq = bridge_sequence();
    let dir = std::env::temp_dir().join("cad-integration-serve-tests");
    std::fs::create_dir_all(&dir).unwrap();
    let log_path = dir.join(format!("bit-identity-{}.ndjson", std::process::id()));
    let _ = std::fs::remove_file(&log_path);

    let mut runs = Vec::new();
    for access_log in [None, Some(log_path.display().to_string())] {
        let server = Server::start(ServeConfig {
            access_log,
            ..test_config()
        })
        .expect("start");
        let addr = server.addr();
        let id = create_session(addr, r#"{"nodes": 16, "engine": "exact", "delta": 0.4}"#);
        let transitions = push_sequence(addr, id, &seq);
        let (status, _, body) = call(addr, "GET", &format!("/v1/sequences/{id}"), b"");
        assert_eq!(status, 200, "{body}");
        let mut aggregates = json(&body);
        // The session id may differ between servers; everything else
        // (instances, transitions, nodes, delta) must not.
        if let Json::Obj(ref mut fields) = aggregates {
            fields.retain(|(k, _)| k != "id");
        }
        server.drain();
        runs.push((transitions, aggregates));
    }
    // Wall-clock latency is the one sanctioned nondeterminism in a
    // transition object; everything else must match bit for bit.
    let strip_latency = |v: &Json| -> Json {
        let mut v = v.clone();
        if let Json::Obj(ref mut fields) = v {
            fields.retain(|(k, _)| k != "latency");
        }
        v
    };
    let (ref plain, ref plain_agg) = runs[0];
    let (ref logged, ref logged_agg) = runs[1];
    assert_eq!(
        plain.len(),
        logged.len(),
        "transition count must not depend on logging"
    );
    for (a, b) in plain.iter().zip(logged) {
        assert_eq!(
            strip_latency(a),
            strip_latency(b),
            "transition objects must be identical bit for bit"
        );
    }
    assert_eq!(plain_agg, logged_agg, "session aggregates must match");

    // Both runs also match batch detection exactly — logging did not
    // merely fail consistently.
    let batch = CadDetector::new(CadOptions {
        engine: EngineOptions::Exact,
        kind: ScoreKind::Cad,
        threads: 1,
        partition: None,
    })
    .detect(&seq, 0.4)
    .expect("batch detection");
    for (http, want) in logged.iter().zip(&batch.transitions) {
        assert_transition_matches("exact", http, want);
    }
    let _ = std::fs::remove_file(&log_path);
}

#[test]
fn concurrent_sessions_stay_isolated_and_ordered() {
    let server = Server::start(test_config()).expect("start");
    let addr = server.addr();

    // Two clients, two sessions, interleaved pushes from two threads:
    // each stream must see exactly its own sequence's results.
    let handles: Vec<_> = [8usize, 3]
        .into_iter()
        .map(|k| {
            std::thread::spawn(move || {
                let graphs: Vec<WeightedGraph> = [0.3, 0.3, 3.0, 0.3, 1.5]
                    .iter()
                    .map(|&b| two_clusters(k, 3.0, b))
                    .collect();
                let seq = GraphSequence::new(graphs).expect("valid sequence");
                let batch = CadDetector::new(CadOptions {
                    engine: EngineOptions::Exact,
                    kind: ScoreKind::Cad,
                    threads: 1,
                    partition: None,
                })
                .detect(&seq, 0.4)
                .expect("batch detection");
                let spec = format!(r#"{{"nodes": {}, "engine": "exact", "delta": 0.4}}"#, 2 * k);
                let id = create_session(addr, &spec);
                let transitions = push_sequence(addr, id, &seq);
                for (http, want) in transitions.iter().zip(&batch.transitions) {
                    assert_transition_matches("exact", http, want);
                }
                // Status reflects this session's stream alone, in order.
                let (status, _, body) = call(addr, "GET", &format!("/v1/sequences/{id}"), b"");
                assert_eq!(status, 200, "{body}");
                let v = json(&body);
                assert_eq!(v.get("nodes").and_then(Json::as_u64), Some(2 * k as u64));
                assert_eq!(v.get("instances").and_then(Json::as_u64), Some(5));
                assert_eq!(v.get("transitions").and_then(Json::as_u64), Some(4));
            })
        })
        .collect();
    for h in handles {
        h.join().expect("session thread");
    }
    server.drain();
}

#[test]
fn saturated_queue_sheds_load_with_503_and_counts_it() {
    // One worker, one queue slot: the worker is pinned on a stalled
    // request, the queue slot holds a second connection, and the third
    // must be shed by the accept thread.
    let server = Server::start(ServeConfig {
        workers: 1,
        queue_depth: 1,
        ..test_config()
    })
    .expect("start");
    let addr = server.addr();
    let rejected_before = cad_obs::counters::SERVE_REJECTED_BACKPRESSURE.get();

    // Stall the only worker: a request head that never finishes.
    let mut stalled = TcpStream::connect(addr).expect("connect stalled");
    stalled.write_all(b"GET /healthz HTTP/1.1\r\n").unwrap();
    stalled.flush().unwrap();
    std::thread::sleep(Duration::from_millis(100));

    // Fill the single queue slot with an idle connection.
    let parked = TcpStream::connect(addr).expect("connect parked");
    std::thread::sleep(Duration::from_millis(100));

    // The next connection is rejected immediately with 503.
    let (status, headers, body) = call(addr, "GET", "/healthz", b"");
    assert_eq!(status, 503, "{body}");
    assert!(
        headers.to_ascii_lowercase().contains("retry-after"),
        "503 must carry Retry-After: {headers}"
    );
    let v = json(&body);
    assert_eq!(
        v.get("error")
            .and_then(|e| e.get("code"))
            .and_then(Json::as_str),
        Some("overloaded")
    );
    assert!(
        cad_obs::counters::SERVE_REJECTED_BACKPRESSURE.get() > rejected_before,
        "serve.rejected_backpressure must advance"
    );

    // Release the worker and verify the shed shows up in /metrics.
    stalled
        .write_all(b"Host: t\r\nConnection: close\r\n\r\n")
        .unwrap();
    let (status, _, _) = read_response(&mut stalled);
    assert_eq!(status, 200, "the stalled request still completes");
    drop(parked);
    // The worker needs a beat to pop and discard the parked connection;
    // until it does the single queue slot is still full and this probe
    // would itself be shed. Retry through that window.
    let mut probe = call(addr, "GET", "/metrics", b"");
    for _ in 0..50 {
        if probe.0 != 503 {
            break;
        }
        std::thread::sleep(Duration::from_millis(10));
        probe = call(addr, "GET", "/metrics", b"");
    }
    let (status, _, metrics) = probe;
    assert_eq!(status, 200);
    assert!(
        metrics.contains("serve_rejected_backpressure_total"),
        "{metrics}"
    );
    server.drain();
}

#[test]
fn shutdown_endpoint_drains_gracefully_but_finishes_in_flight_work() {
    let server = Server::start(test_config()).expect("start");
    let addr = server.addr();
    let id = create_session(addr, r#"{"nodes": 6, "engine": "exact", "delta": 0.4}"#);

    // An in-flight push: head sent, body half sent.
    let snapshot = br#"{"nodes": 6, "edges": [[0, 1, 1.0], [1, 2, 2.0], [2, 3, 1.0], [3, 4, 1.0], [4, 5, 1.0]]}"#;
    let mut inflight = TcpStream::connect(addr).expect("connect");
    let head = format!(
        "POST /v1/sequences/{id}/snapshots HTTP/1.1\r\nHost: t\r\nConnection: close\r\nContent-Length: {}\r\n\r\n",
        snapshot.len()
    );
    inflight.write_all(head.as_bytes()).unwrap();
    inflight.write_all(&snapshot[..20]).unwrap();
    inflight.flush().unwrap();
    std::thread::sleep(Duration::from_millis(100));

    // Trip the drain over HTTP, then run the drain to completion in a
    // separate thread (as `cad serve` does after the signal).
    let (status, _, body) = call(addr, "POST", "/v1/shutdown", b"");
    assert_eq!(status, 200, "{body}");
    assert_eq!(
        json(&body).get("draining").and_then(Json::as_bool),
        Some(true)
    );
    let drainer = std::thread::spawn(move || server.serve_until_shutdown());
    std::thread::sleep(Duration::from_millis(100));

    // The in-flight request still completes with a real response...
    inflight.write_all(&snapshot[20..]).unwrap();
    let (status, _, body) = read_response(&mut inflight);
    assert_eq!(status, 200, "{body}");
    drainer.join().expect("drain finishes");

    // ...and the drained server accepts no new work.
    match TcpStream::connect(addr) {
        Err(_) => {}
        Ok(mut conn) => {
            let _ = conn.set_read_timeout(Some(Duration::from_millis(500)));
            let _ = conn.write_all(b"GET /healthz HTTP/1.1\r\nHost: t\r\n\r\n");
            let mut buf = Vec::new();
            let got = conn.read_to_end(&mut buf).unwrap_or(0);
            assert_eq!(got, 0, "drained server must not answer new requests");
        }
    }
}
