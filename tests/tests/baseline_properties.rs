//! Property-style integration tests of the baseline detectors and the
//! whole-graph distance measures.

use cad_baselines::{
    edit_distance, spectral_distance, ActDetector, AdjDetector, ClcDetector,
    DistanceSeriesDetector, SeriesDistance,
};
use cad_core::NodeScorer;
use cad_graph::generators::random::erdos_renyi;
use cad_graph::{GraphSequence, WeightedGraph};
use proptest::prelude::*;

fn pair(seed: u64) -> (WeightedGraph, WeightedGraph) {
    let a = erdos_renyi(12, 0.3, seed).expect("er");
    let b = erdos_renyi(12, 0.3, seed + 1).expect("er");
    (a, b)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn edit_distance_is_a_metric(seed in 0u64..500) {
        let (a, b) = pair(seed);
        let c = erdos_renyi(12, 0.3, seed + 2).expect("er");
        prop_assert_eq!(edit_distance(&a, &a).unwrap(), 0.0);
        let d_ab = edit_distance(&a, &b).unwrap();
        let d_ba = edit_distance(&b, &a).unwrap();
        prop_assert!((d_ab - d_ba).abs() < 1e-12);
        // Triangle inequality (it is an L1 distance on weight vectors).
        let d_ac = edit_distance(&a, &c).unwrap();
        let d_cb = edit_distance(&c, &b).unwrap();
        prop_assert!(d_ab <= d_ac + d_cb + 1e-9);
    }

    #[test]
    fn spectral_distance_symmetric_nonnegative(seed in 0u64..200) {
        let (a, b) = pair(seed);
        let d_ab = spectral_distance(&a, &b, 4).unwrap();
        let d_ba = spectral_distance(&b, &a, 4).unwrap();
        prop_assert!(d_ab >= 0.0);
        prop_assert!((d_ab - d_ba).abs() < 1e-6 * (1.0 + d_ab));
        prop_assert!(spectral_distance(&a, &a, 4).unwrap() < 1e-8);
    }

    #[test]
    fn baseline_node_scores_are_finite_nonnegative(seed in 0u64..200) {
        let (a, b) = pair(seed);
        let seq = GraphSequence::new(vec![a, b]).expect("sequence");
        let act = ActDetector::with_window(1);
        let adj = AdjDetector::new();
        let clc = ClcDetector::new();
        for scorer in [&act as &dyn NodeScorer, &adj, &clc] {
            let scores = scorer.node_scores(&seq).expect("scores");
            prop_assert_eq!(scores.len(), 1);
            for &s in &scores[0] {
                prop_assert!(s.is_finite() && s >= 0.0, "{}: {s}", scorer.name());
            }
        }
    }

    #[test]
    fn identical_sequence_is_quiet_for_all_baselines(seed in 0u64..200) {
        let g = erdos_renyi(10, 0.4, seed).expect("er");
        let seq = GraphSequence::new(vec![g.clone(), g]).expect("sequence");
        let act = ActDetector::with_window(1);
        let adj = AdjDetector::new();
        let clc = ClcDetector::new();
        for scorer in [&act as &dyn NodeScorer, &adj, &clc] {
            let scores = scorer.node_scores(&seq).expect("scores");
            for &s in &scores[0] {
                prop_assert!(s.abs() < 1e-9, "{} flagged an unchanged graph: {s}", scorer.name());
            }
        }
        // Distance series likewise: zero distance everywhere.
        let det = DistanceSeriesDetector::new(SeriesDistance::Edit);
        let series = det.distance_series(&seq).expect("series");
        prop_assert_eq!(series, vec![0.0]);
    }
}

#[test]
fn distance_detectors_cannot_localize_by_construction() {
    // API-shape regression for the paper's §1 argument: the event-
    // detection family returns one number per transition, never edges.
    let a = erdos_renyi(10, 0.3, 1).expect("er");
    let b = erdos_renyi(10, 0.3, 2).expect("er");
    let seq = GraphSequence::new(vec![a, b.clone(), b]).expect("sequence");
    let det = DistanceSeriesDetector::new(SeriesDistance::Spectral(3));
    let scores = det.event_scores(&seq).expect("scores");
    assert_eq!(scores.len(), seq.n_transitions());
    // That is the entire output surface; localization requires CAD.
}
