//! Live-telemetry integration contracts: histogram merges are
//! deterministic under striping (the thread-pool merge pattern), the
//! streaming watch loop produces exactly the batch detector's anomaly
//! sets while building each oracle exactly once, and the embedded
//! `/metrics` endpoint serves valid Prometheus text for a real run.
//!
//! The watch and exporter tests read the process-wide counter and
//! histogram sinks, so they serialize on [`GLOBAL_SINKS`] and call
//! [`cad_obs::reset`] at entry — the pattern every integration test
//! touching live telemetry must follow.

use cad_cli::watch::watch_loop;
use cad_core::{CadDetector, CadOptions, OnlineCad, ThresholdMode};
use cad_graph::{GraphSequence, WeightedGraph};
use cad_obs::Histogram;
use proptest::prelude::*;
use std::io::{Read, Write};
use std::sync::Mutex;

/// Serializes every test that asserts on the process-wide metric sinks.
static GLOBAL_SINKS: Mutex<()> = Mutex::new(());

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The coordinator merges per-worker histograms in index order; the
    /// result must not depend on how samples were striped across
    /// workers. Counts, buckets, min and max match sequential recording
    /// exactly; the sum (floating-point, association-dependent) must be
    /// bit-identical across repeated index-order merges, as must every
    /// derived quantile.
    #[test]
    fn striped_histogram_merge_is_deterministic(
        values in proptest::collection::vec(1e-12f64..1e5, 1..80),
    ) {
        let direct = Histogram::of(values.iter().copied());
        let merge_striped = |n_parts: usize| {
            let mut parts = vec![Histogram::new(); n_parts];
            for (i, &v) in values.iter().enumerate() {
                parts[i % n_parts].record(v);
            }
            let mut merged = Histogram::new();
            for p in &parts {
                merged.merge(p);
            }
            merged
        };
        let one = merge_striped(1);
        let four = merge_striped(4);

        prop_assert_eq!(one.count, direct.count);
        prop_assert_eq!(four.count, direct.count);
        prop_assert_eq!(one.bucket_counts(), direct.bucket_counts());
        prop_assert_eq!(four.bucket_counts(), direct.bucket_counts());
        prop_assert_eq!(four.min.to_bits(), direct.min.to_bits());
        prop_assert_eq!(four.max.to_bits(), direct.max.to_bits());
        // 1-way striping is sequential recording, so even the sum matches.
        prop_assert_eq!(one.sum.to_bits(), direct.sum.to_bits());
        // 4-way striping resums in a different association: the contract
        // is repeatability, not equality with the sequential sum.
        let four_again = merge_striped(4);
        prop_assert_eq!(four.sum.to_bits(), four_again.sum.to_bits());
        for q in [0.5, 0.9, 0.99, 1.0] {
            prop_assert_eq!(four.quantile(q).to_bits(), direct.quantile(q).to_bits());
        }
    }
}

/// Two triangle clusters joined by a weak link; `bridge > 0` adds the
/// cross-cluster edge whose appearance is the anomaly.
fn instance(bridge: f64) -> WeightedGraph {
    let mut edges = vec![
        (0, 1, 3.0),
        (0, 2, 3.0),
        (1, 2, 3.0),
        (3, 4, 3.0),
        (3, 5, 3.0),
        (4, 5, 3.0),
        (2, 3, 0.2),
    ];
    if bridge > 0.0 {
        edges.push((0, 5, bridge));
    }
    WeightedGraph::from_edges(6, &edges).unwrap()
}

#[test]
fn watch_matches_batch_and_builds_each_oracle_once() {
    let _guard = GLOBAL_SINKS.lock().unwrap();
    cad_obs::reset();

    let stream = [0.0, 0.0, 1.5, 1.5, 0.0];
    let graphs: Vec<WeightedGraph> = stream.iter().map(|&b| instance(b)).collect();
    let delta = 0.4;

    let mut online = OnlineCad::with_mode(CadOptions::default(), ThresholdMode::Fixed(delta));
    let mut sets = Vec::new();
    for g in graphs.clone() {
        if let Some(tr) = online.push(g).unwrap() {
            sets.push(tr);
        }
    }
    // The sliding oracle cache: one build per arriving instance, never a
    // rebuild of the cached left operand.
    let (_, builds) = cad_obs::counters::snapshot()
        .into_iter()
        .find(|(name, _)| *name == "commute.oracle_builds")
        .expect("well-known counter");
    assert_eq!(
        builds,
        graphs.len() as u64,
        "each arriving instance must build exactly one oracle"
    );

    let batch = CadDetector::new(CadOptions::default())
        .detect(&GraphSequence::new(graphs).unwrap(), delta)
        .unwrap();
    assert_eq!(sets.len(), batch.transitions.len());
    for (on, off) in sets.iter().zip(&batch.transitions) {
        assert_eq!(on.t, off.t);
        assert_eq!(on.nodes, off.nodes, "transition {}", on.t);
        assert_eq!(on.edges.len(), off.edges.len(), "transition {}", on.t);
        for (a, b) in on.edges.iter().zip(&off.edges) {
            assert_eq!((a.u, a.v), (b.u, b.v));
            assert_eq!(a.score.to_bits(), b.score.to_bits());
        }
    }
}

fn http_get(addr: std::net::SocketAddr, path: &str) -> String {
    let mut stream = std::net::TcpStream::connect(addr).expect("connect");
    // One write for the whole request; the server may answer-and-close
    // after reading only the request line (e.g. a 404), so a late EPIPE
    // is not an error.
    let request = format!("GET {path} HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n");
    let _ = stream.write_all(request.as_bytes());
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("read response");
    response
}

#[test]
fn metrics_endpoint_serves_prometheus_text_for_a_watch_run() {
    let _guard = GLOBAL_SINKS.lock().unwrap();
    cad_obs::reset();

    let health = std::sync::Arc::new(cad_obs::WatchHealth::new());
    let server =
        cad_obs::MetricsServer::start("127.0.0.1:0", std::sync::Arc::clone(&health)).unwrap();

    let graphs = vec![instance(0.0), instance(0.0), instance(1.5)];
    let mut source = graphs.into_iter().map(Ok);
    let mut online = OnlineCad::with_mode(CadOptions::default(), ThresholdMode::Fixed(0.4));
    let mut events = Vec::new();
    let (instances, transitions) =
        watch_loop(&mut source, &mut online, &mut events, &health, None).unwrap();
    assert_eq!((instances, transitions), (3, 2));

    let metrics = http_get(server.addr(), "/metrics");
    assert!(metrics.starts_with("HTTP/1.1 200 OK"), "{metrics}");
    assert!(
        metrics.contains("cad_commute_oracle_builds_total 3"),
        "counter for the 3 builds missing:\n{metrics}"
    );
    // At least one histogram with the full bucket/sum/count triple.
    assert!(
        metrics.contains("cad_oracle_build_secs_bucket{le=\"+Inf\"} 3"),
        "{metrics}"
    );
    assert!(metrics.contains("cad_oracle_build_secs_sum"), "{metrics}");
    assert!(
        metrics.contains("cad_oracle_build_secs_count 3"),
        "{metrics}"
    );
    assert!(
        metrics.contains("cad_transition_score_secs_count 2"),
        "{metrics}"
    );

    let healthz = http_get(server.addr(), "/healthz");
    assert!(healthz.starts_with("HTTP/1.1 200 OK"), "{healthz}");
    assert!(healthz.contains("\"transitions\": 2"), "{healthz}");

    let missing = http_get(server.addr(), "/nope");
    assert!(missing.starts_with("HTTP/1.1 404"), "{missing}");
    server.shutdown();
}
