//! Live-telemetry integration contracts: histogram merges are
//! deterministic under striping (the thread-pool merge pattern), the
//! flight-recorder ring never loses accounting across wraparound or
//! concurrent writers, the streaming watch loop produces exactly the
//! batch detector's anomaly sets while building each oracle exactly
//! once, and the embedded `/metrics` endpoint serves valid Prometheus
//! text for a real run.
//!
//! The watch and exporter tests read the process-wide counter and
//! histogram sinks, so they serialize on [`GLOBAL_SINKS`] and call
//! [`cad_obs::reset`] at entry — the pattern every integration test
//! touching live telemetry must follow.

use cad_cli::watch::watch_loop;
use cad_core::{CadDetector, CadOptions, OnlineCad, ThresholdMode};
use cad_graph::{GraphSequence, WeightedGraph};
use cad_obs::Histogram;
use proptest::prelude::*;
use std::io::{Read, Write};
use std::sync::Mutex;

/// Serializes every test that asserts on the process-wide metric sinks.
static GLOBAL_SINKS: Mutex<()> = Mutex::new(());

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The coordinator merges per-worker histograms in index order; the
    /// result must not depend on how samples were striped across
    /// workers. Counts, buckets, min and max match sequential recording
    /// exactly; the sum (floating-point, association-dependent) must be
    /// bit-identical across repeated index-order merges, as must every
    /// derived quantile.
    #[test]
    fn striped_histogram_merge_is_deterministic(
        values in proptest::collection::vec(1e-12f64..1e5, 1..80),
    ) {
        let direct = Histogram::of(values.iter().copied());
        let merge_striped = |n_parts: usize| {
            let mut parts = vec![Histogram::new(); n_parts];
            for (i, &v) in values.iter().enumerate() {
                parts[i % n_parts].record(v);
            }
            let mut merged = Histogram::new();
            for p in &parts {
                merged.merge(p);
            }
            merged
        };
        let one = merge_striped(1);
        let four = merge_striped(4);

        prop_assert_eq!(one.count, direct.count);
        prop_assert_eq!(four.count, direct.count);
        prop_assert_eq!(one.bucket_counts(), direct.bucket_counts());
        prop_assert_eq!(four.bucket_counts(), direct.bucket_counts());
        prop_assert_eq!(four.min.to_bits(), direct.min.to_bits());
        prop_assert_eq!(four.max.to_bits(), direct.max.to_bits());
        // 1-way striping is sequential recording, so even the sum matches.
        prop_assert_eq!(one.sum.to_bits(), direct.sum.to_bits());
        // 4-way striping resums in a different association: the contract
        // is repeatability, not equality with the sequential sum.
        let four_again = merge_striped(4);
        prop_assert_eq!(four.sum.to_bits(), four_again.sum.to_bits());
        for q in [0.5, 0.9, 0.99, 1.0] {
            prop_assert_eq!(four.quantile(q).to_bits(), direct.quantile(q).to_bits());
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Wraparound bookkeeping: after `n` sequential records the ring
    /// retains the newest `min(n, RING_CAPACITY)` records with
    /// contiguous ascending sequence numbers, and `total - dropped`
    /// equals exactly what was retained — no record is ever lost
    /// without being counted.
    #[test]
    fn flight_recorder_wraparound_never_loses_the_dropped_count(
        n in 1usize..3 * cad_obs::RING_CAPACITY,
    ) {
        let _guard = GLOBAL_SINKS.lock().unwrap();
        cad_obs::reset();
        let rec = cad_obs::recorder();
        for i in 0..n {
            rec.record_for(
                cad_obs::TraceCtx { trace_id: i as u64 + 1, session_id: 0 },
                cad_obs::EventKind::Request,
                "push",
                0.0,
                i as u64,
            );
        }
        let snap = rec.snapshot(cad_obs::RING_CAPACITY);
        prop_assert_eq!(snap.total, n as u64);
        prop_assert_eq!(
            snap.dropped,
            n.saturating_sub(cad_obs::RING_CAPACITY) as u64
        );
        prop_assert_eq!(snap.events.len(), n.min(cad_obs::RING_CAPACITY));
        prop_assert_eq!(snap.total - snap.dropped, snap.events.len() as u64);
        for (k, ev) in snap.events.iter().enumerate() {
            let expect = (n - snap.events.len() + k) as u64;
            // Retained seqs must be the newest, ascending, and the
            // payload must travel with its seq.
            prop_assert_eq!(ev.seq, expect);
            prop_assert_eq!(ev.detail, expect);
        }
    }

    /// `snapshot(limit)` keeps the newest `limit` records, oldest
    /// first — the `/v1/debug/trace?limit=N` contract.
    #[test]
    fn flight_recorder_limit_returns_the_newest_in_order(
        n in 1usize..2048,
        limit in 0usize..64,
    ) {
        let _guard = GLOBAL_SINKS.lock().unwrap();
        cad_obs::reset();
        let rec = cad_obs::recorder();
        for i in 0..n {
            rec.record_for(
                cad_obs::TraceCtx { trace_id: 7, session_id: 1 },
                cad_obs::EventKind::Update,
                "incremental",
                0.0,
                i as u64,
            );
        }
        let snap = rec.snapshot(limit);
        let expect_len = limit.min(n).min(cad_obs::RING_CAPACITY);
        prop_assert_eq!(snap.events.len(), expect_len);
        for (k, ev) in snap.events.iter().enumerate() {
            prop_assert_eq!(ev.seq, (n - expect_len + k) as u64);
        }
    }
}

/// Concurrent writers racing through several wraparounds: every claim
/// is counted (`total` exact), eviction accounting balances
/// (`total - dropped == retained`), and no retained record is torn —
/// each event's payload fields still agree with each other.
#[test]
fn flight_recorder_survives_concurrent_writers() {
    let _guard = GLOBAL_SINKS.lock().unwrap();
    cad_obs::reset();
    const WRITERS: u64 = 4;
    const PER_WRITER: u64 = 1500;
    let rec = cad_obs::recorder();
    std::thread::scope(|scope| {
        for w in 0..WRITERS {
            scope.spawn(move || {
                for i in 0..PER_WRITER {
                    rec.record_for(
                        cad_obs::TraceCtx {
                            trace_id: w * 1_000_000 + i + 1,
                            session_id: w,
                        },
                        cad_obs::EventKind::Request,
                        "push",
                        0.0,
                        w * 1_000_000 + i + 1,
                    );
                }
            });
        }
    });
    let total = WRITERS * PER_WRITER;
    let snap = rec.snapshot(cad_obs::RING_CAPACITY);
    assert_eq!(snap.total, total);
    assert_eq!(snap.dropped, total - cad_obs::RING_CAPACITY as u64);
    assert_eq!(snap.events.len(), cad_obs::RING_CAPACITY);
    assert_eq!(snap.total - snap.dropped, snap.events.len() as u64);
    let mut seen = std::collections::BTreeSet::new();
    for ev in &snap.events {
        assert!(seen.insert(ev.seq), "duplicate seq {}", ev.seq);
        // Torn-write detector: trace id, session and detail were all
        // derived from the same (writer, i) pair at record time.
        assert_eq!(ev.trace_id, ev.detail, "torn record at seq {}", ev.seq);
        assert_eq!(
            ev.session_id,
            ev.trace_id / 1_000_000,
            "torn record at seq {}",
            ev.seq
        );
    }
    assert_eq!(
        (*seen.first().unwrap(), *seen.last().unwrap()),
        (total - cad_obs::RING_CAPACITY as u64, total - 1),
        "retained window must be exactly the newest RING_CAPACITY seqs"
    );
}

/// Two triangle clusters joined by a weak link; `bridge > 0` adds the
/// cross-cluster edge whose appearance is the anomaly.
fn instance(bridge: f64) -> WeightedGraph {
    let mut edges = vec![
        (0, 1, 3.0),
        (0, 2, 3.0),
        (1, 2, 3.0),
        (3, 4, 3.0),
        (3, 5, 3.0),
        (4, 5, 3.0),
        (2, 3, 0.2),
    ];
    if bridge > 0.0 {
        edges.push((0, 5, bridge));
    }
    WeightedGraph::from_edges(6, &edges).unwrap()
}

#[test]
fn watch_matches_batch_and_builds_each_oracle_once() {
    let _guard = GLOBAL_SINKS.lock().unwrap();
    cad_obs::reset();

    let stream = [0.0, 0.0, 1.5, 1.5, 0.0];
    let graphs: Vec<WeightedGraph> = stream.iter().map(|&b| instance(b)).collect();
    let delta = 0.4;

    let mut online = OnlineCad::with_mode(CadOptions::default(), ThresholdMode::Fixed(delta));
    let mut sets = Vec::new();
    for g in graphs.clone() {
        if let Some(tr) = online.push(g).unwrap() {
            sets.push(tr);
        }
    }
    // The sliding oracle cache: one build per arriving instance, never a
    // rebuild of the cached left operand.
    let (_, builds) = cad_obs::counters::snapshot()
        .into_iter()
        .find(|(name, _)| *name == "commute.oracle_builds")
        .expect("well-known counter");
    assert_eq!(
        builds,
        graphs.len() as u64,
        "each arriving instance must build exactly one oracle"
    );

    let batch = CadDetector::new(CadOptions::default())
        .detect(&GraphSequence::new(graphs).unwrap(), delta)
        .unwrap();
    assert_eq!(sets.len(), batch.transitions.len());
    for (on, off) in sets.iter().zip(&batch.transitions) {
        assert_eq!(on.t, off.t);
        assert_eq!(on.nodes, off.nodes, "transition {}", on.t);
        assert_eq!(on.edges.len(), off.edges.len(), "transition {}", on.t);
        for (a, b) in on.edges.iter().zip(&off.edges) {
            assert_eq!((a.u, a.v), (b.u, b.v));
            assert_eq!(a.score.to_bits(), b.score.to_bits());
        }
    }
}

fn http_get(addr: std::net::SocketAddr, path: &str) -> String {
    let mut stream = std::net::TcpStream::connect(addr).expect("connect");
    // One write for the whole request; the server may answer-and-close
    // after reading only the request line (e.g. a 404), so a late EPIPE
    // is not an error.
    let request = format!("GET {path} HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n");
    let _ = stream.write_all(request.as_bytes());
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("read response");
    response
}

#[test]
fn metrics_endpoint_serves_prometheus_text_for_a_watch_run() {
    let _guard = GLOBAL_SINKS.lock().unwrap();
    cad_obs::reset();

    let health = std::sync::Arc::new(cad_obs::WatchHealth::new());
    let server =
        cad_obs::MetricsServer::start("127.0.0.1:0", std::sync::Arc::clone(&health)).unwrap();

    let graphs = vec![instance(0.0), instance(0.0), instance(1.5)];
    let mut source = graphs.into_iter().map(Ok);
    let mut online = OnlineCad::with_mode(CadOptions::default(), ThresholdMode::Fixed(0.4));
    let mut events = Vec::new();
    let (instances, transitions) =
        watch_loop(&mut source, &mut online, &mut events, None, &health, None).unwrap();
    assert_eq!((instances, transitions), (3, 2));

    let metrics = http_get(server.addr(), "/metrics");
    assert!(metrics.starts_with("HTTP/1.1 200 OK"), "{metrics}");
    assert!(
        metrics.contains("cad_commute_oracle_builds_total 3"),
        "counter for the 3 builds missing:\n{metrics}"
    );
    // At least one histogram with the full bucket/sum/count triple.
    assert!(
        metrics.contains("cad_oracle_build_secs_bucket{le=\"+Inf\"} 3"),
        "{metrics}"
    );
    assert!(metrics.contains("cad_oracle_build_secs_sum"), "{metrics}");
    assert!(
        metrics.contains("cad_oracle_build_secs_count 3"),
        "{metrics}"
    );
    assert!(
        metrics.contains("cad_transition_score_secs_count 2"),
        "{metrics}"
    );

    let healthz = http_get(server.addr(), "/healthz");
    assert!(healthz.starts_with("HTTP/1.1 200 OK"), "{healthz}");
    assert!(healthz.contains("\"transitions\": 2"), "{healthz}");

    let missing = http_get(server.addr(), "/nope");
    assert!(missing.starts_with("HTTP/1.1 404"), "{missing}");
    server.shutdown();
}
