//! Determinism of the parallel detection pipeline: the full
//! `CadDetector` output must be **bit-identical** for any worker-thread
//! count, on arbitrary GMM-generated graph sequences and for both the
//! exact and embedding oracle backends. This is the contract that makes
//! `--threads` a pure performance knob (the worker pool stripes work by
//! index and collects in order; no result ever depends on scheduling).

use cad_commute::{EmbeddingOptions, EngineOptions};
use cad_core::{CadDetector, CadOptions, DetectionResult};
use cad_datasets::{GmmBenchmark, GmmBenchmarkOptions};
use cad_graph::GraphSequence;
use proptest::prelude::*;

/// A sequence of `instances` GMM graphs over `n` shared nodes, built by
/// chaining the two-instance GMM benchmark across consecutive seeds.
fn gmm_sequence(seed: u64, n: usize, instances: usize) -> GraphSequence {
    let mut graphs = Vec::new();
    let mut s = seed;
    while graphs.len() < instances {
        let mut opts = GmmBenchmarkOptions::with_n(n);
        opts.seed = s;
        let bench = GmmBenchmark::generate(&opts).expect("gmm benchmark");
        graphs.extend(bench.seq.graphs().iter().cloned());
        s = s.wrapping_add(1);
    }
    graphs.truncate(instances);
    GraphSequence::new(graphs).expect("valid sequence")
}

/// Bit-level equality of two detection results (scores compared via
/// `f64::to_bits`, not approximate closeness).
fn assert_bit_identical(a: &DetectionResult, b: &DetectionResult) -> Result<(), String> {
    let bits = |d: Option<f64>| d.map(f64::to_bits);
    if bits(a.delta) != bits(b.delta) {
        return Err(format!("delta differs: {:?} vs {:?}", a.delta, b.delta));
    }
    if a.transitions.len() != b.transitions.len() {
        return Err("transition count differs".into());
    }
    for (x, y) in a.transitions.iter().zip(&b.transitions) {
        if x.nodes != y.nodes {
            return Err(format!(
                "nodes differ at t={}: {:?} vs {:?}",
                x.t, x.nodes, y.nodes
            ));
        }
        if x.edges.len() != y.edges.len() {
            return Err(format!("edge count differs at t={}", x.t));
        }
        for (e, f) in x.edges.iter().zip(&y.edges) {
            if (e.u, e.v) != (f.u, f.v)
                || e.score.to_bits() != f.score.to_bits()
                || e.d_weight.to_bits() != f.d_weight.to_bits()
                || e.d_commute.to_bits() != f.d_commute.to_bits()
            {
                return Err(format!("edge ({}, {}) differs at t={}", e.u, e.v, x.t));
            }
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn exact_detection_is_thread_count_invariant(seed in 0u64..1_000, n in 30usize..60) {
        let seq = gmm_sequence(seed, n, 4);
        let detect = |threads: usize| {
            CadDetector::new(CadOptions {
                engine: EngineOptions::Exact,
                threads,
                ..Default::default()
            })
            .detect_top_l(&seq, 3)
            .expect("detection")
        };
        let serial = detect(1);
        for threads in [2usize, 8] {
            let par = detect(threads);
            if let Err(msg) = assert_bit_identical(&serial, &par) {
                prop_assert!(false, "threads={}: {}", threads, msg);
            }
        }
    }

    #[test]
    fn embedding_detection_is_thread_count_invariant(seed in 0u64..1_000, n in 30usize..50) {
        // The embedding backend also parallelizes its k Laplacian solves
        // internally; both pool layers must stay deterministic.
        let seq = gmm_sequence(seed, n, 4);
        let detect = |threads: usize| {
            CadDetector::new(CadOptions {
                engine: EngineOptions::Approximate(EmbeddingOptions {
                    k: 12,
                    threads: threads.max(1),
                    ..Default::default()
                }),
                threads,
                ..Default::default()
            })
            .detect_top_l(&seq, 3)
            .expect("detection")
        };
        let serial = detect(1);
        for threads in [2usize, 8] {
            let par = detect(threads);
            if let Err(msg) = assert_bit_identical(&serial, &par) {
                prop_assert!(false, "threads={}: {}", threads, msg);
            }
        }
    }
}
