//! Partitioned-vs-unpartitioned detection contracts (the `cad-part`
//! crate wired through `cad-core`):
//!
//! * on multi-component graphs in `components` mode the partitioned
//!   detector reports **identical anomaly sets** (same edges, same
//!   nodes, per transition) to the monolithic detector — there are no
//!   cut edges, so the block solves are the exact per-component solves;
//! * on connected graphs split by the BFS partitioner, every edge score
//!   tracks the monolithic score within the documented
//!   [`cad_part::PART_REL_TOL`] bound `|part − mono| ≤ TOL·(1 + |mono|)`;
//! * both contracts hold for the exact and the embedding engines, at 1
//!   and at 4 worker threads.
//!
//! The anomaly-set comparisons pick δ at the midpoint of the largest
//! score gap of the *monolithic* run, so a sub-tolerance score wobble
//! can never flip an edge across the threshold and fail the test for a
//! reason the contract permits.

use cad_commute::{EmbeddingOptions, EngineOptions, PartitionMode, PartitionSpec};
use cad_core::{CadDetector, CadOptions, EdgeScore};
use cad_graph::{GraphSequence, WeightedGraph};
use cad_part::PART_REL_TOL;
use proptest::prelude::*;
use std::collections::{BTreeSet, HashMap};

/// The two engines the acceptance contract names. The embedding keeps a
/// small `k` (same sketch on both sides — the seed is shared) and a
/// tight CG tolerance so the only daylight between the monolithic CG
/// solve and the partitioned direct solve is far below `PART_REL_TOL`.
fn engines() -> Vec<EngineOptions> {
    let mut solver = cad_linalg::solve::LaplacianSolverOptions::default();
    solver.cg.tol = 1e-12;
    vec![
        EngineOptions::Exact,
        EngineOptions::Approximate(EmbeddingOptions {
            k: 8,
            solver,
            ..Default::default()
        }),
    ]
}

fn detector(
    engine: &EngineOptions,
    threads: usize,
    partition: Option<PartitionSpec>,
) -> CadDetector {
    CadDetector::new(CadOptions {
        engine: *engine,
        threads,
        partition,
        ..Default::default()
    })
}

/// δ at the midpoint of the largest gap of the scores (0 included), so
/// both sides of the threshold sit half a gap away from it.
fn gap_midpoint_delta(scored: &[Vec<EdgeScore>]) -> f64 {
    let mut s: Vec<f64> = scored.iter().flatten().map(|e| e.score).collect();
    s.push(0.0);
    s.sort_by(f64::total_cmp);
    s.dedup();
    let mut best_gap = -1.0;
    let mut delta = 1.0;
    for w in s.windows(2) {
        let gap = w[1] - w[0];
        if gap > best_gap {
            best_gap = gap;
            delta = 0.5 * (w[0] + w[1]);
        }
    }
    delta
}

/// Sequences of graphs with **two path components** (sizes `n1`, `n2`)
/// and per-instance weight jitter; one instance swaps in a heavy chord
/// inside the first component so some transition is genuinely anomalous.
fn disconnected_sequence_strategy() -> impl Strategy<Value = GraphSequence> {
    (
        4usize..7,
        4usize..7,
        3usize..5,
        proptest::collection::vec(0.25f64..4.0, 48),
    )
        .prop_map(|(n1, n2, len, weights)| {
            let n = n1 + n2;
            let mut w = weights.into_iter().cycle();
            let graphs: Vec<WeightedGraph> = (0..len)
                .map(|t| {
                    let mut edges = Vec::new();
                    for i in 0..n1 - 1 {
                        edges.push((i, i + 1, w.next().unwrap()));
                    }
                    for i in n1..n - 1 {
                        edges.push((i, i + 1, w.next().unwrap()));
                    }
                    if t == len / 2 {
                        // The anomaly: a strong chord shortcuts the
                        // first component for exactly one instance.
                        edges.push((0, n1 - 1, 5.0));
                    }
                    WeightedGraph::from_edges(n, &edges).unwrap()
                })
                .collect();
            GraphSequence::new(graphs).unwrap()
        })
}

/// Connected sequences: a path backbone plus deterministic
/// pseudo-random chords (the idiom `store.rs` uses).
fn connected_sequence_strategy() -> impl Strategy<Value = GraphSequence> {
    (
        6usize..11,
        2usize..4,
        proptest::collection::vec(0.25f64..4.0, 40),
        0u64..1_000_000_000,
    )
        .prop_map(|(n, len, weights, salt)| {
            let mut w = weights.into_iter().cycle();
            let graphs: Vec<WeightedGraph> = (0..len)
                .map(|t| {
                    let mut edges = Vec::new();
                    for i in 0..n - 1 {
                        edges.push((i, i + 1, w.next().unwrap()));
                    }
                    for i in 0..n {
                        for j in (i + 2)..n {
                            let h = salt
                                .wrapping_mul(6364136223846793005)
                                .wrapping_add((t * n * n + i * n + j) as u64);
                            if (h >> 33) % 3 == 0 {
                                edges.push((i, j, w.next().unwrap()));
                            }
                        }
                    }
                    WeightedGraph::from_edges(n, &edges).unwrap()
                })
                .collect();
            GraphSequence::new(graphs).unwrap()
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Components mode on a multi-component graph is exact: the
    /// partitioned detector finds the same anomalous edge sets and node
    /// sets as the monolithic one, for both engines at 1 and 4 threads.
    #[test]
    fn components_mode_matches_monolithic_anomaly_sets(seq in disconnected_sequence_strategy()) {
        let spec = PartitionSpec {
            blocks: 2,
            mode: PartitionMode::Components,
        };
        for engine in engines() {
            for threads in [1usize, 4] {
                let mono = detector(&engine, threads, None);
                let part = detector(&engine, threads, Some(spec));
                let delta = gap_midpoint_delta(&mono.score_sequence(&seq).expect("mono scores"));
                let a = mono.detect(&seq, delta).expect("mono detect");
                let b = part.detect(&seq, delta).expect("part detect");
                prop_assert_eq!(a.transitions.len(), b.transitions.len());
                for (ta, tb) in a.transitions.iter().zip(&b.transitions) {
                    let ea: BTreeSet<(usize, usize)> =
                        ta.edges.iter().map(|e| (e.u, e.v)).collect();
                    let eb: BTreeSet<(usize, usize)> =
                        tb.edges.iter().map(|e| (e.u, e.v)).collect();
                    prop_assert!(
                        ea == eb,
                        "edge sets differ at t={}: {ea:?} vs {eb:?} ({engine:?}, {threads} threads)",
                        ta.t
                    );
                    let na: BTreeSet<usize> = ta.nodes.iter().copied().collect();
                    let nb: BTreeSet<usize> = tb.nodes.iter().copied().collect();
                    prop_assert!(na == nb, "node sets differ at t={}: {na:?} vs {nb:?}", ta.t);
                }
            }
        }
    }

    /// BFS splits of connected graphs track the monolithic scores
    /// within `PART_REL_TOL`, edge by edge, for both engines at 1 and 4
    /// threads.
    #[test]
    fn bfs_split_scores_within_part_rel_tol(seq in connected_sequence_strategy(), blocks in 2usize..4) {
        let spec = PartitionSpec {
            blocks,
            mode: PartitionMode::Bfs,
        };
        for engine in engines() {
            for threads in [1usize, 4] {
                let mono = detector(&engine, threads, None);
                let part = detector(&engine, threads, Some(spec));
                let a = mono.score_sequence(&seq).expect("mono scores");
                let b = part.score_sequence(&seq).expect("part scores");
                prop_assert_eq!(a.len(), b.len());
                for (t, (sa, sb)) in a.iter().zip(&b).enumerate() {
                    prop_assert_eq!(sa.len(), sb.len());
                    let by_edge: HashMap<(usize, usize), f64> =
                        sa.iter().map(|e| ((e.u, e.v), e.score)).collect();
                    for e in sb {
                        let mono_score = by_edge[&(e.u, e.v)];
                        let err = (e.score - mono_score).abs();
                        prop_assert!(
                            err <= PART_REL_TOL * (1.0 + mono_score.abs()),
                            "t={t} edge ({}, {}): partitioned {} vs monolithic {} \
                             (err {err:.3e} > tol, {engine:?}, {blocks} blocks, {threads} threads)",
                            e.u, e.v, e.score, mono_score
                        );
                    }
                }
            }
        }
    }
}
