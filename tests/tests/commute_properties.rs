//! Property-based tests of the commute-time engines on randomized
//! graphs — the invariants behind paper eq. 3.

use cad_commute::{CommuteEmbedding, EmbeddingOptions, ExactCommute};
use cad_graph::WeightedGraph;
use proptest::prelude::*;

/// Strategy: a random connected weighted graph on `n` nodes — a random
/// spanning-tree backbone plus extra random edges.
fn connected_graph(n: usize) -> impl Strategy<Value = WeightedGraph> {
    let backbone = proptest::collection::vec(0.2f64..3.0, n - 1);
    let extras = proptest::collection::vec((0..n as u32, 0..n as u32, 0.2f64..3.0), 0..12);
    (backbone, extras).prop_map(move |(spine, extras)| {
        let mut edges: Vec<(usize, usize, f64)> = spine
            .into_iter()
            .enumerate()
            .map(|(i, w)| (i, i + 1, w))
            .collect();
        for (u, v, w) in extras {
            let (u, v) = (u as usize, v as usize);
            if u != v {
                edges.push((u, v, w));
            }
        }
        WeightedGraph::from_edges(n, &edges).expect("valid random graph")
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn commute_time_is_a_metric(g in connected_graph(9)) {
        let c = ExactCommute::compute(&g).expect("exact");
        let n = g.n_nodes();
        for i in 0..n {
            prop_assert_eq!(c.commute_distance(i, i), 0.0);
            for j in 0..n {
                let d_ij = c.commute_distance(i, j);
                prop_assert!(d_ij >= 0.0);
                prop_assert!((d_ij - c.commute_distance(j, i)).abs() < 1e-9);
                if i != j {
                    prop_assert!(d_ij > 0.0);
                }
                for k in 0..n {
                    prop_assert!(
                        d_ij <= c.commute_distance(i, k) + c.commute_distance(k, j) + 1e-9
                    );
                }
            }
        }
    }

    #[test]
    fn commute_equals_volume_times_resistance(g in connected_graph(8)) {
        let c = ExactCommute::compute(&g).expect("exact");
        let vg = g.volume();
        for i in 0..8 {
            for j in 0..8 {
                let want = vg * c.resistance(i, j);
                prop_assert!((c.commute_distance(i, j) - want).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn resistance_bounded_by_direct_edge(g in connected_graph(8)) {
        // Rayleigh monotonicity corollary: r_eff(i,j) ≤ 1/w(i,j) for any
        // direct edge.
        let c = ExactCommute::compute(&g).expect("exact");
        for (u, v, w) in g.edges() {
            prop_assert!(
                c.resistance(u, v) <= 1.0 / w + 1e-9,
                "r({u},{v}) = {} > 1/w = {}", c.resistance(u, v), 1.0 / w
            );
        }
    }

    #[test]
    fn adding_an_edge_never_increases_resistance(g in connected_graph(8)) {
        // Rayleigh monotonicity: extra conductance can only shrink
        // effective resistances.
        let before = ExactCommute::compute(&g).expect("exact");
        let mut edges: Vec<_> = g.edges().collect();
        edges.push((0, 7, 1.0));
        let denser = WeightedGraph::from_edges(8, &edges).expect("valid");
        let after = ExactCommute::compute(&denser).expect("exact");
        for i in 0..8 {
            for j in 0..8 {
                prop_assert!(
                    after.resistance(i, j) <= before.resistance(i, j) + 1e-9,
                    "r({i},{j}) grew: {} -> {}",
                    before.resistance(i, j),
                    after.resistance(i, j)
                );
            }
        }
    }

    #[test]
    fn embedding_tracks_exact_within_jl_bound(g in connected_graph(8)) {
        let exact = ExactCommute::compute(&g).expect("exact");
        let emb = CommuteEmbedding::compute(
            &g,
            &EmbeddingOptions { k: 512, seed: 11, ..Default::default() },
        )
        .expect("embedding");
        for i in 0..8 {
            for j in (i + 1)..8 {
                let e = exact.resistance(i, j);
                let a = emb.resistance(i, j);
                // k = 512 → ε ≈ sqrt(8 ln n / k) ≈ 0.18; allow headroom.
                prop_assert!(
                    (a - e).abs() <= 0.35 * e,
                    "r({i},{j}): approx {a} vs exact {e}"
                );
            }
        }
    }

    #[test]
    fn uniform_weight_scaling_preserves_resistance_ratios(
        g in connected_graph(7),
        scale in 0.5f64..4.0,
    ) {
        // r_eff scales by 1/s under uniform weight scaling; commute time
        // (V_G·r) is invariant.
        let scaled_edges: Vec<_> =
            g.edges().map(|(u, v, w)| (u, v, w * scale)).collect();
        let gs = WeightedGraph::from_edges(7, &scaled_edges).expect("valid");
        let c0 = ExactCommute::compute(&g).expect("exact");
        let c1 = ExactCommute::compute(&gs).expect("exact");
        for i in 0..7 {
            for j in 0..7 {
                prop_assert!(
                    (c1.resistance(i, j) - c0.resistance(i, j) / scale).abs()
                        < 1e-8 * (1.0 + c0.resistance(i, j)),
                );
                prop_assert!(
                    (c1.commute_distance(i, j) - c0.commute_distance(i, j)).abs()
                        < 1e-7 * (1.0 + c0.commute_distance(i, j)),
                );
            }
        }
    }
}
