//! Offline vendored stand-in for the `proptest` crate.
//!
//! The build environment has no network access, so the registry
//! `proptest` cannot be fetched. This crate re-implements the subset of
//! the API this workspace uses:
//!
//! - [`Strategy`] with `generate`/`prop_map`, implemented for numeric
//!   ranges, tuples (arity 1–4), [`Just`] and [`collection::vec`]
//! - [`ProptestConfig::with_cases`]
//! - the [`proptest!`], [`prop_assert!`], [`prop_assert_eq!`] and
//!   [`prop_assume!`] macros
//!
//! Cases are generated deterministically: each test function gets an RNG
//! seeded from a hash of its module path and the case index, so failures
//! reproduce exactly across runs. Unlike upstream there is **no
//! shrinking** — a failing case reports its inputs' case index instead
//! of a minimised counterexample.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Per-run configuration; only `cases` is honoured.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each property is checked against.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` random cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Deterministic per-case RNG handed to strategies.
pub mod test_runner {
    pub use super::ProptestConfig;

    /// RNG seeded from (test path, case index); equal inputs yield equal
    /// streams, so every failure is reproducible.
    pub struct TestRng(pub(crate) super::StdRng);

    impl TestRng {
        /// Build the RNG for case `case` of the test named `name`.
        pub fn for_case(name: &str, case: u32) -> Self {
            use super::SeedableRng;
            // FNV-1a over the test path, mixed with the case index.
            let mut h = 0xcbf2_9ce4_8422_2325u64;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            h ^= (case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
            TestRng(super::StdRng::seed_from_u64(h))
        }
    }
}

use test_runner::TestRng;

/// A recipe for generating random values of `Self::Value`.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draw one value from the strategy.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, O> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Strategy that always yields a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.0.random_range(self.clone())
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.0.random_range(self.clone())
            }
        }
    )*};
}

range_strategy!(usize, u64, u32, i64, i32);

impl Strategy for std::ops::Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        rng.0.random_range(self.clone())
    }
}

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);

/// Collection strategies (`vec`).
pub mod collection {
    use super::{Strategy, TestRng};
    use rand::RngExt;

    /// Admissible sizes for a generated collection.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi_exclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                lo: n,
                hi_exclusive: n + 1,
            }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            SizeRange {
                lo: r.start,
                hi_exclusive: r.end,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi_exclusive: *r.end() + 1,
            }
        }
    }

    /// Strategy producing a `Vec` whose elements come from `elem`.
    pub struct VecStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    /// A `Vec` of values from `elem`, with a length drawn from `size`
    /// (an exact `usize` or a `Range<usize>`).
    pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            elem,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = if self.size.lo + 1 >= self.size.hi_exclusive {
                self.size.lo
            } else {
                rng.0.random_range(self.size.lo..self.size.hi_exclusive)
            };
            (0..len).map(|_| self.elem.generate(rng)).collect()
        }
    }
}

/// Upstream-compatible alias module (`proptest::prop::collection::vec`).
pub mod prop {
    pub use super::collection;
}

/// Everything a property-test module needs in scope.
pub mod prelude {
    pub use super::{Just, ProptestConfig, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, proptest};
}

/// Define property tests. Accepts an optional
/// `#![proptest_config(...)]` header followed by `#[test] fn` items
/// whose arguments are drawn from strategies (`arg in strategy`).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr); $($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __cfg: $crate::ProptestConfig = $cfg;
                let __strategies = ($($strat,)+);
                for __case in 0..__cfg.cases {
                    let mut __rng = $crate::test_runner::TestRng::for_case(
                        concat!(module_path!(), "::", stringify!($name)),
                        __case,
                    );
                    let ($($arg,)+) =
                        $crate::Strategy::generate(&__strategies, &mut __rng);
                    let __outcome: ::std::result::Result<(), ::std::string::String> =
                        (|| {
                            $body
                            ::std::result::Result::Ok(())
                        })();
                    if let ::std::result::Result::Err(__msg) = __outcome {
                        panic!(
                            "property `{}` failed at case {}/{}: {}",
                            stringify!($name),
                            __case,
                            __cfg.cases,
                            __msg
                        );
                    }
                }
            }
        )*
    };
}

/// Assert a condition inside a [`proptest!`] body; on failure the case
/// is reported with the formatted message.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: {}",
                stringify!($cond)
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(::std::format!($($fmt)+));
        }
    };
}

/// Assert equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let __l = $left;
        let __r = $right;
        if __l != __r {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                __l,
                __r
            ));
        }
    }};
}

/// Skip the current case when a precondition does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Ok(());
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn deterministic_generation() {
        let strat = (0u64..100, -1.0f64..1.0);
        let mut a = crate::test_runner::TestRng::for_case("x", 3);
        let mut b = crate::test_runner::TestRng::for_case("x", 3);
        assert_eq!(strat.generate(&mut a), strat.generate(&mut b));
    }

    #[test]
    fn vec_respects_exact_size() {
        let strat = crate::collection::vec(0.0f64..1.0, 7);
        let mut rng = crate::test_runner::TestRng::for_case("y", 0);
        assert_eq!(strat.generate(&mut rng).len(), 7);
    }

    #[test]
    fn vec_respects_size_range() {
        let strat = crate::collection::vec(0u32..5, 2..9);
        for case in 0..50 {
            let mut rng = crate::test_runner::TestRng::for_case("z", case);
            let v = strat.generate(&mut rng);
            assert!((2..9).contains(&v.len()), "len {}", v.len());
            assert!(v.iter().all(|&x| x < 5));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn macro_generates_in_range(x in 3usize..10, y in -2.0f64..2.0) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((-2.0..2.0).contains(&y), "y = {y}");
        }

        #[test]
        fn prop_map_applies(v in crate::collection::vec(1u32..4, 3).prop_map(|v| v.len())) {
            prop_assert_eq!(v, 3);
        }
    }
}
