//! Offline vendored stand-in for the `criterion` crate.
//!
//! The build environment has no network access, so the registry
//! `criterion` cannot be fetched. This crate implements the subset of
//! the API the workspace's benches use — [`Criterion`],
//! [`BenchmarkGroup`], [`Bencher::iter`], [`BenchmarkId`],
//! [`Throughput`], [`criterion_group!`], [`criterion_main!`] — as a
//! simple wall-clock harness: each benchmark runs a warmup iteration
//! followed by `sample_size` timed iterations and prints the mean time
//! (plus throughput when declared). There is no statistical analysis,
//! plotting, or baseline comparison.

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

const DEFAULT_SAMPLE_SIZE: usize = 20;

/// Identifier for one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Id from a function name and a parameter value.
    pub fn new(function: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{function}/{parameter}"),
        }
    }

    /// Id from a parameter value alone.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// Declared work per iteration, used to report a rate.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Times a closure over repeated iterations.
pub struct Bencher {
    sample_size: usize,
    mean: Option<Duration>,
}

impl Bencher {
    /// Run `f` once as warmup, then `sample_size` timed iterations, and
    /// record the mean wall-clock time per iteration.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        black_box(f());
        let start = Instant::now();
        for _ in 0..self.sample_size {
            black_box(f());
        }
        self.mean = Some(start.elapsed() / self.sample_size as u32);
    }
}

fn format_duration(d: Duration) -> String {
    let ns = d.as_nanos() as f64;
    if ns < 1e3 {
        format!("{ns:.1} ns")
    } else if ns < 1e6 {
        format!("{:.2} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.3} s", ns / 1e9)
    }
}

fn format_rate(per_iter: u64, mean: Duration, unit: &str) -> String {
    let rate = per_iter as f64 / mean.as_secs_f64();
    if rate >= 1e9 {
        format!("{:.2} G{unit}/s", rate / 1e9)
    } else if rate >= 1e6 {
        format!("{:.2} M{unit}/s", rate / 1e6)
    } else if rate >= 1e3 {
        format!("{:.2} K{unit}/s", rate / 1e3)
    } else {
        format!("{rate:.1} {unit}/s")
    }
}

fn run_one(
    label: &str,
    sample_size: usize,
    throughput: Option<Throughput>,
    f: &mut dyn FnMut(&mut Bencher),
) {
    let mut b = Bencher {
        sample_size: sample_size.max(1),
        mean: None,
    };
    f(&mut b);
    match b.mean {
        Some(mean) => {
            let thrpt = match throughput {
                Some(Throughput::Elements(n)) => {
                    format!("  thrpt: {}", format_rate(n, mean, "elem"))
                }
                Some(Throughput::Bytes(n)) => {
                    format!("  thrpt: {}", format_rate(n, mean, "B"))
                }
                None => String::new(),
            };
            println!(
                "{label:<50} mean {:>12} ({} samples){thrpt}",
                format_duration(mean),
                sample_size.max(1)
            );
        }
        None => println!("{label:<50} (no iterations recorded)"),
    }
}

/// A named set of related benchmarks sharing configuration.
pub struct BenchmarkGroup {
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup {
    /// Set the number of timed iterations per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Declare per-iteration work so a rate is reported.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = t.into();
        self
    }

    /// Accepted for API compatibility; this harness has no time budget.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Benchmark a closure under `id` within this group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into().id);
        run_one(&label, self.sample_size, self.throughput, &mut f);
        self
    }

    /// Benchmark a closure that receives a borrowed input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.into().id);
        run_one(&label, self.sample_size, self.throughput, &mut |b| {
            f(b, input)
        });
        self
    }

    /// End the group (no-op; present for API compatibility).
    pub fn finish(self) {}
}

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Start a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup {
        BenchmarkGroup {
            name: name.into(),
            sample_size: DEFAULT_SAMPLE_SIZE,
            throughput: None,
        }
    }

    /// Benchmark a standalone closure.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&id.into().id, DEFAULT_SAMPLE_SIZE, None, &mut f);
        self
    }
}

/// Bundle benchmark functions into a runnable group function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Generate `main` running the given groups (benches use `harness = false`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_records_mean() {
        let mut b = Bencher {
            sample_size: 5,
            mean: None,
        };
        b.iter(|| black_box(2u64 + 2));
        assert!(b.mean.is_some());
    }

    #[test]
    fn group_runs_benchmarks() {
        let mut c = Criterion::default();
        let mut grp = c.benchmark_group("stub");
        grp.sample_size(3).throughput(Throughput::Elements(10));
        let mut runs = 0;
        grp.bench_with_input(BenchmarkId::from_parameter(1), &41u64, |b, &x| {
            b.iter(|| black_box(x + 1));
            runs += 1;
        });
        grp.finish();
        assert_eq!(runs, 1);
    }

    #[test]
    fn id_formats() {
        assert_eq!(BenchmarkId::new("f", 3).id, "f/3");
        assert_eq!(BenchmarkId::from_parameter(7).id, "7");
    }
}
