//! Offline vendored stand-in for the `rand` crate.
//!
//! The workspace's build environment has no network access, so the
//! registry versions of `rand` cannot be fetched. This crate implements,
//! from scratch, exactly the API surface the workspace uses:
//!
//! - `rngs::StdRng` — a seedable xoshiro256++ generator
//! - `SeedableRng::seed_from_u64`
//! - `RngCore::next_u64`
//! - `RngExt::{random, random_range}` for `f64`/`u64`/`u32`/`bool` and
//!   integer/float ranges
//!
//! It is *not* a statistically audited RNG library; it only needs to be
//! a good-quality deterministic stream for synthetic data generation in
//! tests, benches and dataset builders.

/// Core trait: a source of 64-bit random words.
pub trait RngCore {
    /// Return the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Construction of RNGs from seeds.
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed. Equal seeds yield equal streams.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly from an RNG's raw output.
pub trait StandardSample: Sized {
    /// Draw one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 high bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl StandardSample for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl StandardSample for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl StandardSample for usize {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl StandardSample for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Types with a uniform sampler over half-open and closed intervals.
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform draw from `[start, end)`.
    fn sample_in<R: RngCore + ?Sized>(rng: &mut R, start: Self, end: Self) -> Self;
    /// Uniform draw from `[start, end]`.
    fn sample_in_inclusive<R: RngCore + ?Sized>(rng: &mut R, start: Self, end: Self) -> Self;
}

macro_rules! uniform_int_impl {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_in<R: RngCore + ?Sized>(rng: &mut R, start: $t, end: $t) -> $t {
                assert!(start < end, "empty range in random_range");
                let span = (end as u128).wrapping_sub(start as u128) as u64;
                // Modulo bias is acceptable for test-data generation.
                start.wrapping_add((rng.next_u64() % span) as $t)
            }
            fn sample_in_inclusive<R: RngCore + ?Sized>(rng: &mut R, start: $t, end: $t) -> $t {
                assert!(start <= end, "empty range in random_range");
                let span = (end as u128).wrapping_sub(start as u128) + 1;
                if span > u64::MAX as u128 {
                    return rng.next_u64() as $t;
                }
                start.wrapping_add((rng.next_u64() % span as u64) as $t)
            }
        }
    )*};
}

uniform_int_impl!(usize, u64, u32, i64, i32);

impl SampleUniform for f64 {
    fn sample_in<R: RngCore + ?Sized>(rng: &mut R, start: f64, end: f64) -> f64 {
        assert!(start < end, "empty range in random_range");
        start + f64::sample(rng) * (end - start)
    }
    fn sample_in_inclusive<R: RngCore + ?Sized>(rng: &mut R, start: f64, end: f64) -> f64 {
        assert!(start <= end, "empty range in random_range");
        start + f64::sample(rng) * (end - start)
    }
}

/// Ranges that can be sampled uniformly, producing values of type `T`.
///
/// A single blanket impl per range shape (mirroring upstream) keeps type
/// inference flowing backward from the usage site: in
/// `vec[rng.random_range(0..3)]` the index context forces `T = usize`,
/// which then types the `0..3` literal.
pub trait SampleRange<T> {
    /// Draw one value in the range from `rng`.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for std::ops::Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_in(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for std::ops::RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_in_inclusive(rng, *self.start(), *self.end())
    }
}

/// Extension methods available on every [`RngCore`].
pub trait RngExt: RngCore {
    /// Sample a value of type `T` uniformly (floats in `[0, 1)`).
    fn random<T: StandardSample>(&mut self) -> T {
        T::sample(self)
    }

    /// Sample uniformly from a range.
    fn random_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_from(self)
    }

    /// Sample `true` with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool {
        self.random::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> RngExt for R {}

/// Alias used by the upstream crate for [`RngExt`]-style access.
pub use RngExt as Rng;

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator seeded via SplitMix64.
    ///
    /// Drop-in stand-in for `rand::rngs::StdRng` within this workspace.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{RngExt, SeedableRng};

    #[test]
    fn deterministic_for_equal_seeds() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..64)
            .filter(|_| a.random::<u64>() == b.random::<u64>())
            .count();
        assert!(same < 4);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x: f64 = rng.random();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn range_sampling_in_bounds() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..1000 {
            let k = rng.random_range(3..17usize);
            assert!((3..17).contains(&k));
            let x = rng.random_range(-2.0f64..2.0);
            assert!((-2.0..2.0).contains(&x));
        }
    }

    #[test]
    fn f64_stream_covers_both_halves() {
        let mut rng = StdRng::seed_from_u64(11);
        let lo = (0..1000).filter(|_| rng.random::<f64>() < 0.5).count();
        assert!(lo > 400 && lo < 600, "lo = {lo}");
    }
}
