//! Insider-threat monitoring — the paper's motivating application (§1).
//!
//! ```text
//! cargo run --release -p cad-examples --bin insider_threat
//! ```
//!
//! Plays a security analyst watching an organization's monthly e-mail
//! graphs. For every month-to-month transition CAD reports the employees
//! whose *relationship changes* restructured the network — new contacts
//! with distant colleagues, sudden collusion-like bursts — while staying
//! quiet about routine volume fluctuations between close co-workers.
//!
//! The workload is the Enron-style simulator with scripted events, so
//! the report can be compared against the known culprits at the end.

use cad_commute::EngineOptions;
use cad_core::{CadDetector, CadOptions};
use cad_datasets::{EnronSim, EnronSimOptions, Role};

fn role_name(r: Role) -> &'static str {
    match r {
        Role::Ceo => "CEO",
        Role::IncomingCeo => "incoming CEO",
        Role::Assistant => "assistant",
        Role::Executive => "executive",
        Role::Legal => "legal counsel",
        Role::Trader => "trader",
        Role::Staff => "staff",
    }
}

fn main() {
    let sim = EnronSim::generate(&EnronSimOptions::default()).expect("simulated organization");
    println!(
        "monitoring {} employees over {} monthly snapshots (~{:.0} edges/month)\n",
        sim.seq.n_nodes(),
        sim.seq.len(),
        sim.seq.mean_edges()
    );

    // n = 151 — small enough for exact commute times, like the paper.
    let detector = CadDetector::new(CadOptions {
        engine: EngineOptions::Exact,
        ..Default::default()
    });
    // Alert budget: ~5 employees per month on average; δ is calibrated
    // globally so quiet months raise no alerts at all.
    let report = detector.detect_top_l(&sim.seq, 5).expect("detection");

    println!(
        "=== monthly alert report (δ = {:.2}) ===",
        report.delta.expect("top-l policy reports a delta")
    );
    let mut alerts = 0usize;
    for tr in &report.transitions {
        if tr.nodes.is_empty() {
            continue;
        }
        alerts += 1;
        let who: Vec<String> = tr
            .nodes
            .iter()
            .take(6)
            .map(|&n| format!("#{n} ({})", role_name(sim.roles[n])))
            .collect();
        let more = if tr.nodes.len() > 6 {
            format!(" +{} more", tr.nodes.len() - 6)
        } else {
            String::new()
        };
        // Classify the leading edge into the paper's case taxonomy so
        // the analyst knows *what kind* of change fired the alert.
        let case = cad_core::explain_transition(
            &tr.edges[..1],
            sim.seq.graph(tr.t),
            sim.seq.graph(tr.t + 1),
        )[0]
        .case
        .label();
        println!(
            "month {:>2} -> {:>2}: {}{}  [{}]",
            tr.t,
            tr.t + 1,
            who.join(", "),
            more,
            case
        );
    }
    println!(
        "\n{alerts} of {} transitions raised alerts",
        report.transitions.len()
    );

    // --- Compare against the scripted ground truth.
    println!("\n=== ground truth events ===");
    let mut found = 0usize;
    let mut total = 0usize;
    for ev in &sim.events {
        if ev.responsible.is_empty() {
            continue; // volume-surge confounder: correctly not a target
        }
        total += 1;
        let start_t = ev.month - 1;
        let hit = ev
            .responsible
            .iter()
            .any(|r| report.transitions[start_t].nodes.contains(r));
        if hit {
            found += 1;
        }
        println!(
            "{:<20} month {:>2}: responsible {:?} — {}",
            ev.name,
            ev.month,
            ev.responsible.iter().take(4).collect::<Vec<_>>(),
            if hit { "LOCALIZED" } else { "missed" }
        );
    }
    println!("\nlocalized {found}/{total} scripted events at their onset transition");
    assert!(
        found >= total - 1,
        "the detector should localize the scripted culprits"
    );
}
