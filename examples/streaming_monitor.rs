//! Streaming anomaly monitoring with online threshold calibration —
//! the deployment mode sketched in the paper's §4.2 ("the procedure can
//! be suitably modified in an online setting").
//!
//! ```text
//! cargo run --release -p cad-examples --bin streaming_monitor
//! ```
//!
//! Monthly snapshots of the organizational e-mail network arrive one at
//! a time. The [`cad_core::online::OnlineCad`] detector scores each new
//! transition immediately (one commute-engine build per arrival) and
//! keeps re-calibrating δ against everything seen so far, so the alert
//! rate tracks the configured budget without any offline pass.

use cad_commute::EngineOptions;
use cad_core::online::OnlineCad;
use cad_core::CadOptions;
use cad_datasets::{EnronSim, EnronSimOptions};

fn main() {
    let sim = EnronSim::generate(&EnronSimOptions::default()).expect("simulated organization");
    let mut monitor = OnlineCad::new(
        CadOptions {
            engine: EngineOptions::Exact,
            ..Default::default()
        },
        5, // alert budget: ~5 employees per month on running average
    );

    println!("streaming {} monthly snapshots...\n", sim.seq.len());
    let mut event_onsets_caught = 0;
    for (month, g) in sim.seq.graphs().iter().cloned().enumerate() {
        let Some(alert) = monitor.push(g).expect("push instance") else {
            continue; // first instance: nothing to compare against yet
        };
        if alert.edges.is_empty() {
            continue;
        }
        let is_event_onset = sim.events.iter().any(|e| e.month == month);
        if is_event_onset {
            event_onsets_caught += 1;
        }
        println!(
            "month {:>2}: ALERT — {} edges, {} employees (δ now {:.1}){}",
            month,
            alert.edges.len(),
            alert.nodes.len(),
            monitor.delta(),
            if is_event_onset {
                "  << scripted event starts here"
            } else {
                ""
            }
        );
    }

    let with_truth = sim
        .events
        .iter()
        .filter(|e| !e.responsible.is_empty())
        .count();
    println!(
        "\ncaught {event_onsets_caught} of {} scripted event onsets in streaming mode",
        sim.events.len()
    );
    assert!(
        event_onsets_caught >= with_truth,
        "the stream monitor should alert on the scripted events"
    );

    // After the stream, a full re-evaluation at the final δ equals the
    // offline batch result — the monitor loses nothing by being online.
    let final_sets = monitor.reevaluate_all();
    let busiest = final_sets
        .iter()
        .max_by_key(|t| t.nodes.len())
        .expect("non-empty");
    println!(
        "busiest transition in hindsight: {} -> {} with {} employees",
        busiest.t,
        busiest.t + 1,
        busiest.nodes.len()
    );
}
