//! Quickstart: localize anomalous edges in a hand-built dynamic graph.
//!
//! ```text
//! cargo run --release -p cad-examples --bin quickstart
//! ```
//!
//! Builds two snapshots of a small communication graph — two tight
//! groups plus one weak tie — where three things change between `t` and
//! `t+1`:
//!
//! 1. a brand-new edge appears between the groups (anomalous: it pulls
//!    two structurally distant nodes together — paper Case 2);
//! 2. an intra-group edge strengthens sharply (anomalous: Case 1);
//! 3. another intra-group edge jitters slightly (benign).
//!
//! CAD ranks the first two far above the third; the benign jitter stays
//! below any reasonable threshold.

use cad_core::{CadDetector, CadOptions};
use cad_graph::{GraphBuilder, GraphSequence};

fn main() {
    // --- Snapshot at time t: groups {0,1,2} and {3,4,5}, one weak tie.
    let mut before = GraphBuilder::new(6);
    for (u, v) in [(0, 1), (0, 2), (1, 2)] {
        before.add_edge(u, v, 4.0).expect("valid edge");
    }
    for (u, v) in [(3, 4), (3, 5), (4, 5)] {
        before.add_edge(u, v, 4.0).expect("valid edge");
    }
    before.add_edge(2, 3, 0.25).expect("valid edge"); // weak bridge

    // --- Snapshot at time t+1: three changes.
    let mut after = GraphBuilder::new(6);
    for (u, v) in [(0, 2), (1, 2)] {
        after.add_edge(u, v, 4.0).expect("valid edge");
    }
    after.add_edge(0, 1, 4.3).expect("valid edge"); // benign jitter
    after.add_edge(3, 4, 9.0).expect("valid edge"); // sharp strengthening
    for (u, v) in [(3, 5), (4, 5)] {
        after.add_edge(u, v, 4.0).expect("valid edge");
    }
    after.add_edge(2, 3, 0.25).expect("valid edge");
    after.add_edge(0, 5, 2.0).expect("valid edge"); // new cross-group edge

    let seq = GraphSequence::new(vec![before.build(), after.build()])
        .expect("two instances over one vertex set");

    // --- Run CAD. Defaults: exact commute times below 512 nodes,
    //     Khoa-Chawla embedding above; here n = 6 so it is exact.
    let detector = CadDetector::new(CadOptions::default());

    // Score every changed edge (ΔE = |ΔA| · |Δc|)...
    let scores = detector.score_sequence(&seq).expect("scoring succeeds");
    println!("edge scores for the t -> t+1 transition:");
    for e in &scores[0] {
        println!(
            "  edge ({}, {}): ΔE = {:8.3}   (|ΔA| = {:.2}, |Δc| = {:.3})",
            e.u,
            e.v,
            e.score,
            e.d_weight.abs(),
            e.d_commute.abs()
        );
    }

    // ...and cut an anomaly set, asking for ~2 anomalous nodes per
    // transition on average (the paper's δ-selection automation).
    let result = detector.detect_top_l(&seq, 2).expect("detection succeeds");
    let tr = &result.transitions[0];
    println!(
        "\nanomalous edges E_0 (δ = {:.3}):",
        result.delta.expect("top-l policy reports a delta")
    );
    for e in &tr.edges {
        println!("  ({}, {})  score {:.3}", e.u, e.v, e.score);
    }
    println!("anomalous nodes V_0: {:?}", tr.nodes);

    // The cross-group edge wins; the jitter on (0, 1) is never selected.
    assert_eq!((tr.edges[0].u, tr.edges[0].v), (0, 5));
    assert!(tr.edges.iter().all(|e| (e.u, e.v) != (0, 1)));
    println!("\nthe new cross-group edge (0, 5) is the top anomaly — as it should be");
}
