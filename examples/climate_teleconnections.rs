//! Finding climate teleconnections in precipitation networks
//! (the paper's §4.2.3 application).
//!
//! ```text
//! cargo run --release -p cad-examples --bin climate_teleconnections
//! ```
//!
//! Builds yearly k-NN similarity graphs over precipitation gauges and
//! asks CAD which gauge *relationships* changed anomalously. A planted
//! La-Niña-style event shifts four distant regions simultaneously —
//! subtly enough that no single gauge's time series stands out — and CAD
//! localizes the year and the affected region pairs from graph structure
//! alone.

use cad_core::{CadDetector, CadOptions};
use cad_datasets::{PrecipSim, PrecipSimOptions};

fn main() {
    let sim = PrecipSim::generate(&PrecipSimOptions::default()).expect("simulated climate");
    println!(
        "precipitation network: {} gauges in {} regions, {} yearly snapshots\n",
        sim.seq.n_nodes(),
        sim.region.iter().max().unwrap() + 1,
        sim.seq.len()
    );

    let detector = CadDetector::new(CadOptions::default());
    let scored = detector.score_sequence(&sim.seq).expect("scores");

    // Which year restructured the climate network the most?
    let mass: Vec<f64> = scored
        .iter()
        .map(|s| s.iter().map(|e| e.score).sum())
        .collect();
    let top_year = (0..mass.len())
        .max_by(|&a, &b| mass[a].partial_cmp(&mass[b]).expect("finite"))
        .unwrap();
    println!(
        "largest structural change: transition {top_year} -> {}",
        top_year + 1
    );
    assert_eq!(
        top_year,
        sim.event_year - 1,
        "the teleconnection year must dominate"
    );

    // Which region pairs drive it?
    let kind = |r: usize| {
        if sim.wetter_regions.contains(&r) {
            "wet-shifted"
        } else if sim.drier_regions.contains(&r) {
            "dry-shifted"
        } else {
            "reference"
        }
    };
    println!("\ntop anomalous gauge pairs in the teleconnection year:");
    let mut seen_pairs = std::collections::HashSet::new();
    for e in scored[top_year].iter() {
        let pair = (
            sim.region[e.u].min(sim.region[e.v]),
            sim.region[e.u].max(sim.region[e.v]),
        );
        if pair.0 == pair.1 || !seen_pairs.insert(pair) {
            continue;
        }
        println!(
            "  regions {} ({}) <-> {} ({})   top edge ΔE {:.0}",
            pair.0,
            kind(pair.0),
            pair.1,
            kind(pair.1),
            e.score
        );
        if seen_pairs.len() >= 6 {
            break;
        }
    }

    // The per-gauge view shows why time-series analysis misses this:
    // the typical event-year change at an affected gauge sits well
    // below the largest natural year-over-year swings elsewhere in the
    // network, so any per-gauge threshold loose enough to catch the
    // event drowns in false alarms from ordinary years.
    let event_t = sim.event_year - 1;
    let affected = sim.affected_locations();
    let mean_event: f64 = affected
        .iter()
        .map(|&loc| sim.yoy_deltas(loc)[event_t].abs())
        .sum::<f64>()
        / affected.len() as f64;
    let max_natural = (0..sim.seq.n_nodes())
        .flat_map(|loc| {
            sim.yoy_deltas(loc)
                .into_iter()
                .enumerate()
                .filter(|&(t, _)| t != event_t && t != sim.event_year)
                .map(|(_, d)| d.abs())
        })
        .fold(0.0f64, f64::max);
    println!(
        "\nmean event-year change at affected gauges: {mean_event:.2}; \
         largest natural swing anywhere: {max_natural:.2}"
    );
    assert!(mean_event < max_natural);
    println!("— individually unremarkable; only the simultaneity across regions gives it away");
}
