//! Detecting research-interest shifts in a co-authorship network
//! (the paper's DBLP application, §4.2.2).
//!
//! ```text
//! cargo run --release -p cad-examples --bin collaboration_shift
//! ```
//!
//! Yearly co-authorship graphs over authors grouped into research
//! communities. CAD surfaces: authors who start collaborating far
//! outside their community (with scores *graded by how far they jump*),
//! and long-standing collaborations that dissolve.

use cad_core::{CadDetector, CadOptions};
use cad_datasets::{DblpSim, DblpSimOptions};

fn main() {
    let sim = DblpSim::generate(&DblpSimOptions::default()).expect("simulated network");
    println!(
        "co-authorship network: {} authors, {} communities, {} yearly snapshots\n",
        sim.seq.n_nodes(),
        sim.community.iter().max().unwrap() + 1,
        sim.seq.len()
    );

    let detector = CadDetector::new(CadOptions::default());
    let report = detector.detect_top_l(&sim.seq, 20).expect("detection");

    for tr in &report.transitions {
        if tr.edges.is_empty() {
            continue;
        }
        println!("=== transition {} -> {} ===", tr.t, tr.t + 1);
        for e in tr.edges.iter().take(5) {
            let (cu, cv) = (sim.community[e.u], sim.community[e.v]);
            let verdict = if cu == cv {
                "within community — collaboration intensity change".to_string()
            } else {
                format!(
                    "CROSS-COMMUNITY ({} hops apart) — interest shift",
                    cu.abs_diff(cv)
                )
            };
            println!(
                "  authors {:>3} & {:>3}  ΔE {:>9.1}  {}",
                e.u, e.v, e.score, verdict
            );
        }
    }

    // Severity grading: the far jump scores above the near jump.
    let (far_author, _, switch_year) = sim.far_switcher;
    let (near_author, _, _) = sim.near_switcher;
    let edges = &report.transitions[switch_year - 1].edges;
    let best = |a: usize| {
        edges
            .iter()
            .filter(|e| e.u == a || e.v == a)
            .map(|e| e.score)
            .fold(0.0f64, f64::max)
    };
    let (far, near) = (best(far_author), best(near_author));
    println!(
        "\nseverity grading at the switch year: far jump ΔE = {far:.0}, near jump ΔE = {near:.0}"
    );
    assert!(far > near, "a larger interest jump must score higher");

    // The dissolved collaboration is localized too.
    let (a, b, sever_year) = sim.severed;
    let found = report.transitions[sever_year - 1]
        .edges
        .iter()
        .any(|e| (e.u, e.v) == (a.min(b), a.max(b)));
    println!(
        "severed collaboration ({a}, {b}): {}",
        if found { "localized" } else { "missed" }
    );
    assert!(found);
}
