//! Per-session write-ahead journal for `cad serve`.
//!
//! Every detection session appends one record per lifecycle step —
//! create (the session spec), push (the edge delta vs the previous
//! instance, in the `.cadpack` delta codec), delete — to CRC-framed
//! segment files under `<journal-dir>/<session-id>/`. On boot the serve
//! layer replays each journal to rebuild the session *bit-identically*:
//! the stream state is a pure function of the spec plus the pushed
//! graphs, so replaying the deltas through the same code path
//! reproduces every subsequent result exactly.
//!
//! This crate owns the *mechanics* — framing, segments, fsync policy,
//! torn-tail recovery, checkpoint compaction — and treats payloads as
//! opaque bytes. What goes *in* the payloads (spec JSON, edge deltas,
//! checkpoint state) is the serve layer's business.
//!
//! # On-disk format
//!
//! A segment file is a 32-byte header followed by frames:
//!
//! ```text
//! header:  magic "CADJRNL\0" · version u32 LE · session id u64 LE ·
//!          segment seq u32 LE · prev segment length u64 LE
//! frame:   kind u8 · payload len u32 LE · payload · crc32(kind‖len‖payload) u32 LE
//! ```
//!
//! `prev segment length` is the sealed byte length of the preceding
//! segment (0 for a journal's first segment and for checkpoint
//! segments, which start a new chain). Recovery checks the link, so a
//! *sealed* segment that lost bytes — even a loss that happens to end
//! exactly on a frame boundary — is detected as corruption rather than
//! read as a silently shorter stream.
//!
//! Appends go to the highest-numbered segment; once it exceeds
//! [`JournalConfig::max_segment_bytes`] the writer fsyncs it (sealing
//! it) and rotates to a fresh segment. Compaction writes a new segment
//! containing a single [`RecordKind::Checkpoint`] frame via
//! write-then-rename, then drops the older segments; recovery starts at
//! the newest segment whose first frame is a checkpoint, so a crash at
//! any point between the rename and the deletions only leaves stale
//! segments behind (cleaned up on the next recovery).
//!
//! # Torn-tail rule
//!
//! A crash can truncate the final frame of the *last* segment
//! mid-write. Recovery drops that incomplete frame (the record was
//! never acknowledged) and succeeds with the clean prefix, counting
//! `journal.torn_tails`. Anything else — a bad CRC on a complete frame,
//! a truncated *interior* segment, a header byte flip — is corruption,
//! and recovery fails hard with the file and byte offset.

#![warn(missing_docs)]

use std::fmt;
use std::fs::{self, File, OpenOptions};
use std::io::{self, Read, Write};
use std::path::{Path, PathBuf};
use std::time::Instant;

use cad_store::crc::crc32;

/// First eight bytes of every segment file.
pub const MAGIC: &[u8; 8] = b"CADJRNL\0";
/// Current on-disk format version.
pub const FORMAT_VERSION: u32 = 1;
/// Segment header length: magic + version + session id + segment seq +
/// previous segment length.
pub const HEADER_LEN: usize = 8 + 4 + 8 + 4 + 8;
/// Frame overhead around the payload: kind + length + CRC.
pub const FRAME_OVERHEAD: usize = 1 + 4 + 4;

/// What a journal record describes. Stored as the frame's `kind` byte.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecordKind {
    /// Session creation; payload is the resolved session spec.
    Create = 1,
    /// One pushed instance; payload is the `.cadpack` edge delta from
    /// the previous instance (or from the empty graph for the first).
    Delta = 2,
    /// Session deletion; empty payload. Terminal.
    Delete = 3,
    /// Full-state checkpoint written by compaction; replay resumes here
    /// instead of from the original create.
    Checkpoint = 4,
}

impl RecordKind {
    /// Stable lowercase name (inspect output).
    pub fn name(self) -> &'static str {
        match self {
            RecordKind::Create => "create",
            RecordKind::Delta => "delta",
            RecordKind::Delete => "delete",
            RecordKind::Checkpoint => "checkpoint",
        }
    }

    fn from_u8(b: u8) -> Option<RecordKind> {
        match b {
            1 => Some(RecordKind::Create),
            2 => Some(RecordKind::Delta),
            3 => Some(RecordKind::Delete),
            4 => Some(RecordKind::Checkpoint),
            _ => None,
        }
    }
}

/// One recovered record: kind plus owned payload bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Record {
    /// What the record describes.
    pub kind: RecordKind,
    /// Opaque payload (interpreted by the serve layer).
    pub payload: Vec<u8>,
}

/// When the writer issues `fsync` after an append.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FsyncPolicy {
    /// After every record — an acknowledged record survives power loss.
    Always,
    /// After every `n`-th record: bounded loss window, amortized cost.
    EveryN(u32),
    /// Never (the OS flushes when it pleases). Rotation and compaction
    /// still sync, so sealed segments are durable under every policy.
    Never,
}

impl FsyncPolicy {
    /// Stable name: `always`, `never`, or `every-N`.
    pub fn name(self) -> String {
        match self {
            FsyncPolicy::Always => "always".into(),
            FsyncPolicy::Never => "never".into(),
            FsyncPolicy::EveryN(n) => format!("every-{n}"),
        }
    }

    /// Parse a [`FsyncPolicy::name`] back (CLI `--journal-fsync`).
    pub fn from_name(s: &str) -> Option<FsyncPolicy> {
        match s {
            "always" => Some(FsyncPolicy::Always),
            "never" => Some(FsyncPolicy::Never),
            _ => {
                let n: u32 = s.strip_prefix("every-")?.parse().ok()?;
                if n == 0 {
                    None
                } else {
                    Some(FsyncPolicy::EveryN(n))
                }
            }
        }
    }
}

/// Writer tuning: durability policy, rotation and compaction triggers.
#[derive(Debug, Clone)]
pub struct JournalConfig {
    /// When appends reach the platter (default [`FsyncPolicy::Always`]).
    pub fsync: FsyncPolicy,
    /// Rotate to a new segment once the current one exceeds this
    /// (default 64 KiB).
    pub max_segment_bytes: u64,
    /// Compaction trigger: more than this many segments (default 4).
    pub compact_segments: usize,
    /// Compaction trigger: more than this many total bytes (default
    /// 8 MiB).
    pub compact_bytes: u64,
}

impl Default for JournalConfig {
    fn default() -> Self {
        JournalConfig {
            fsync: FsyncPolicy::Always,
            max_segment_bytes: 64 * 1024,
            compact_segments: 4,
            compact_bytes: 8 * 1024 * 1024,
        }
    }
}

/// Why a journal could not be read back.
#[derive(Debug)]
pub enum JournalError {
    /// Filesystem failure (open/read/rename/remove).
    Io(io::Error),
    /// The bytes are there but wrong: bad magic, bad CRC, truncated
    /// interior segment, impossible record kind. `offset` is where in
    /// `path` the damage starts.
    Corrupt {
        /// Segment file containing the damage.
        path: PathBuf,
        /// Byte offset of the rejected header/frame within that file.
        offset: u64,
        /// Human-readable diagnosis.
        what: String,
    },
}

impl fmt::Display for JournalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JournalError::Io(e) => write!(f, "journal io error: {e}"),
            JournalError::Corrupt { path, offset, what } => {
                write!(
                    f,
                    "corrupt journal segment {} at byte {offset}: {what}",
                    path.display()
                )
            }
        }
    }
}

impl std::error::Error for JournalError {}

impl From<io::Error> for JournalError {
    fn from(e: io::Error) -> Self {
        JournalError::Io(e)
    }
}

fn corrupt(path: &Path, offset: u64, what: impl Into<String>) -> JournalError {
    JournalError::Corrupt {
        path: path.to_path_buf(),
        offset,
        what: what.into(),
    }
}

fn segment_file_name(seq: u32) -> String {
    format!("seg-{seq:08}.cadj")
}

fn segment_header(session_id: u64, seq: u32, prev_len: u64) -> Vec<u8> {
    let mut out = Vec::with_capacity(HEADER_LEN);
    out.extend_from_slice(MAGIC);
    out.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
    out.extend_from_slice(&session_id.to_le_bytes());
    out.extend_from_slice(&seq.to_le_bytes());
    out.extend_from_slice(&prev_len.to_le_bytes());
    out
}

/// Frame a record: `kind · len u32 LE · payload · crc32(kind‖len‖payload)`.
fn encode_frame(kind: RecordKind, payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(FRAME_OVERHEAD + payload.len());
    out.push(kind as u8);
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(payload);
    let crc = crc32(&out);
    out.extend_from_slice(&crc.to_le_bytes());
    out
}

/// Best-effort directory fsync so renames/creates/unlinks are durable.
fn sync_dir(dir: &Path) -> io::Result<()> {
    File::open(dir)?.sync_all()
}

/// Append-side handle to one session's journal directory.
///
/// All methods take `&mut self`; `cad-serve` keeps the handle inside
/// the session mutex, so appends are serialized with the pushes they
/// describe.
#[derive(Debug)]
pub struct SessionJournal {
    dir: PathBuf,
    session_id: u64,
    file: File,
    seg_seq: u32,
    seg_bytes: u64,
    n_segments: usize,
    total_bytes: u64,
    unsynced: u32,
    cfg: JournalConfig,
}

impl SessionJournal {
    /// Start a brand-new journal for `session_id` under `root`.
    ///
    /// Fails if the session directory already contains a first segment
    /// (ids are never reused; an existing journal means a caller bug).
    pub fn create(root: &Path, session_id: u64, cfg: JournalConfig) -> io::Result<SessionJournal> {
        let dir = root.join(session_id.to_string());
        fs::create_dir_all(&dir)?;
        let path = dir.join(segment_file_name(1));
        let mut file = OpenOptions::new()
            .write(true)
            .create_new(true)
            .open(&path)?;
        let header = segment_header(session_id, 1, 0);
        file.write_all(&header)?;
        file.sync_all()?;
        sync_dir(&dir)?;
        cad_obs::counters::JOURNAL_BYTES_WRITTEN.add(header.len() as u64);
        Ok(SessionJournal {
            dir,
            session_id,
            file,
            seg_seq: 1,
            seg_bytes: HEADER_LEN as u64,
            n_segments: 1,
            total_bytes: HEADER_LEN as u64,
            unsynced: 0,
            cfg,
        })
    }

    /// Reopen a recovered journal for appending. Truncates the torn
    /// tail (if any) off the last segment so new frames start at the
    /// clean prefix.
    pub fn open(
        root: &Path,
        cfg: JournalConfig,
        rec: &RecoveredJournal,
    ) -> io::Result<SessionJournal> {
        let dir = root.join(rec.session_id.to_string());
        let path = dir.join(segment_file_name(rec.last_seg_seq));
        let file = OpenOptions::new().append(true).open(&path)?;
        if file.metadata()?.len() != rec.last_seg_clean_len {
            file.set_len(rec.last_seg_clean_len)?;
            file.sync_all()?;
        }
        Ok(SessionJournal {
            dir,
            session_id: rec.session_id,
            file,
            seg_seq: rec.last_seg_seq,
            seg_bytes: rec.last_seg_clean_len,
            n_segments: rec.n_segments,
            total_bytes: rec.total_bytes,
            unsynced: 0,
            cfg,
        })
    }

    /// The session this journal belongs to.
    pub fn session_id(&self) -> u64 {
        self.session_id
    }

    /// Segments currently on disk.
    pub fn n_segments(&self) -> usize {
        self.n_segments
    }

    /// Total bytes across all segments.
    pub fn total_bytes(&self) -> u64 {
        self.total_bytes
    }

    /// Append one record, honouring the fsync policy, rotating the
    /// segment when it outgrows [`JournalConfig::max_segment_bytes`].
    pub fn append(&mut self, kind: RecordKind, payload: &[u8]) -> io::Result<()> {
        let frame = encode_frame(kind, payload);
        let t0 = Instant::now();
        self.file.write_all(&frame)?;
        cad_obs::histograms::JOURNAL_APPEND_SECS.observe(t0.elapsed().as_secs_f64());
        cad_obs::counters::JOURNAL_APPENDS.inc();
        cad_obs::counters::JOURNAL_BYTES_WRITTEN.add(frame.len() as u64);
        self.seg_bytes += frame.len() as u64;
        self.total_bytes += frame.len() as u64;
        match self.cfg.fsync {
            FsyncPolicy::Always => self.sync()?,
            FsyncPolicy::EveryN(n) => {
                self.unsynced += 1;
                if self.unsynced >= n {
                    self.sync()?;
                }
            }
            FsyncPolicy::Never => {}
        }
        if self.seg_bytes >= self.cfg.max_segment_bytes {
            self.rotate()?;
        }
        Ok(())
    }

    /// Force the current segment to disk regardless of policy.
    pub fn sync(&mut self) -> io::Result<()> {
        let t0 = Instant::now();
        self.file.sync_all()?;
        cad_obs::histograms::JOURNAL_FSYNC_SECS.observe(t0.elapsed().as_secs_f64());
        self.unsynced = 0;
        Ok(())
    }

    /// Seal the current segment (fsync — sealed segments are durable
    /// under every policy, keeping the torn-tail rule confined to the
    /// last segment) and start the next one.
    fn rotate(&mut self) -> io::Result<()> {
        self.sync()?;
        let seq = self.seg_seq + 1;
        let path = self.dir.join(segment_file_name(seq));
        let mut file = OpenOptions::new()
            .write(true)
            .create_new(true)
            .open(&path)?;
        let header = segment_header(self.session_id, seq, self.seg_bytes);
        file.write_all(&header)?;
        sync_dir(&self.dir)?;
        cad_obs::counters::JOURNAL_BYTES_WRITTEN.add(header.len() as u64);
        self.file = file;
        self.seg_seq = seq;
        self.seg_bytes = HEADER_LEN as u64;
        self.total_bytes += HEADER_LEN as u64;
        self.n_segments += 1;
        Ok(())
    }

    /// True once the segment-count or byte threshold is crossed.
    pub fn needs_compaction(&self) -> bool {
        self.n_segments > self.cfg.compact_segments || self.total_bytes > self.cfg.compact_bytes
    }

    /// Replace the whole journal with a single checkpoint record.
    ///
    /// The checkpoint segment is written complete to a `.tmp` file,
    /// fsynced, then renamed into place — only after that are the old
    /// segments unlinked. Recovery starts at the newest
    /// checkpoint-first segment, so a crash anywhere in this sequence
    /// leaves a readable journal (at worst with stale segments pending
    /// cleanup).
    pub fn compact(&mut self, checkpoint: &[u8]) -> io::Result<()> {
        let t0 = Instant::now();
        let old_first = self.seg_seq + 1 - self.n_segments as u32;
        let seq = self.seg_seq + 1;
        // Make everything the checkpoint supersedes durable first, so a
        // lagging fsync policy cannot lose acknowledged records that
        // the deletions below would otherwise take with them.
        self.sync()?;
        let final_path = self.dir.join(segment_file_name(seq));
        let tmp_path = final_path.with_extension("cadj.tmp");
        // A checkpoint segment starts a fresh chain: its predecessors
        // are about to be unlinked, so the back-link is zero.
        let mut bytes = segment_header(self.session_id, seq, 0);
        bytes.extend_from_slice(&encode_frame(RecordKind::Checkpoint, checkpoint));
        let mut tmp = OpenOptions::new()
            .write(true)
            .create(true)
            .truncate(true)
            .open(&tmp_path)?;
        tmp.write_all(&bytes)?;
        tmp.sync_all()?;
        fs::rename(&tmp_path, &final_path)?;
        sync_dir(&self.dir)?;
        for old in old_first..=self.seg_seq {
            fs::remove_file(self.dir.join(segment_file_name(old)))?;
        }
        sync_dir(&self.dir)?;
        cad_obs::counters::JOURNAL_BYTES_WRITTEN.add(bytes.len() as u64);
        cad_obs::counters::JOURNAL_COMPACTIONS.inc();
        cad_obs::events::record(
            cad_obs::EventKind::Compaction,
            "compaction",
            t0.elapsed().as_secs_f64(),
            self.session_id,
        );
        self.file = OpenOptions::new().append(true).open(&final_path)?;
        self.seg_seq = seq;
        self.seg_bytes = bytes.len() as u64;
        self.total_bytes = bytes.len() as u64;
        self.n_segments = 1;
        self.unsynced = 0;
        Ok(())
    }

    /// Tear the journal down after a session delete: rename the
    /// directory to `<id>.deleted` (atomic tombstone — recovery removes
    /// and ignores it), then remove it.
    pub fn destroy(self) -> io::Result<()> {
        let dir = self.dir.clone();
        drop(self);
        let tomb = dir.with_extension("deleted");
        fs::rename(&dir, &tomb)?;
        if let Some(parent) = tomb.parent() {
            let _ = sync_dir(parent);
        }
        fs::remove_dir_all(&tomb)
    }
}

/// Everything recovery learned about one session's journal.
#[derive(Debug, Clone)]
pub struct RecoveredJournal {
    /// Session the journal belongs to (directory name, verified against
    /// every segment header).
    pub session_id: u64,
    /// The logical record stream, starting at the newest checkpoint
    /// (or the original create when never compacted).
    pub records: Vec<Record>,
    /// A truncated final frame (or segment header) was dropped.
    pub torn_tail: bool,
    /// Sequence number of the last live segment (the append target).
    pub last_seg_seq: u32,
    /// Length of the valid prefix of that segment; reopening for append
    /// truncates the file to this.
    pub last_seg_clean_len: u64,
    /// Live segments on disk.
    pub n_segments: usize,
    /// Valid bytes across live segments.
    pub total_bytes: u64,
}

struct ParsedSegment {
    records: Vec<Record>,
    clean_len: u64,
    torn: bool,
    /// Header itself was truncated — the file holds no usable bytes.
    dropped: bool,
    /// The header's back-link: sealed byte length of the predecessor.
    prev_len: u64,
}

fn parse_segment(
    path: &Path,
    bytes: &[u8],
    session_id: u64,
    seq: u32,
    is_last: bool,
) -> Result<ParsedSegment, JournalError> {
    if bytes.len() < HEADER_LEN {
        if is_last {
            return Ok(ParsedSegment {
                records: Vec::new(),
                clean_len: 0,
                torn: true,
                dropped: true,
                prev_len: 0,
            });
        }
        return Err(corrupt(path, 0, "truncated header in interior segment"));
    }
    if &bytes[..8] != MAGIC {
        return Err(corrupt(path, 0, "bad magic"));
    }
    let version = u32::from_le_bytes(bytes[8..12].try_into().expect("4 bytes"));
    if version != FORMAT_VERSION {
        return Err(corrupt(path, 8, format!("unsupported version {version}")));
    }
    let sid = u64::from_le_bytes(bytes[12..20].try_into().expect("8 bytes"));
    if sid != session_id {
        return Err(corrupt(
            path,
            12,
            format!("session id {sid} != {session_id}"),
        ));
    }
    let hseq = u32::from_le_bytes(bytes[20..24].try_into().expect("4 bytes"));
    if hseq != seq {
        return Err(corrupt(path, 20, format!("segment seq {hseq} != {seq}")));
    }
    let prev_len = u64::from_le_bytes(bytes[24..32].try_into().expect("8 bytes"));

    let mut records = Vec::new();
    let mut offset = HEADER_LEN;
    loop {
        let remaining = bytes.len() - offset;
        if remaining == 0 {
            return Ok(ParsedSegment {
                records,
                clean_len: offset as u64,
                torn: false,
                dropped: false,
                prev_len,
            });
        }
        let complete = remaining >= 5 && {
            let len = u32::from_le_bytes(bytes[offset + 1..offset + 5].try_into().expect("4"));
            remaining >= FRAME_OVERHEAD + len as usize
        };
        if !complete {
            // The bytes stop mid-frame. Tolerated at the tail of the
            // last segment only: the record was never acknowledged.
            if is_last {
                return Ok(ParsedSegment {
                    records,
                    clean_len: offset as u64,
                    torn: true,
                    dropped: false,
                    prev_len,
                });
            }
            return Err(corrupt(
                path,
                offset as u64,
                "truncated frame in interior segment",
            ));
        }
        let len = u32::from_le_bytes(bytes[offset + 1..offset + 5].try_into().expect("4")) as usize;
        let body = &bytes[offset..offset + 5 + len];
        let stored = u32::from_le_bytes(
            bytes[offset + 5 + len..offset + FRAME_OVERHEAD + len]
                .try_into()
                .expect("4"),
        );
        let computed = crc32(body);
        if stored != computed {
            return Err(corrupt(
                path,
                offset as u64,
                format!("frame crc mismatch ({stored:08x} != {computed:08x})"),
            ));
        }
        let kind = RecordKind::from_u8(bytes[offset]).ok_or_else(|| {
            corrupt(
                path,
                offset as u64,
                format!("unknown record kind {}", bytes[offset]),
            )
        })?;
        records.push(Record {
            kind,
            payload: body[5..].to_vec(),
        });
        offset += FRAME_OVERHEAD + len;
    }
}

/// `(seq, path)` for every `seg-*.cadj` in `dir`, ascending; removes
/// leftover `*.tmp` files from an interrupted compaction.
fn list_segments(dir: &Path) -> Result<Vec<(u32, PathBuf)>, JournalError> {
    let mut segs = Vec::new();
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let name = entry.file_name();
        let name = name.to_string_lossy().into_owned();
        if name.ends_with(".tmp") {
            fs::remove_file(entry.path())?;
            continue;
        }
        let seq = name
            .strip_prefix("seg-")
            .and_then(|s| s.strip_suffix(".cadj"))
            .and_then(|s| s.parse::<u32>().ok());
        match seq {
            Some(seq) => segs.push((seq, entry.path())),
            None => {
                return Err(corrupt(
                    &entry.path(),
                    0,
                    "unexpected file in journal directory",
                ))
            }
        }
    }
    segs.sort_unstable_by_key(|&(seq, _)| seq);
    Ok(segs)
}

fn peek_is_checkpoint(path: &Path) -> bool {
    let mut buf = [0u8; HEADER_LEN + 1];
    match File::open(path).and_then(|mut f| f.read_exact(&mut buf)) {
        Ok(()) => &buf[..8] == MAGIC && buf[HEADER_LEN] == RecordKind::Checkpoint as u8,
        Err(_) => false,
    }
}

/// Read one session's journal back, tolerating a torn tail and cleaning
/// up compaction leftovers (stale pre-checkpoint segments, `.tmp`
/// files, a fully-torn trailing segment file).
///
/// Hard-errors with file + offset on any damage that is not a
/// truncated tail of the last segment.
pub fn recover_session(dir: &Path) -> Result<RecoveredJournal, JournalError> {
    let session_id: u64 = dir
        .file_name()
        .and_then(|n| n.to_str())
        .and_then(|n| n.parse().ok())
        .ok_or_else(|| corrupt(dir, 0, "journal directory name is not a session id"))?;
    let mut segs = list_segments(dir)?;
    if segs.is_empty() {
        return Err(corrupt(dir, 0, "journal directory has no segments"));
    }
    // Compaction may have crashed between renaming the checkpoint
    // segment and unlinking its predecessors: resume from the newest
    // checkpoint-first segment and drop everything older.
    let start = segs
        .iter()
        .rposition(|(_, path)| peek_is_checkpoint(path))
        .unwrap_or(0);
    for (_, path) in segs.drain(..start) {
        fs::remove_file(path)?;
    }
    for (expect, (seq, path)) in segs.iter().enumerate() {
        let want = segs[0].0 + expect as u32;
        if *seq != want {
            return Err(corrupt(path, 0, format!("missing segment {want}")));
        }
    }

    let mut records = Vec::new();
    let mut torn_tail = false;
    let mut total_bytes = 0u64;
    let mut live: Vec<(u32, u64)> = Vec::new(); // (seq, clean_len)
    let last = segs.len() - 1;
    for (i, (seq, path)) in segs.iter().enumerate() {
        let bytes = fs::read(path)?;
        let parsed = parse_segment(path, &bytes, session_id, *seq, i == last)?;
        if parsed.torn {
            torn_tail = true;
            cad_obs::counters::JOURNAL_TORN_TAILS.inc();
            cad_obs::events::record(cad_obs::EventKind::Recovery, "torn_tail", 0.0, session_id);
        }
        if parsed.dropped {
            // Not even a full header made it out: the file carries
            // nothing. Remove it and append to its predecessor.
            fs::remove_file(path)?;
            continue;
        }
        // The back-link makes sealed-segment truncation detectable even
        // when the loss ends exactly on a frame boundary.
        let expect_prev = live.last().map_or(0, |&(_, len)| len);
        if parsed.prev_len != expect_prev {
            return Err(corrupt(
                path,
                24,
                format!(
                    "previous segment length {expect_prev} does not match back-link {}",
                    parsed.prev_len
                ),
            ));
        }
        records.extend(parsed.records);
        total_bytes += parsed.clean_len;
        live.push((*seq, parsed.clean_len));
    }
    let (last_seg_seq, last_seg_clean_len) = match live.last() {
        Some(&(seq, len)) => (seq, len),
        None => {
            // The only segment was dropped; nothing usable remains.
            return Err(corrupt(dir, 0, "journal directory has no segments"));
        }
    };
    if let Some(first) = records.first() {
        if first.kind != RecordKind::Create && first.kind != RecordKind::Checkpoint {
            return Err(corrupt(
                &dir.join(segment_file_name(live[0].0)),
                HEADER_LEN as u64,
                format!("journal starts with {} record", first.kind.name()),
            ));
        }
    }
    Ok(RecoveredJournal {
        session_id,
        records,
        torn_tail,
        last_seg_seq,
        last_seg_clean_len,
        n_segments: live.len(),
        total_bytes,
    })
}

/// Recover every session journal under `root`, ascending by session id.
///
/// Housekeeping on the way: `*.deleted` tombstones and empty or
/// record-less session directories (a create that crashed before its
/// first record was acknowledged) are removed and not reported.
/// Journals whose stream ends in a [`RecordKind::Delete`] are likewise
/// removed — the deletion was acknowledged, so recovery honours it.
pub fn recover_root(root: &Path) -> Result<Vec<RecoveredJournal>, JournalError> {
    let mut out = Vec::new();
    for entry in fs::read_dir(root)? {
        let entry = entry?;
        if !entry.file_type()?.is_dir() {
            continue;
        }
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if name.ends_with(".deleted") {
            fs::remove_dir_all(entry.path())?;
            continue;
        }
        if name.parse::<u64>().is_err() {
            continue;
        }
        let dir = entry.path();
        if list_segments(&dir)?.is_empty() {
            fs::remove_dir_all(&dir)?;
            continue;
        }
        let rec = recover_session(&dir)?;
        if rec.records.is_empty() || rec.records.iter().any(|r| r.kind == RecordKind::Delete) {
            fs::remove_dir_all(&dir)?;
            continue;
        }
        out.push(rec);
    }
    out.sort_unstable_by_key(|r| r.session_id);
    Ok(out)
}

/// Read-only summary of one session's journal (for `cad journal
/// inspect`). Unlike [`recover_session`] this deletes nothing and
/// counts nothing.
#[derive(Debug, Clone)]
pub struct JournalInfo {
    /// Session the journal belongs to.
    pub session_id: u64,
    /// Live `(segment seq, bytes on disk)` pairs, ascending.
    pub segments: Vec<(u32, u64)>,
    /// Record counts: `[create, delta, delete, checkpoint]`.
    pub counts: [usize; 4],
    /// The last segment ends in a truncated frame.
    pub torn_tail: bool,
    /// Pre-checkpoint segments awaiting cleanup.
    pub stale_segments: usize,
}

/// Summarize every journal under `root` without modifying anything.
pub fn inspect_root(root: &Path) -> Result<Vec<JournalInfo>, JournalError> {
    let mut out = Vec::new();
    for entry in fs::read_dir(root)? {
        let entry = entry?;
        if !entry.file_type()?.is_dir() {
            continue;
        }
        let Some(session_id) = entry.file_name().to_string_lossy().parse::<u64>().ok() else {
            continue;
        };
        let dir = entry.path();
        let mut segs = Vec::new();
        for e in fs::read_dir(&dir)? {
            let e = e?;
            let name = e.file_name();
            let name = name.to_string_lossy().into_owned();
            if let Some(seq) = name
                .strip_prefix("seg-")
                .and_then(|s| s.strip_suffix(".cadj"))
                .and_then(|s| s.parse::<u32>().ok())
            {
                segs.push((seq, e.path()));
            }
        }
        segs.sort_unstable_by_key(|&(seq, _)| seq);
        let start = segs
            .iter()
            .rposition(|(_, path)| peek_is_checkpoint(path))
            .unwrap_or(0);
        let mut info = JournalInfo {
            session_id,
            segments: Vec::new(),
            counts: [0; 4],
            torn_tail: false,
            stale_segments: start,
        };
        let last = segs.len().saturating_sub(1);
        for (i, (seq, path)) in segs.iter().enumerate().skip(start) {
            let bytes = fs::read(path)?;
            let parsed = parse_segment(path, &bytes, session_id, *seq, i == last)?;
            info.torn_tail |= parsed.torn;
            if parsed.dropped {
                continue;
            }
            for r in &parsed.records {
                info.counts[match r.kind {
                    RecordKind::Create => 0,
                    RecordKind::Delta => 1,
                    RecordKind::Delete => 2,
                    RecordKind::Checkpoint => 3,
                }] += 1;
            }
            info.segments.push((*seq, bytes.len() as u64));
        }
        out.push(info);
    }
    out.sort_unstable_by_key(|i| i.session_id);
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp() -> PathBuf {
        static NEXT: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
        let id = NEXT.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        let dir =
            std::env::temp_dir().join(format!("cad-journal-test-{}-{id}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn fast_cfg() -> JournalConfig {
        JournalConfig {
            fsync: FsyncPolicy::Never,
            ..JournalConfig::default()
        }
    }

    fn record(kind: RecordKind, payload: &[u8]) -> Record {
        Record {
            kind,
            payload: payload.to_vec(),
        }
    }

    #[test]
    fn fsync_policy_names_round_trip() {
        for p in [
            FsyncPolicy::Always,
            FsyncPolicy::Never,
            FsyncPolicy::EveryN(8),
        ] {
            assert_eq!(FsyncPolicy::from_name(&p.name()), Some(p));
        }
        assert_eq!(FsyncPolicy::from_name("every-0"), None);
        assert_eq!(FsyncPolicy::from_name("sometimes"), None);
    }

    #[test]
    fn append_recover_round_trips() {
        let root = tmp();
        let mut j = SessionJournal::create(&root, 7, fast_cfg()).unwrap();
        j.append(RecordKind::Create, b"spec").unwrap();
        j.append(RecordKind::Delta, b"d1").unwrap();
        j.append(RecordKind::Delta, b"").unwrap();
        j.sync().unwrap();

        let rec = recover_session(&root.join("7")).unwrap();
        assert_eq!(rec.session_id, 7);
        assert!(!rec.torn_tail);
        assert_eq!(
            rec.records,
            vec![
                record(RecordKind::Create, b"spec"),
                record(RecordKind::Delta, b"d1"),
                record(RecordKind::Delta, b""),
            ]
        );

        // Reopen and keep appending; the tail picks up where it left off.
        let mut j = SessionJournal::open(&root, fast_cfg(), &rec).unwrap();
        j.append(RecordKind::Delta, b"d3").unwrap();
        j.sync().unwrap();
        let rec = recover_session(&root.join("7")).unwrap();
        assert_eq!(rec.records.len(), 4);
        assert_eq!(rec.records[3], record(RecordKind::Delta, b"d3"));
    }

    #[test]
    fn rotation_spreads_records_across_segments() {
        let root = tmp();
        let cfg = JournalConfig {
            max_segment_bytes: 64,
            ..fast_cfg()
        };
        let mut j = SessionJournal::create(&root, 3, cfg).unwrap();
        j.append(RecordKind::Create, &[b'x'; 40]).unwrap();
        for i in 0..5 {
            j.append(RecordKind::Delta, &[i; 40]).unwrap();
        }
        assert!(j.n_segments() > 1);
        let rec = recover_session(&root.join("3")).unwrap();
        assert_eq!(rec.records.len(), 6);
        assert_eq!(rec.n_segments, j.n_segments());
        assert!(j.needs_compaction());
    }

    #[test]
    fn compaction_replaces_history_with_checkpoint() {
        let root = tmp();
        let mut j = SessionJournal::create(&root, 9, fast_cfg()).unwrap();
        j.append(RecordKind::Create, b"spec").unwrap();
        j.append(RecordKind::Delta, b"d1").unwrap();
        j.compact(b"state-after-d1").unwrap();
        j.append(RecordKind::Delta, b"d2").unwrap();
        j.sync().unwrap();

        let rec = recover_session(&root.join("9")).unwrap();
        assert_eq!(
            rec.records,
            vec![
                record(RecordKind::Checkpoint, b"state-after-d1"),
                record(RecordKind::Delta, b"d2"),
            ]
        );
        assert_eq!(rec.n_segments, 1);

        // A stale pre-checkpoint segment left by a crashed compaction is
        // dropped on recovery.
        let stale = root.join("9").join(segment_file_name(1));
        let mut f = File::create(&stale).unwrap();
        f.write_all(&segment_header(9, 1, 0)).unwrap();
        f.write_all(&encode_frame(RecordKind::Create, b"old"))
            .unwrap();
        drop(f);
        let rec = recover_session(&root.join("9")).unwrap();
        assert_eq!(rec.records.len(), 2);
        assert!(!stale.exists(), "stale segment cleaned up");
    }

    #[test]
    fn destroy_leaves_no_trace_and_delete_record_is_honoured() {
        let root = tmp();
        let mut j = SessionJournal::create(&root, 5, fast_cfg()).unwrap();
        j.append(RecordKind::Create, b"spec").unwrap();
        j.append(RecordKind::Delete, b"").unwrap();
        j.destroy().unwrap();
        assert!(!root.join("5").exists());

        // A journal whose stream ends in Delete (destroy crashed) is
        // removed by recover_root rather than resurrected.
        let mut j = SessionJournal::create(&root, 6, fast_cfg()).unwrap();
        j.append(RecordKind::Create, b"spec").unwrap();
        j.append(RecordKind::Delete, b"").unwrap();
        j.sync().unwrap();
        drop(j);
        let recovered = recover_root(&root).unwrap();
        assert!(recovered.is_empty());
        assert!(!root.join("6").exists());
    }

    #[test]
    fn recover_root_skips_and_removes_crashed_creates() {
        let root = tmp();
        // Directory with no segments: a create that crashed after mkdir.
        fs::create_dir_all(root.join("11")).unwrap();
        // Directory whose only record stream is empty (header only).
        fs::create_dir_all(root.join("12")).unwrap();
        let mut f = File::create(root.join("12").join(segment_file_name(1))).unwrap();
        f.write_all(&segment_header(12, 1, 0)).unwrap();
        drop(f);
        // A healthy journal.
        let mut j = SessionJournal::create(&root, 13, fast_cfg()).unwrap();
        j.append(RecordKind::Create, b"spec").unwrap();
        j.sync().unwrap();
        drop(j);
        // A deletion tombstone.
        fs::create_dir_all(root.join("14.deleted")).unwrap();

        let recovered = recover_root(&root).unwrap();
        assert_eq!(recovered.len(), 1);
        assert_eq!(recovered[0].session_id, 13);
        assert!(!root.join("11").exists());
        assert!(!root.join("12").exists());
        assert!(!root.join("14.deleted").exists());
    }

    /// Build a two-segment journal and return (dir, all segment paths).
    fn corruption_fixture(root: &Path) -> (PathBuf, Vec<PathBuf>) {
        let cfg = JournalConfig {
            max_segment_bytes: 96,
            ..fast_cfg()
        };
        let mut j = SessionJournal::create(root, 21, cfg).unwrap();
        j.append(RecordKind::Create, b"the-session-spec").unwrap();
        j.append(RecordKind::Delta, &[1u8; 48]).unwrap();
        j.append(RecordKind::Delta, &[2u8; 48]).unwrap();
        j.append(RecordKind::Delta, b"tail-delta").unwrap();
        j.sync().unwrap();
        let dir = root.join("21");
        let segs: Vec<PathBuf> = list_segments(&dir)
            .unwrap()
            .into_iter()
            .map(|(_, p)| p)
            .collect();
        assert!(segs.len() >= 2, "fixture must span segments");
        (dir, segs)
    }

    #[test]
    fn every_single_byte_flip_is_rejected_or_cleanly_torn() {
        let root = tmp();
        let (dir, segs) = corruption_fixture(&root);
        let clean = recover_session(&dir).unwrap();
        let originals: Vec<Vec<u8>> = segs.iter().map(|p| fs::read(p).unwrap()).collect();
        let last = segs.len() - 1;

        for (si, path) in segs.iter().enumerate() {
            for pos in 0..originals[si].len() {
                for flip in [0x01u8, 0x80] {
                    let mut bytes = originals[si].clone();
                    bytes[pos] ^= flip;
                    fs::write(path, &bytes).unwrap();
                    match recover_session(&dir) {
                        Err(JournalError::Corrupt {
                            offset, path: p, ..
                        }) => {
                            assert_eq!(&p, path, "seg {si} byte {pos}");
                            assert!(
                                offset <= pos as u64,
                                "seg {si} byte {pos}: offset {offset} past the flip"
                            );
                        }
                        Ok(rec) => {
                            // The only acceptable acceptance: a flip in
                            // the final frame's length field that makes
                            // the last segment look truncated — the
                            // recovered stream must then be a strict
                            // clean prefix, never altered data.
                            assert_eq!(si, last, "interior flip at byte {pos} accepted");
                            assert!(
                                rec.torn_tail,
                                "flip at byte {pos} accepted without torn tail"
                            );
                            assert!(rec.records.len() < clean.records.len());
                            assert_eq!(
                                rec.records[..],
                                clean.records[..rec.records.len()],
                                "byte {pos}: surviving records altered"
                            );
                        }
                        Err(e) => panic!("seg {si} byte {pos}: unexpected error {e}"),
                    }
                }
            }
            fs::write(path, &originals[si]).unwrap();
        }
    }

    #[test]
    fn truncation_at_every_length_recovers_tail_or_rejects_interior() {
        let root = tmp();
        let (dir, segs) = corruption_fixture(&root);
        let clean = recover_session(&dir).unwrap();
        let originals: Vec<Vec<u8>> = segs.iter().map(|p| fs::read(p).unwrap()).collect();
        let last = segs.len() - 1;

        // Frame boundaries of the clean last segment. A cut exactly at
        // one is indistinguishable from the suffix never having been
        // written (a clean shorter journal); a cut anywhere else must
        // raise the torn-tail flag.
        let mut boundaries = vec![HEADER_LEN];
        {
            let b = &originals[last];
            let mut off = HEADER_LEN;
            while off < b.len() {
                let len = u32::from_le_bytes(b[off + 1..off + 5].try_into().unwrap()) as usize;
                off += FRAME_OVERHEAD + len;
                boundaries.push(off);
            }
        }

        // Truncating the LAST segment anywhere is tolerated: recovery
        // must succeed with a clean prefix of the record stream.
        for cut in 0..originals[last].len() {
            fs::write(&segs[last], &originals[last][..cut]).unwrap();
            let rec = recover_session(&dir)
                .unwrap_or_else(|e| panic!("tail truncation at {cut} must recover, got {e}"));
            assert!(rec.records.len() <= clean.records.len());
            assert_eq!(rec.records[..], clean.records[..rec.records.len()]);
            if boundaries.contains(&cut) {
                assert!(!rec.torn_tail, "cut {cut} at a boundary flagged torn");
            } else {
                assert!(rec.torn_tail, "cut {cut} lost bytes without the torn flag");
            }
            // recover_session deletes a header-torn file; restore it.
            fs::write(&segs[last], &originals[last]).unwrap();
        }

        // Truncating an INTERIOR segment is a hard error with an
        // offset — attributed to the truncated file itself, or (when
        // the cut lands exactly on a frame boundary) to the successor
        // whose header back-link exposes the missing bytes.
        for cut in 0..originals[0].len() {
            fs::write(&segs[0], &originals[0][..cut]).unwrap();
            match recover_session(&dir) {
                Err(JournalError::Corrupt { path, .. }) => {
                    assert!(path == segs[0] || path == segs[1], "cut {cut}: {path:?}")
                }
                other => panic!("interior truncation at {cut}: {other:?}"),
            }
        }
        fs::write(&segs[0], &originals[0]).unwrap();
        assert_eq!(recover_session(&dir).unwrap().records, clean.records);
    }

    #[test]
    fn inspect_reports_without_mutating() {
        let root = tmp();
        let mut j = SessionJournal::create(&root, 30, fast_cfg()).unwrap();
        j.append(RecordKind::Create, b"spec").unwrap();
        j.append(RecordKind::Delta, b"d1").unwrap();
        j.compact(b"ckpt").unwrap();
        j.append(RecordKind::Delta, b"d2").unwrap();
        j.sync().unwrap();
        // Leave a stale pre-checkpoint segment behind.
        let stale = root.join("30").join(segment_file_name(1));
        let mut f = File::create(&stale).unwrap();
        f.write_all(&segment_header(30, 1, 0)).unwrap();
        drop(f);

        let infos = inspect_root(&root).unwrap();
        assert_eq!(infos.len(), 1);
        let info = &infos[0];
        assert_eq!(info.session_id, 30);
        assert_eq!(info.counts, [0, 1, 0, 1]); // [create, delta, delete, checkpoint]
        assert_eq!(info.stale_segments, 1);
        assert!(!info.torn_tail);
        assert!(stale.exists(), "inspect must not clean up");
    }
}
