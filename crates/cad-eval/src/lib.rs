//! Evaluation utilities for the CAD reproduction.
//!
//! The quantitative experiments of the paper (§4.1, Figures 5–6) sweep a
//! detection threshold over node anomaly scores and compare against
//! ground truth with ROC curves and their AUC. This crate implements:
//!
//! * [`roc::roc_curve`] / [`roc::auc`] — exact ROC construction with tie
//!   handling and the Mann–Whitney AUC;
//! * [`roc::average_roc`] — vertical averaging over Monte-Carlo trials on
//!   a common FPR grid (how Figure 6's "averaged over 100 realizations"
//!   curves are produced);
//! * [`metrics`] — precision@k, best-F1 and related ranking summaries
//!   used by the qualitative experiments.

#![warn(missing_docs)]

pub mod metrics;
pub mod pr;
pub mod roc;

pub use metrics::{best_f1, precision_at_k};
pub use pr::{average_precision, pr_curve, PrCurve};
pub use roc::{auc, average_roc, roc_curve, RocCurve};
