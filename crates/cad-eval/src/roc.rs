//! ROC curves and AUC.

/// A receiver-operating-characteristic curve: `(fpr, tpr)` points from
/// `(0, 0)` to `(1, 1)`, non-decreasing in both coordinates.
#[derive(Debug, Clone, PartialEq)]
pub struct RocCurve {
    /// Curve points, starting at `(0, 0)` and ending at `(1, 1)`.
    pub points: Vec<(f64, f64)>,
}

impl RocCurve {
    /// Area under the curve by trapezoidal integration.
    pub fn auc(&self) -> f64 {
        self.points
            .windows(2)
            .map(|w| {
                let (x0, y0) = w[0];
                let (x1, y1) = w[1];
                (x1 - x0) * 0.5 * (y0 + y1)
            })
            .sum()
    }

    /// Interpolated TPR at the given FPR (linear between points).
    pub fn tpr_at(&self, fpr: f64) -> f64 {
        let fpr = fpr.clamp(0.0, 1.0);
        for w in self.points.windows(2) {
            let (x0, y0) = w[0];
            let (x1, y1) = w[1];
            if fpr <= x1 {
                if x1 == x0 {
                    // Vertical segment: report the higher TPR reached there.
                    return y1;
                }
                return y0 + (y1 - y0) * (fpr - x0) / (x1 - x0);
            }
        }
        1.0
    }
}

/// Build the ROC curve for scores vs boolean labels, sweeping the
/// decision threshold from `+∞` down. Ties in score advance both
/// coordinates at once (the standard convention, which makes the result
/// threshold-order independent).
///
/// Degenerate inputs (no positives or no negatives) yield the diagonal
/// from `(0,0)` to `(1,1)` so downstream averaging stays well-defined.
pub fn roc_curve(scores: &[f64], labels: &[bool]) -> RocCurve {
    assert_eq!(scores.len(), labels.len(), "scores and labels must align");
    cad_obs::global().add_counter("eval.roc_curves", 1);
    let p = labels.iter().filter(|&&l| l).count();
    let n = labels.len() - p;
    if p == 0 || n == 0 {
        return RocCurve {
            points: vec![(0.0, 0.0), (1.0, 1.0)],
        };
    }

    let mut order: Vec<usize> = (0..scores.len()).collect();
    order.sort_by(|&a, &b| scores[b].partial_cmp(&scores[a]).expect("finite scores"));

    let mut points = Vec::with_capacity(scores.len() + 2);
    points.push((0.0, 0.0));
    let (mut tp, mut fp) = (0usize, 0usize);
    let mut idx = 0;
    while idx < order.len() {
        // Consume the whole tie group before emitting a point.
        let s = scores[order[idx]];
        while idx < order.len() && scores[order[idx]] == s {
            if labels[order[idx]] {
                tp += 1;
            } else {
                fp += 1;
            }
            idx += 1;
        }
        points.push((fp as f64 / n as f64, tp as f64 / p as f64));
    }
    RocCurve { points }
}

/// AUC directly via the Mann–Whitney statistic (probability that a
/// random positive outscores a random negative, ties counting ½).
/// Equals the trapezoidal area of [`roc_curve`].
pub fn auc(scores: &[f64], labels: &[bool]) -> f64 {
    roc_curve(scores, labels).auc()
}

/// Vertically average several ROC curves on a uniform FPR grid with
/// `grid + 1` points — the standard way to average over Monte-Carlo
/// realizations (Figure 6 averages 100 of them).
pub fn average_roc(curves: &[RocCurve], grid: usize) -> RocCurve {
    assert!(grid >= 1, "need at least a 2-point grid");
    assert!(!curves.is_empty(), "need at least one curve");
    let points = (0..=grid)
        .map(|g| {
            let fpr = g as f64 / grid as f64;
            let mean_tpr = curves.iter().map(|c| c.tpr_at(fpr)).sum::<f64>() / curves.len() as f64;
            (fpr, mean_tpr)
        })
        .collect();
    RocCurve { points }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn perfect_separation() {
        let scores = [0.9, 0.8, 0.2, 0.1];
        let labels = [true, true, false, false];
        let c = roc_curve(&scores, &labels);
        assert!((c.auc() - 1.0).abs() < 1e-12);
        assert!((auc(&scores, &labels) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn inverted_separation() {
        let scores = [0.1, 0.2, 0.8, 0.9];
        let labels = [true, true, false, false];
        assert!(auc(&scores, &labels).abs() < 1e-12);
    }

    #[test]
    fn all_tied_is_half() {
        let scores = [0.5, 0.5, 0.5, 0.5];
        let labels = [true, false, true, false];
        assert!((auc(&scores, &labels) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn known_partial_auc() {
        // scores: pos {3, 1}, neg {2, 0}. Pairs: (3>2),(3>0),(1<2),(1>0)
        // → 3/4 concordant → AUC = 0.75.
        let scores = [3.0, 1.0, 2.0, 0.0];
        let labels = [true, true, false, false];
        assert!((auc(&scores, &labels) - 0.75).abs() < 1e-12);
    }

    #[test]
    fn degenerate_labels_give_diagonal() {
        let c = roc_curve(&[1.0, 2.0], &[true, true]);
        assert_eq!(c.points, vec![(0.0, 0.0), (1.0, 1.0)]);
        assert!((c.auc() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn tpr_interpolation() {
        let c = RocCurve {
            points: vec![(0.0, 0.0), (0.5, 1.0), (1.0, 1.0)],
        };
        assert!((c.tpr_at(0.25) - 0.5).abs() < 1e-12);
        assert!((c.tpr_at(0.75) - 1.0).abs() < 1e-12);
        assert_eq!(c.tpr_at(-1.0), 0.0);
        assert_eq!(c.tpr_at(2.0), 1.0);
    }

    #[test]
    fn averaging_two_curves() {
        let a = RocCurve {
            points: vec![(0.0, 0.0), (0.0, 1.0), (1.0, 1.0)],
        }; // perfect
        let b = RocCurve {
            points: vec![(0.0, 0.0), (1.0, 1.0)],
        }; // diagonal
        let avg = average_roc(&[a, b], 4);
        // At fpr 0.5: (1.0 + 0.5)/2 = 0.75.
        assert!((avg.tpr_at(0.5) - 0.75).abs() < 1e-12);
        assert!((avg.auc() - 0.75).abs() < 1e-2);
    }

    proptest! {
        #[test]
        fn prop_auc_in_unit_interval(
            scores in proptest::collection::vec(-10.0f64..10.0, 2..40),
            seed in 0u64..1000,
        ) {
            let labels: Vec<bool> =
                (0..scores.len()).map(|i| (i as u64 + seed).is_multiple_of(3)).collect();
            let a = auc(&scores, &labels);
            prop_assert!((0.0..=1.0).contains(&a));
        }

        #[test]
        fn prop_monotone_transform_invariant(
            scores in proptest::collection::vec(0.1f64..10.0, 4..30),
        ) {
            let labels: Vec<bool> = (0..scores.len()).map(|i| i % 2 == 0).collect();
            let transformed: Vec<f64> = scores.iter().map(|s| s.ln() * 3.0 + 1.0).collect();
            let a1 = auc(&scores, &labels);
            let a2 = auc(&transformed, &labels);
            prop_assert!((a1 - a2).abs() < 1e-12);
        }

        #[test]
        fn prop_curve_monotone(
            scores in proptest::collection::vec(-5.0f64..5.0, 4..30),
        ) {
            let labels: Vec<bool> = (0..scores.len()).map(|i| i % 3 == 0).collect();
            let c = roc_curve(&scores, &labels);
            for w in c.points.windows(2) {
                prop_assert!(w[1].0 >= w[0].0);
                prop_assert!(w[1].1 >= w[0].1);
            }
            prop_assert_eq!(*c.points.first().unwrap(), (0.0, 0.0));
            prop_assert_eq!(*c.points.last().unwrap(), (1.0, 1.0));
        }
    }
}
