//! Precision–recall curves and average precision.
//!
//! For heavily imbalanced ground truth (a handful of anomalous nodes in
//! thousands) PR curves discriminate harder than ROC; provided as a
//! complement to [`crate::roc`] for the quantitative experiments.

/// A precision–recall curve: `(recall, precision)` points with recall
/// non-decreasing.
#[derive(Debug, Clone, PartialEq)]
pub struct PrCurve {
    /// Curve points from recall 0 to 1.
    pub points: Vec<(f64, f64)>,
}

impl PrCurve {
    /// Average precision: the area under the PR curve computed as the
    /// step-wise sum `Σ (R_k − R_{k−1}) · P_k` over threshold cuts.
    pub fn average_precision(&self) -> f64 {
        let mut ap = 0.0;
        let mut prev_r = 0.0;
        for &(r, p) in &self.points {
            ap += (r - prev_r) * p;
            prev_r = r;
        }
        ap
    }
}

/// Build the PR curve by sweeping the threshold over descending scores
/// (ties advance together). Returns an empty-points curve when there are
/// no positives.
pub fn pr_curve(scores: &[f64], labels: &[bool]) -> PrCurve {
    assert_eq!(scores.len(), labels.len(), "scores and labels must align");
    let total_pos = labels.iter().filter(|&&l| l).count();
    if total_pos == 0 {
        return PrCurve { points: Vec::new() };
    }
    let mut order: Vec<usize> = (0..scores.len()).collect();
    order.sort_by(|&a, &b| scores[b].partial_cmp(&scores[a]).expect("finite scores"));

    let mut points = Vec::new();
    let (mut tp, mut taken) = (0usize, 0usize);
    let mut idx = 0;
    while idx < order.len() {
        let s = scores[order[idx]];
        while idx < order.len() && scores[order[idx]] == s {
            if labels[order[idx]] {
                tp += 1;
            }
            taken += 1;
            idx += 1;
        }
        points.push((tp as f64 / total_pos as f64, tp as f64 / taken as f64));
    }
    PrCurve { points }
}

/// Average precision directly.
pub fn average_precision(scores: &[f64], labels: &[bool]) -> f64 {
    pr_curve(scores, labels).average_precision()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_ranking_ap_is_one() {
        let scores = [0.9, 0.8, 0.2, 0.1];
        let labels = [true, true, false, false];
        assert!((average_precision(&scores, &labels) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn worst_ranking_ap() {
        // Positives ranked last among 4: AP = (1/3 + 2/4)/2 = 0.4167.
        let scores = [0.9, 0.8, 0.2, 0.1];
        let labels = [false, false, true, true];
        let ap = average_precision(&scores, &labels);
        assert!((ap - (1.0 / 3.0 + 0.5) / 2.0).abs() < 1e-12, "{ap}");
    }

    #[test]
    fn interleaved_known_value() {
        // Ranking: P N P N. Cuts: R=.5 P=1; R=.5 P=.5; R=1 P=2/3; R=1 P=.5.
        // AP = 0.5·1 + 0 + 0.5·(2/3) + 0 = 5/6.
        let scores = [4.0, 3.0, 2.0, 1.0];
        let labels = [true, false, true, false];
        let ap = average_precision(&scores, &labels);
        assert!((ap - 5.0 / 6.0).abs() < 1e-12, "{ap}");
    }

    #[test]
    fn no_positives_empty_curve() {
        let c = pr_curve(&[1.0, 2.0], &[false, false]);
        assert!(c.points.is_empty());
        assert_eq!(c.average_precision(), 0.0);
    }

    #[test]
    fn recall_non_decreasing() {
        let scores = [5.0, 4.0, 4.0, 2.0, 1.0, 0.5];
        let labels = [false, true, false, true, false, true];
        let c = pr_curve(&scores, &labels);
        assert!(c.points.windows(2).all(|w| w[1].0 >= w[0].0));
        assert_eq!(c.points.last().unwrap().0, 1.0);
    }
}
