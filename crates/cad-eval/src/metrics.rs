//! Ranking metrics beyond ROC.

/// Precision among the `k` highest-scoring items.
///
/// Ties at the cut are resolved by stable index order (matching the way
/// detection output lists are truncated). `k = 0` returns 0.
pub fn precision_at_k(scores: &[f64], labels: &[bool], k: usize) -> f64 {
    assert_eq!(scores.len(), labels.len());
    if k == 0 || scores.is_empty() {
        return 0.0;
    }
    let mut order: Vec<usize> = (0..scores.len()).collect();
    order.sort_by(|&a, &b| scores[b].partial_cmp(&scores[a]).expect("finite scores"));
    let k = k.min(order.len());
    let hits = order[..k].iter().filter(|&&i| labels[i]).count();
    hits as f64 / k as f64
}

/// Best F1 over all score thresholds, with the threshold achieving it.
///
/// Returns `(best_f1, threshold)`; `(0.0, +∞)` when there are no
/// positive labels.
pub fn best_f1(scores: &[f64], labels: &[bool]) -> (f64, f64) {
    assert_eq!(scores.len(), labels.len());
    let total_pos = labels.iter().filter(|&&l| l).count();
    if total_pos == 0 {
        return (0.0, f64::INFINITY);
    }
    let mut order: Vec<usize> = (0..scores.len()).collect();
    order.sort_by(|&a, &b| scores[b].partial_cmp(&scores[a]).expect("finite scores"));

    let mut best = (0.0f64, f64::INFINITY);
    let mut tp = 0usize;
    let mut taken = 0usize;
    let mut idx = 0;
    while idx < order.len() {
        let s = scores[order[idx]];
        while idx < order.len() && scores[order[idx]] == s {
            if labels[order[idx]] {
                tp += 1;
            }
            taken += 1;
            idx += 1;
        }
        let precision = tp as f64 / taken as f64;
        let recall = tp as f64 / total_pos as f64;
        if precision + recall > 0.0 {
            let f1 = 2.0 * precision * recall / (precision + recall);
            if f1 > best.0 {
                best = (f1, s);
            }
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn precision_at_k_basics() {
        let scores = [0.9, 0.8, 0.7, 0.1];
        let labels = [true, false, true, false];
        assert_eq!(precision_at_k(&scores, &labels, 1), 1.0);
        assert_eq!(precision_at_k(&scores, &labels, 2), 0.5);
        assert!((precision_at_k(&scores, &labels, 3) - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(precision_at_k(&scores, &labels, 10), 0.5); // clamped to len
        assert_eq!(precision_at_k(&scores, &labels, 0), 0.0);
    }

    #[test]
    fn best_f1_perfect() {
        let scores = [0.9, 0.8, 0.2, 0.1];
        let labels = [true, true, false, false];
        let (f1, thr) = best_f1(&scores, &labels);
        assert!((f1 - 1.0).abs() < 1e-12);
        assert_eq!(thr, 0.8);
    }

    #[test]
    fn best_f1_no_positives() {
        let (f1, thr) = best_f1(&[1.0, 2.0], &[false, false]);
        assert_eq!(f1, 0.0);
        assert!(thr.is_infinite());
    }

    #[test]
    fn best_f1_with_ties() {
        // Tied scores form one group; F1 computed at group boundaries.
        let scores = [1.0, 1.0, 0.0];
        let labels = [true, false, true];
        let (f1, _) = best_f1(&scores, &labels);
        // Taking the tie group: P=0.5, R=0.5 → F1=0.5; taking all:
        // P=2/3, R=1 → F1=0.8. Best is 0.8.
        assert!((f1 - 0.8).abs() < 1e-12);
    }

    #[test]
    fn empty_inputs() {
        assert_eq!(precision_at_k(&[], &[], 3), 0.0);
        let (f1, _) = best_f1(&[], &[]);
        assert_eq!(f1, 0.0);
    }
}
