//! Live-telemetry export: Prometheus text rendering and the embedded
//! `/metrics` + `/healthz` HTTP endpoint.
//!
//! Everything here is hand-rolled on `std::net::TcpListener` — one
//! accept thread, HTTP/1.1 `GET` only — on top of the shared
//! [`crate::http`] request plumbing (fragmented-write reassembly,
//! header/body caps, read/write deadlines, keep-alive), because the
//! crate is zero-dependency by contract. The server exists to feed a
//! Prometheus scraper (or a `curl` in CI) during `cad watch`; it is not
//! a general web server and deliberately rejects everything but
//! `GET /metrics` and `GET /healthz`.
//!
//! [`render_prometheus`] snapshots the process-wide sinks — well-known
//! [`counters`](crate::metrics::counters), well-known
//! [`histograms`](crate::hist::histograms) and the [`global`] span
//! registry — into Prometheus text-exposition format (version 0.0.4):
//! counters as `cad_<name>_total`, histograms as cumulative
//! `_bucket{le=...}` series plus `_sum`/`_count`, span aggregates as
//! `cad_span_seconds_total{path=...}` / `cad_span_calls_total{path=...}`.

use crate::global;
use crate::hist::{bucket_le, histograms, Histogram, N_BUCKETS};
use crate::http::{self, HttpLimits};
use crate::metrics::counters;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Turn a dotted metric name into a Prometheus-legal one:
/// `linalg.cg_solves` → `cad_linalg_cg_solves`.
fn prom_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 4);
    out.push_str("cad_");
    for c in name.chars() {
        if c.is_ascii_alphanumeric() {
            out.push(c);
        } else {
            out.push('_');
        }
    }
    out
}

/// Escape a label value per the exposition format.
fn escape_label(v: &str) -> String {
    v.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

/// Format an f64 for the exposition format (`+Inf` for infinity).
fn prom_f64(v: f64) -> String {
    if v.is_infinite() {
        if v > 0.0 {
            "+Inf".into()
        } else {
            "-Inf".into()
        }
    } else if v.is_nan() {
        "NaN".into()
    } else if v == v.trunc() && v.abs() < 1e15 {
        format!("{v}")
    } else {
        format!("{v:e}")
    }
}

/// Append one histogram's sample lines (`_bucket`/`_sum`/`_count`),
/// optionally tagged with a `key="value"` label pair. The `# TYPE`
/// header is the caller's job so labeled and unlabeled series of the
/// same family can share one declaration.
fn render_histogram_series(
    out: &mut String,
    base: &str,
    label: Option<(&str, &str)>,
    h: &Histogram,
) {
    let tag = match label {
        Some((k, v)) => format!("{k}=\"{}\",", escape_label(v)),
        None => String::new(),
    };
    let mut cumulative = 0u64;
    for i in 0..N_BUCKETS {
        let c = h.bucket_counts()[i];
        cumulative += c;
        // Only print boundary buckets plus non-empty ones to keep the
        // payload small; cumulative counts stay correct because `le`
        // series are monotone and the final +Inf bucket is always shown.
        if c > 0 || i == N_BUCKETS - 1 {
            out.push_str(&format!(
                "{base}_bucket{{{tag}le=\"{}\"}} {cumulative}\n",
                prom_f64(bucket_le(i))
            ));
        }
    }
    let plain_tag = match label {
        Some((k, v)) => format!("{{{k}=\"{}\"}}", escape_label(v)),
        None => String::new(),
    };
    out.push_str(&format!("{base}_sum{plain_tag} {}\n", prom_f64(h.sum)));
    out.push_str(&format!("{base}_count{plain_tag} {}\n", h.count));
}

fn render_histogram(out: &mut String, name: &str, help: &str, h: &Histogram) {
    let base = prom_name(name);
    out.push_str(&format!("# HELP {base} {help}\n"));
    out.push_str(&format!("# TYPE {base} histogram\n"));
    render_histogram_series(out, &base, None, h);
}

/// Render the live process-wide metric sinks as Prometheus text
/// (exposition format 0.0.4). Deterministic given a fixed sink state:
/// well-known counters, gauges and histograms print in their stable
/// declaration order (labeled series in label-value declaration order),
/// span paths in BTreeMap (lexicographic) order.
pub fn render_prometheus() -> String {
    let labeled_counters = crate::metrics::labeled::snapshot();
    let labeled_hists = crate::hist::histograms::labeled::snapshot();
    let mut out = String::new();
    for (name, value) in counters::snapshot() {
        let base = prom_name(name);
        out.push_str(&format!("# TYPE {base}_total counter\n"));
        out.push_str(&format!("{base}_total {value}\n"));
        // A labeled family with the same name shares this declaration:
        // the unlabeled series stays the all-values aggregate.
        for (fam_name, label, cells) in &labeled_counters {
            if *fam_name != name {
                continue;
            }
            for (val, n) in cells {
                if *n > 0 {
                    out.push_str(&format!(
                        "{base}_total{{{label}=\"{}\"}} {n}\n",
                        escape_label(val)
                    ));
                }
            }
        }
    }
    // Labeled counter families without an unlabeled sibling.
    for (fam_name, label, cells) in &labeled_counters {
        if counters::snapshot().iter().any(|(n, _)| n == fam_name) {
            continue;
        }
        let base = prom_name(fam_name);
        out.push_str(&format!("# TYPE {base}_total counter\n"));
        for (val, n) in cells {
            if *n > 0 {
                out.push_str(&format!(
                    "{base}_total{{{label}=\"{}\"}} {n}\n",
                    escape_label(val)
                ));
            }
        }
    }
    for (name, value) in crate::metrics::gauges::snapshot() {
        let base = prom_name(name);
        out.push_str(&format!("# TYPE {base} gauge\n"));
        out.push_str(&format!("{base} {value}\n"));
    }
    for (name, h) in histograms::snapshot() {
        render_histogram(&mut out, name, "log-bucketed value distribution", &h);
        for (fam_name, label, cells) in &labeled_hists {
            if *fam_name != name {
                continue;
            }
            for (val, lh) in cells {
                if lh.count > 0 {
                    render_histogram_series(&mut out, &prom_name(name), Some((label, val)), lh);
                }
            }
        }
    }
    // Labeled histogram families without an unlabeled sibling.
    for (fam_name, label, cells) in &labeled_hists {
        if histograms::snapshot().iter().any(|(n, _)| n == fam_name) {
            continue;
        }
        let base = prom_name(fam_name);
        out.push_str(&format!("# TYPE {base} histogram\n"));
        for (val, lh) in cells {
            if lh.count > 0 {
                render_histogram_series(&mut out, &base, Some((label, val)), lh);
            }
        }
    }
    let snap = global().snapshot();
    if !snap.spans.is_empty() {
        out.push_str("# TYPE cad_span_seconds_total counter\n");
        for (path, stat) in &snap.spans {
            out.push_str(&format!(
                "cad_span_seconds_total{{path=\"{}\"}} {}\n",
                escape_label(path),
                prom_f64(stat.total_secs)
            ));
        }
        out.push_str("# TYPE cad_span_calls_total counter\n");
        for (path, stat) in &snap.spans {
            out.push_str(&format!(
                "cad_span_calls_total{{path=\"{}\"}} {}\n",
                escape_label(path),
                stat.calls
            ));
        }
    }
    out
}

/// Shared liveness state for `/healthz`: when the last transition was
/// processed and how many have been, updated by the watch loop.
#[derive(Debug)]
pub struct WatchHealth {
    start: Instant,
    /// Milliseconds since `start` of the last processed transition
    /// (`u64::MAX` = none yet).
    last_ms: AtomicU64,
    transitions: AtomicU64,
}

impl WatchHealth {
    /// Fresh health state anchored at "now".
    pub fn new() -> Self {
        WatchHealth {
            start: Instant::now(),
            last_ms: AtomicU64::new(u64::MAX),
            transitions: AtomicU64::new(0),
        }
    }

    /// Mark one transition as processed "now".
    pub fn mark_transition(&self) {
        let ms = self.start.elapsed().as_millis() as u64;
        self.last_ms.store(ms, Ordering::Relaxed);
        self.transitions.fetch_add(1, Ordering::Relaxed);
    }

    /// Transitions processed so far.
    pub fn transitions(&self) -> u64 {
        self.transitions.load(Ordering::Relaxed)
    }

    /// Seconds since the last transition (`None` before the first).
    pub fn last_transition_age_secs(&self) -> Option<f64> {
        let last = self.last_ms.load(Ordering::Relaxed);
        if last == u64::MAX {
            return None;
        }
        let now = self.start.elapsed().as_millis() as u64;
        Some(now.saturating_sub(last) as f64 / 1000.0)
    }

    fn healthz_json(&self) -> String {
        let age = match self.last_transition_age_secs() {
            Some(a) => format!("{a:.3}"),
            None => "null".to_string(),
        };
        format!(
            "{{\"status\": \"ok\", \"transitions\": {}, \"uptime_secs\": {:.3}, \"last_transition_age_secs\": {}}}\n",
            self.transitions(),
            self.start.elapsed().as_secs_f64(),
            age
        )
    }
}

impl Default for WatchHealth {
    fn default() -> Self {
        Self::new()
    }
}

/// The embedded metrics endpoint: one listener thread serving
/// `GET /metrics` (Prometheus text) and `GET /healthz` (JSON liveness).
#[derive(Debug)]
pub struct MetricsServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl MetricsServer {
    /// Bind `addr` (port 0 picks a free port — see [`Self::addr`]) and
    /// start serving on a background thread.
    pub fn start(addr: &str, health: Arc<WatchHealth>) -> std::io::Result<MetricsServer> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let stop2 = Arc::clone(&stop);
        let handle = std::thread::Builder::new()
            .name("cad-metrics".into())
            .spawn(move || {
                for conn in listener.incoming() {
                    if stop2.load(Ordering::Relaxed) {
                        break;
                    }
                    if let Ok(stream) = conn {
                        // Serve inline: requests are tiny and rare
                        // (scrapes), so one thread is plenty.
                        serve_conn(stream, &health);
                    }
                }
            })?;
        Ok(MetricsServer {
            addr: local,
            stop,
            handle: Some(handle),
        })
    }

    /// The bound address (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stop the listener thread and wait for it to exit.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        if let Some(handle) = self.handle.take() {
            self.stop.store(true, Ordering::Relaxed);
            // Wake the blocking accept with a throwaway connection.
            let _ = TcpStream::connect(self.addr);
            let _ = handle.join();
        }
    }
}

impl Drop for MetricsServer {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

/// Request limits for the scrape endpoint: scrapes are tiny GETs, so
/// the caps are tight and a stalled or oversized peer is cut off fast
/// (431/400/408 via the shared [`http`] module) instead of pinning the
/// single listener thread.
fn scrape_limits() -> HttpLimits {
    HttpLimits {
        max_head_bytes: 4 * 1024,
        max_body_bytes: 4 * 1024,
        read_timeout: Some(Duration::from_secs(5)),
        write_timeout: Some(Duration::from_secs(5)),
    }
}

/// Serve one connection (possibly several keep-alive requests).
fn serve_conn(mut stream: TcpStream, health: &WatchHealth) {
    let limits = scrape_limits();
    loop {
        let req = match http::read_request(&mut stream, &limits) {
            Ok(req) => req,
            Err(err) => {
                http::respond_read_error(&mut stream, &err);
                return;
            }
        };
        let (status, content_type, body) = if req.method != "GET" {
            (
                405,
                "application/json",
                http::error_body("method_not_allowed", "only GET is served here"),
            )
        } else {
            match req.path.as_str() {
                "/metrics" => (
                    200,
                    "text/plain; version=0.0.4; charset=utf-8",
                    render_prometheus(),
                ),
                "/healthz" => (200, "application/json", health.healthz_json()),
                _ => (
                    404,
                    "application/json",
                    http::error_body("not_found", &format!("no route for {}", req.path)),
                ),
            }
        };
        // Only successful scrapes keep the connection: an erroring
        // client gets its status and is disconnected rather than
        // holding the single listener thread through keep-alive.
        let keep = req.keep_alive && status == 200;
        if http::write_response(
            &mut stream,
            status,
            content_type,
            body.as_bytes(),
            keep,
            &[],
        )
        .is_err()
            || !keep
        {
            return;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{BufRead, Read, Write};

    fn http_get(addr: SocketAddr, path: &str) -> (String, String) {
        let mut stream = TcpStream::connect(addr).expect("connect");
        stream
            .write_all(
                format!("GET {path} HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n").as_bytes(),
            )
            .expect("write request");
        let mut response = String::new();
        stream.read_to_string(&mut response).expect("read response");
        let (head, body) = response.split_once("\r\n\r\n").expect("header split");
        (head.to_string(), body.to_string())
    }

    #[test]
    fn prom_names_are_sanitized() {
        assert_eq!(prom_name("linalg.cg_solves"), "cad_linalg_cg_solves");
        assert_eq!(prom_name("oracle_build_secs"), "cad_oracle_build_secs");
    }

    #[test]
    fn prom_f64_formats() {
        assert_eq!(prom_f64(f64::INFINITY), "+Inf");
        assert_eq!(prom_f64(3.0), "3");
        assert_eq!(prom_f64(1.25), "1.25e0");
    }

    #[test]
    fn render_contains_counters_and_histogram_series() {
        crate::counters::SPMV.add(7);
        crate::histograms::CG_ITERATIONS.observe(12.0);
        let text = render_prometheus();
        assert!(text.contains("cad_linalg_spmv_total"), "{text}");
        assert!(text.contains("# TYPE cad_cg_iterations histogram"));
        assert!(text.contains("cad_cg_iterations_bucket{le=\"+Inf\"}"));
        assert!(text.contains("cad_cg_iterations_sum"));
        assert!(text.contains("cad_cg_iterations_count"));
        // Exposition format: every line is `name{labels} value` or a
        // comment; assert no line is empty or malformed.
        for line in text.lines() {
            assert!(
                line.starts_with('#') || line.split_whitespace().count() == 2,
                "malformed line: {line}"
            );
        }
    }

    #[test]
    fn render_contains_gauges_and_labeled_series() {
        crate::metrics::gauges::SERVE_QUEUE_DEPTH.set(3);
        crate::metrics::labeled::REBUILD_FALLBACKS_BY_REASON.inc("structural");
        crate::histograms::labeled::SERVE_PUSH_SECS_BY_ENGINE.observe("exact", 0.01);
        let text = render_prometheus();
        assert!(
            text.contains("# TYPE cad_serve_queue_depth gauge"),
            "{text}"
        );
        assert!(text.contains("cad_serve_queue_depth 3"), "{text}");
        assert!(!text.contains("cad_serve_queue_depth_total"), "{text}");
        assert!(
            text.contains("cad_commute_rebuild_fallbacks_total{reason=\"structural\"}"),
            "{text}"
        );
        assert!(
            text.contains("cad_serve_push_secs_bucket{engine=\"exact\",le=\"+Inf\"} 1"),
            "{text}"
        );
        assert!(
            text.contains("cad_serve_push_secs_count{engine=\"exact\"} 1"),
            "{text}"
        );
        // One TYPE declaration per family, even with labeled siblings.
        let fallback_types = text
            .lines()
            .filter(|l| l.starts_with("# TYPE cad_commute_rebuild_fallbacks_total"))
            .count();
        assert_eq!(fallback_types, 1);
        let push_types = text
            .lines()
            .filter(|l| l.starts_with("# TYPE cad_serve_push_secs"))
            .count();
        assert_eq!(push_types, 1);
        for line in text.lines() {
            assert!(
                line.starts_with('#') || line.split_whitespace().count() == 2,
                "malformed line: {line}"
            );
        }
        crate::metrics::gauges::SERVE_QUEUE_DEPTH.reset();
    }

    #[test]
    fn server_serves_metrics_healthz_and_404() {
        let health = Arc::new(WatchHealth::new());
        let server = MetricsServer::start("127.0.0.1:0", Arc::clone(&health)).expect("bind");
        let addr = server.addr();

        let (head, body) = http_get(addr, "/metrics");
        assert!(head.starts_with("HTTP/1.1 200 OK"), "{head}");
        assert!(head.contains("text/plain; version=0.0.4"));
        assert!(body.contains("_total"));

        let (head, body) = http_get(addr, "/healthz");
        assert!(head.starts_with("HTTP/1.1 200 OK"));
        assert!(
            body.contains("\"last_transition_age_secs\": null"),
            "{body}"
        );
        health.mark_transition();
        let (_, body) = http_get(addr, "/healthz");
        assert!(body.contains("\"transitions\": 1"), "{body}");
        assert!(!body.contains("null"), "{body}");

        let (head, _) = http_get(addr, "/nope");
        assert!(head.starts_with("HTTP/1.1 404"));

        server.shutdown();
        // Port is released: a fresh bind to the same port succeeds.
        let rebind = TcpListener::bind(addr);
        assert!(rebind.is_ok());
        let _ = rebind;
    }

    #[test]
    fn healthz_age_tracks_transitions() {
        let h = WatchHealth::new();
        assert!(h.last_transition_age_secs().is_none());
        h.mark_transition();
        let age = h.last_transition_age_secs().expect("marked");
        assert!((0.0..5.0).contains(&age));
        assert_eq!(h.transitions(), 1);
        // JSON is parseable by our own parser.
        let parsed = crate::parse_json(&h.healthz_json()).expect("healthz json");
        assert_eq!(parsed.get("status").and_then(|j| j.as_str()), Some("ok"));
    }

    #[test]
    fn serve_rejects_non_get() {
        let health = Arc::new(WatchHealth::new());
        let server = MetricsServer::start("127.0.0.1:0", health).expect("bind");
        let mut stream = TcpStream::connect(server.addr()).expect("connect");
        stream
            .write_all(b"POST /metrics HTTP/1.1\r\nHost: x\r\n\r\n")
            .expect("write");
        let mut reader = std::io::BufReader::new(stream);
        let mut line = String::new();
        reader.read_line(&mut line).expect("read status line");
        assert!(line.starts_with("HTTP/1.1 405"), "{line}");
        server.shutdown();
    }

    #[test]
    fn serve_survives_fragmented_requests() {
        let health = Arc::new(WatchHealth::new());
        let server = MetricsServer::start("127.0.0.1:0", health).expect("bind");
        let mut stream = TcpStream::connect(server.addr()).expect("connect");
        for chunk in [
            "GET /hea",
            "lthz HTTP/1.1\r\n",
            "Host: x\r\nConnec",
            "tion: close\r\n\r\n",
        ] {
            stream.write_all(chunk.as_bytes()).expect("write chunk");
            stream.flush().expect("flush");
            std::thread::sleep(std::time::Duration::from_millis(5));
        }
        let mut response = String::new();
        stream.read_to_string(&mut response).expect("read");
        assert!(response.starts_with("HTTP/1.1 200 OK"), "{response}");
        assert!(response.contains("\"status\": \"ok\""), "{response}");
        server.shutdown();
    }

    #[test]
    fn serve_rejects_oversized_heads_with_431() {
        let health = Arc::new(WatchHealth::new());
        let server = MetricsServer::start("127.0.0.1:0", health).expect("bind");
        let mut stream = TcpStream::connect(server.addr()).expect("connect");
        stream
            .write_all(b"GET /metrics HTTP/1.1\r\n")
            .expect("write");
        let padding = format!("X-Padding: {}\r\n", "a".repeat(512));
        // Keep writing headers until the server cuts us off or we are
        // far past the 4 KiB cap.
        for _ in 0..32 {
            if stream.write_all(padding.as_bytes()).is_err() {
                break;
            }
        }
        let _ = stream.write_all(b"\r\n");
        let mut response = String::new();
        let _ = stream.read_to_string(&mut response);
        assert!(response.starts_with("HTTP/1.1 431"), "{response}");
        assert!(response.contains("head_too_large"), "{response}");
        server.shutdown();
    }

    #[test]
    fn serve_rejects_garbage_with_400_instead_of_hanging() {
        let health = Arc::new(WatchHealth::new());
        let server = MetricsServer::start("127.0.0.1:0", health).expect("bind");
        let mut stream = TcpStream::connect(server.addr()).expect("connect");
        stream
            .write_all(b"\x01\x02garbage that is not http\r\n\r\n")
            .expect("write");
        let mut response = String::new();
        stream.read_to_string(&mut response).expect("read");
        assert!(response.starts_with("HTTP/1.1 400"), "{response}");
        assert!(response.contains("bad_request"), "{response}");
        // The server is still alive and serving after the bad client.
        let (head, _) = http_get(server.addr(), "/metrics");
        assert!(head.starts_with("HTTP/1.1 200 OK"), "{head}");
        server.shutdown();
    }
}
