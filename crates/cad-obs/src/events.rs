//! The flight recorder: a lock-free bounded ring of structured events.
//!
//! Every notable per-request incident — span open/close, queue waits,
//! oracle update outcomes, rebuild fallbacks, errors, session evictions
//! — is recorded as one fixed-size [`EventRecord`] stamped with the
//! ambient [`crate::trace::TraceCtx`]. The ring holds the newest
//! [`RING_CAPACITY`] records, overwriting the oldest; every overwritten
//! (or superseded-in-flight) record advances an explicit `dropped`
//! counter, so `total = retained + dropped` always balances.
//!
//! The implementation is wait-free for the common path and entirely
//! safe code: a global `fetch_add` claims a sequence number, and each
//! slot is a tiny all-atomic seqlock (odd version = write in flight).
//! Concurrent writers that collide on a slot (two claims a full ring
//! apart) serialize on the version CAS; a writer that finds its slot
//! already taken by a *newer* sequence abandons its write — that record
//! was doomed to be overwritten anyway and is exactly the one the
//! `dropped` counter already charged. Readers ([`FlightRecorder::
//! snapshot`]) validate the version before and after copying a slot and
//! skip records caught mid-write.
//!
//! Event names come from a closed table ([`EVENT_NAMES`]) so a record
//! stays plain-old-data (everything is a `u64`); unknown names map to
//! `"other"`. This is the same bounded-cardinality discipline the
//! labeled Prometheus series follow (DESIGN.md §12).

use std::sync::atomic::{fence, AtomicU64, Ordering};

/// Number of retained records; older ones are overwritten.
pub const RING_CAPACITY: usize = 1024;

/// What happened. The discriminant is stored in the ring, so variants
/// are append-only.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// A trace child span was entered (`secs` is 0).
    SpanOpen = 0,
    /// A trace child span closed; `secs` is its duration.
    SpanClose = 1,
    /// One completed HTTP request; `detail` is the status code.
    Request = 2,
    /// Time a connection spent queued before a worker picked it up.
    QueueWait = 3,
    /// An oracle step outcome; `name` is the mode taken
    /// (`incremental`/`rebuild`), `detail` the change count.
    Update = 4,
    /// An incremental update fell back to a rebuild; `name` is the
    /// [`RebuildReason`](https://docs.rs) name.
    Fallback = 5,
    /// A request failed; `name` is the error code, `detail` the status.
    Error = 6,
    /// A session was evicted or deleted; `detail` is the session id.
    Eviction = 7,
    /// A session was rebuilt from its journal at boot; `name` is
    /// `recovery` (or `torn_tail` when a truncated final frame was
    /// dropped), `detail` the session id, `secs` the replay time.
    Recovery = 8,
    /// A journal was compacted to a checkpoint segment; `detail` is the
    /// session id, `secs` the compaction time.
    Compaction = 9,
}

impl EventKind {
    /// Stable lowercase name (debug endpoint, stderr dumps).
    pub fn name(self) -> &'static str {
        match self {
            EventKind::SpanOpen => "span_open",
            EventKind::SpanClose => "span_close",
            EventKind::Request => "request",
            EventKind::QueueWait => "queue_wait",
            EventKind::Update => "update",
            EventKind::Fallback => "fallback",
            EventKind::Error => "error",
            EventKind::Eviction => "eviction",
            EventKind::Recovery => "recovery",
            EventKind::Compaction => "compaction",
        }
    }

    fn from_code(code: u64) -> EventKind {
        match code {
            1 => EventKind::SpanClose,
            2 => EventKind::Request,
            3 => EventKind::QueueWait,
            4 => EventKind::Update,
            5 => EventKind::Fallback,
            6 => EventKind::Error,
            7 => EventKind::Eviction,
            8 => EventKind::Recovery,
            9 => EventKind::Compaction,
            _ => EventKind::SpanOpen,
        }
    }
}

/// The closed set of event names the ring can carry. Index 0 is the
/// catch-all; instrumentation points passing a name not listed here
/// record as `"other"` (add the name to the table instead).
pub const EVENT_NAMES: &[&str] = &[
    "other",
    // request routes
    "request",
    "queue_wait",
    "push",
    "create",
    "status",
    "delete",
    "admin",
    "debug_trace",
    "debug_profile",
    "metrics",
    "healthz",
    "shutdown",
    "drain",
    // the span `cad profile` wraps around its command
    "command",
    // detector phases
    "oracle_build",
    "oracle_update",
    "score",
    "apply_delta",
    "laplacian_solve",
    // oracle step modes
    "incremental",
    "rebuild",
    // rebuild fallback reasons
    "structural",
    "degenerate",
    "unsupported",
    "refresh",
    // session lifecycle
    "session_created",
    "session_evicted",
    "session_deleted",
    "rejected_backpressure",
    // error codes
    "bad_request",
    "timeout",
    "body_too_large",
    "head_too_large",
    "overloaded",
    "not_found",
    "method_not_allowed",
    "conflict",
    "session_cap",
    "unknown_session",
    "internal",
    "rate_limited",
    // journal lifecycle
    "recovery",
    "torn_tail",
    "compaction",
    "journal_error",
];

fn name_code(name: &str) -> u64 {
    EVENT_NAMES.iter().position(|&n| n == name).unwrap_or(0) as u64
}

fn name_of(code: u64) -> &'static str {
    EVENT_NAMES.get(code as usize).copied().unwrap_or("other")
}

/// One recorded event, as copied out of the ring.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EventRecord {
    /// Global sequence number (monotone; gaps mean dropped records).
    pub seq: u64,
    /// Wall-clock Unix epoch milliseconds at record time.
    pub ts_ms: u64,
    /// The ambient trace id (0 outside a request).
    pub trace_id: u64,
    /// The ambient session id (0 outside a session).
    pub session_id: u64,
    /// What happened.
    pub kind: EventKind,
    /// Name from the closed [`EVENT_NAMES`] table.
    pub name: &'static str,
    /// Duration / wait seconds (0 when not applicable).
    pub secs: f64,
    /// Kind-specific detail (status code, change count, session id...).
    pub detail: u64,
}

impl EventRecord {
    /// The record as a JSON object (debug endpoint, stderr dumps).
    pub fn to_json(&self) -> crate::Json {
        crate::Json::obj(vec![
            ("seq", crate::Json::Num(self.seq as f64)),
            ("ts_ms", crate::Json::Num(self.ts_ms as f64)),
            (
                "trace_id",
                crate::Json::Str(crate::trace::id_hex(self.trace_id)),
            ),
            ("session", crate::Json::Num(self.session_id as f64)),
            ("kind", crate::Json::Str(self.kind.name().to_string())),
            ("name", crate::Json::Str(self.name.to_string())),
            ("secs", crate::Json::Num(self.secs)),
            ("detail", crate::Json::Num(self.detail as f64)),
        ])
    }
}

/// One all-atomic slot. `version` is the seqlock: 0 = never written,
/// odd = write in flight, `2 * seq + 2` = record `seq` committed.
struct Slot {
    version: AtomicU64,
    seq: AtomicU64,
    ts_ms: AtomicU64,
    trace_id: AtomicU64,
    session_id: AtomicU64,
    /// `kind` in the low 8 bits, name code above.
    meta: AtomicU64,
    secs_bits: AtomicU64,
    detail: AtomicU64,
}

impl Slot {
    const fn new() -> Slot {
        Slot {
            version: AtomicU64::new(0),
            seq: AtomicU64::new(0),
            ts_ms: AtomicU64::new(0),
            trace_id: AtomicU64::new(0),
            session_id: AtomicU64::new(0),
            meta: AtomicU64::new(0),
            secs_bits: AtomicU64::new(0),
            detail: AtomicU64::new(0),
        }
    }
}

/// The process-wide bounded event ring. Obtain it via [`recorder`].
pub struct FlightRecorder {
    head: AtomicU64,
    dropped: AtomicU64,
    slots: [Slot; RING_CAPACITY],
}

/// A consistent view of the ring: the retained records (oldest first)
/// and the drop accounting at snapshot time.
#[derive(Debug, Clone, PartialEq)]
pub struct RingSnapshot {
    /// Records ever claimed (monotone).
    pub total: u64,
    /// Records lost to overwrite (monotone; `total - dropped` is an
    /// upper bound on what [`RingSnapshot::events`] can hold).
    pub dropped: u64,
    /// The newest retained records, ascending by `seq`.
    pub events: Vec<EventRecord>,
}

static RECORDER: FlightRecorder = FlightRecorder {
    head: AtomicU64::new(0),
    dropped: AtomicU64::new(0),
    slots: [const { Slot::new() }; RING_CAPACITY],
};

/// The process-wide flight recorder.
pub fn recorder() -> &'static FlightRecorder {
    &RECORDER
}

/// Record an event stamped with this thread's ambient
/// [`crate::trace::current`] context.
pub fn record(kind: EventKind, name: &str, secs: f64, detail: u64) {
    RECORDER.record_for(crate::trace::current(), kind, name, secs, detail);
}

/// Wall-clock Unix epoch milliseconds — the timestamp events and
/// access-log lines are stamped with.
pub fn now_ms() -> u64 {
    std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_millis() as u64)
        .unwrap_or(0)
}

impl FlightRecorder {
    /// Record one event under an explicit trace context.
    pub fn record_for(
        &self,
        ctx: crate::trace::TraceCtx,
        kind: EventKind,
        name: &str,
        secs: f64,
        detail: u64,
    ) {
        let seq = self.head.fetch_add(1, Ordering::Relaxed);
        if seq >= RING_CAPACITY as u64 {
            // Claiming this slot evicts record `seq - RING_CAPACITY`,
            // whether or not its write ever landed.
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
        let slot = &self.slots[(seq % RING_CAPACITY as u64) as usize];
        let begin = 2 * seq + 1;
        let end = 2 * seq + 2;
        loop {
            let v = slot.version.load(Ordering::Acquire);
            if v >= end {
                // A writer a full ring ahead already owns this slot;
                // our record is the dropped one.
                return;
            }
            if v % 2 == 1 {
                // An older write is mid-flight; wait it out.
                std::hint::spin_loop();
                continue;
            }
            if slot
                .version
                .compare_exchange(v, begin, Ordering::Acquire, Ordering::Relaxed)
                .is_err()
            {
                continue;
            }
            slot.seq.store(seq, Ordering::Relaxed);
            slot.ts_ms.store(now_ms(), Ordering::Relaxed);
            slot.trace_id.store(ctx.trace_id, Ordering::Relaxed);
            slot.session_id.store(ctx.session_id, Ordering::Relaxed);
            slot.meta
                .store(kind as u64 | (name_code(name) << 8), Ordering::Relaxed);
            slot.secs_bits.store(secs.to_bits(), Ordering::Relaxed);
            slot.detail.store(detail, Ordering::Relaxed);
            slot.version.store(end, Ordering::Release);
            return;
        }
    }

    /// Total records ever claimed.
    pub fn total(&self) -> u64 {
        self.head.load(Ordering::Relaxed)
    }

    /// Records lost to overwrite so far.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// The newest `limit` retained records, oldest first, plus the drop
    /// accounting. Records caught mid-write are skipped, never torn.
    pub fn snapshot(&self, limit: usize) -> RingSnapshot {
        let total = self.total();
        let dropped = self.dropped();
        let mut events = Vec::with_capacity(RING_CAPACITY.min(total as usize));
        for slot in &self.slots {
            let v1 = slot.version.load(Ordering::Acquire);
            if v1 == 0 || v1 % 2 == 1 {
                continue;
            }
            let rec = EventRecord {
                seq: slot.seq.load(Ordering::Relaxed),
                ts_ms: slot.ts_ms.load(Ordering::Relaxed),
                trace_id: slot.trace_id.load(Ordering::Relaxed),
                session_id: slot.session_id.load(Ordering::Relaxed),
                kind: EventKind::from_code(slot.meta.load(Ordering::Relaxed) & 0xff),
                name: name_of(slot.meta.load(Ordering::Relaxed) >> 8),
                secs: f64::from_bits(slot.secs_bits.load(Ordering::Relaxed)),
                detail: slot.detail.load(Ordering::Relaxed),
            };
            fence(Ordering::Acquire);
            if slot.version.load(Ordering::Relaxed) == v1 {
                events.push(rec);
            }
        }
        events.sort_unstable_by_key(|r| r.seq);
        if events.len() > limit {
            events.drain(..events.len() - limit);
        }
        RingSnapshot {
            total,
            dropped,
            events,
        }
    }

    /// Write every retained record as one NDJSON line (plus a final
    /// accounting line) — the drain/panic stderr dump.
    pub fn dump(&self, w: &mut dyn std::io::Write) -> std::io::Result<()> {
        let snap = self.snapshot(RING_CAPACITY);
        for rec in &snap.events {
            writeln!(w, "{}", rec.to_json().compact())?;
        }
        writeln!(
            w,
            "{{\"flight_recorder\": {{\"total\": {}, \"retained\": {}, \"dropped\": {}}}}}",
            snap.total,
            snap.events.len(),
            snap.dropped
        )
    }

    /// Clear the ring and its accounting (test isolation; see
    /// [`crate::reset`]).
    pub fn reset(&self) {
        for slot in &self.slots {
            slot.version.store(0, Ordering::Release);
        }
        self.head.store(0, Ordering::Relaxed);
        self.dropped.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::TraceCtx;
    use std::sync::Mutex;

    /// The ring is process-global; serialize tests that reset it.
    static RING_LOCK: Mutex<()> = Mutex::new(());

    fn ctx(trace: u64) -> TraceCtx {
        TraceCtx {
            trace_id: trace,
            session_id: 9,
        }
    }

    #[test]
    fn records_round_trip_with_trace_attribution() {
        let _guard = RING_LOCK.lock().unwrap();
        RECORDER.reset();
        RECORDER.record_for(ctx(0xfeed), EventKind::QueueWait, "queue_wait", 0.25, 0);
        RECORDER.record_for(ctx(0xfeed), EventKind::Update, "incremental", 0.5, 3);
        let snap = RECORDER.snapshot(16);
        assert_eq!(snap.total, 2);
        assert_eq!(snap.dropped, 0);
        assert_eq!(snap.events.len(), 2);
        let first = &snap.events[0];
        assert_eq!(first.kind, EventKind::QueueWait);
        assert_eq!(first.name, "queue_wait");
        assert_eq!(first.trace_id, 0xfeed);
        assert_eq!(first.session_id, 9);
        assert_eq!(first.secs.to_bits(), 0.25f64.to_bits());
        let second = &snap.events[1];
        assert_eq!(second.name, "incremental");
        assert_eq!(second.detail, 3);
        assert!(second.seq > first.seq);
    }

    #[test]
    fn unknown_names_map_to_other() {
        let _guard = RING_LOCK.lock().unwrap();
        RECORDER.reset();
        RECORDER.record_for(ctx(1), EventKind::Error, "never-in-the-table", 0.0, 500);
        let snap = RECORDER.snapshot(1);
        assert_eq!(snap.events[0].name, "other");
    }

    #[test]
    fn wraparound_overwrites_oldest_and_counts_drops() {
        let _guard = RING_LOCK.lock().unwrap();
        RECORDER.reset();
        let n = RING_CAPACITY as u64 + 37;
        for i in 0..n {
            RECORDER.record_for(ctx(1), EventKind::Request, "request", 0.0, i);
        }
        assert_eq!(RECORDER.total(), n);
        assert_eq!(RECORDER.dropped(), 37);
        let snap = RECORDER.snapshot(RING_CAPACITY);
        assert_eq!(snap.events.len(), RING_CAPACITY);
        // Oldest retained is exactly the first non-dropped sequence.
        assert_eq!(snap.events.first().unwrap().seq, 37);
        assert_eq!(snap.events.last().unwrap().seq, n - 1);
    }

    #[test]
    fn limit_returns_the_newest_in_order() {
        let _guard = RING_LOCK.lock().unwrap();
        RECORDER.reset();
        for i in 0..10u64 {
            RECORDER.record_for(ctx(1), EventKind::Request, "request", 0.0, i);
        }
        let snap = RECORDER.snapshot(3);
        let seqs: Vec<u64> = snap.events.iter().map(|r| r.seq).collect();
        assert_eq!(seqs, vec![7, 8, 9]);
        assert!(RECORDER.snapshot(0).events.is_empty());
    }

    #[test]
    fn event_json_is_compact_and_parseable() {
        let rec = EventRecord {
            seq: 5,
            ts_ms: 1_700_000_000_000,
            trace_id: 0xab,
            session_id: 2,
            kind: EventKind::Fallback,
            name: "structural",
            secs: 0.125,
            detail: 4,
        };
        let line = rec.to_json().compact();
        let v = crate::parse_json(&line).expect("parses");
        assert_eq!(
            v.get("trace_id").and_then(crate::Json::as_str),
            Some("00000000000000ab")
        );
        assert_eq!(
            v.get("kind").and_then(crate::Json::as_str),
            Some("fallback")
        );
        assert_eq!(
            v.get("name").and_then(crate::Json::as_str),
            Some("structural")
        );
        assert_eq!(v.get("detail").and_then(crate::Json::as_u64), Some(4));
    }

    #[test]
    fn dump_writes_ndjson_with_accounting() {
        let _guard = RING_LOCK.lock().unwrap();
        RECORDER.reset();
        RECORDER.record_for(ctx(3), EventKind::Eviction, "session_evicted", 0.0, 11);
        let mut out = Vec::new();
        RECORDER.dump(&mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(crate::parse_json(lines[0]).is_ok());
        let tail = crate::parse_json(lines[1]).unwrap();
        let acct = tail.get("flight_recorder").expect("accounting");
        assert_eq!(acct.get("total").and_then(crate::Json::as_u64), Some(1));
        assert_eq!(acct.get("dropped").and_then(crate::Json::as_u64), Some(0));
    }
}
