//! `cad-obs` — zero-dependency observability for the CAD pipeline.
//!
//! One small crate at the bottom of the workspace dependency graph
//! provides every layer with the same vocabulary:
//!
//! * [`span!`] — RAII wall-clock spans with per-thread nesting, fed into
//!   a process-wide registry ([`metrics::global`]).
//! * [`metrics`] — lock-free [`FastCounter`]s for hot-path events plus a
//!   mutex-guarded [`Registry`] of named counters / summaries / spans.
//! * [`hist`] — log-bucketed latency/value [`Histogram`]s: a
//!   deterministic value type for reports and a lock-free
//!   [`AtomicHistogram`] twin backing the live `/metrics` exporter.
//! * [`trace`] — per-request [`TraceCtx`] (trace id + session id +
//!   explicit child-span stack) installed thread-locally by `cad-serve`
//!   and read back by every layer below for event attribution.
//! * [`events`] — the lock-free bounded flight recorder: a fixed-size
//!   ring of structured [`EventRecord`]s (span open/close, errors,
//!   fallbacks, evictions) with overwrite-oldest semantics and an
//!   explicit dropped counter, serving `GET /v1/debug/trace`.
//! * [`http`] — shared hand-rolled HTTP/1.1 plumbing (request parsing
//!   with header/body caps, timeouts, keep-alive, structured error
//!   bodies) used by the `/metrics` exporter and the `cad-serve`
//!   detection service.
//! * [`export`] — Prometheus text-exposition rendering and the
//!   hand-rolled `/metrics` + `/healthz` HTTP server for `cad watch`.
//! * [`alloc`] — the counting `#[global_allocator]` wrapper: exact,
//!   lock-free heap accounting (allocs/frees/bytes, live level and
//!   high-water mark) feeding the `mem.*` gauges and the report's
//!   `memory` section.
//! * [`profile`] — the Chrome-trace/Perfetto timeline exporter:
//!   renders the span registry plus the flight-recorder ring as
//!   trace-event JSON (`cad profile`, `GET /v1/debug/profile`).
//! * [`stats`] — typed result-side statistics ([`SolveStats`],
//!   [`Summary`], [`OracleBuildStats`]) that travel *with* computation
//!   results so aggregates stay deterministic under parallelism.
//! * [`report`] — the schema-versioned machine-readable run [`Report`]
//!   (JSON via `--metrics-json`) and the human tree summary (`--trace`).
//! * [`json`] — a hand-rolled, dependency-free JSON value, printer and
//!   parser with exact f64 round-tripping.
//! * [`progress!`] — the uniform stderr progress sink for long-running
//!   binaries.
//! * [`clock`] — `time_it`/`time_mean` wall-clock helpers.
//!
//! The crate deliberately has **no dependencies** (std only) so every
//! other crate — including `cad-linalg` at the base of the numeric
//! stack — can use it without cycles or new external requirements.

#![warn(missing_docs)]

pub mod alloc;
pub mod clock;
pub mod events;
pub mod export;
pub mod hist;
pub mod http;
pub mod json;
pub mod metrics;
pub mod profile;
pub mod progress;
pub mod report;
pub mod span;
pub mod stats;
pub mod trace;

pub use alloc::{CountingAlloc, MemoryStats};
pub use clock::{time_it, time_mean};
pub use events::{recorder, EventKind, EventRecord, RingSnapshot, RING_CAPACITY};
pub use export::{render_prometheus, MetricsServer, WatchHealth};
pub use hist::{histograms, AtomicHistogram, Histogram};
pub use json::{parse as parse_json, Json};
pub use metrics::{
    counters, gauges, global, labeled, FastCounter, Gauge, LabeledCounters, MetricsSnapshot,
    Registry, SpanStat,
};
pub use progress::{set_verbosity, verbosity, Verbosity};
pub use report::{
    HostInfo, InstanceReport, LabelFamily, MemoryReport, Report, SolveReport, TransitionReport,
    SCHEMA_VERSION,
};
pub use span::SpanGuard;
pub use stats::{OracleBuildStats, SolveStats, Summary};
pub use trace::{TraceCtx, TraceGuard, TraceSpan};

/// Reset every process-wide metric sink: the [`global`] registry
/// (spans, named counters, summaries), all well-known
/// [`counters`](metrics::counters), [`gauges`](metrics::gauges) and
/// labeled families, all well-known [`histograms`](hist::histograms)
/// (labeled included), and the flight-recorder ring.
///
/// Intended for single-process CLI runs that execute several cases
/// back-to-back, and for integration tests that assert on global
/// metrics (serialize such tests and call this between cases so
/// metrics can't bleed across `#[test]` functions sharing a process).
pub fn reset() {
    global().reset();
    counters::reset_all();
    gauges::reset_all();
    labeled::reset_all();
    histograms::reset_all();
    events::recorder().reset();
}
