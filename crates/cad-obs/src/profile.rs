//! Chrome-trace / Perfetto timeline export.
//!
//! Renders the two observability stores the process already maintains —
//! the span-registry aggregates ([`crate::metrics::MetricsSnapshot`])
//! and the flight-recorder ring ([`crate::events::RingSnapshot`]) — as
//! [trace-event JSON], the format `chrome://tracing` and
//! <https://ui.perfetto.dev> load directly.
//!
//! Mapping:
//!
//! * [`EventKind::SpanClose`] records become `"X"` *complete* duration
//!   events: `ts` is the span's start (record timestamp minus duration),
//!   `dur` its length, both in microseconds. The track (`tid`) is the
//!   low 32 bits of the ambient trace id, so each request renders as its
//!   own lane; records stamped outside a request share the `untraced`
//!   lane.
//! * [`EventKind::Request`] and [`EventKind::QueueWait`] likewise become
//!   `"X"` events (categories `request` / `queue`).
//! * [`EventKind::Update`], [`EventKind::Fallback`], [`EventKind::Error`]
//!   and [`EventKind::Eviction`] become `"i"` *instant* events
//!   (thread-scoped), with the record detail in `args`.
//! * The trace id doubles as a Perfetto **flow id**: request events
//!   carry `flow_out` and span events `flow_in` with the same
//!   `bind_id` (`0x` + the 16-hex trace id header value), so the viewer
//!   draws arrows from each request to the work it caused.
//! * [`EventKind::SpanOpen`] records are skipped — the matching close
//!   already carries the duration.
//!
//! The span registry holds only aggregates (calls + total seconds), not
//! timestamps, so it is rendered on a synthetic track (`tid` 0,
//! `aggregates`): each slash-joined path becomes an `"X"` event whose
//! children are laid out sequentially starting at the parent's start.
//! Nesting in the viewer therefore mirrors the span paths exactly —
//! `detect/score` always sits inside `detect`.
//!
//! [trace-event JSON]: https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU

use std::collections::BTreeMap;

use crate::events::{EventKind, RingSnapshot};
use crate::metrics::MetricsSnapshot;
use crate::Json;

/// The synthetic track id carrying the span-registry aggregates.
pub const AGGREGATE_TID: u64 = 0;

/// The `pid` all events share (one process, many tracks).
pub const PROFILE_PID: u64 = 1;

/// Snapshot the process-wide flight recorder and span registry and
/// render them as one trace-event JSON document. `limit` bounds the
/// number of ring records rendered (newest retained).
pub fn capture(limit: usize) -> Json {
    render_trace_events(
        &crate::events::recorder().snapshot(limit),
        &crate::metrics::global().snapshot(),
    )
}

/// Render explicit snapshots as a trace-event JSON document:
/// `{"displayTimeUnit": "ms", "traceEvents": [...]}`.
pub fn render_trace_events(snap: &RingSnapshot, metrics: &MetricsSnapshot) -> Json {
    let mut events: Vec<Json> = Vec::new();
    events.push(thread_name_event(AGGREGATE_TID, "aggregates"));
    aggregate_events(&mut events, metrics);
    let mut lanes: BTreeMap<u64, u64> = BTreeMap::new();
    for rec in &snap.events {
        if rec.kind == EventKind::SpanOpen {
            continue;
        }
        lanes.entry(lane_tid(rec.trace_id)).or_insert(rec.trace_id);
        events.push(record_event(rec));
    }
    for (tid, trace_id) in &lanes {
        let label = if *trace_id == 0 {
            "untraced".to_string()
        } else {
            format!("trace {}", crate::trace::id_hex(*trace_id))
        };
        events.push(thread_name_event(*tid, &label));
    }
    Json::obj(vec![
        ("displayTimeUnit", Json::Str("ms".to_string())),
        ("traceEvents", Json::Arr(events)),
    ])
}

/// The track a record renders on: the low 32 bits of its trace id,
/// floored at 1 so nothing collides with the aggregates track.
fn lane_tid(trace_id: u64) -> u64 {
    (trace_id & 0xffff_ffff).max(1)
}

fn thread_name_event(tid: u64, label: &str) -> Json {
    Json::obj(vec![
        ("name", Json::Str("thread_name".to_string())),
        ("ph", Json::Str("M".to_string())),
        ("pid", Json::Num(PROFILE_PID as f64)),
        ("tid", Json::Num(tid as f64)),
        (
            "args",
            Json::obj(vec![("name", Json::Str(label.to_string()))]),
        ),
    ])
}

/// Lay the span-registry aggregates out on the synthetic track. Paths
/// arrive lexicographically sorted (BTreeMap), so a parent is always
/// placed before its children; each child starts at its parent's
/// running cursor, which guarantees real nesting in the viewer.
fn aggregate_events(events: &mut Vec<Json>, metrics: &MetricsSnapshot) {
    // path -> (start_us, cursor_us for its next child)
    let mut placed: BTreeMap<&str, (f64, f64)> = BTreeMap::new();
    let mut root_cursor = 0.0f64;
    for (path, stat) in &metrics.spans {
        let dur_us = stat.total_secs * 1e6;
        let parent = longest_placed_prefix(path, &placed);
        let start = match parent {
            Some(p) => {
                let slot = placed.get_mut(p).expect("parent placed");
                let start = slot.1;
                slot.1 += dur_us;
                start
            }
            None => {
                let start = root_cursor;
                root_cursor += dur_us;
                start
            }
        };
        placed.insert(path.as_str(), (start, start));
        events.push(Json::obj(vec![
            ("name", Json::Str(path.clone())),
            ("cat", Json::Str("aggregate".to_string())),
            ("ph", Json::Str("X".to_string())),
            ("ts", Json::Num(start)),
            ("dur", Json::Num(dur_us)),
            ("pid", Json::Num(PROFILE_PID as f64)),
            ("tid", Json::Num(AGGREGATE_TID as f64)),
            (
                "args",
                Json::obj(vec![
                    ("calls", Json::Num(stat.calls as f64)),
                    ("total_secs", Json::Num(stat.total_secs)),
                ]),
            ),
        ]));
    }
}

/// The longest proper slash-prefix of `path` already placed, if any.
fn longest_placed_prefix<'a>(
    path: &str,
    placed: &BTreeMap<&'a str, (f64, f64)>,
) -> Option<&'a str> {
    let mut rest = path;
    while let Some(cut) = rest.rfind('/') {
        rest = &path[..cut];
        if let Some((&k, _)) = placed.get_key_value(rest) {
            return Some(k);
        }
    }
    None
}

/// Render one flight-recorder record as its trace event.
fn record_event(rec: &crate::events::EventRecord) -> Json {
    let tid = lane_tid(rec.trace_id);
    let end_us = rec.ts_ms as f64 * 1000.0;
    let mut fields: Vec<(&str, Json)> = vec![("name", Json::Str(rec.name.to_string()))];
    let mut args: Vec<(&str, Json)> = vec![
        ("seq", Json::Num(rec.seq as f64)),
        ("session", Json::Num(rec.session_id as f64)),
        ("trace_id", Json::Str(crate::trace::id_hex(rec.trace_id))),
    ];
    match rec.kind {
        EventKind::SpanClose | EventKind::Request | EventKind::QueueWait => {
            let cat = match rec.kind {
                EventKind::SpanClose => "span",
                EventKind::Request => "request",
                _ => "queue",
            };
            let dur_us = rec.secs * 1e6;
            fields.push(("cat", Json::Str(cat.to_string())));
            fields.push(("ph", Json::Str("X".to_string())));
            fields.push(("ts", Json::Num(end_us - dur_us)));
            fields.push(("dur", Json::Num(dur_us)));
            if rec.trace_id != 0 {
                let flow = if rec.kind == EventKind::Request {
                    "flow_out"
                } else {
                    "flow_in"
                };
                fields.push((flow, Json::Bool(true)));
                fields.push((
                    "bind_id",
                    Json::Str(format!("0x{}", crate::trace::id_hex(rec.trace_id))),
                ));
            }
            if rec.kind == EventKind::Request {
                args.push(("status", Json::Num(rec.detail as f64)));
            }
        }
        _ => {
            fields.push(("cat", Json::Str(rec.kind.name().to_string())));
            fields.push(("ph", Json::Str("i".to_string())));
            fields.push(("s", Json::Str("t".to_string())));
            fields.push(("ts", Json::Num(end_us)));
            args.push(("detail", Json::Num(rec.detail as f64)));
        }
    }
    fields.push(("pid", Json::Num(PROFILE_PID as f64)));
    fields.push(("tid", Json::Num(tid as f64)));
    fields.push(("args", Json::obj(args)));
    Json::obj(fields)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::events::EventRecord;
    use crate::metrics::SpanStat;
    use crate::stats::Summary;

    fn span_metrics(spans: &[(&str, u64, f64)]) -> MetricsSnapshot {
        MetricsSnapshot {
            counters: BTreeMap::new(),
            summaries: BTreeMap::<String, Summary>::new(),
            spans: spans
                .iter()
                .map(|&(p, calls, total_secs)| (p.to_string(), SpanStat { calls, total_secs }))
                .collect(),
        }
    }

    fn empty_ring() -> RingSnapshot {
        RingSnapshot {
            total: 0,
            dropped: 0,
            events: Vec::new(),
        }
    }

    fn rec(
        kind: EventKind,
        name: &'static str,
        trace_id: u64,
        ts_ms: u64,
        secs: f64,
    ) -> EventRecord {
        EventRecord {
            seq: 1,
            ts_ms,
            trace_id,
            session_id: 7,
            kind,
            name,
            secs,
            detail: 200,
        }
    }

    fn trace_events(doc: &Json) -> Vec<Json> {
        doc.get("traceEvents")
            .and_then(Json::as_arr)
            .expect("traceEvents array")
            .to_vec()
    }

    fn field_f64(ev: &Json, key: &str) -> f64 {
        ev.get(key).and_then(Json::as_f64).expect("numeric field")
    }

    fn find_x<'a>(events: &'a [Json], name: &str) -> &'a Json {
        events
            .iter()
            .find(|e| {
                e.get("name").and_then(Json::as_str) == Some(name)
                    && e.get("ph").and_then(Json::as_str) == Some("X")
            })
            .unwrap_or_else(|| panic!("no X event named {name}"))
    }

    #[test]
    fn output_is_valid_parseable_trace_event_json() {
        let doc = render_trace_events(&empty_ring(), &span_metrics(&[("detect", 1, 1.0)]));
        let text = doc.compact();
        let back = crate::parse_json(&text).expect("round-trips");
        assert_eq!(
            back.get("displayTimeUnit").and_then(Json::as_str),
            Some("ms")
        );
        assert!(back.get("traceEvents").and_then(Json::as_arr).is_some());
    }

    #[test]
    fn aggregates_nest_children_inside_parents_sequentially() {
        let metrics = span_metrics(&[
            ("detect", 1, 1.0),
            ("detect/build", 1, 0.5),
            ("detect/score", 2, 0.25),
            ("other", 1, 2.0),
        ]);
        let events = trace_events(&render_trace_events(&empty_ring(), &metrics));
        let parent = find_x(&events, "detect");
        let build = find_x(&events, "detect/build");
        let score = find_x(&events, "detect/score");
        let other = find_x(&events, "other");
        let (p0, pd) = (field_f64(parent, "ts"), field_f64(parent, "dur"));
        // First child starts at the parent's start; the next follows it.
        assert_eq!(field_f64(build, "ts"), p0);
        assert_eq!(field_f64(score, "ts"), p0 + field_f64(build, "dur"));
        // Both children end inside the parent interval.
        assert!(field_f64(build, "ts") + field_f64(build, "dur") <= p0 + pd);
        assert!(field_f64(score, "ts") + field_f64(score, "dur") <= p0 + pd);
        // A sibling root is laid out after the first root ends.
        assert_eq!(field_f64(other, "ts"), p0 + pd);
        // All aggregates live on the synthetic track.
        assert_eq!(field_f64(parent, "tid"), AGGREGATE_TID as f64);
        let args = parent.get("args").expect("args");
        assert_eq!(args.get("calls").and_then(Json::as_u64), Some(1));
    }

    #[test]
    fn requests_emit_flow_out_and_spans_flow_in_with_matching_bind_id() {
        let ring = RingSnapshot {
            total: 2,
            dropped: 0,
            events: vec![
                rec(EventKind::Request, "push", 0xabcd, 1_000, 0.5),
                rec(EventKind::SpanClose, "laplacian_solve", 0xabcd, 1_000, 0.25),
            ],
        };
        let events = trace_events(&render_trace_events(&ring, &span_metrics(&[])));
        let req = find_x(&events, "push");
        let span = find_x(&events, "laplacian_solve");
        assert_eq!(req.get("flow_out").and_then(Json::as_bool), Some(true));
        assert_eq!(span.get("flow_in").and_then(Json::as_bool), Some(true));
        let bind = req.get("bind_id").and_then(Json::as_str).expect("bind_id");
        assert_eq!(bind, "0x000000000000abcd");
        assert_eq!(span.get("bind_id").and_then(Json::as_str), Some(bind));
        // ts is the start (end minus duration), dur the length, in us.
        assert_eq!(field_f64(req, "ts"), 1_000.0 * 1000.0 - 0.5e6);
        assert_eq!(field_f64(req, "dur"), 0.5e6);
        // Both lanes carry the low 32 bits of the trace id.
        assert_eq!(field_f64(req, "tid"), 0xabcd as f64);
        // Request status code lands in args.
        let args = req.get("args").expect("args");
        assert_eq!(args.get("status").and_then(Json::as_u64), Some(200));
    }

    #[test]
    fn fallbacks_become_instant_events_and_span_opens_are_skipped() {
        let ring = RingSnapshot {
            total: 3,
            dropped: 0,
            events: vec![
                rec(EventKind::SpanOpen, "score", 5, 1_000, 0.0),
                rec(EventKind::Fallback, "structural", 5, 1_000, 0.0),
                rec(EventKind::Eviction, "session_evicted", 0, 1_000, 0.0),
            ],
        };
        let events = trace_events(&render_trace_events(&ring, &span_metrics(&[])));
        assert!(!events
            .iter()
            .any(|e| e.get("name").and_then(Json::as_str) == Some("score")));
        let fb = events
            .iter()
            .find(|e| e.get("name").and_then(Json::as_str) == Some("structural"))
            .expect("fallback rendered");
        assert_eq!(fb.get("ph").and_then(Json::as_str), Some("i"));
        assert_eq!(fb.get("s").and_then(Json::as_str), Some("t"));
        assert_eq!(fb.get("cat").and_then(Json::as_str), Some("fallback"));
        let args = fb.get("args").expect("args");
        assert_eq!(args.get("detail").and_then(Json::as_u64), Some(200));
        // The untraced record renders on the floor lane, not tid 0.
        let ev = events
            .iter()
            .find(|e| e.get("name").and_then(Json::as_str) == Some("session_evicted"))
            .expect("eviction rendered");
        assert_eq!(field_f64(ev, "tid"), 1.0);
    }

    #[test]
    fn every_lane_gets_a_thread_name_metadata_event() {
        let ring = RingSnapshot {
            total: 1,
            dropped: 0,
            events: vec![rec(EventKind::Request, "push", 0xbeef, 1_000, 0.1)],
        };
        let events = trace_events(&render_trace_events(&ring, &span_metrics(&[])));
        let metas: Vec<&Json> = events
            .iter()
            .filter(|e| e.get("ph").and_then(Json::as_str) == Some("M"))
            .collect();
        assert_eq!(metas.len(), 2); // aggregates + the request lane
        let names: Vec<&str> = metas
            .iter()
            .filter_map(|e| {
                e.get("args")
                    .and_then(|a| a.get("name"))
                    .and_then(Json::as_str)
            })
            .collect();
        assert!(names.contains(&"aggregates"));
        assert!(names.contains(&"trace 000000000000beef"));
    }
}
