//! Lightweight nested spans: `span!("phase")` times a scope and feeds
//! the [`crate::metrics::global`] registry.
//!
//! Nesting is tracked per thread: a span entered while another is open
//! on the same thread records under the slash-joined path of its
//! ancestors (`detect/score_transitions`). Worker threads of the
//! `cad_linalg::par` pool start with an empty stack, so spans opened
//! inside a worker aggregate under their own top-level path — their
//! wall-times still land in the same named buckets regardless of the
//! striping, and no result data ever flows through spans (see
//! [`crate::stats`] for why).
//!
//! The macro accepts optional `key = value` fields for call-site
//! context, e.g. `span!("oracle_build", instance = t)`. Fields do not
//! split the aggregate (per-item values would explode the key space);
//! they are formatted into the span label and surfaced through the
//! [`crate::progress!`] sink at debug verbosity.

use std::cell::RefCell;
use std::time::Instant;

thread_local! {
    static STACK: RefCell<Vec<&'static str>> = const { RefCell::new(Vec::new()) };
}

/// RAII guard for one span occurrence; records on drop.
#[derive(Debug)]
pub struct SpanGuard {
    name: &'static str,
    label: Option<String>,
    start: Instant,
}

impl SpanGuard {
    /// Open a span named `name` on the current thread.
    pub fn enter(name: &'static str) -> SpanGuard {
        STACK.with(|s| s.borrow_mut().push(name));
        SpanGuard {
            name,
            label: None,
            start: Instant::now(),
        }
    }

    /// Open a span with a formatted field label (used by the macro's
    /// `key = value` form).
    pub fn enter_labeled(name: &'static str, label: String) -> SpanGuard {
        let mut g = Self::enter(name);
        g.label = Some(label);
        g
    }

    /// The slash-joined path of the current thread's open spans.
    pub fn current_path() -> String {
        STACK.with(|s| s.borrow().join("/"))
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let secs = self.start.elapsed().as_secs_f64();
        let path = STACK.with(|s| {
            let mut stack = s.borrow_mut();
            let path = stack.join("/");
            // Pop our own frame; tolerate foreign pops from mismatched
            // drop order rather than panicking in a destructor.
            if stack.last() == Some(&self.name) {
                stack.pop();
            }
            path
        });
        crate::metrics::global().record_span(&path, secs);
        if let Some(label) = &self.label {
            crate::progress::debug(&format!("span {path} [{label}] {:.3}ms", secs * 1e3));
        }
    }
}

/// Time the rest of the enclosing scope as a named span.
///
/// ```
/// # use cad_obs::span;
/// let _s = span!("oracle_build");
/// let t = 3;
/// let _inner = span!("solve", instance = t);
/// ```
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::span::SpanGuard::enter($name)
    };
    ($name:expr, $($key:ident = $value:expr),+ $(,)?) => {
        $crate::span::SpanGuard::enter_labeled(
            $name,
            [$(format!(concat!(stringify!($key), "={}"), $value)),+].join(" "),
        )
    };
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::global;

    #[test]
    fn nesting_builds_slash_paths() {
        // Runs on one test thread; global registry keys are unique to
        // this test's span names, so parallel tests cannot interfere.
        {
            let _outer = span!("test_span_outer");
            assert_eq!(SpanGuard::current_path(), "test_span_outer");
            {
                let _inner = span!("test_span_inner");
                assert_eq!(SpanGuard::current_path(), "test_span_outer/test_span_inner");
            }
        }
        let snap = global().snapshot();
        assert_eq!(snap.spans["test_span_outer"].calls, 1);
        assert_eq!(snap.spans["test_span_outer/test_span_inner"].calls, 1);
        assert!(snap.spans["test_span_outer"].total_secs >= 0.0);
    }

    #[test]
    fn repeated_entries_aggregate() {
        for _ in 0..3 {
            let _s = span!("test_span_repeat");
        }
        let snap = global().snapshot();
        assert_eq!(snap.spans["test_span_repeat"].calls, 3);
    }

    #[test]
    fn labeled_form_compiles_and_records() {
        let t = 7;
        {
            let _s = span!("test_span_labeled", instance = t, row = 2);
        }
        let snap = global().snapshot();
        assert_eq!(snap.spans["test_span_labeled"].calls, 1);
    }

    #[test]
    fn fresh_thread_starts_at_top_level() {
        let handle = std::thread::spawn(|| {
            let _s = span!("test_span_worker");
            SpanGuard::current_path()
        });
        assert_eq!(handle.join().unwrap(), "test_span_worker");
    }
}
