//! A minimal JSON value, writer and parser.
//!
//! The observability layer must emit and re-read machine-readable run
//! reports without pulling in serde (the workspace is dependency-free by
//! policy). This module implements the subset of JSON the report schema
//! needs: objects preserve insertion order so emitted reports are
//! byte-stable for a given [`Json`] value, numbers are `f64` (with
//! integral values printed without a fractional part), and the parser is
//! a straightforward recursive-descent over the full JSON grammar.

use std::fmt::Write as _;

/// A JSON value. Object keys keep insertion order for stable output.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (integers included).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, as ordered key-value pairs.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Build an object from key-value pairs.
    pub fn obj(pairs: Vec<(&str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Member lookup on an object (`None` for other variants).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The number value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(v) => Some(*v),
            _ => None,
        }
    }

    /// The number value as an unsigned integer, if integral.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(v) if *v >= 0.0 && v.fract() == 0.0 && *v <= u64::MAX as f64 => {
                Some(*v as u64)
            }
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The bool value, if this is a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The element list, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Serialize on a single line with no insignificant whitespace
    /// (for NDJSON event lines and HTTP bodies). Numbers print exactly
    /// as in [`Json::pretty`], so compact output round-trips the same
    /// bits.
    pub fn compact(&self) -> String {
        let mut out = String::new();
        self.write_compact(&mut out);
        out
    }

    fn write_compact(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(v) => write_num(out, *v),
            Json::Str(s) => write_str(out, s),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write_compact(out);
                }
                out.push(']');
            }
            Json::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_str(out, k);
                    out.push(':');
                    v.write_compact(out);
                }
                out.push('}');
            }
        }
    }

    /// Serialize with 2-space indentation and a trailing newline.
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(v) => write_num(out, *v),
            Json::Str(s) => write_str(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    pad(out, indent + 1);
                    item.write(out, indent + 1);
                }
                out.push('\n');
                pad(out, indent);
                out.push(']');
            }
            Json::Obj(pairs) => {
                if pairs.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    pad(out, indent + 1);
                    write_str(out, k);
                    out.push_str(": ");
                    v.write(out, indent + 1);
                }
                out.push('\n');
                pad(out, indent);
                out.push('}');
            }
        }
    }
}

fn pad(out: &mut String, indent: usize) {
    for _ in 0..indent {
        out.push_str("  ");
    }
}

fn write_num(out: &mut String, v: f64) {
    if !v.is_finite() {
        // JSON has no Inf/NaN; encode as null (never produced by the
        // report builder, but keeps the writer total).
        out.push_str("null");
    } else if v.fract() == 0.0 && v.abs() < 9.0e15 {
        let _ = write!(out, "{}", v as i64);
    } else {
        // 17 significant digits round-trips every f64 exactly.
        let _ = write!(out, "{v:.17e}");
    }
}

fn write_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parse a JSON document. Errors carry a byte offset and description.
pub fn parse(text: &str) -> Result<Json, String> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing content at byte {}", p.pos));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected `{}` at byte {}", b as char, self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(other) => Err(format!(
                "unexpected byte `{}` at {}",
                other as char, self.pos
            )),
            None => Err("unexpected end of input".into()),
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        while let Some(b) = self.peek() {
            if b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E') {
                self.pos += 1;
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii slice");
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| format!("invalid number `{text}` at byte {start}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?,
                                16,
                            )
                            .map_err(|_| "bad \\u escape")?;
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (multi-byte sequences pass
                    // through unchanged).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| "invalid utf-8 in string")?;
                    let c = rest.chars().next().expect("non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected `,` or `]` at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(format!("expected `,` or `}}` at byte {}", self.pos)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrips_scalars() {
        for text in ["null", "true", "false", "0", "-3", "2.5"] {
            let v = parse(text).unwrap();
            assert_eq!(parse(v.pretty().trim()).unwrap(), v, "{text}");
        }
    }

    #[test]
    fn roundtrips_nested_structure() {
        let v = Json::obj(vec![
            ("a", Json::Num(1.0)),
            (
                "b",
                Json::Arr(vec![Json::Num(0.1), Json::Str("x\"y".into())]),
            ),
            (
                "c",
                Json::obj(vec![("nested", Json::Bool(true)), ("n", Json::Null)]),
            ),
        ]);
        assert_eq!(parse(&v.pretty()).unwrap(), v);
    }

    #[test]
    fn floats_roundtrip_bit_exactly() {
        for x in [0.1, 1.0 / 3.0, 1e-300, 6.02e23, f64::MIN_POSITIVE] {
            let v = Json::Num(x);
            let back = parse(&v.pretty()).unwrap();
            assert_eq!(back.as_f64().unwrap().to_bits(), x.to_bits(), "{x}");
        }
    }

    #[test]
    fn object_key_order_is_preserved() {
        let text = r#"{"z": 1, "a": 2}"#;
        let v = parse(text).unwrap();
        match &v {
            Json::Obj(pairs) => {
                assert_eq!(pairs[0].0, "z");
                assert_eq!(pairs[1].0, "a");
            }
            other => panic!("expected object, got {other:?}"),
        }
        assert!(v.pretty().find("\"z\"").unwrap() < v.pretty().find("\"a\"").unwrap());
    }

    #[test]
    fn accessors() {
        let v = parse(r#"{"n": 3, "s": "hi", "b": false, "a": [1]}"#).unwrap();
        assert_eq!(v.get("n").unwrap().as_u64(), Some(3));
        assert_eq!(v.get("s").unwrap().as_str(), Some("hi"));
        assert_eq!(v.get("b").unwrap().as_bool(), Some(false));
        assert_eq!(v.get("a").unwrap().as_arr().unwrap().len(), 1);
        assert!(v.get("missing").is_none());
        assert_eq!(Json::Num(-1.0).as_u64(), None);
        assert_eq!(Json::Num(1.5).as_u64(), None);
    }

    #[test]
    fn parser_rejects_garbage() {
        for bad in ["", "{", "[1,", "{\"a\" 1}", "tru", "1 2", "\"unterminated"] {
            assert!(parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn string_escapes() {
        let v = parse(r#""line\nfeed A tab\t""#).unwrap();
        assert_eq!(v.as_str(), Some("line\nfeed A tab\t"));
        let s = Json::Str("a\\b\"c\n\u{1}".into()).pretty();
        assert_eq!(parse(s.trim()).unwrap().as_str(), Some("a\\b\"c\n\u{1}"));
    }
}
