//! The machine-readable run report and its stable schema.
//!
//! A [`Report`] is the single artifact a run leaves behind: per-phase
//! wall-times (from the span registry), counters, per-instance
//! oracle-build records, per-transition scoring records, and the
//! convergence record of every iterative solve. It serializes to a
//! schema-versioned JSON document (`schema_version` = [`SCHEMA_VERSION`])
//! so CI and future PRs can diff runs; [`Report::validate_json`] is the
//! authoritative schema check used by `cad validate-report` and CI.
//!
//! Schema stability contract: fields are only ever *added*;
//! removing/renaming a field or changing a type bumps
//! [`SCHEMA_VERSION`].

use crate::hist::Histogram;
use crate::json::Json;
use crate::metrics::{MetricsSnapshot, SpanStat};
use crate::stats::Summary;
use std::collections::BTreeMap;

/// Version of the JSON report schema emitted by this crate.
///
/// v1 (PR 2): phases/counters/summaries/instances/transitions/solves.
/// v2 (PR 3): adds the `histograms` section (log-bucketed latency and
/// convergence distributions with p50/p90/p99).
/// v3 (PR 7): adds the `gauges` section (point-in-time levels such as
/// queue depth) and the `labels` section (labeled counter families such
/// as `commute.rebuild_fallbacks` split by reason).
/// v4 (PR 8): adds the `memory` section (counting-allocator totals:
/// allocs/frees/bytes plus live heap level and high-water mark) and the
/// optional per-solve `residual_trace` array (bounded per-iteration
/// relative residuals, opt-in via the solver's trace cap).
pub const SCHEMA_VERSION: u64 = 4;

/// Oldest schema version `validate-report` still accepts. Reports
/// emitted at v1 simply lack the `histograms` section; v1/v2 reports
/// lack `gauges` and `labels`; v1-v3 reports lack `memory`.
pub const MIN_SCHEMA_VERSION: u64 = 1;

/// Host description captured into every report.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HostInfo {
    /// Operating system (`std::env::consts::OS`).
    pub os: String,
    /// CPU architecture (`std::env::consts::ARCH`).
    pub arch: String,
    /// Available logical CPUs.
    pub cpus: u64,
}

impl HostInfo {
    /// Capture the current host.
    pub fn capture() -> Self {
        HostInfo {
            os: std::env::consts::OS.to_string(),
            arch: std::env::consts::ARCH.to_string(),
            cpus: std::thread::available_parallelism()
                .map(|n| n.get() as u64)
                .unwrap_or(1),
        }
    }
}

/// One per-instance oracle-build record.
#[derive(Debug, Clone, PartialEq)]
pub struct InstanceReport {
    /// Instance index `t`.
    pub t: u64,
    /// Oracle backend name (`"exact"`, `"embedding"`, ...).
    pub backend: String,
    /// Wall-clock build seconds.
    pub build_secs: f64,
    /// JL projection dimension (embedding backend only).
    pub jl_dim: Option<u64>,
    /// Number of iterative solves performed during the build.
    pub n_solves: u64,
    /// Iteration counts over those solves.
    pub iterations: Summary,
    /// Final relative residuals over those solves.
    pub residuals: Summary,
}

/// One per-transition scoring record.
#[derive(Debug, Clone, PartialEq)]
pub struct TransitionReport {
    /// Transition index `t` (between instances `t` and `t+1`).
    pub t: u64,
    /// Wall-clock seconds spent scoring this transition.
    pub score_secs: f64,
    /// Number of candidate edges scored.
    pub n_scored: u64,
    /// Edges in the anomalous set `E_t`.
    pub n_edges_flagged: u64,
    /// Nodes in the anomalous set `V_t`.
    pub n_nodes_flagged: u64,
    /// Distribution of the `ΔE` scores at this transition.
    pub score: Summary,
}

/// One labeled-counter family in the report (schema v3+): the label key
/// plus the per-value cells, e.g. `{label: "reason", values: {"structural": 2}}`.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct LabelFamily {
    /// The label key (e.g. `"reason"`, `"engine"`).
    pub label: String,
    /// Counter value per label value, sorted by label value.
    pub values: BTreeMap<String, u64>,
}

/// Convergence record of one solve, with its pipeline context.
#[derive(Debug, Clone, PartialEq)]
pub struct SolveReport {
    /// Where the solve happened (e.g. `"instance=3/row=7"`).
    pub context: String,
    /// Iterations performed.
    pub iterations: u64,
    /// Final relative residual.
    pub residual: f64,
    /// Whether the tolerance was met.
    pub converged: bool,
    /// Per-iteration relative residuals (schema v4+, opt-in): the tail
    /// of the solve's convergence curve, bounded by the solver's trace
    /// cap. Empty when tracing was off; omitted from JSON when empty.
    pub residual_trace: Vec<f64>,
}

/// The `memory` section of a schema-v4 report: counting-allocator
/// totals captured at emission time ([`crate::alloc::stats`]). All
/// zeros when the emitting binary did not install the counting
/// allocator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MemoryReport {
    /// Successful heap allocations.
    pub allocs: u64,
    /// Heap deallocations.
    pub frees: u64,
    /// Total bytes ever allocated.
    pub bytes_allocated: u64,
    /// Total bytes ever freed.
    pub bytes_freed: u64,
    /// Live heap bytes at emission.
    pub heap_bytes: u64,
    /// High-water mark of the live heap.
    pub heap_peak_bytes: u64,
}

impl MemoryReport {
    /// Capture the current allocator counters.
    pub fn capture() -> Self {
        let m = crate::alloc::stats();
        MemoryReport {
            allocs: m.allocs,
            frees: m.frees,
            bytes_allocated: m.bytes_allocated,
            bytes_freed: m.bytes_freed,
            heap_bytes: m.heap_bytes,
            heap_peak_bytes: m.heap_peak_bytes,
        }
    }
}

/// A complete observability report for one run.
#[derive(Debug, Clone, PartialEq)]
pub struct Report {
    /// Schema version ([`SCHEMA_VERSION`] on emission).
    pub schema_version: u64,
    /// Which tool produced the report (`"cad detect"`, ...).
    pub tool: String,
    /// Host description.
    pub host: HostInfo,
    /// Span aggregates, keyed by slash-separated path.
    pub phases: BTreeMap<String, SpanStat>,
    /// Named event counters.
    pub counters: BTreeMap<String, u64>,
    /// Named value summaries.
    pub summaries: BTreeMap<String, Summary>,
    /// Named value distributions (schema v2+; empty for v1 documents).
    pub histograms: BTreeMap<String, Histogram>,
    /// Point-in-time level metrics (schema v3+; empty for older
    /// documents). Captured at report-emission time.
    pub gauges: BTreeMap<String, u64>,
    /// Labeled counter families (schema v3+; empty for older documents).
    pub labels: BTreeMap<String, LabelFamily>,
    /// Counting-allocator totals at emission (schema v4+; zeroed for
    /// older documents and for binaries without the allocator).
    pub memory: MemoryReport,
    /// Per-instance oracle-build records.
    pub instances: Vec<InstanceReport>,
    /// Per-transition scoring records.
    pub transitions: Vec<TransitionReport>,
    /// Every iterative solve of the run, in pipeline order.
    pub solves: Vec<SolveReport>,
}

impl Report {
    /// An empty report for `tool` on the current host.
    pub fn new(tool: &str) -> Self {
        Report {
            schema_version: SCHEMA_VERSION,
            tool: tool.to_string(),
            host: HostInfo::capture(),
            phases: BTreeMap::new(),
            counters: BTreeMap::new(),
            summaries: BTreeMap::new(),
            histograms: BTreeMap::new(),
            gauges: BTreeMap::new(),
            labels: BTreeMap::new(),
            memory: MemoryReport::default(),
            instances: Vec::new(),
            transitions: Vec::new(),
            solves: Vec::new(),
        }
    }

    /// Stamp the `memory` section from the live allocator counters.
    pub fn capture_memory(&mut self) {
        self.memory = MemoryReport::capture();
    }

    /// Fold a registry snapshot (spans, counters, summaries) into the
    /// report.
    pub fn absorb_snapshot(&mut self, snap: &MetricsSnapshot) {
        for (k, v) in &snap.spans {
            let stat = self.phases.entry(k.clone()).or_default();
            stat.calls += v.calls;
            stat.total_secs += v.total_secs;
        }
        for (k, v) in &snap.counters {
            *self.counters.entry(k.clone()).or_insert(0) += v;
        }
        for (k, v) in &snap.summaries {
            self.summaries.entry(k.clone()).or_default().merge(v);
        }
    }

    /// Serialize to the schema-versioned JSON document.
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("schema_version", Json::Num(self.schema_version as f64)),
            ("tool", Json::Str(self.tool.clone())),
            (
                "host",
                Json::obj(vec![
                    ("os", Json::Str(self.host.os.clone())),
                    ("arch", Json::Str(self.host.arch.clone())),
                    ("cpus", Json::Num(self.host.cpus as f64)),
                ]),
            ),
            (
                "phases",
                Json::Arr(
                    self.phases
                        .iter()
                        .map(|(path, s)| {
                            Json::obj(vec![
                                ("path", Json::Str(path.clone())),
                                ("calls", Json::Num(s.calls as f64)),
                                ("secs", Json::Num(s.total_secs)),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "counters",
                Json::Obj(
                    self.counters
                        .iter()
                        .map(|(k, v)| (k.clone(), Json::Num(*v as f64)))
                        .collect(),
                ),
            ),
            (
                "summaries",
                Json::Obj(
                    self.summaries
                        .iter()
                        .map(|(k, s)| (k.clone(), summary_json(s)))
                        .collect(),
                ),
            ),
            (
                "histograms",
                Json::Obj(
                    self.histograms
                        .iter()
                        .map(|(k, h)| (k.clone(), histogram_json(h)))
                        .collect(),
                ),
            ),
            (
                "gauges",
                Json::Obj(
                    self.gauges
                        .iter()
                        .map(|(k, v)| (k.clone(), Json::Num(*v as f64)))
                        .collect(),
                ),
            ),
            (
                "labels",
                Json::Obj(
                    self.labels
                        .iter()
                        .map(|(k, fam)| {
                            (
                                k.clone(),
                                Json::obj(vec![
                                    ("label", Json::Str(fam.label.clone())),
                                    (
                                        "values",
                                        Json::Obj(
                                            fam.values
                                                .iter()
                                                .map(|(v, c)| (v.clone(), Json::Num(*c as f64)))
                                                .collect(),
                                        ),
                                    ),
                                ]),
                            )
                        })
                        .collect(),
                ),
            ),
            (
                "memory",
                Json::obj(vec![
                    ("allocs", Json::Num(self.memory.allocs as f64)),
                    ("frees", Json::Num(self.memory.frees as f64)),
                    (
                        "bytes_allocated",
                        Json::Num(self.memory.bytes_allocated as f64),
                    ),
                    ("bytes_freed", Json::Num(self.memory.bytes_freed as f64)),
                    ("heap_bytes", Json::Num(self.memory.heap_bytes as f64)),
                    (
                        "heap_peak_bytes",
                        Json::Num(self.memory.heap_peak_bytes as f64),
                    ),
                ]),
            ),
            (
                "instances",
                Json::Arr(
                    self.instances
                        .iter()
                        .map(|i| {
                            Json::obj(vec![
                                ("t", Json::Num(i.t as f64)),
                                ("backend", Json::Str(i.backend.clone())),
                                ("build_secs", Json::Num(i.build_secs)),
                                (
                                    "jl_dim",
                                    i.jl_dim.map_or(Json::Null, |k| Json::Num(k as f64)),
                                ),
                                ("n_solves", Json::Num(i.n_solves as f64)),
                                ("iterations", summary_json(&i.iterations)),
                                ("residuals", summary_json(&i.residuals)),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "transitions",
                Json::Arr(
                    self.transitions
                        .iter()
                        .map(|tr| {
                            Json::obj(vec![
                                ("t", Json::Num(tr.t as f64)),
                                ("score_secs", Json::Num(tr.score_secs)),
                                ("n_scored", Json::Num(tr.n_scored as f64)),
                                ("n_edges_flagged", Json::Num(tr.n_edges_flagged as f64)),
                                ("n_nodes_flagged", Json::Num(tr.n_nodes_flagged as f64)),
                                ("score", summary_json(&tr.score)),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "solves",
                Json::Arr(
                    self.solves
                        .iter()
                        .map(|s| {
                            let mut fields = vec![
                                ("context", Json::Str(s.context.clone())),
                                ("iterations", Json::Num(s.iterations as f64)),
                                ("residual", Json::Num(s.residual)),
                                ("converged", Json::Bool(s.converged)),
                            ];
                            if !s.residual_trace.is_empty() {
                                fields.push((
                                    "residual_trace",
                                    Json::Arr(
                                        s.residual_trace.iter().map(|&r| Json::Num(r)).collect(),
                                    ),
                                ));
                            }
                            Json::obj(fields)
                        })
                        .collect(),
                ),
            ),
        ])
    }

    /// Serialize to a pretty-printed JSON string.
    pub fn to_json_string(&self) -> String {
        self.to_json().pretty()
    }

    /// Rebuild a report from its JSON document (inverse of
    /// [`Report::to_json`] for schema-valid input).
    pub fn from_json(v: &Json) -> Result<Report, String> {
        Report::validate_json(v).map_err(|errs| errs.join("; "))?;
        let host = v.get("host").expect("validated");
        let mut phases = BTreeMap::new();
        for p in v.get("phases").and_then(Json::as_arr).expect("validated") {
            phases.insert(
                p.get("path")
                    .and_then(Json::as_str)
                    .expect("validated")
                    .to_string(),
                SpanStat {
                    calls: p.get("calls").and_then(Json::as_u64).expect("validated"),
                    total_secs: p.get("secs").and_then(Json::as_f64).expect("validated"),
                },
            );
        }
        let mut counters = BTreeMap::new();
        if let Some(Json::Obj(pairs)) = v.get("counters") {
            for (k, n) in pairs {
                counters.insert(k.clone(), n.as_u64().ok_or("counter not a u64")?);
            }
        }
        let mut summaries = BTreeMap::new();
        if let Some(Json::Obj(pairs)) = v.get("summaries") {
            for (k, s) in pairs {
                summaries.insert(k.clone(), summary_from_json(s)?);
            }
        }
        // Absent in v1 documents: default to an empty section.
        let mut histograms = BTreeMap::new();
        if let Some(Json::Obj(pairs)) = v.get("histograms") {
            for (k, h) in pairs {
                histograms.insert(k.clone(), histogram_from_json(h)?);
            }
        }
        // Absent in v1/v2 documents: default to empty sections.
        let mut gauges = BTreeMap::new();
        if let Some(Json::Obj(pairs)) = v.get("gauges") {
            for (k, n) in pairs {
                gauges.insert(k.clone(), n.as_u64().ok_or("gauge not a u64")?);
            }
        }
        let mut labels = BTreeMap::new();
        if let Some(Json::Obj(pairs)) = v.get("labels") {
            for (k, fam) in pairs {
                labels.insert(k.clone(), label_family_from_json(fam)?);
            }
        }
        // Absent in v1-v3 documents: default to a zeroed section.
        let memory = match v.get("memory") {
            Some(m) => memory_from_json(m)?,
            None => MemoryReport::default(),
        };
        let instances = v
            .get("instances")
            .and_then(Json::as_arr)
            .expect("validated")
            .iter()
            .map(|i| {
                Ok(InstanceReport {
                    t: i.get("t").and_then(Json::as_u64).expect("validated"),
                    backend: i
                        .get("backend")
                        .and_then(Json::as_str)
                        .expect("validated")
                        .to_string(),
                    build_secs: i
                        .get("build_secs")
                        .and_then(Json::as_f64)
                        .expect("validated"),
                    jl_dim: i.get("jl_dim").and_then(Json::as_u64),
                    n_solves: i.get("n_solves").and_then(Json::as_u64).expect("validated"),
                    iterations: summary_from_json(i.get("iterations").expect("validated"))?,
                    residuals: summary_from_json(i.get("residuals").expect("validated"))?,
                })
            })
            .collect::<Result<Vec<_>, String>>()?;
        let transitions = v
            .get("transitions")
            .and_then(Json::as_arr)
            .expect("validated")
            .iter()
            .map(|t| {
                Ok(TransitionReport {
                    t: t.get("t").and_then(Json::as_u64).expect("validated"),
                    score_secs: t
                        .get("score_secs")
                        .and_then(Json::as_f64)
                        .expect("validated"),
                    n_scored: t.get("n_scored").and_then(Json::as_u64).expect("validated"),
                    n_edges_flagged: t
                        .get("n_edges_flagged")
                        .and_then(Json::as_u64)
                        .expect("validated"),
                    n_nodes_flagged: t
                        .get("n_nodes_flagged")
                        .and_then(Json::as_u64)
                        .expect("validated"),
                    score: summary_from_json(t.get("score").expect("validated"))?,
                })
            })
            .collect::<Result<Vec<_>, String>>()?;
        let solves = v
            .get("solves")
            .and_then(Json::as_arr)
            .expect("validated")
            .iter()
            .map(|s| SolveReport {
                context: s
                    .get("context")
                    .and_then(Json::as_str)
                    .expect("validated")
                    .to_string(),
                iterations: s
                    .get("iterations")
                    .and_then(Json::as_u64)
                    .expect("validated"),
                residual: s.get("residual").and_then(Json::as_f64).expect("validated"),
                converged: s
                    .get("converged")
                    .and_then(Json::as_bool)
                    .expect("validated"),
                residual_trace: s
                    .get("residual_trace")
                    .and_then(Json::as_arr)
                    .map(|arr| arr.iter().filter_map(Json::as_f64).collect())
                    .unwrap_or_default(),
            })
            .collect();
        Ok(Report {
            schema_version: v
                .get("schema_version")
                .and_then(Json::as_u64)
                .expect("validated"),
            tool: v
                .get("tool")
                .and_then(Json::as_str)
                .expect("validated")
                .to_string(),
            host: HostInfo {
                os: host
                    .get("os")
                    .and_then(Json::as_str)
                    .expect("validated")
                    .to_string(),
                arch: host
                    .get("arch")
                    .and_then(Json::as_str)
                    .expect("validated")
                    .to_string(),
                cpus: host.get("cpus").and_then(Json::as_u64).expect("validated"),
            },
            phases,
            counters,
            summaries,
            histograms,
            gauges,
            labels,
            memory,
            instances,
            transitions,
            solves,
        })
    }

    /// Validate a JSON document against the report schema. Returns every
    /// violation found (empty `Ok` means schema-valid).
    pub fn validate_json(v: &Json) -> Result<(), Vec<String>> {
        let mut errs = Vec::new();
        let mut need = |field: &str, ok: bool, why: &str| {
            if !ok {
                errs.push(format!("{field}: {why}"));
            }
        };
        let version = v.get("schema_version").and_then(Json::as_u64);
        match version {
            None => need("schema_version", false, "missing or not an integer"),
            Some(ver) if !(MIN_SCHEMA_VERSION..=SCHEMA_VERSION).contains(&ver) => need(
                "schema_version",
                false,
                &format!("{ver} unsupported (expected {MIN_SCHEMA_VERSION}..={SCHEMA_VERSION})"),
            ),
            Some(_) => {}
        }
        need(
            "tool",
            v.get("tool").and_then(Json::as_str).is_some(),
            "missing string",
        );
        match v.get("host") {
            None => need("host", false, "missing"),
            Some(h) => {
                need(
                    "host.os",
                    h.get("os").and_then(Json::as_str).is_some(),
                    "missing string",
                );
                need(
                    "host.arch",
                    h.get("arch").and_then(Json::as_str).is_some(),
                    "missing string",
                );
                need(
                    "host.cpus",
                    h.get("cpus").and_then(Json::as_u64).is_some(),
                    "missing integer",
                );
            }
        }
        match v.get("phases").and_then(Json::as_arr) {
            None => need("phases", false, "missing array"),
            Some(items) => {
                for (i, p) in items.iter().enumerate() {
                    need(
                        &format!("phases[{i}].path"),
                        p.get("path").and_then(Json::as_str).is_some(),
                        "missing string",
                    );
                    need(
                        &format!("phases[{i}].calls"),
                        p.get("calls").and_then(Json::as_u64).is_some(),
                        "missing integer",
                    );
                    need(
                        &format!("phases[{i}].secs"),
                        p.get("secs").and_then(Json::as_f64).is_some(),
                        "missing number",
                    );
                }
            }
        }
        need(
            "counters",
            matches!(v.get("counters"), Some(Json::Obj(_))),
            "missing object",
        );
        need(
            "summaries",
            matches!(v.get("summaries"), Some(Json::Obj(_))),
            "missing object",
        );
        // `histograms` is required from v2 on; tolerated if present in
        // a v1 document (fields are only ever added).
        match v.get("histograms") {
            Some(Json::Obj(pairs)) => {
                for (k, h) in pairs {
                    if let Err(e) = histogram_from_json(h) {
                        need(&format!("histograms.{k}"), false, &e);
                    }
                }
            }
            Some(_) => need("histograms", false, "not an object"),
            None => {
                if version.is_some_and(|ver| ver >= 2) {
                    need("histograms", false, "missing object (required from v2)");
                }
            }
        }
        // `gauges` and `labels` are required from v3 on; tolerated if
        // present in older documents (fields are only ever added).
        match v.get("gauges") {
            Some(Json::Obj(pairs)) => {
                for (k, n) in pairs {
                    need(
                        &format!("gauges.{k}"),
                        n.as_u64().is_some(),
                        "not an integer",
                    );
                }
            }
            Some(_) => need("gauges", false, "not an object"),
            None => {
                if version.is_some_and(|ver| ver >= 3) {
                    need("gauges", false, "missing object (required from v3)");
                }
            }
        }
        match v.get("labels") {
            Some(Json::Obj(pairs)) => {
                for (k, fam) in pairs {
                    if let Err(e) = label_family_from_json(fam) {
                        need(&format!("labels.{k}"), false, &e);
                    }
                }
            }
            Some(_) => need("labels", false, "not an object"),
            None => {
                if version.is_some_and(|ver| ver >= 3) {
                    need("labels", false, "missing object (required from v3)");
                }
            }
        }
        // `memory` is required from v4 on; tolerated if present in
        // older documents (fields are only ever added).
        match v.get("memory") {
            Some(m) => {
                if let Err(e) = memory_from_json(m) {
                    need("memory", false, &e);
                }
            }
            None => {
                if version.is_some_and(|ver| ver >= 4) {
                    need("memory", false, "missing object (required from v4)");
                }
            }
        }
        match v.get("instances").and_then(Json::as_arr) {
            None => need("instances", false, "missing array"),
            Some(items) => {
                for (i, inst) in items.iter().enumerate() {
                    let at = |f: &str| format!("instances[{i}].{f}");
                    need(
                        &at("t"),
                        inst.get("t").and_then(Json::as_u64).is_some(),
                        "missing integer",
                    );
                    need(
                        &at("backend"),
                        inst.get("backend").and_then(Json::as_str).is_some(),
                        "missing string",
                    );
                    need(
                        &at("build_secs"),
                        inst.get("build_secs").and_then(Json::as_f64).is_some(),
                        "missing number",
                    );
                    need(
                        &at("n_solves"),
                        inst.get("n_solves").and_then(Json::as_u64).is_some(),
                        "missing integer",
                    );
                    for sub in ["iterations", "residuals"] {
                        need(
                            &at(sub),
                            inst.get(sub)
                                .map(|s| summary_from_json(s).is_ok())
                                .unwrap_or(false),
                            "missing summary",
                        );
                    }
                }
            }
        }
        match v.get("transitions").and_then(Json::as_arr) {
            None => need("transitions", false, "missing array"),
            Some(items) => {
                for (i, tr) in items.iter().enumerate() {
                    let at = |f: &str| format!("transitions[{i}].{f}");
                    need(
                        &at("t"),
                        tr.get("t").and_then(Json::as_u64).is_some(),
                        "missing integer",
                    );
                    need(
                        &at("score_secs"),
                        tr.get("score_secs").and_then(Json::as_f64).is_some(),
                        "missing number",
                    );
                    for f in ["n_scored", "n_edges_flagged", "n_nodes_flagged"] {
                        need(
                            &at(f),
                            tr.get(f).and_then(Json::as_u64).is_some(),
                            "missing integer",
                        );
                    }
                    need(
                        &at("score"),
                        tr.get("score")
                            .map(|s| summary_from_json(s).is_ok())
                            .unwrap_or(false),
                        "missing summary",
                    );
                }
            }
        }
        match v.get("solves").and_then(Json::as_arr) {
            None => need("solves", false, "missing array"),
            Some(items) => {
                for (i, s) in items.iter().enumerate() {
                    let at = |f: &str| format!("solves[{i}].{f}");
                    need(
                        &at("context"),
                        s.get("context").and_then(Json::as_str).is_some(),
                        "missing string",
                    );
                    need(
                        &at("iterations"),
                        s.get("iterations").and_then(Json::as_u64).is_some(),
                        "missing integer",
                    );
                    need(
                        &at("residual"),
                        s.get("residual").and_then(Json::as_f64).is_some(),
                        "missing number",
                    );
                    need(
                        &at("converged"),
                        s.get("converged").and_then(Json::as_bool).is_some(),
                        "missing bool",
                    );
                    // Optional (v4+): when present, must be an array of
                    // numbers.
                    if let Some(tr) = s.get("residual_trace") {
                        need(
                            &at("residual_trace"),
                            tr.as_arr()
                                .is_some_and(|a| a.iter().all(|r| r.as_f64().is_some())),
                            "not an array of numbers",
                        );
                    }
                }
            }
        }
        if errs.is_empty() {
            Ok(())
        } else {
            Err(errs)
        }
    }

    /// Render the human-readable summary printed by `--trace`: a nested
    /// per-phase timing tree followed by instance/transition/solver
    /// digests.
    pub fn render_trace(&self) -> String {
        let mut out = String::new();
        out.push_str("== run phases (wall-clock) ==\n");
        // Paths are slash-separated; BTreeMap order sorts parents before
        // their children, so indentation by depth renders the tree.
        for (path, stat) in &self.phases {
            let depth = path.matches('/').count();
            let name = path.rsplit('/').next().unwrap_or(path);
            let label = format!("{}{}", "  ".repeat(depth + 1), name);
            out.push_str(&format!(
                "{label:<32} {:>6} call{} {:>10.3}ms\n",
                stat.calls,
                if stat.calls == 1 { " " } else { "s" },
                stat.total_secs * 1e3,
            ));
        }
        if !self.instances.is_empty() {
            out.push_str("\n== per-instance oracle builds ==\n");
            for i in &self.instances {
                out.push_str(&format!(
                    "  t={:<3} {:<13} {:>9.3}ms",
                    i.t,
                    i.backend,
                    i.build_secs * 1e3
                ));
                if i.n_solves > 0 {
                    out.push_str(&format!(
                        "  {} solves, iters mean {:.1} max {:.0}, residual max {:.2e}",
                        i.n_solves,
                        i.iterations.mean(),
                        i.iterations.max,
                        i.residuals.max,
                    ));
                }
                out.push('\n');
            }
        }
        if !self.transitions.is_empty() {
            out.push_str("\n== per-transition scoring ==\n");
            for t in &self.transitions {
                out.push_str(&format!(
                    "  t={:<3} {:>9.3}ms  {} scored, {} edges / {} nodes flagged, ΔE max {:.4}\n",
                    t.t,
                    t.score_secs * 1e3,
                    t.n_scored,
                    t.n_edges_flagged,
                    t.n_nodes_flagged,
                    if t.score.count == 0 { 0.0 } else { t.score.max },
                ));
            }
        }
        if !self.histograms.is_empty() {
            out.push_str("\n== histograms ==\n");
            for (k, h) in &self.histograms {
                if h.count == 0 {
                    out.push_str(&format!("  {k:<24} (empty)\n"));
                } else {
                    out.push_str(&format!(
                        "  {k:<24} n={:<6} p50 {:.3e}  p90 {:.3e}  p99 {:.3e}  max {:.3e}\n",
                        h.count,
                        h.p50(),
                        h.p90(),
                        h.p99(),
                        h.max,
                    ));
                }
            }
        }
        if !self.counters.is_empty() {
            out.push_str("\n== counters ==\n");
            for (k, v) in &self.counters {
                out.push_str(&format!("  {k:<28} {v}\n"));
            }
        }
        if !self.gauges.is_empty() {
            out.push_str("\n== gauges (at emission) ==\n");
            for (k, v) in &self.gauges {
                out.push_str(&format!("  {k:<28} {v}\n"));
            }
        }
        if !self.labels.is_empty() {
            out.push_str("\n== labeled counters ==\n");
            for (k, fam) in &self.labels {
                for (val, c) in &fam.values {
                    let cell = format!("{k}{{{}={val}}}", fam.label);
                    out.push_str(&format!("  {cell:<40} {c}\n"));
                }
            }
        }
        if self.memory != MemoryReport::default() {
            out.push_str("\n== memory (counting allocator) ==\n");
            out.push_str(&format!(
                "  allocs {} / frees {} ({} live), heap {} B, peak {} B\n",
                self.memory.allocs,
                self.memory.frees,
                self.memory.allocs - self.memory.frees,
                self.memory.heap_bytes,
                self.memory.heap_peak_bytes,
            ));
        }
        out
    }
}

fn summary_json(s: &Summary) -> Json {
    Json::obj(vec![
        ("count", Json::Num(s.count as f64)),
        ("sum", Json::Num(s.sum)),
        // min/max are +-inf when empty; JSON has no inf, so emit null.
        (
            "min",
            if s.count == 0 {
                Json::Null
            } else {
                Json::Num(s.min)
            },
        ),
        (
            "max",
            if s.count == 0 {
                Json::Null
            } else {
                Json::Num(s.max)
            },
        ),
        ("mean", Json::Num(s.mean())),
    ])
}

/// Histogram document: scalar stats, derived percentiles (for human
/// and dashboard consumption; recomputed on parse) and the sparse
/// non-empty bucket list as `[index, count]` pairs.
fn histogram_json(h: &Histogram) -> Json {
    let empty = h.count == 0;
    Json::obj(vec![
        ("count", Json::Num(h.count as f64)),
        ("sum", Json::Num(h.sum)),
        ("min", if empty { Json::Null } else { Json::Num(h.min) }),
        ("max", if empty { Json::Null } else { Json::Num(h.max) }),
        ("p50", Json::Num(h.p50())),
        ("p90", Json::Num(h.p90())),
        ("p99", Json::Num(h.p99())),
        (
            "buckets",
            Json::Arr(
                h.nonzero_buckets()
                    .map(|(i, c)| Json::Arr(vec![Json::Num(i as f64), Json::Num(c as f64)]))
                    .collect(),
            ),
        ),
    ])
}

fn histogram_from_json(v: &Json) -> Result<Histogram, String> {
    let count = v
        .get("count")
        .and_then(Json::as_u64)
        .ok_or("histogram.count missing")?;
    let sum = v
        .get("sum")
        .and_then(Json::as_f64)
        .ok_or("histogram.sum missing")?;
    let mut h = Histogram::new();
    let buckets = v
        .get("buckets")
        .and_then(Json::as_arr)
        .ok_or("histogram.buckets missing")?;
    let mut total = 0u64;
    let mut prev_index: Option<u64> = None;
    for (n, pair) in buckets.iter().enumerate() {
        let pair = pair
            .as_arr()
            .filter(|p| p.len() == 2)
            .ok_or_else(|| format!("buckets[{n}] not an [index, count] pair"))?;
        let i = pair[0]
            .as_u64()
            .ok_or_else(|| format!("buckets[{n}] index not an integer"))?;
        let c = pair[1]
            .as_u64()
            .ok_or_else(|| format!("buckets[{n}] count not an integer"))?;
        // The sparse list is emitted in ascending index order; anything
        // else (including a duplicate index) is a malformed document,
        // not something to silently re-sort.
        if let Some(p) = prev_index {
            if i <= p {
                return Err(format!(
                    "buckets[{n}] index {i} not in ascending order (follows {p})"
                ));
            }
        }
        prev_index = Some(i);
        h.set_bucket(i as usize, c)
            .map_err(|e| format!("buckets[{n}]: {e}"))?;
        total += c;
    }
    if total != count {
        return Err(format!(
            "histogram bucket counts sum to {total}, count says {count}"
        ));
    }
    h.count = count;
    h.sum = sum;
    if count > 0 {
        h.min = v
            .get("min")
            .and_then(Json::as_f64)
            .ok_or("histogram.min missing")?;
        h.max = v
            .get("max")
            .and_then(Json::as_f64)
            .ok_or("histogram.max missing")?;
    }
    Ok(h)
}

fn memory_from_json(v: &Json) -> Result<MemoryReport, String> {
    if !matches!(v, Json::Obj(_)) {
        return Err("memory section not an object".into());
    }
    let field = |name: &str| -> Result<u64, String> {
        v.get(name)
            .and_then(Json::as_u64)
            .ok_or_else(|| format!("memory.{name} missing or not an integer"))
    };
    Ok(MemoryReport {
        allocs: field("allocs")?,
        frees: field("frees")?,
        bytes_allocated: field("bytes_allocated")?,
        bytes_freed: field("bytes_freed")?,
        heap_bytes: field("heap_bytes")?,
        heap_peak_bytes: field("heap_peak_bytes")?,
    })
}

fn label_family_from_json(v: &Json) -> Result<LabelFamily, String> {
    let label = v
        .get("label")
        .and_then(Json::as_str)
        .ok_or("label family missing `label` string")?
        .to_string();
    let mut values = BTreeMap::new();
    match v.get("values") {
        Some(Json::Obj(pairs)) => {
            for (k, n) in pairs {
                values.insert(
                    k.clone(),
                    n.as_u64()
                        .ok_or_else(|| format!("label value `{k}` not a u64"))?,
                );
            }
        }
        _ => return Err("label family missing `values` object".into()),
    }
    Ok(LabelFamily { label, values })
}

fn summary_from_json(v: &Json) -> Result<Summary, String> {
    let count = v
        .get("count")
        .and_then(Json::as_u64)
        .ok_or("summary.count missing")?;
    let sum = v
        .get("sum")
        .and_then(Json::as_f64)
        .ok_or("summary.sum missing")?;
    if count == 0 {
        return Ok(Summary::new());
    }
    Ok(Summary {
        count,
        sum,
        min: v
            .get("min")
            .and_then(Json::as_f64)
            .ok_or("summary.min missing")?,
        max: v
            .get("max")
            .and_then(Json::as_f64)
            .ok_or("summary.max missing")?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Report {
        let mut r = Report::new("cad detect");
        r.phases.insert(
            "detect".into(),
            SpanStat {
                calls: 1,
                total_secs: 0.5,
            },
        );
        r.phases.insert(
            "detect/oracle_build".into(),
            SpanStat {
                calls: 2,
                total_secs: 0.4,
            },
        );
        r.counters.insert("linalg.spmv".into(), 123);
        r.summaries.insert("score".into(), Summary::of([0.5, 2.0]));
        r.histograms.insert(
            "cg_iterations".into(),
            Histogram::of([10.0, 12.0, 12.0, 40.0]),
        );
        r.histograms.insert("empty_series".into(), Histogram::new());
        r.gauges.insert("serve.queue_depth".into(), 2);
        r.gauges.insert("serve.sessions_active".into(), 1);
        r.labels.insert(
            "commute.rebuild_fallbacks".into(),
            LabelFamily {
                label: "reason".into(),
                values: [("structural".to_string(), 2), ("degenerate".to_string(), 1)]
                    .into_iter()
                    .collect(),
            },
        );
        r.instances.push(InstanceReport {
            t: 0,
            backend: "embedding".into(),
            build_secs: 0.2,
            jl_dim: Some(16),
            n_solves: 2,
            iterations: Summary::of([10.0, 12.0]),
            residuals: Summary::of([1e-9, 2e-9]),
        });
        r.transitions.push(TransitionReport {
            t: 0,
            score_secs: 0.01,
            n_scored: 5,
            n_edges_flagged: 2,
            n_nodes_flagged: 3,
            score: Summary::of([0.5, 2.0]),
        });
        r.memory = MemoryReport {
            allocs: 100,
            frees: 90,
            bytes_allocated: 65536,
            bytes_freed: 32768,
            heap_bytes: 32768,
            heap_peak_bytes: 40960,
        };
        r.solves.push(SolveReport {
            context: "instance=0/row=0".into(),
            iterations: 10,
            residual: 1e-9,
            converged: true,
            residual_trace: vec![0.4375, 0.1, 1e-5, 1e-9],
        });
        r.solves.push(SolveReport {
            context: "instance=0/row=1".into(),
            iterations: 9,
            residual: 2e-9,
            converged: true,
            residual_trace: Vec::new(),
        });
        r
    }

    #[test]
    fn json_round_trip_is_lossless() {
        let r = sample();
        let text = r.to_json_string();
        let back = Report::from_json(&crate::json::parse(&text).unwrap()).unwrap();
        assert_eq!(back, r);
    }

    #[test]
    fn emitted_report_validates() {
        let r = sample();
        let v = crate::json::parse(&r.to_json_string()).unwrap();
        assert!(Report::validate_json(&v).is_ok());
    }

    #[test]
    fn validation_reports_missing_fields() {
        let v = crate::json::parse(r#"{"schema_version": 1}"#).unwrap();
        let errs = Report::validate_json(&v).unwrap_err();
        assert!(errs.iter().any(|e| e.starts_with("tool")), "{errs:?}");
        assert!(errs.iter().any(|e| e.starts_with("host")), "{errs:?}");
        assert!(errs.iter().any(|e| e.starts_with("solves")), "{errs:?}");
    }

    #[test]
    fn validation_rejects_wrong_schema_version() {
        let mut r = sample();
        r.schema_version = 99;
        let v = crate::json::parse(&r.to_json_string()).unwrap();
        let errs = Report::validate_json(&v).unwrap_err();
        assert!(errs[0].contains("unsupported"), "{errs:?}");
    }

    #[test]
    fn validation_accepts_v1_without_histograms() {
        // A v1 document has no histograms section and must still pass.
        let mut r = sample();
        r.schema_version = 1;
        let text = r
            .to_json_string()
            .replacen("\"histograms\": {", "\"histograms_gone\": {", 1);
        let v = crate::json::parse(&text).unwrap();
        assert_eq!(Report::validate_json(&v), Ok(()));
        let back = Report::from_json(&v).unwrap();
        assert_eq!(back.schema_version, 1);
        assert!(back.histograms.is_empty());

        // The same document claiming v2 is rejected: histograms are
        // required from v2 on.
        let text2 = text.replacen("\"schema_version\": 1", "\"schema_version\": 2", 1);
        let v2 = crate::json::parse(&text2).unwrap();
        let errs = Report::validate_json(&v2).unwrap_err();
        assert!(errs.iter().any(|e| e.contains("histograms")), "{errs:?}");
    }

    #[test]
    fn validation_accepts_v2_without_gauges_and_labels() {
        // A v2 document predates the gauges/labels sections and must
        // still pass; the parser defaults them to empty.
        let mut r = sample();
        r.schema_version = 2;
        let text = r
            .to_json_string()
            .replacen("\"gauges\": {", "\"gauges_gone\": {", 1)
            .replacen("\"labels\": {", "\"labels_gone\": {", 1);
        let v = crate::json::parse(&text).unwrap();
        assert_eq!(Report::validate_json(&v), Ok(()));
        let back = Report::from_json(&v).unwrap();
        assert!(back.gauges.is_empty());
        assert!(back.labels.is_empty());

        // The same document claiming v3 is rejected: both sections are
        // required from v3 on.
        let text3 = text.replacen("\"schema_version\": 2", "\"schema_version\": 3", 1);
        let v3 = crate::json::parse(&text3).unwrap();
        let errs = Report::validate_json(&v3).unwrap_err();
        assert!(errs.iter().any(|e| e.starts_with("gauges")), "{errs:?}");
        assert!(errs.iter().any(|e| e.starts_with("labels")), "{errs:?}");
    }

    #[test]
    fn validation_accepts_v3_without_memory() {
        // A v3 document predates the memory section and must still
        // pass; the parser defaults it to zeros.
        let mut r = sample();
        r.schema_version = 3;
        let text = r
            .to_json_string()
            .replacen("\"memory\": {", "\"memory_gone\": {", 1);
        let v = crate::json::parse(&text).unwrap();
        assert_eq!(Report::validate_json(&v), Ok(()));
        let back = Report::from_json(&v).unwrap();
        assert_eq!(back.memory, MemoryReport::default());

        // The same document claiming v4 is rejected: the memory
        // section is required from v4 on.
        let text4 = text.replacen("\"schema_version\": 3", "\"schema_version\": 4", 1);
        let v4 = crate::json::parse(&text4).unwrap();
        let errs = Report::validate_json(&v4).unwrap_err();
        assert!(errs.iter().any(|e| e.starts_with("memory")), "{errs:?}");
    }

    #[test]
    fn memory_and_residual_traces_round_trip_and_reject_corruption() {
        let r = sample();
        let text = r.to_json_string();
        let back = Report::from_json(&crate::json::parse(&text).unwrap()).unwrap();
        assert_eq!(back.memory.heap_peak_bytes, 40960);
        assert_eq!(back.solves[0].residual_trace.len(), 4);
        assert!(
            back.solves[1].residual_trace.is_empty(),
            "untraced solves omit the array and parse back empty"
        );
        assert!(
            !text.contains("\"residual_trace\": []"),
            "empty traces must be omitted, not emitted"
        );

        // A non-integer memory field is a schema error.
        let bad = text.replacen(
            "\"heap_peak_bytes\": 40960",
            "\"heap_peak_bytes\": \"lots\"",
            1,
        );
        let v = crate::json::parse(&bad).unwrap();
        let errs = Report::validate_json(&v).unwrap_err();
        assert!(
            errs.iter().any(|e| e.contains("heap_peak_bytes")),
            "{errs:?}"
        );

        // A residual trace holding a non-number is rejected. (0.4375
        // is unique to the trace in the sample document — emitted as
        // 17-digit scientific notation — so the replacement cannot
        // land in a summary instead.)
        let bad2 = text.replacen("4.37500000000000000e-1", "\"fast\"", 1);
        assert_ne!(bad2, text, "trace head must be present to corrupt");
        let v2 = crate::json::parse(&bad2).unwrap();
        let errs = Report::validate_json(&v2).unwrap_err();
        assert!(
            errs.iter().any(|e| e.contains("residual_trace")),
            "{errs:?}"
        );
    }

    #[test]
    fn gauges_and_labels_round_trip_and_reject_corruption() {
        let r = sample();
        let text = r.to_json_string();
        let back = Report::from_json(&crate::json::parse(&text).unwrap()).unwrap();
        assert_eq!(back.gauges["serve.queue_depth"], 2);
        assert_eq!(
            back.labels["commute.rebuild_fallbacks"].values["structural"],
            2
        );

        // A non-integer gauge is a schema error attributed to its key.
        let bad = text.replacen(
            "\"serve.queue_depth\": 2",
            "\"serve.queue_depth\": \"two\"",
            1,
        );
        let v = crate::json::parse(&bad).unwrap();
        let errs = Report::validate_json(&v).unwrap_err();
        assert!(
            errs.iter().any(|e| e.contains("gauges.serve.queue_depth")),
            "{errs:?}"
        );

        // A label family without its `values` object is rejected.
        let bad2 = text.replacen("\"values\": {", "\"values_gone\": {", 1);
        let v2 = crate::json::parse(&bad2).unwrap();
        let errs = Report::validate_json(&v2).unwrap_err();
        assert!(
            errs.iter()
                .any(|e| e.contains("labels.commute.rebuild_fallbacks")),
            "{errs:?}"
        );
        assert!(Report::from_json(&v2).is_err());
    }

    #[test]
    fn histogram_round_trips_and_rejects_corruption() {
        let r = sample();
        let back = Report::from_json(&crate::json::parse(&r.to_json_string()).unwrap()).unwrap();
        assert_eq!(back.histograms, r.histograms);
        let h = &back.histograms["cg_iterations"];
        assert_eq!(h.count, 4);
        assert_eq!(h.max, 40.0);

        // Bucket counts disagreeing with `count` is a schema error.
        let text = r
            .to_json_string()
            .replacen("\"count\": 4,", "\"count\": 5,", 1);
        let v = crate::json::parse(&text).unwrap();
        let errs = Report::validate_json(&v).unwrap_err();
        assert!(errs.iter().any(|e| e.contains("sum to")), "{errs:?}");
    }

    #[test]
    fn histogram_bucket_order_is_enforced() {
        // Ascending sparse indices are exactly what the emitter writes:
        // accepted.
        let mk = |buckets: &str| {
            let mut r = Report::new("t");
            r.histograms
                .insert("h".into(), Histogram::of([10.0, 12.0, 12.0]));
            let text = r.to_json_string();
            let start = text.find("\"buckets\": [").unwrap();
            // The sparse list is a nested (and pretty-printed) array:
            // scan for its matching close bracket rather than the
            // first `]`, which only closes an [index, count] pair.
            let open = start + "\"buckets\": ".len();
            let mut depth = 0usize;
            let mut end = open;
            for (i, b) in text.as_bytes()[open..].iter().enumerate() {
                match b {
                    b'[' => depth += 1,
                    b']' => {
                        depth -= 1;
                        if depth == 0 {
                            end = open + i + 1;
                            break;
                        }
                    }
                    _ => {}
                }
            }
            assert!(end > open, "unterminated buckets array");
            format!("{}\"buckets\": {}{}", &text[..start], buckets, &text[end..])
        };
        // Histogram::of([10,12,12]) lands in two distinct buckets; find
        // their real indices so the synthetic lists stay count-consistent.
        let h = Histogram::of([10.0, 12.0, 12.0]);
        let idx: Vec<(usize, u64)> = h.nonzero_buckets().collect();
        assert_eq!(idx.len(), 2);
        let (lo, hi) = (idx[0], idx[1]);

        let ascending = mk(&format!("[[{}, {}], [{}, {}]]", lo.0, lo.1, hi.0, hi.1));
        let v = crate::json::parse(&ascending).unwrap();
        assert_eq!(Report::validate_json(&v), Ok(()));
        assert!(Report::from_json(&v).is_ok());

        // The same pairs swapped out of ascending index order: rejected
        // by both the validator and the parser.
        let descending = mk(&format!("[[{}, {}], [{}, {}]]", hi.0, hi.1, lo.0, lo.1));
        let v = crate::json::parse(&descending).unwrap();
        let errs = Report::validate_json(&v).unwrap_err();
        assert!(errs.iter().any(|e| e.contains("ascending")), "{errs:?}");
        assert!(Report::from_json(&v).is_err());

        // A duplicated index is equally malformed.
        let duplicate = mk(&format!(
            "[[{}, {}], [{}, 1], [{}, {}]]",
            lo.0,
            lo.1 - 1,
            lo.0,
            hi.0,
            hi.1
        ));
        let v = crate::json::parse(&duplicate).unwrap();
        let errs = Report::validate_json(&v).unwrap_err();
        assert!(errs.iter().any(|e| e.contains("ascending")), "{errs:?}");
    }

    #[test]
    fn incremental_update_metrics_validate_and_reject_corruption() {
        // A report carrying the incremental-update telemetry — the
        // counters `commute.incremental_updates` /
        // `commute.rebuild_fallbacks` and the `oracle_update_secs`
        // histogram — passes validation and round-trips.
        let mut r = Report::new("t");
        r.counters.insert("commute.incremental_updates".into(), 7);
        r.counters.insert("commute.rebuild_fallbacks".into(), 2);
        r.histograms.insert(
            "oracle_update_secs".into(),
            Histogram::of([0.002, 0.004, 0.004]),
        );
        let text = r.to_json_string();
        let v = crate::json::parse(&text).unwrap();
        assert_eq!(Report::validate_json(&v), Ok(()));
        let back = Report::from_json(&v).unwrap();
        assert_eq!(back.counters["commute.incremental_updates"], 7);
        assert_eq!(back.counters["commute.rebuild_fallbacks"], 2);
        assert_eq!(back.histograms["oracle_update_secs"].count, 3);

        // A corrupted oracle_update_secs histogram (count disagreeing
        // with its buckets) is rejected, attributed to the right key.
        let bad = text.replacen("\"count\": 3,", "\"count\": 4,", 1);
        let v = crate::json::parse(&bad).unwrap();
        let errs = Report::validate_json(&v).unwrap_err();
        assert!(
            errs.iter()
                .any(|e| e.contains("oracle_update_secs") && e.contains("sum to")),
            "{errs:?}"
        );

        // A non-integer fallback counter is rejected by the parser.
        let bad2 = text.replacen(
            "\"commute.rebuild_fallbacks\": 2",
            "\"commute.rebuild_fallbacks\": \"two\"",
            1,
        );
        let v2 = crate::json::parse(&bad2).unwrap();
        assert!(Report::from_json(&v2).is_err());
    }

    #[test]
    fn empty_summary_round_trips_via_null_min_max() {
        let mut r = Report::new("t");
        r.summaries.insert("empty".into(), Summary::new());
        let back = Report::from_json(&crate::json::parse(&r.to_json_string()).unwrap()).unwrap();
        assert_eq!(back.summaries["empty"], Summary::new());
    }

    #[test]
    fn absorb_snapshot_merges() {
        let reg = crate::metrics::Registry::new();
        reg.add_counter("c", 2);
        reg.record("s", 1.5);
        reg.record_span("a/b", 0.25);
        let mut r = Report::new("t");
        r.absorb_snapshot(&reg.snapshot());
        r.absorb_snapshot(&reg.snapshot());
        assert_eq!(r.counters["c"], 4);
        assert_eq!(r.summaries["s"].count, 2);
        assert_eq!(r.phases["a/b"].calls, 2);
    }

    #[test]
    fn trace_render_shows_tree_and_sections() {
        let text = sample().render_trace();
        assert!(text.contains("run phases"));
        // Child is indented deeper than its parent.
        let parent = text
            .lines()
            .find(|l| l.trim_start().starts_with("detect "))
            .unwrap();
        let child = text
            .lines()
            .find(|l| l.trim_start().starts_with("oracle_build"))
            .unwrap();
        let indent = |l: &str| l.len() - l.trim_start().len();
        assert!(indent(child) > indent(parent), "{text}");
        assert!(text.contains("per-instance oracle builds"));
        assert!(text.contains("per-transition scoring"));
        assert!(text.contains("linalg.spmv"));
    }
}
