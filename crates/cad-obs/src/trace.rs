//! Request-scoped trace context.
//!
//! `cad-serve` mints one [`TraceCtx`] per request and installs it on the
//! worker thread for the duration of the handler ([`set_current`]). Every
//! layer below — `cad-core`'s online detector, `cad-commute`'s
//! incremental updates, `cad-linalg`'s Laplacian solves — reads the
//! ambient context back with [`current`] when it records a flight-recorder
//! event ([`crate::events`]), so per-request attribution needs no
//! signature changes through the stack. Sessions pin their detector to
//! one thread (`threads: 1`), so everything a push does happens on the
//! thread that installed its context.
//!
//! Alongside the ids, the context tracks an **explicit child-span stack**
//! per thread: [`TraceSpan`] pushes a static name on enter and pops it on
//! drop, emitting paired [`EventKind::SpanOpen`]/[`EventKind::SpanClose`]
//! records stamped with the ambient trace. This is deliberately separate
//! from [`crate::span!`]: spans feed the *aggregate* registry (which must
//! stay deterministic), the trace stack feeds the *forensic* ring (which
//! is sanctioned wall-clock/nondeterministic territory).
//!
//! Trace ids are 64-bit, nonzero, and intentionally nondeterministic
//! (process seed mixed with a global counter); id `0` means "no trace"
//! and is what batch CLI runs observe. The wire form is 16 lowercase hex
//! digits ([`TraceCtx::id_hex`]).

use crate::events::EventKind;
use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// The identity of one in-flight request: trace id plus owning session.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceCtx {
    /// Nonzero per-request id; `0` = no active trace.
    pub trace_id: u64,
    /// The session the request addresses (`0` when none).
    pub session_id: u64,
}

/// SplitMix64 — the standard 64-bit finalizer; good dispersion from a
/// sequential counter, no external dependencies.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e3779b97f4a7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d049bb133111eb);
    x ^ (x >> 31)
}

/// Process-wide mint state: a seed derived from the clock on first use
/// plus a monotone counter, so ids are unique within a process and
/// almost surely unique across restarts.
static MINT_SEED: AtomicU64 = AtomicU64::new(0);
static MINT_COUNTER: AtomicU64 = AtomicU64::new(0);

impl TraceCtx {
    /// The absent context (trace id 0).
    pub const NONE: TraceCtx = TraceCtx {
        trace_id: 0,
        session_id: 0,
    };

    /// Is a real trace attached?
    pub fn is_active(&self) -> bool {
        self.trace_id != 0
    }

    /// Mint a fresh, nonzero trace id for a request against
    /// `session_id` (use `0` for requests outside any session).
    pub fn mint(session_id: u64) -> TraceCtx {
        let mut seed = MINT_SEED.load(Ordering::Relaxed);
        if seed == 0 {
            let nanos = std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .map(|d| d.as_nanos() as u64)
                .unwrap_or(0x5eed);
            seed = splitmix64(nanos) | 1;
            // First caller wins; everyone re-reads the published seed.
            let _ = MINT_SEED.compare_exchange(0, seed, Ordering::Relaxed, Ordering::Relaxed);
            seed = MINT_SEED.load(Ordering::Relaxed);
        }
        let n = MINT_COUNTER.fetch_add(1, Ordering::Relaxed);
        let mut id = splitmix64(seed ^ n.wrapping_mul(0x2545f4914f6cdd1d));
        if id == 0 {
            id = 1;
        }
        TraceCtx {
            trace_id: id,
            session_id,
        }
    }

    /// The wire form of the trace id: exactly 16 lowercase hex digits
    /// (the `X-Cad-Trace-Id` header and access-log/event value).
    pub fn id_hex(&self) -> String {
        format!("{:016x}", self.trace_id)
    }
}

/// Render any trace id in the 16-hex-digit wire form.
pub fn id_hex(trace_id: u64) -> String {
    format!("{trace_id:016x}")
}

thread_local! {
    static CURRENT: RefCell<TraceState> = const {
        RefCell::new(TraceState { ctx: TraceCtx::NONE, spans: Vec::new() })
    };
}

struct TraceState {
    ctx: TraceCtx,
    /// Explicit child-span stack of the active trace (static names,
    /// slash-joined for event records).
    spans: Vec<&'static str>,
}

/// The context installed on this thread (`TraceCtx::NONE` outside a
/// request).
pub fn current() -> TraceCtx {
    CURRENT.with(|s| s.borrow().ctx)
}

/// The slash-joined child-span stack of the current trace (empty string
/// at request top level).
pub fn span_path() -> String {
    CURRENT.with(|s| s.borrow().spans.join("/"))
}

/// Install `ctx` as this thread's ambient trace for the guard's
/// lifetime; the previous context (and span stack) is restored on drop,
/// so nested installs compose.
pub fn set_current(ctx: TraceCtx) -> TraceGuard {
    let prev = CURRENT.with(|s| {
        let mut state = s.borrow_mut();
        let prev = (state.ctx, std::mem::take(&mut state.spans));
        state.ctx = ctx;
        prev
    });
    TraceGuard { prev: Some(prev) }
}

/// RAII restore for [`set_current`].
#[derive(Debug)]
pub struct TraceGuard {
    #[allow(clippy::type_complexity)]
    prev: Option<(TraceCtx, Vec<&'static str>)>,
}

impl Drop for TraceGuard {
    fn drop(&mut self) {
        if let Some((ctx, spans)) = self.prev.take() {
            CURRENT.with(|s| {
                let mut state = s.borrow_mut();
                state.ctx = ctx;
                state.spans = spans;
            });
        }
    }
}

/// A child span of the ambient trace: pushes `name` onto the explicit
/// span stack and emits a [`EventKind::SpanOpen`] record; the matching
/// [`EventKind::SpanClose`] (carrying the elapsed seconds) is emitted on
/// drop. Use for forensic, per-request timing; use [`crate::span!`] for
/// the deterministic aggregate registry.
#[derive(Debug)]
pub struct TraceSpan {
    name: &'static str,
    start: Instant,
}

impl TraceSpan {
    /// Open a child span named `name` on the current trace.
    pub fn enter(name: &'static str) -> TraceSpan {
        CURRENT.with(|s| s.borrow_mut().spans.push(name));
        crate::events::record(EventKind::SpanOpen, name, 0.0, 0);
        TraceSpan {
            name,
            start: Instant::now(),
        }
    }
}

impl Drop for TraceSpan {
    fn drop(&mut self) {
        let secs = self.start.elapsed().as_secs_f64();
        CURRENT.with(|s| {
            let mut state = s.borrow_mut();
            if state.spans.last() == Some(&self.name) {
                state.spans.pop();
            }
        });
        crate::events::record(EventKind::SpanClose, self.name, secs, 0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minted_ids_are_nonzero_and_distinct() {
        let a = TraceCtx::mint(1);
        let b = TraceCtx::mint(1);
        assert!(a.is_active() && b.is_active());
        assert_ne!(a.trace_id, b.trace_id);
        assert_eq!(a.session_id, 1);
        assert!(!TraceCtx::NONE.is_active());
    }

    #[test]
    fn id_hex_is_sixteen_lowercase_hex_digits() {
        let ctx = TraceCtx {
            trace_id: 0xABC,
            session_id: 0,
        };
        assert_eq!(ctx.id_hex(), "0000000000000abc");
        let minted = TraceCtx::mint(0).id_hex();
        assert_eq!(minted.len(), 16);
        assert!(minted.chars().all(|c| c.is_ascii_hexdigit()));
        assert!(!minted.chars().any(|c| c.is_ascii_uppercase()));
    }

    #[test]
    fn guard_installs_and_restores_with_nesting() {
        assert_eq!(current(), TraceCtx::NONE);
        let outer = TraceCtx::mint(7);
        {
            let _g = set_current(outer);
            assert_eq!(current(), outer);
            {
                let inner = TraceCtx::mint(8);
                let _g2 = set_current(inner);
                assert_eq!(current(), inner);
            }
            assert_eq!(current(), outer);
        }
        assert_eq!(current(), TraceCtx::NONE);
    }

    #[test]
    fn trace_spans_maintain_the_child_stack() {
        let _g = set_current(TraceCtx::mint(1));
        assert_eq!(span_path(), "");
        {
            let _a = TraceSpan::enter("push");
            assert_eq!(span_path(), "push");
            {
                let _b = TraceSpan::enter("oracle_update");
                assert_eq!(span_path(), "push/oracle_update");
            }
            assert_eq!(span_path(), "push");
        }
        assert_eq!(span_path(), "");
    }

    #[test]
    fn fresh_threads_have_no_trace() {
        let _g = set_current(TraceCtx::mint(3));
        let seen = std::thread::spawn(current).join().unwrap();
        assert_eq!(seen, TraceCtx::NONE);
    }
}
