//! Progress output sink for long-running binaries.
//!
//! The experiment binaries used to scatter ad-hoc `eprintln!` calls;
//! routing them through one sink makes the stream uniform, quietable
//! (`--quiet`) and expandable (`-v`/debug shows span labels too).
//! Output always goes to stderr so it never pollutes piped stdout data.

use std::sync::atomic::{AtomicU8, Ordering};

/// How chatty the progress sink is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd)]
pub enum Verbosity {
    /// No progress output at all.
    Quiet = 0,
    /// Normal progress lines (the default).
    Normal = 1,
    /// Progress lines plus per-span debug output.
    Debug = 2,
}

static LEVEL: AtomicU8 = AtomicU8::new(Verbosity::Normal as u8);

/// Set the process-wide verbosity.
pub fn set_verbosity(v: Verbosity) {
    LEVEL.store(v as u8, Ordering::Relaxed);
}

/// The current verbosity.
pub fn verbosity() -> Verbosity {
    match LEVEL.load(Ordering::Relaxed) {
        0 => Verbosity::Quiet,
        1 => Verbosity::Normal,
        _ => Verbosity::Debug,
    }
}

/// Emit one progress line (stderr) unless quieted.
pub fn emit(line: &str) {
    if verbosity() >= Verbosity::Normal {
        eprintln!("{line}");
    }
}

/// Emit one debug line (stderr) at debug verbosity only.
pub fn debug(line: &str) {
    if verbosity() >= Verbosity::Debug {
        eprintln!("{line}");
    }
}

/// Format-and-emit progress, `println!`-style.
///
/// ```
/// # use cad_obs::progress;
/// progress!("trial {} done", 3);
/// ```
#[macro_export]
macro_rules! progress {
    ($($arg:tt)*) => {
        $crate::progress::emit(&format!($($arg)*))
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn verbosity_round_trips() {
        // Serialized within this test; other tests do not read the level.
        let original = verbosity();
        for v in [Verbosity::Quiet, Verbosity::Debug, Verbosity::Normal] {
            set_verbosity(v);
            assert_eq!(verbosity(), v);
        }
        set_verbosity(original);
    }

    #[test]
    fn ordering_is_quiet_normal_debug() {
        assert!(Verbosity::Quiet < Verbosity::Normal);
        assert!(Verbosity::Normal < Verbosity::Debug);
    }
}
