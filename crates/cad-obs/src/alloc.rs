//! The counting global allocator: exact, lock-free heap accounting.
//!
//! [`CountingAlloc`] wraps [`std::alloc::System`] and counts every
//! allocation, deallocation and byte that passes through it. Binaries
//! opt in with
//!
//! ```ignore
//! #[global_allocator]
//! static ALLOC: cad_obs::alloc::CountingAlloc = cad_obs::alloc::CountingAlloc::new();
//! ```
//!
//! and every layer can then read [`stats`] — totals feed the
//! `mem.*` gauges in `/metrics` ([`crate::metrics::gauges`]) and the
//! `memory` section of the schema-v4 report ([`crate::report`]).
//!
//! Design constraints, in order:
//!
//! * **Reentrancy.** The allocator runs under every `Box::new` in the
//!   process, including inside TLS initialization and thread teardown,
//!   so it must not touch `thread_local!` state, take locks, or
//!   allocate. Everything here is plain atomics.
//! * **Exactness.** Totals are `fetch_add`s on commutative counters, so
//!   `allocs − frees` equals the number of live blocks and
//!   `bytes_allocated − bytes_freed` equals the live heap, no matter
//!   how threads interleave. The live level itself is one global
//!   counter (adds and subs must see each other for the high-water
//!   mark to be exact), updated with `fetch_add`/`fetch_sub` and folded
//!   into the peak with `fetch_max` — every transient level is
//!   observed by exactly one of the two racing updates, so the peak
//!   never under-reports.
//! * **Low contention.** The monotone totals are striped: each call
//!   picks one of [`N_STRIPES`] cache-line-padded cells keyed by the
//!   caller's stack address (a cheap thread fingerprint that needs no
//!   TLS), so unrelated threads usually bump disjoint lines. Reads sum
//!   the stripes.
//!
//! Counters are process-lifetime monotone and deliberately **not**
//! reset by [`crate::reset`]: a reset racing a free could drive
//! `frees > allocs` and make every derived quantity a lie. Consumers
//! that want per-phase numbers take two snapshots and subtract.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

/// Number of counter stripes (power of two; indexes are masked).
pub const N_STRIPES: usize = 16;

/// One cache-line-padded stripe of monotone totals.
#[repr(align(64))]
struct Stripe {
    allocs: AtomicU64,
    frees: AtomicU64,
    bytes_allocated: AtomicU64,
    bytes_freed: AtomicU64,
}

impl Stripe {
    const fn new() -> Self {
        Stripe {
            allocs: AtomicU64::new(0),
            frees: AtomicU64::new(0),
            bytes_allocated: AtomicU64::new(0),
            bytes_freed: AtomicU64::new(0),
        }
    }
}

static STRIPES: [Stripe; N_STRIPES] = [const { Stripe::new() }; N_STRIPES];

/// Live heap bytes (allocated − freed), updated on every call so the
/// high-water mark is exact.
static LIVE_BYTES: AtomicU64 = AtomicU64::new(0);
/// High-water mark of [`LIVE_BYTES`].
static PEAK_BYTES: AtomicU64 = AtomicU64::new(0);

/// A cheap per-thread fingerprint without TLS: the address of a stack
/// local. Thread stacks live in disjoint regions, so distinct threads
/// land on distinct stripes with high probability; a thread drifting
/// between stripes as its stack grows only costs locality, never
/// correctness (reads sum all stripes).
#[inline]
fn stripe() -> &'static Stripe {
    let marker = 0u8;
    let addr = std::ptr::addr_of!(marker) as usize;
    &STRIPES[(addr >> 13) & (N_STRIPES - 1)]
}

#[inline]
fn record_alloc(bytes: usize) {
    let s = stripe();
    s.allocs.fetch_add(1, Ordering::Relaxed);
    s.bytes_allocated.fetch_add(bytes as u64, Ordering::Relaxed);
    let live = LIVE_BYTES.fetch_add(bytes as u64, Ordering::Relaxed) + bytes as u64;
    PEAK_BYTES.fetch_max(live, Ordering::Relaxed);
}

#[inline]
fn record_free(bytes: usize) {
    let s = stripe();
    s.frees.fetch_add(1, Ordering::Relaxed);
    s.bytes_freed.fetch_add(bytes as u64, Ordering::Relaxed);
    LIVE_BYTES.fetch_sub(bytes as u64, Ordering::Relaxed);
}

/// The counting `#[global_allocator]` wrapper around the system
/// allocator. Stateless — all accounting lives in process statics, so
/// [`stats`] works whether or not the wrapper is installed (it reads
/// zeros when it is not).
#[derive(Debug, Default, Clone, Copy)]
pub struct CountingAlloc;

impl CountingAlloc {
    /// The wrapper (const, for `#[global_allocator]` statics).
    pub const fn new() -> Self {
        CountingAlloc
    }
}

// SAFETY: every method delegates to `System` verbatim; the accounting
// is side-effect-only atomics and never inspects or alters the block.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let p = System.alloc(layout);
        if !p.is_null() {
            record_alloc(layout.size());
        }
        p
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        let p = System.alloc_zeroed(layout);
        if !p.is_null() {
            record_alloc(layout.size());
        }
        p
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout);
        record_free(layout.size());
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let p = System.realloc(ptr, layout, new_size);
        if !p.is_null() {
            // One block of `layout.size()` died, one of `new_size` was
            // born — counted in that order so the live level never
            // transiently double-counts both.
            record_free(layout.size());
            record_alloc(new_size);
        }
        p
    }
}

/// A point-in-time copy of the allocator counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MemoryStats {
    /// Successful allocations (including the alloc half of reallocs).
    pub allocs: u64,
    /// Deallocations (including the free half of reallocs).
    pub frees: u64,
    /// Total bytes ever allocated.
    pub bytes_allocated: u64,
    /// Total bytes ever freed.
    pub bytes_freed: u64,
    /// Live heap bytes right now.
    pub heap_bytes: u64,
    /// High-water mark of the live heap over the process lifetime.
    pub heap_peak_bytes: u64,
}

/// Read the current allocator counters. All zeros when no
/// [`CountingAlloc`] is installed as the global allocator.
pub fn stats() -> MemoryStats {
    let mut m = MemoryStats {
        heap_bytes: LIVE_BYTES.load(Ordering::Relaxed),
        heap_peak_bytes: PEAK_BYTES.load(Ordering::Relaxed),
        ..MemoryStats::default()
    };
    for s in &STRIPES {
        m.allocs += s.allocs.load(Ordering::Relaxed);
        m.frees += s.frees.load(Ordering::Relaxed);
        m.bytes_allocated += s.bytes_allocated.load(Ordering::Relaxed);
        m.bytes_freed += s.bytes_freed.load(Ordering::Relaxed);
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    /// Counter tests drive the `GlobalAlloc` impl directly (no
    /// `#[global_allocator]` in this test binary), so the statics move
    /// only when a test moves them — but two such tests racing would
    /// still tangle their deltas, so they serialize here.
    static ALLOC_LOCK: Mutex<()> = Mutex::new(());

    fn layout(bytes: usize) -> Layout {
        Layout::from_size_align(bytes, 8).expect("layout")
    }

    #[test]
    fn counts_alloc_free_and_bytes() {
        let _g = ALLOC_LOCK.lock().unwrap_or_else(|p| p.into_inner());
        let a = CountingAlloc::new();
        let before = stats();
        let l = layout(1024);
        let p = unsafe { a.alloc(l) };
        assert!(!p.is_null());
        let mid = stats();
        assert_eq!(mid.allocs - before.allocs, 1);
        assert_eq!(mid.bytes_allocated - before.bytes_allocated, 1024);
        assert_eq!(mid.heap_bytes - before.heap_bytes, 1024);
        assert!(mid.heap_peak_bytes >= mid.heap_bytes);
        unsafe { a.dealloc(p, l) };
        let after = stats();
        assert_eq!(after.frees - before.frees, 1);
        assert_eq!(after.bytes_freed - before.bytes_freed, 1024);
        assert_eq!(after.heap_bytes, before.heap_bytes);
    }

    #[test]
    fn realloc_counts_one_free_and_one_alloc() {
        let _g = ALLOC_LOCK.lock().unwrap_or_else(|p| p.into_inner());
        let a = CountingAlloc::new();
        let before = stats();
        let l = layout(256);
        let p = unsafe { a.alloc(l) };
        let p2 = unsafe { a.realloc(p, l, 512) };
        assert!(!p2.is_null());
        let mid = stats();
        assert_eq!(mid.allocs - before.allocs, 2, "alloc + realloc's alloc");
        assert_eq!(mid.frees - before.frees, 1, "realloc's free");
        assert_eq!(mid.bytes_allocated - before.bytes_allocated, 256 + 512);
        assert_eq!(mid.heap_bytes - before.heap_bytes, 512);
        unsafe { a.dealloc(p2, layout(512)) };
        let after = stats();
        assert_eq!(after.heap_bytes, before.heap_bytes);
        assert_eq!(after.allocs - after.frees, before.allocs - before.frees);
    }

    #[test]
    fn alloc_zeroed_is_counted_and_zeroed() {
        let _g = ALLOC_LOCK.lock().unwrap_or_else(|p| p.into_inner());
        let a = CountingAlloc::new();
        let before = stats();
        let l = layout(64);
        let p = unsafe { a.alloc_zeroed(l) };
        assert!(!p.is_null());
        assert!((0..64).all(|i| unsafe { *p.add(i) } == 0));
        assert_eq!(stats().allocs - before.allocs, 1);
        unsafe { a.dealloc(p, l) };
    }

    #[test]
    fn counters_are_exact_under_concurrent_alloc_free() {
        let _g = ALLOC_LOCK.lock().unwrap_or_else(|p| p.into_inner());
        const THREADS: usize = 8;
        const ROUNDS: usize = 200;
        const BYTES: usize = 1 << 10;
        let before = stats();
        std::thread::scope(|s| {
            for t in 0..THREADS {
                s.spawn(move || {
                    let a = CountingAlloc::new();
                    // Vary the hold pattern per thread: even threads
                    // free immediately, odd threads batch then free,
                    // so allocs and frees genuinely interleave across
                    // threads.
                    let l = layout(BYTES);
                    if t % 2 == 0 {
                        for _ in 0..ROUNDS {
                            let p = unsafe { a.alloc(l) };
                            assert!(!p.is_null());
                            unsafe { a.dealloc(p, l) };
                        }
                    } else {
                        let mut held = Vec::with_capacity(ROUNDS);
                        for _ in 0..ROUNDS {
                            let p = unsafe { a.alloc(l) };
                            assert!(!p.is_null());
                            held.push(p);
                        }
                        for p in held {
                            unsafe { a.dealloc(p, l) };
                        }
                    }
                });
            }
        });
        let after = stats();
        let n = (THREADS * ROUNDS) as u64;
        assert_eq!(after.allocs - before.allocs, n);
        assert_eq!(after.frees - before.frees, n);
        assert_eq!(
            after.bytes_allocated - before.bytes_allocated,
            n * BYTES as u64
        );
        assert_eq!(after.bytes_freed - before.bytes_freed, n * BYTES as u64);
        // Everything was freed: allocs − frees == live blocks == what
        // it was before, and the live byte level is back exactly.
        assert_eq!(after.allocs - after.frees, before.allocs - before.frees);
        assert_eq!(after.heap_bytes, before.heap_bytes);
        // The high-water mark is monotone and at least the odd
        // threads' held batches above the baseline.
        assert!(after.heap_peak_bytes >= before.heap_peak_bytes);
        assert!(after.heap_peak_bytes >= (ROUNDS * BYTES) as u64);
    }

    #[test]
    fn peak_is_monotone_across_snapshots() {
        let _g = ALLOC_LOCK.lock().unwrap_or_else(|p| p.into_inner());
        let a = CountingAlloc::new();
        let mut last_peak = stats().heap_peak_bytes;
        let l = layout(4096);
        for _ in 0..32 {
            let p = unsafe { a.alloc(l) };
            assert!(!p.is_null());
            unsafe { a.dealloc(p, l) };
            let peak = stats().heap_peak_bytes;
            assert!(peak >= last_peak, "high-water mark must never move down");
            last_peak = peak;
        }
    }
}
