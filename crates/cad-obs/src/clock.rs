//! Wall-clock timing helpers shared by the whole workspace.
//!
//! Formerly duplicated in `cad-bench`; every crate that needs to time a
//! closure now uses this single implementation.

use std::time::Instant;

/// Run `f`, returning its result and the elapsed seconds.
pub fn time_it<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let start = Instant::now();
    let out = f();
    (out, start.elapsed().as_secs_f64())
}

/// Run `f` `reps` times (after one warm-up), returning the mean seconds.
pub fn time_mean<T>(reps: usize, mut f: impl FnMut() -> T) -> f64 {
    assert!(reps > 0);
    let _ = f(); // warm-up
    let mut total = 0.0;
    for _ in 0..reps {
        let (_, secs) = time_it(&mut f);
        total += secs;
    }
    total / reps as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn returns_value_and_positive_time() {
        let (v, secs) = time_it(|| 21 * 2);
        assert_eq!(v, 42);
        assert!(secs >= 0.0);
    }

    #[test]
    fn mean_over_reps() {
        let mut calls = 0;
        let mean = time_mean(3, || calls += 1);
        assert_eq!(calls, 4); // warm-up + 3 timed
        assert!(mean >= 0.0);
    }
}
