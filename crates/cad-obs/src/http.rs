//! Minimal hand-rolled HTTP/1.1 plumbing shared by every embedded
//! endpoint in the workspace (the `/metrics` exporter here in `cad-obs`
//! and the `cad-serve` detection service).
//!
//! The workspace is dependency-free by policy, so this module owns the
//! one correct implementation of the boring-but-sharp parts:
//!
//! * **request reading** — request line + headers, tolerant of
//!   arbitrarily fragmented writes, with a hard cap on header bytes
//!   (reject with `431`, never buffer unboundedly);
//! * **bodies** — `Content-Length` only (no chunked encoding), with a
//!   configurable size cap (reject with `413` *before* reading the
//!   payload);
//! * **timeouts** — per-connection read/write deadlines so a stalled
//!   peer cannot pin a worker forever;
//! * **keep-alive** — HTTP/1.1 persistent-connection semantics
//!   (`Connection: close` honoured both ways);
//! * **responses** — correct `Content-Length`/`Connection` framing and
//!   a shared structured-error JSON body schema
//!   ([`error_body`]) used by both the service endpoints and `cad
//!   watch` event streams.
//!
//! Everything a malformed peer can do maps to a typed [`ReadError`]
//! that [`status_for`] turns into the right 4xx — parsing never panics
//! and never hangs past the configured deadlines.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

/// Hard limits applied while reading one request.
#[derive(Debug, Clone, Copy)]
pub struct HttpLimits {
    /// Cap on the request line + headers, in bytes (`431` beyond).
    pub max_head_bytes: usize,
    /// Cap on the declared `Content-Length` (`413` beyond).
    pub max_body_bytes: usize,
    /// Socket read deadline (`None` = block forever).
    pub read_timeout: Option<Duration>,
    /// Socket write deadline (`None` = block forever).
    pub write_timeout: Option<Duration>,
}

impl Default for HttpLimits {
    fn default() -> Self {
        HttpLimits {
            max_head_bytes: 8 * 1024,
            max_body_bytes: 1024 * 1024,
            read_timeout: Some(Duration::from_secs(10)),
            write_timeout: Some(Duration::from_secs(10)),
        }
    }
}

/// One parsed request.
#[derive(Debug, Clone)]
pub struct Request {
    /// The method token, as sent (`GET`, `POST`, ...).
    pub method: String,
    /// The request target (path + optional query), as sent.
    pub path: String,
    /// Headers in arrival order, names lowercased.
    pub headers: Vec<(String, String)>,
    /// The body (empty without a `Content-Length`).
    pub body: Vec<u8>,
    /// Whether the peer wants the connection kept open afterwards.
    pub keep_alive: bool,
}

impl Request {
    /// First header with this (case-insensitive) name.
    pub fn header(&self, name: &str) -> Option<&str> {
        let lower = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(k, _)| *k == lower)
            .map(|(_, v)| v.as_str())
    }
}

/// Why a request could not be read.
#[derive(Debug)]
pub enum ReadError {
    /// The peer closed before sending a full request head. Normal for
    /// shutdown wake-ups and keep-alive closes; not worth a response.
    Closed,
    /// Syntactically invalid request (`400`).
    Bad(String),
    /// Request line + headers exceeded [`HttpLimits::max_head_bytes`]
    /// (`431`).
    HeadTooLarge,
    /// Declared `Content-Length` exceeded
    /// [`HttpLimits::max_body_bytes`] (`413`).
    BodyTooLarge(u64),
    /// Socket error, including read timeouts (`408` when answerable).
    Io(std::io::Error),
}

impl std::fmt::Display for ReadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReadError::Closed => write!(f, "connection closed"),
            ReadError::Bad(m) => write!(f, "malformed request: {m}"),
            ReadError::HeadTooLarge => write!(f, "request head too large"),
            ReadError::BodyTooLarge(n) => write!(f, "request body of {n} bytes too large"),
            ReadError::Io(e) => write!(f, "{e}"),
        }
    }
}

/// The HTTP status code a [`ReadError`] should be answered with
/// (`None`: the peer is gone, write nothing).
pub fn status_for(err: &ReadError) -> Option<u16> {
    match err {
        ReadError::Closed => None,
        ReadError::Bad(_) => Some(400),
        ReadError::HeadTooLarge => Some(431),
        ReadError::BodyTooLarge(_) => Some(413),
        ReadError::Io(e)
            if e.kind() == std::io::ErrorKind::WouldBlock
                || e.kind() == std::io::ErrorKind::TimedOut =>
        {
            Some(408)
        }
        ReadError::Io(_) => None,
    }
}

/// Reason phrase for the status codes this workspace emits.
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        201 => "Created",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        409 => "Conflict",
        413 => "Payload Too Large",
        422 => "Unprocessable Entity",
        429 => "Too Many Requests",
        431 => "Request Header Fields Too Large",
        503 => "Service Unavailable",
        _ => "Internal Server Error",
    }
}

/// The shared structured-error body: one JSON object
/// `{"error": {"code": ..., "message": ...}}` (newline-terminated so it
/// doubles as an NDJSON line in event streams). The same schema is
/// returned by every `cad-serve` error response and appended by
/// `cad watch` when a snapshot is rejected.
pub fn error_body(code: &str, message: &str) -> String {
    let obj = crate::Json::obj(vec![(
        "error",
        crate::Json::obj(vec![
            ("code", crate::Json::Str(code.to_string())),
            ("message", crate::Json::Str(message.to_string())),
        ]),
    )]);
    let mut s = obj.compact();
    s.push('\n');
    s
}

/// Find the end of the head: the index one past the blank line.
/// Accepts both `\r\n\r\n` and bare `\n\n` separators.
fn head_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4)
        .position(|w| w == b"\r\n\r\n")
        .map(|i| i + 4)
        .or_else(|| buf.windows(2).position(|w| w == b"\n\n").map(|i| i + 2))
}

/// Read one request from `stream`, honouring `limits`.
///
/// Applies the read/write timeouts to the socket, buffers the head
/// across arbitrarily fragmented writes up to the head cap, validates
/// the request line, parses headers, and reads exactly the declared
/// `Content-Length` bytes of body (zero without the header).
pub fn read_request(stream: &mut TcpStream, limits: &HttpLimits) -> Result<Request, ReadError> {
    stream
        .set_read_timeout(limits.read_timeout)
        .map_err(ReadError::Io)?;
    stream
        .set_write_timeout(limits.write_timeout)
        .map_err(ReadError::Io)?;

    let mut buf: Vec<u8> = Vec::with_capacity(1024);
    let mut chunk = [0u8; 1024];
    let split = loop {
        if let Some(end) = head_end(&buf) {
            break end;
        }
        if buf.len() > limits.max_head_bytes {
            return Err(ReadError::HeadTooLarge);
        }
        let got = stream.read(&mut chunk).map_err(ReadError::Io)?;
        if got == 0 {
            if buf.is_empty() {
                return Err(ReadError::Closed);
            }
            return Err(ReadError::Bad("connection closed mid-head".into()));
        }
        buf.extend_from_slice(&chunk[..got]);
    };
    if split > limits.max_head_bytes {
        return Err(ReadError::HeadTooLarge);
    }
    let (head, rest) = buf.split_at(split);
    let head = std::str::from_utf8(head).map_err(|_| ReadError::Bad("head is not UTF-8".into()))?;
    let mut lines = head.lines();
    let request_line = lines.next().unwrap_or("").trim_end();
    let mut parts = request_line.split(' ');
    let (method, path, version) = match (parts.next(), parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(p), Some(v), None) if !m.is_empty() && !p.is_empty() => (m, p, v),
        _ => {
            return Err(ReadError::Bad(format!(
                "bad request line: {request_line:?}"
            )))
        }
    };
    if !method.bytes().all(|b| b.is_ascii_uppercase()) {
        return Err(ReadError::Bad(format!("bad method: {method:?}")));
    }
    if !version.starts_with("HTTP/1.") {
        return Err(ReadError::Bad(format!("bad version: {version:?}")));
    }

    let mut headers: Vec<(String, String)> = Vec::new();
    for line in lines {
        let line = line.trim_end();
        if line.is_empty() {
            continue;
        }
        let (name, value) = line
            .split_once(':')
            .ok_or_else(|| ReadError::Bad(format!("bad header line: {line:?}")))?;
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
    }

    let content_length = match headers.iter().find(|(k, _)| k == "content-length") {
        Some((_, v)) => v
            .parse::<u64>()
            .map_err(|_| ReadError::Bad(format!("bad content-length: {v:?}")))?,
        None => 0,
    };
    if content_length > limits.max_body_bytes as u64 {
        return Err(ReadError::BodyTooLarge(content_length));
    }

    let mut body = rest.to_vec();
    while (body.len() as u64) < content_length {
        let got = stream.read(&mut chunk).map_err(ReadError::Io)?;
        if got == 0 {
            return Err(ReadError::Bad("connection closed mid-body".into()));
        }
        body.extend_from_slice(&chunk[..got]);
    }
    if body.len() as u64 > content_length {
        // Pipelined extra bytes are not supported; better to reject
        // loudly than to silently desynchronise the connection.
        return Err(ReadError::Bad("body longer than content-length".into()));
    }

    let connection = headers
        .iter()
        .find(|(k, _)| k == "connection")
        .map(|(_, v)| v.to_ascii_lowercase());
    let keep_alive = match (version, connection.as_deref()) {
        (_, Some("close")) => false,
        ("HTTP/1.0", Some("keep-alive")) => true,
        ("HTTP/1.0", _) => false,
        _ => true,
    };

    Ok(Request {
        method: method.to_string(),
        path: path.to_string(),
        headers,
        body,
        keep_alive,
    })
}

/// Write one response with correct framing. `extra` headers are
/// emitted verbatim after the standard ones (e.g. `Retry-After`).
pub fn write_response(
    stream: &mut TcpStream,
    status: u16,
    content_type: &str,
    body: &[u8],
    keep_alive: bool,
    extra: &[(&str, String)],
) -> std::io::Result<()> {
    let mut head = format!(
        "HTTP/1.1 {status} {}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: {}\r\n",
        reason(status),
        body.len(),
        if keep_alive { "keep-alive" } else { "close" },
    );
    for (name, value) in extra {
        head.push_str(name);
        head.push_str(": ");
        head.push_str(value);
        head.push_str("\r\n");
    }
    head.push_str("\r\n");
    // One write for head + body: two separate segments interact badly
    // with Nagle + delayed ACK (a ~40ms stall per response on Linux
    // loopback when the peer batches its ACKs).
    let mut frame = head.into_bytes();
    frame.extend_from_slice(body);
    stream.write_all(&frame)?;
    stream.flush()
}

/// Answer a [`ReadError`] with its structured-error response when the
/// peer is still there to hear it. Always closes the connection.
pub fn respond_read_error(stream: &mut TcpStream, err: &ReadError) {
    if let Some(status) = status_for(err) {
        let code = match status {
            400 => "bad_request",
            408 => "timeout",
            413 => "body_too_large",
            431 => "head_too_large",
            _ => "error",
        };
        let body = error_body(code, &err.to_string());
        if write_response(
            stream,
            status,
            "application/json",
            body.as_bytes(),
            false,
            &[],
        )
        .is_err()
        {
            return;
        }
        // Drain (a bounded amount of) whatever the peer is still
        // sending before closing: dropping a socket with unread input
        // sends RST on many stacks, which would destroy the error
        // response before the client reads it.
        let _ = stream.set_read_timeout(Some(Duration::from_millis(250)));
        let mut sink = [0u8; 4096];
        for _ in 0..64 {
            match stream.read(&mut sink) {
                Ok(0) | Err(_) => break,
                Ok(_) => {}
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    /// Run `client` against a one-shot server that reads a request with
    /// `limits` and returns the outcome.
    fn with_connection<F>(limits: HttpLimits, client: F) -> Result<Request, ReadError>
    where
        F: FnOnce(TcpStream) + Send + 'static,
    {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let handle = std::thread::spawn(move || {
            let stream = TcpStream::connect(addr).expect("connect");
            client(stream);
        });
        let (mut stream, _) = listener.accept().expect("accept");
        let out = read_request(&mut stream, &limits);
        handle.join().expect("client thread");
        out
    }

    fn tight() -> HttpLimits {
        HttpLimits {
            max_head_bytes: 256,
            max_body_bytes: 64,
            read_timeout: Some(Duration::from_secs(5)),
            write_timeout: Some(Duration::from_secs(5)),
        }
    }

    #[test]
    fn parses_a_simple_get() {
        let req = with_connection(tight(), |mut s| {
            s.write_all(b"GET /metrics HTTP/1.1\r\nHost: x\r\n\r\n")
                .unwrap();
        })
        .expect("request");
        assert_eq!(req.method, "GET");
        assert_eq!(req.path, "/metrics");
        assert_eq!(req.header("host"), Some("x"));
        assert_eq!(req.header("HOST"), Some("x"));
        assert!(req.body.is_empty());
        assert!(req.keep_alive, "HTTP/1.1 defaults to keep-alive");
    }

    #[test]
    fn fragmented_writes_reassemble() {
        let req = with_connection(tight(), |mut s| {
            for chunk in [
                "PO",
                "ST /v1/x",
                " HTTP/1.1\r\nCon",
                "tent-Length: 5\r\n",
                "\r\nhe",
                "llo",
            ] {
                s.write_all(chunk.as_bytes()).unwrap();
                s.flush().unwrap();
                std::thread::sleep(Duration::from_millis(5));
            }
        })
        .expect("request");
        assert_eq!(req.method, "POST");
        assert_eq!(req.body, b"hello");
    }

    #[test]
    fn garbage_request_line_is_bad_request() {
        let err = with_connection(tight(), |mut s| {
            s.write_all(b"\x00\xffnot http at all\r\n\r\n").unwrap();
        })
        .expect_err("garbage must not parse");
        assert_eq!(status_for(&err), Some(400), "{err:?}");
    }

    #[test]
    fn lowercase_method_and_bad_version_rejected() {
        let err = with_connection(tight(), |mut s| {
            s.write_all(b"get / HTTP/1.1\r\n\r\n").unwrap();
        })
        .expect_err("lowercase method");
        assert!(matches!(err, ReadError::Bad(_)), "{err:?}");
        let err = with_connection(tight(), |mut s| {
            s.write_all(b"GET / SPDY/99\r\n\r\n").unwrap();
        })
        .expect_err("bad version");
        assert!(matches!(err, ReadError::Bad(_)), "{err:?}");
    }

    #[test]
    fn oversized_head_is_431_without_buffering_it_all() {
        let err = with_connection(tight(), |mut s| {
            let _ = s.write_all(b"GET / HTTP/1.1\r\n");
            // Never-ending header stream: the reader must give up at
            // the cap rather than hang or buffer forever.
            for _ in 0..64 {
                if s.write_all(b"X-Padding: aaaaaaaaaaaaaaaaaaaaaaaa\r\n")
                    .is_err()
                {
                    return;
                }
            }
        })
        .expect_err("oversized head");
        assert!(matches!(err, ReadError::HeadTooLarge), "{err:?}");
        assert_eq!(status_for(&err), Some(431));
    }

    #[test]
    fn oversized_declared_body_is_413_before_reading_it() {
        let err = with_connection(tight(), |mut s| {
            s.write_all(b"POST / HTTP/1.1\r\nContent-Length: 10000\r\n\r\n")
                .unwrap();
            // Note: the payload itself is never sent.
        })
        .expect_err("oversized body");
        assert!(matches!(err, ReadError::BodyTooLarge(10000)), "{err:?}");
        assert_eq!(status_for(&err), Some(413));
    }

    #[test]
    fn immediate_close_reads_as_closed() {
        let err = with_connection(tight(), drop).expect_err("closed");
        assert!(matches!(err, ReadError::Closed), "{err:?}");
        assert_eq!(status_for(&err), None, "nobody to answer");
    }

    #[test]
    fn truncated_head_is_bad_request() {
        let err = with_connection(tight(), |mut s| {
            s.write_all(b"GET / HTTP/1.1\r\nHost: x").unwrap();
        })
        .expect_err("mid-head close");
        assert!(matches!(err, ReadError::Bad(_)), "{err:?}");
    }

    #[test]
    fn connection_close_header_disables_keep_alive() {
        let req = with_connection(tight(), |mut s| {
            s.write_all(b"GET / HTTP/1.1\r\nConnection: close\r\n\r\n")
                .unwrap();
        })
        .expect("request");
        assert!(!req.keep_alive);
        let req = with_connection(tight(), |mut s| {
            s.write_all(b"GET / HTTP/1.0\r\n\r\n").unwrap();
        })
        .expect("request");
        assert!(!req.keep_alive, "HTTP/1.0 defaults to close");
    }

    #[test]
    fn read_timeout_maps_to_408() {
        let limits = HttpLimits {
            read_timeout: Some(Duration::from_millis(50)),
            ..tight()
        };
        let err = with_connection(limits, |mut s| {
            s.write_all(b"GET / HTT").unwrap();
            std::thread::sleep(Duration::from_millis(300));
        })
        .expect_err("stalled head");
        assert_eq!(status_for(&err), Some(408), "{err:?}");
    }

    #[test]
    fn error_body_is_parseable_ndjson() {
        let body = error_body("node_out_of_range", "node 9 out of range");
        assert!(body.ends_with('\n'));
        assert!(!body.trim_end().contains('\n'));
        let v = crate::parse_json(&body).expect("valid json");
        let e = v.get("error").expect("error object");
        assert_eq!(
            e.get("code").and_then(|j| j.as_str()),
            Some("node_out_of_range")
        );
        assert_eq!(
            e.get("message").and_then(|j| j.as_str()),
            Some("node 9 out of range")
        );
    }

    #[test]
    fn write_response_frames_correctly() {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let handle = std::thread::spawn(move || {
            let (mut stream, _) = listener.accept().expect("accept");
            write_response(
                &mut stream,
                503,
                "application/json",
                b"{}\n",
                false,
                &[("Retry-After", "1".to_string())],
            )
            .expect("write");
        });
        let mut stream = TcpStream::connect(addr).expect("connect");
        let mut text = String::new();
        stream.read_to_string(&mut text).expect("read");
        handle.join().unwrap();
        let (head, body) = text.split_once("\r\n\r\n").expect("split");
        assert!(
            head.starts_with("HTTP/1.1 503 Service Unavailable"),
            "{head}"
        );
        assert!(head.contains("Content-Length: 3"), "{head}");
        assert!(head.contains("Connection: close"), "{head}");
        assert!(head.contains("Retry-After: 1"), "{head}");
        assert_eq!(body, "{}\n");
    }
}
