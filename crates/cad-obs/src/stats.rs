//! Typed statistics carried through the pipeline as return values.
//!
//! Determinism is the design constraint here: the CAD pipeline promises
//! bit-identical output for any worker-thread count, and its metric
//! aggregates must keep that promise. Floating-point accumulation is not
//! associative, so these types are **not** fed from a shared global by
//! racing workers. Instead each work item *returns* its stats with its
//! result, the `cad_linalg::par` pool collects results in index order,
//! and the coordinating thread merges them — same order every run, so
//! every aggregate (including f64 sums) is reproducible bit-for-bit.

/// Convergence record of one iterative solve.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SolveStats {
    /// Iterations performed.
    pub iterations: usize,
    /// Final relative residual `‖b − A x‖ / ‖b‖`.
    pub relative_residual: f64,
    /// Whether the requested tolerance was met.
    pub converged: bool,
    /// Per-iteration relative residuals (the solver's bounded trailing
    /// ring, oldest first; empty unless tracing was requested).
    pub residual_trace: Vec<f64>,
}

/// Order-sensitive streaming summary of an f64 series: count, sum, min,
/// max. Merging two summaries is exact for `count`/`min`/`max` and adds
/// `sum` left-to-right, so merging in a fixed order is deterministic.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Number of recorded values.
    pub count: u64,
    /// Sum of recorded values.
    pub sum: f64,
    /// Smallest recorded value (`+inf` when empty).
    pub min: f64,
    /// Largest recorded value (`-inf` when empty).
    pub max: f64,
}

impl Default for Summary {
    fn default() -> Self {
        Summary {
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }
}

impl Summary {
    /// An empty summary.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one value.
    pub fn record(&mut self, v: f64) {
        self.count += 1;
        self.sum += v;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Fold another summary into this one (call in a fixed order for
    /// deterministic sums).
    pub fn merge(&mut self, other: &Summary) {
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Arithmetic mean (`0` when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Summarize a slice in order.
    pub fn of(values: impl IntoIterator<Item = f64>) -> Summary {
        let mut s = Summary::new();
        for v in values {
            s.record(v);
        }
        s
    }
}

/// What it cost to build one per-instance distance oracle.
///
/// Produced by every `DistanceOracle` backend; the embedding backend
/// additionally reports its JL projection dimension and the convergence
/// record of each of its `k` Laplacian solves (in row order).
#[derive(Debug, Clone, PartialEq)]
pub struct OracleBuildStats {
    /// Backend name (`"exact"`, `"embedding"`, ...).
    pub backend: &'static str,
    /// Wall-clock build time in seconds.
    pub build_secs: f64,
    /// JL projection dimension `k` (embedding backend only).
    pub jl_dim: Option<usize>,
    /// Per-solve convergence records, in solve order (empty for direct
    /// backends that perform no iterative solves).
    pub solves: Vec<SolveStats>,
}

impl OracleBuildStats {
    /// A record for a direct (non-iterative) backend.
    pub fn direct(backend: &'static str, build_secs: f64) -> Self {
        OracleBuildStats {
            backend,
            build_secs,
            jl_dim: None,
            solves: Vec::new(),
        }
    }

    /// Iteration counts summarized over the solves.
    pub fn iteration_summary(&self) -> Summary {
        Summary::of(self.solves.iter().map(|s| s.iterations as f64))
    }

    /// Final residuals summarized over the solves.
    pub fn residual_summary(&self) -> Summary {
        Summary::of(self.solves.iter().map(|s| s.relative_residual))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_tracks_count_sum_min_max() {
        let s = Summary::of([2.0, -1.0, 5.0]);
        assert_eq!(s.count, 3);
        assert_eq!(s.sum, 6.0);
        assert_eq!(s.min, -1.0);
        assert_eq!(s.max, 5.0);
        assert_eq!(s.mean(), 2.0);
    }

    #[test]
    fn empty_summary_is_neutral_for_merge() {
        let mut a = Summary::new();
        assert_eq!(a.mean(), 0.0);
        let b = Summary::of([1.0, 3.0]);
        a.merge(&b);
        assert_eq!(a, b);
    }

    #[test]
    fn merge_in_fixed_order_is_deterministic() {
        let parts: Vec<Summary> = (0..10)
            .map(|i| Summary::of((0..5).map(|j| ((i * 5 + j) as f64 + 0.1).sin())))
            .collect();
        let fold = |parts: &[Summary]| {
            let mut total = Summary::new();
            for p in parts {
                total.merge(p);
            }
            total
        };
        let a = fold(&parts);
        let b = fold(&parts);
        assert_eq!(a.sum.to_bits(), b.sum.to_bits());
        assert_eq!(a.min.to_bits(), b.min.to_bits());
    }

    #[test]
    fn oracle_build_stats_summaries() {
        let stats = OracleBuildStats {
            backend: "embedding",
            build_secs: 0.5,
            jl_dim: Some(16),
            solves: vec![
                SolveStats {
                    iterations: 10,
                    relative_residual: 1e-9,
                    converged: true,
                    residual_trace: vec![1e-3, 1e-6, 1e-9],
                },
                SolveStats {
                    iterations: 14,
                    relative_residual: 3e-9,
                    converged: true,
                    residual_trace: Vec::new(),
                },
            ],
        };
        let it = stats.iteration_summary();
        assert_eq!(it.count, 2);
        assert_eq!(it.max, 14.0);
        let res = stats.residual_summary();
        assert!(res.max <= 3e-9);
        let direct = OracleBuildStats::direct("exact", 0.1);
        assert!(direct.solves.is_empty());
        assert_eq!(direct.iteration_summary().count, 0);
    }
}
