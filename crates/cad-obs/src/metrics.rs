//! The metric registry: counters, value summaries and span aggregates.
//!
//! Two tiers:
//!
//! * **Fast counters** ([`counters`]) — process-wide `AtomicU64`s for
//!   hot-path events (one SpMV per matvec, CG iterations). Integer adds
//!   commute, so these aggregates are deterministic no matter how many
//!   worker threads race on them.
//! * **The registry** ([`Registry`]) — a mutex-guarded map of named
//!   counters, f64 [`Summary`]s and span aggregates. By convention f64
//!   summaries are only recorded from coordinating threads in index
//!   order (see [`crate::stats`]), which keeps their sums bit-stable.
//!
//! A process-wide [`global`] registry backs the `span!` macro and the
//! CLI/bench sinks; scoped [`Registry`] instances are available for
//! tests that must not observe cross-test traffic.

use crate::stats::Summary;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};

/// A lock-free event counter safe to bump from any thread.
#[derive(Debug)]
pub struct FastCounter(AtomicU64);

impl FastCounter {
    /// A zeroed counter (const, for statics).
    pub const fn new() -> Self {
        FastCounter(AtomicU64::new(0))
    }

    /// Add one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Add `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Subtract `n` (callers must keep adds and subs balanced — this
    /// does not saturate; prefer [`Gauge`] for level-style metrics).
    #[inline]
    pub fn sub(&self, n: u64) {
        self.0.fetch_sub(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }

    /// Zero the counter (single-process CLI runs and test isolation).
    pub fn reset(&self) {
        self.0.store(0, Ordering::Relaxed);
    }
}

impl Default for FastCounter {
    fn default() -> Self {
        Self::new()
    }
}

/// Well-known hot-path counters, incremented from the numeric kernels.
pub mod counters {
    use super::FastCounter;

    /// Sparse matrix-vector products performed (`CsrMatrix::matvec*`).
    pub static SPMV: FastCounter = FastCounter::new();
    /// CG/PCG solves completed.
    pub static CG_SOLVES: FastCounter = FastCounter::new();
    /// Total CG/PCG iterations across all solves.
    pub static CG_ITERATIONS: FastCounter = FastCounter::new();
    /// Johnson–Lindenstrauss projection rows solved in the Khoa–Chawla
    /// commute-embedding path.
    pub static JL_PROJECTIONS: FastCounter = FastCounter::new();
    /// Distance oracles built (`CommuteTimeEngine::compute` calls).
    pub static ORACLE_BUILDS: FastCounter = FastCounter::new();
    /// Oracle delta updates applied in place (no rebuild).
    pub static INCREMENTAL_UPDATES: FastCounter = FastCounter::new();
    /// Incremental updates that fell back to a fresh build (structural
    /// delta, degenerate denominator, refresh threshold, or an
    /// unsupported backend).
    pub static REBUILD_FALLBACKS: FastCounter = FastCounter::new();
    /// Oracle artifacts served from the content-addressed store cache.
    pub static STORE_CACHE_HITS: FastCounter = FastCounter::new();
    /// Oracle cache lookups that missed and fell back to a fresh build.
    pub static STORE_CACHE_MISSES: FastCounter = FastCounter::new();
    /// Bytes read from `.cadpack` files and cached oracle artifacts.
    pub static STORE_BYTES_READ: FastCounter = FastCounter::new();
    /// HTTP requests handled by the `cad serve` detection service
    /// (everything that reached the router, any status).
    pub static SERVE_REQUESTS: FastCounter = FastCounter::new();
    /// Connections answered `503` because the serve worker queue was
    /// full (the backpressure contract).
    pub static SERVE_REJECTED_BACKPRESSURE: FastCounter = FastCounter::new();
    /// Blocks realised by partitioned oracle builds (`cad-part`), summed
    /// across builds.
    pub static PART_BLOCKS: FastCounter = FastCounter::new();
    /// Cut (cross-block) edges across partitioned oracle builds — the
    /// size of the boundary-vertex interface work.
    pub static PART_BOUNDARY_EDGES: FastCounter = FastCounter::new();
    /// Per-block solve work units completed (block factor/pseudoinverse
    /// builds inside a partitioned oracle build).
    pub static PART_BLOCK_SOLVES: FastCounter = FastCounter::new();
    /// Records appended to per-session write-ahead journals.
    pub static JOURNAL_APPENDS: FastCounter = FastCounter::new();
    /// Bytes written to journal segment files (frames + headers).
    pub static JOURNAL_BYTES_WRITTEN: FastCounter = FastCounter::new();
    /// Journal compactions completed (checkpoint written, old segments
    /// dropped).
    pub static JOURNAL_COMPACTIONS: FastCounter = FastCounter::new();
    /// Sessions rebuilt from journals at boot.
    pub static JOURNAL_RECOVERED_SESSIONS: FastCounter = FastCounter::new();
    /// Torn (truncated) tail frames dropped during journal recovery.
    pub static JOURNAL_TORN_TAILS: FastCounter = FastCounter::new();
    /// Pushes answered `429` by the per-session token-bucket rate
    /// limiter (`--max-push-rps`).
    pub static SERVE_RATE_LIMITED: FastCounter = FastCounter::new();

    /// Snapshot of every well-known counter, keyed by its stable report
    /// name.
    pub fn snapshot() -> Vec<(&'static str, u64)> {
        vec![
            ("linalg.spmv", SPMV.get()),
            ("linalg.cg_solves", CG_SOLVES.get()),
            ("linalg.cg_iterations", CG_ITERATIONS.get()),
            ("linalg.jl_projections", JL_PROJECTIONS.get()),
            ("commute.oracle_builds", ORACLE_BUILDS.get()),
            ("commute.incremental_updates", INCREMENTAL_UPDATES.get()),
            ("commute.rebuild_fallbacks", REBUILD_FALLBACKS.get()),
            ("store.cache_hits", STORE_CACHE_HITS.get()),
            ("store.cache_misses", STORE_CACHE_MISSES.get()),
            ("store.bytes_read", STORE_BYTES_READ.get()),
            ("serve.requests", SERVE_REQUESTS.get()),
            (
                "serve.rejected_backpressure",
                SERVE_REJECTED_BACKPRESSURE.get(),
            ),
            ("part.blocks", PART_BLOCKS.get()),
            ("part.boundary_edges", PART_BOUNDARY_EDGES.get()),
            ("part.block_solves", PART_BLOCK_SOLVES.get()),
            ("journal.appends", JOURNAL_APPENDS.get()),
            ("journal.bytes_written", JOURNAL_BYTES_WRITTEN.get()),
            ("journal.compactions", JOURNAL_COMPACTIONS.get()),
            (
                "journal.recovered_sessions",
                JOURNAL_RECOVERED_SESSIONS.get(),
            ),
            ("journal.torn_tails", JOURNAL_TORN_TAILS.get()),
            ("serve.rate_limited", SERVE_RATE_LIMITED.get()),
        ]
    }

    /// Zero every well-known counter.
    pub fn reset_all() {
        SPMV.reset();
        CG_SOLVES.reset();
        CG_ITERATIONS.reset();
        JL_PROJECTIONS.reset();
        ORACLE_BUILDS.reset();
        INCREMENTAL_UPDATES.reset();
        REBUILD_FALLBACKS.reset();
        STORE_CACHE_HITS.reset();
        STORE_CACHE_MISSES.reset();
        STORE_BYTES_READ.reset();
        SERVE_REQUESTS.reset();
        SERVE_REJECTED_BACKPRESSURE.reset();
        PART_BLOCKS.reset();
        PART_BOUNDARY_EDGES.reset();
        PART_BLOCK_SOLVES.reset();
        JOURNAL_APPENDS.reset();
        JOURNAL_BYTES_WRITTEN.reset();
        JOURNAL_COMPACTIONS.reset();
        JOURNAL_RECOVERED_SESSIONS.reset();
        JOURNAL_TORN_TAILS.reset();
        SERVE_RATE_LIMITED.reset();
    }
}

/// A lock-free level metric: a nonnegative quantity that goes up *and*
/// down (queue depth, in-flight requests, live sessions). Rendered as a
/// Prometheus `gauge` (no `_total` suffix) and reported in the `gauges`
/// section of report v3.
#[derive(Debug)]
pub struct Gauge(AtomicU64);

impl Gauge {
    /// A zeroed gauge (const, for statics).
    pub const fn new() -> Self {
        Gauge(AtomicU64::new(0))
    }

    /// Raise the level by one.
    #[inline]
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Lower the level by one. Callers keep incs and decs balanced;
    /// like [`FastCounter::sub`] this does not saturate.
    #[inline]
    pub fn dec(&self) {
        self.0.fetch_sub(1, Ordering::Relaxed);
    }

    /// Set the level outright.
    #[inline]
    pub fn set(&self, v: u64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Current level.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }

    /// Zero the gauge (test isolation).
    pub fn reset(&self) {
        self.set(0);
    }
}

impl Default for Gauge {
    fn default() -> Self {
        Self::new()
    }
}

/// Well-known live gauges: the `serve.*` levels maintained by
/// `cad-serve` plus the `mem.*` heap levels read straight from the
/// counting allocator ([`crate::alloc`]) at snapshot time.
pub mod gauges {
    use super::Gauge;

    /// Accepted connections waiting for a worker.
    pub static SERVE_QUEUE_DEPTH: Gauge = Gauge::new();
    /// Requests currently inside the router.
    pub static SERVE_INFLIGHT_REQUESTS: Gauge = Gauge::new();
    /// Detection sessions currently alive (incremented on create,
    /// decremented on delete/TTL-sweep).
    pub static SERVE_SESSIONS_ACTIVE: Gauge = Gauge::new();

    /// Snapshot of every well-known gauge, keyed by its stable report
    /// name. The `mem.*` entries are sampled from the counting
    /// allocator at call time (all zeros when no [`crate::alloc::CountingAlloc`]
    /// is installed).
    pub fn snapshot() -> Vec<(&'static str, u64)> {
        let mem = crate::alloc::stats();
        vec![
            ("serve.queue_depth", SERVE_QUEUE_DEPTH.get()),
            ("serve.inflight_requests", SERVE_INFLIGHT_REQUESTS.get()),
            ("serve.sessions_active", SERVE_SESSIONS_ACTIVE.get()),
            ("mem.heap_bytes", mem.heap_bytes),
            ("mem.heap_peak_bytes", mem.heap_peak_bytes),
            ("mem.allocs", mem.allocs),
            ("mem.frees", mem.frees),
            ("mem.bytes_allocated", mem.bytes_allocated),
        ]
    }

    /// Zero every well-known gauge. The `mem.*` levels are untouched:
    /// allocator counters are process-lifetime monotone (see
    /// [`crate::alloc`]) and a reset racing a live free would corrupt
    /// them.
    pub fn reset_all() {
        SERVE_QUEUE_DEPTH.reset();
        SERVE_INFLIGHT_REQUESTS.reset();
        SERVE_SESSIONS_ACTIVE.reset();
    }
}

/// A counter family split by one bounded label: `N` lock-free cells,
/// one per allowed label value. Cardinality is fixed at compile time —
/// the defence against label explosions (DESIGN.md §12); values outside
/// the set land in the mandatory trailing `"other"` cell.
#[derive(Debug)]
pub struct LabeledCounters<const N: usize> {
    /// Base metric name (report/exposition key, dotted form).
    pub name: &'static str,
    /// The label key (e.g. `reason`).
    pub label: &'static str,
    /// Allowed label values; the last entry is the catch-all.
    pub values: [&'static str; N],
    cells: [FastCounter; N],
}

impl<const N: usize> LabeledCounters<N> {
    /// A zeroed family (const, for statics).
    pub const fn new(name: &'static str, label: &'static str, values: [&'static str; N]) -> Self {
        LabeledCounters {
            name,
            label,
            values,
            cells: [const { FastCounter::new() }; N],
        }
    }

    /// Add one to the cell for `value` (the trailing catch-all when
    /// `value` is not in the set).
    pub fn inc(&self, value: &str) {
        let idx = self
            .values
            .iter()
            .position(|&v| v == value)
            .unwrap_or(N - 1);
        self.cells[idx].inc();
    }

    /// Current count per label value, in declaration order.
    pub fn snapshot(&self) -> Vec<(&'static str, u64)> {
        self.values
            .iter()
            .zip(&self.cells)
            .map(|(&v, c)| (v, c.get()))
            .collect()
    }

    /// Zero every cell.
    pub fn reset(&self) {
        for c in &self.cells {
            c.reset();
        }
    }
}

/// Well-known labeled counter families.
pub mod labeled {
    use super::LabeledCounters;

    /// Rebuild fallbacks split by [`RebuildReason`] name — the
    /// per-cause view of `commute.rebuild_fallbacks`.
    pub static REBUILD_FALLBACKS_BY_REASON: LabeledCounters<5> = LabeledCounters::new(
        "commute.rebuild_fallbacks",
        "reason",
        [
            "structural",
            "degenerate",
            "unsupported",
            "refresh",
            "other",
        ],
    );

    /// One labeled counter family in the exposition/report feed:
    /// `(name, label, [(value, count)...])`.
    pub type FamilySnapshot = (&'static str, &'static str, Vec<(&'static str, u64)>);

    /// Every labeled counter family.
    pub fn snapshot() -> Vec<FamilySnapshot> {
        vec![(
            REBUILD_FALLBACKS_BY_REASON.name,
            REBUILD_FALLBACKS_BY_REASON.label,
            REBUILD_FALLBACKS_BY_REASON.snapshot(),
        )]
    }

    /// Zero every labeled counter family.
    pub fn reset_all() {
        REBUILD_FALLBACKS_BY_REASON.reset();
    }
}

/// Wall-time aggregate of one span path.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct SpanStat {
    /// Number of times the span was entered.
    pub calls: u64,
    /// Total wall-clock seconds across those calls.
    pub total_secs: f64,
}

/// A named-metric registry.
#[derive(Debug, Default)]
pub struct Registry {
    counters: Mutex<BTreeMap<String, u64>>,
    summaries: Mutex<BTreeMap<String, Summary>>,
    spans: Mutex<BTreeMap<String, SpanStat>>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add `n` to the named counter.
    pub fn add_counter(&self, name: &str, n: u64) {
        let mut map = self.counters.lock().expect("counter map poisoned");
        *map.entry(name.to_string()).or_insert(0) += n;
    }

    /// Record one value into the named summary.
    pub fn record(&self, name: &str, value: f64) {
        let mut map = self.summaries.lock().expect("summary map poisoned");
        map.entry(name.to_string()).or_default().record(value);
    }

    /// Fold a prepared summary into the named summary.
    pub fn merge_summary(&self, name: &str, s: &Summary) {
        let mut map = self.summaries.lock().expect("summary map poisoned");
        map.entry(name.to_string()).or_default().merge(s);
    }

    /// Record one completed span occurrence under `path`
    /// (slash-separated nesting, e.g. `detect/oracle_build`).
    pub fn record_span(&self, path: &str, secs: f64) {
        let mut map = self.spans.lock().expect("span map poisoned");
        let stat = map.entry(path.to_string()).or_default();
        stat.calls += 1;
        stat.total_secs += secs;
    }

    /// Immutable copy of everything recorded so far.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            counters: self.counters.lock().expect("counter map poisoned").clone(),
            summaries: self.summaries.lock().expect("summary map poisoned").clone(),
            spans: self.spans.lock().expect("span map poisoned").clone(),
        }
    }

    /// Clear all recorded metrics (single-process CLI runs only; tests
    /// should prefer scoped registries).
    pub fn reset(&self) {
        self.counters.lock().expect("counter map poisoned").clear();
        self.summaries.lock().expect("summary map poisoned").clear();
        self.spans.lock().expect("span map poisoned").clear();
    }
}

/// A point-in-time copy of a [`Registry`]'s contents.
#[derive(Debug, Clone, Default)]
pub struct MetricsSnapshot {
    /// Named counters.
    pub counters: BTreeMap<String, u64>,
    /// Named f64 summaries.
    pub summaries: BTreeMap<String, Summary>,
    /// Span aggregates keyed by slash-separated path.
    pub spans: BTreeMap<String, SpanStat>,
}

/// The process-wide registry (backs `span!` and the CLI sinks).
pub fn global() -> &'static Registry {
    static GLOBAL: OnceLock<Registry> = OnceLock::new();
    GLOBAL.get_or_init(Registry::new)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fast_counter_accumulates() {
        let c = FastCounter::new();
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
    }

    #[test]
    fn well_known_counters_have_stable_names() {
        let names: Vec<&str> = counters::snapshot().iter().map(|(n, _)| *n).collect();
        assert_eq!(
            names,
            vec![
                "linalg.spmv",
                "linalg.cg_solves",
                "linalg.cg_iterations",
                "linalg.jl_projections",
                "commute.oracle_builds",
                "commute.incremental_updates",
                "commute.rebuild_fallbacks",
                "store.cache_hits",
                "store.cache_misses",
                "store.bytes_read",
                "serve.requests",
                "serve.rejected_backpressure",
                "part.blocks",
                "part.boundary_edges",
                "part.block_solves",
                "journal.appends",
                "journal.bytes_written",
                "journal.compactions",
                "journal.recovered_sessions",
                "journal.torn_tails",
                "serve.rate_limited"
            ]
        );
    }

    #[test]
    fn well_known_gauges_have_stable_names() {
        let names: Vec<&str> = gauges::snapshot().iter().map(|(n, _)| *n).collect();
        assert_eq!(
            names,
            vec![
                "serve.queue_depth",
                "serve.inflight_requests",
                "serve.sessions_active",
                "mem.heap_bytes",
                "mem.heap_peak_bytes",
                "mem.allocs",
                "mem.frees",
                "mem.bytes_allocated"
            ]
        );
    }

    #[test]
    fn gauge_moves_both_ways() {
        let g = Gauge::new();
        g.inc();
        g.inc();
        g.dec();
        assert_eq!(g.get(), 1);
        g.set(7);
        assert_eq!(g.get(), 7);
        g.reset();
        assert_eq!(g.get(), 0);
    }

    #[test]
    fn labeled_counters_route_by_value_with_catch_all() {
        static FAM: LabeledCounters<3> =
            LabeledCounters::new("test.family", "cause", ["a", "b", "other"]);
        FAM.inc("a");
        FAM.inc("a");
        FAM.inc("b");
        FAM.inc("never-declared");
        assert_eq!(FAM.snapshot(), vec![("a", 2), ("b", 1), ("other", 1)]);
        FAM.reset();
        assert!(FAM.snapshot().iter().all(|&(_, n)| n == 0));
    }

    #[test]
    fn registry_counters_and_summaries() {
        let r = Registry::new();
        r.add_counter("a", 2);
        r.add_counter("a", 3);
        r.record("s", 1.0);
        r.record("s", 3.0);
        r.merge_summary("s", &Summary::of([5.0]));
        let snap = r.snapshot();
        assert_eq!(snap.counters["a"], 5);
        assert_eq!(snap.summaries["s"].count, 3);
        assert_eq!(snap.summaries["s"].max, 5.0);
    }

    #[test]
    fn registry_spans_aggregate_by_path() {
        let r = Registry::new();
        r.record_span("detect/oracle_build", 0.5);
        r.record_span("detect/oracle_build", 0.25);
        r.record_span("detect", 1.0);
        let snap = r.snapshot();
        assert_eq!(snap.spans["detect/oracle_build"].calls, 2);
        assert!((snap.spans["detect/oracle_build"].total_secs - 0.75).abs() < 1e-12);
        assert_eq!(snap.spans["detect"].calls, 1);
    }

    #[test]
    fn reset_clears_everything() {
        let r = Registry::new();
        r.add_counter("x", 1);
        r.record("y", 2.0);
        r.record_span("z", 0.1);
        r.reset();
        let snap = r.snapshot();
        assert!(snap.counters.is_empty());
        assert!(snap.summaries.is_empty());
        assert!(snap.spans.is_empty());
    }

    #[test]
    fn concurrent_fast_counter_is_exact() {
        static C: FastCounter = FastCounter::new();
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..1000 {
                        C.inc();
                    }
                });
            }
        });
        assert_eq!(C.get(), 4000);
    }
}
