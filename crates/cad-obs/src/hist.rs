//! Log-bucketed (HDR-style) latency/value histograms.
//!
//! Two tiers, mirroring the counter/summary split in [`crate::metrics`]:
//!
//! * [`Histogram`] — a plain value type with fixed log-spaced buckets.
//!   Recording and merging are deterministic: bucket counts are
//!   integers, and `sum`/`min`/`max` follow the same left-to-right
//!   contract as [`crate::Summary`], so merging per-item histograms in
//!   index order yields bit-identical results for any worker-thread
//!   count. This is the type that lands in the versioned
//!   [`crate::Report`].
//! * [`AtomicHistogram`] — the live-telemetry twin: lock-free recording
//!   from any thread into atomic buckets, backing the `/metrics`
//!   exporter during `cad watch`. Bucket counts and `count` stay exact
//!   under racing (integer adds commute); the f64 `sum` is CAS-folded in
//!   arrival order and therefore only reproducible for integer-valued
//!   samples — acceptable because the live sums are wall-times, the one
//!   sanctioned nondeterminism (see `crate::stats`).
//!
//! # Bucket layout
//!
//! Buckets are derived from the f64 bit pattern — no libm, fully
//! deterministic. Each power of two is split into [`SUB_BUCKETS`] = 4
//! sub-buckets using the top two mantissa bits, covering
//! `[2^-30, 2^11)` (≈ 0.93 ns to 2048 s when the unit is seconds):
//!
//! * bucket `0` — underflow: everything `≤ 2^-30` (incl. zero/negative),
//! * buckets `1 ..= 164` — `4 × 41` log-spaced buckets; bucket upper
//!   bounds are exact binary fractions `2^e · (1 + s/4)`,
//! * bucket `165` — overflow: everything `≥ 2^11`, upper bound `+Inf`.
//!
//! Quantiles ([`Histogram::quantile`]) report the upper bound of the
//! bucket containing the requested rank, clamped by the observed `max`
//! (so `p100 == max` exactly); with ~19% bucket width that bounds the
//! relative quantile error at the same ~19%.

use std::sync::atomic::{AtomicU64, Ordering};

/// Sub-buckets per power of two (top two mantissa bits).
pub const SUB_BUCKETS: usize = 4;
/// Smallest resolved exponent: bucket 0 absorbs values `≤ 2^MIN_EXP`.
pub const MIN_EXP: i32 = -30;
/// One past the largest resolved exponent: values `≥ 2^MAX_EXP`
/// overflow into the last bucket.
pub const MAX_EXP: i32 = 11;
/// Total bucket count (underflow + log buckets + overflow).
pub const N_BUCKETS: usize = (MAX_EXP - MIN_EXP) as usize * SUB_BUCKETS + 2;

const MIN_VALUE: f64 = 9.313225746154785e-10; // 2^-30
const MAX_VALUE: f64 = 2048.0; // 2^11

/// Bucket index for a sample (total over all f64, incl. NaN → 0).
///
/// Upper bounds are inclusive (Prometheus `le` semantics): a sample
/// exactly equal to a bucket's bound counts in that bucket, so
/// integer-valued series hitting exact powers of two (CG iteration
/// counts) land where their `le` label says they do.
pub fn bucket_index(v: f64) -> usize {
    if v.is_nan() || v <= MIN_VALUE {
        // zero, negative, subnormal-small and NaN all land in underflow
        return 0;
    }
    if v > MAX_VALUE {
        return N_BUCKETS - 1;
    }
    let bits = v.to_bits();
    let exp = ((bits >> 52) & 0x7ff) as i32 - 1023;
    let sub = ((bits >> 50) & 0b11) as usize;
    let i = 1 + (exp - MIN_EXP) as usize * SUB_BUCKETS + sub;
    // A value sitting exactly on a bound (no mantissa bits below the
    // two sub-bucket bits) belongs to the bucket it bounds.
    if bits & ((1u64 << 50) - 1) == 0 {
        i - 1
    } else {
        i
    }
}

/// Inclusive upper bound of a bucket (`+Inf` for the overflow bucket).
///
/// Bounds are exact binary fractions, so they are bit-stable across
/// platforms and runs.
pub fn bucket_le(i: usize) -> f64 {
    if i == 0 {
        return MIN_VALUE;
    }
    if i >= N_BUCKETS - 1 {
        return f64::INFINITY;
    }
    let j = i - 1;
    let exp = MIN_EXP + (j / SUB_BUCKETS) as i32;
    let sub = (j % SUB_BUCKETS) as f64;
    2f64.powi(exp) * (1.0 + (sub + 1.0) / SUB_BUCKETS as f64)
}

/// A deterministic log-bucketed histogram (see module docs).
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    /// Number of recorded samples.
    pub count: u64,
    /// Sum of recorded samples (left-to-right; deterministic when
    /// recorded/merged in a fixed order).
    pub sum: f64,
    /// Smallest recorded sample (`+inf` when empty).
    pub min: f64,
    /// Largest recorded sample (`-inf` when empty).
    pub max: f64,
    counts: Vec<u64>,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            counts: vec![0; N_BUCKETS],
        }
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one sample.
    pub fn record(&mut self, v: f64) {
        self.count += 1;
        self.sum += v;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
        self.counts[bucket_index(v)] += 1;
    }

    /// Fold another histogram into this one (call in a fixed order for
    /// deterministic sums — same contract as [`crate::Summary::merge`]).
    pub fn merge(&mut self, other: &Histogram) {
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
    }

    /// Histogram of a series, recorded in order.
    pub fn of(values: impl IntoIterator<Item = f64>) -> Histogram {
        let mut h = Histogram::new();
        for v in values {
            h.record(v);
        }
        h
    }

    /// Arithmetic mean (`0` when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// All bucket counts, indexed by bucket (length [`N_BUCKETS`]).
    pub fn bucket_counts(&self) -> &[u64] {
        &self.counts
    }

    /// `(bucket index, count)` for every non-empty bucket, ascending.
    pub fn nonzero_buckets(&self) -> impl Iterator<Item = (usize, u64)> + '_ {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (i, c))
    }

    /// Set the count of one bucket (report deserialization only; keeps
    /// `count` untouched, callers restore it from the document).
    pub fn set_bucket(&mut self, i: usize, c: u64) -> Result<(), String> {
        if i >= N_BUCKETS {
            return Err(format!("bucket index {i} out of range (< {N_BUCKETS})"));
        }
        self.counts[i] = c;
        Ok(())
    }

    /// The `q`-quantile (`0 ≤ q ≤ 1`): the upper bound of the bucket
    /// holding the sample of rank `⌈q·count⌉`, clamped by the observed
    /// `max` (so `quantile(1.0) == max`). `0` when empty.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return bucket_le(i).min(self.max);
            }
        }
        self.max
    }

    /// Median.
    pub fn p50(&self) -> f64 {
        self.quantile(0.50)
    }

    /// 90th percentile.
    pub fn p90(&self) -> f64 {
        self.quantile(0.90)
    }

    /// 99th percentile.
    pub fn p99(&self) -> f64 {
        self.quantile(0.99)
    }
}

/// Lock-free histogram for hot-path recording from any thread.
///
/// Const-constructible so it can back `static` well-known histograms
/// ([`histograms`]). Snapshotting produces a plain [`Histogram`].
#[derive(Debug)]
pub struct AtomicHistogram {
    counts: [AtomicU64; N_BUCKETS],
    count: AtomicU64,
    sum_bits: AtomicU64,
    min_bits: AtomicU64,
    max_bits: AtomicU64,
}

impl AtomicHistogram {
    /// An empty histogram (const, for statics).
    pub const fn new() -> Self {
        AtomicHistogram {
            counts: [const { AtomicU64::new(0) }; N_BUCKETS],
            count: AtomicU64::new(0),
            sum_bits: AtomicU64::new(0),                     // 0.0f64
            min_bits: AtomicU64::new(0x7ff0_0000_0000_0000), // +inf
            max_bits: AtomicU64::new(0xfff0_0000_0000_0000), // -inf
        }
    }

    /// Record one sample (lock-free; bucket counts exact under racing).
    pub fn observe(&self, v: f64) {
        self.counts[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        let _ = self
            .sum_bits
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |bits| {
                Some((f64::from_bits(bits) + v).to_bits())
            });
        let _ = self
            .min_bits
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |bits| {
                (v < f64::from_bits(bits)).then(|| v.to_bits())
            });
        let _ = self
            .max_bits
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |bits| {
                (v > f64::from_bits(bits)).then(|| v.to_bits())
            });
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Point-in-time copy as a plain [`Histogram`].
    pub fn snapshot(&self) -> Histogram {
        let mut h = Histogram::new();
        for (slot, src) in h.counts.iter_mut().zip(&self.counts) {
            *slot = src.load(Ordering::Relaxed);
        }
        h.count = self.count.load(Ordering::Relaxed);
        h.sum = f64::from_bits(self.sum_bits.load(Ordering::Relaxed));
        h.min = f64::from_bits(self.min_bits.load(Ordering::Relaxed));
        h.max = f64::from_bits(self.max_bits.load(Ordering::Relaxed));
        h
    }

    /// Zero everything (single-process CLI runs and test isolation).
    pub fn reset(&self) {
        for c in &self.counts {
            c.store(0, Ordering::Relaxed);
        }
        self.count.store(0, Ordering::Relaxed);
        self.sum_bits.store(0, Ordering::Relaxed);
        self.min_bits
            .store(0x7ff0_0000_0000_0000, Ordering::Relaxed);
        self.max_bits
            .store(0xfff0_0000_0000_0000, Ordering::Relaxed);
    }
}

impl Default for AtomicHistogram {
    fn default() -> Self {
        Self::new()
    }
}

/// Well-known live histograms, recorded from the numeric kernels and
/// the detection loop. Names are the stable report/exporter keys.
pub mod histograms {
    use super::{AtomicHistogram, Histogram};

    /// Iterations per CG/PCG solve.
    pub static CG_ITERATIONS: AtomicHistogram = AtomicHistogram::new();
    /// Final relative residual per CG/PCG solve.
    pub static CG_RESIDUALS: AtomicHistogram = AtomicHistogram::new();
    /// Wall-clock seconds per distance-oracle build.
    pub static ORACLE_BUILD_SECS: AtomicHistogram = AtomicHistogram::new();
    /// Wall-clock seconds per in-place oracle delta update (the
    /// incremental sibling of `oracle_build_secs`).
    pub static ORACLE_UPDATE_SECS: AtomicHistogram = AtomicHistogram::new();
    /// Wall-clock seconds per transition scoring pass.
    pub static TRANSITION_SCORE_SECS: AtomicHistogram = AtomicHistogram::new();
    /// Wall-clock seconds per `.cadpack`/oracle-cache read or write.
    pub static PACK_IO_SECS: AtomicHistogram = AtomicHistogram::new();
    /// `cad serve`: wall-clock seconds per `POST .../snapshots` request
    /// (parse + push + respond — the detection hot path).
    pub static SERVE_PUSH_SECS: AtomicHistogram = AtomicHistogram::new();
    /// `cad serve`: wall-clock seconds per `POST /v1/sequences`
    /// (session creation).
    pub static SERVE_CREATE_SECS: AtomicHistogram = AtomicHistogram::new();
    /// `cad serve`: wall-clock seconds per remaining endpoint (status,
    /// delete, healthz, metrics).
    pub static SERVE_ADMIN_SECS: AtomicHistogram = AtomicHistogram::new();
    /// `cad serve`: seconds an accepted connection waited in the worker
    /// queue before a worker picked it up.
    pub static SERVE_QUEUE_WAIT_SECS: AtomicHistogram = AtomicHistogram::new();
    /// Journal: wall-clock seconds per record append (frame encode +
    /// write, excluding any fsync).
    pub static JOURNAL_APPEND_SECS: AtomicHistogram = AtomicHistogram::new();
    /// Journal: wall-clock seconds per `fsync` issued by the configured
    /// durability policy.
    pub static JOURNAL_FSYNC_SECS: AtomicHistogram = AtomicHistogram::new();

    /// Snapshot of every well-known histogram, keyed by its stable
    /// report name.
    pub fn snapshot() -> Vec<(&'static str, Histogram)> {
        vec![
            ("cg_iterations", CG_ITERATIONS.snapshot()),
            ("cg_residuals", CG_RESIDUALS.snapshot()),
            ("oracle_build_secs", ORACLE_BUILD_SECS.snapshot()),
            ("oracle_update_secs", ORACLE_UPDATE_SECS.snapshot()),
            ("transition_score_secs", TRANSITION_SCORE_SECS.snapshot()),
            ("pack_io_secs", PACK_IO_SECS.snapshot()),
            ("serve_push_secs", SERVE_PUSH_SECS.snapshot()),
            ("serve_create_secs", SERVE_CREATE_SECS.snapshot()),
            ("serve_admin_secs", SERVE_ADMIN_SECS.snapshot()),
            ("serve_queue_wait_secs", SERVE_QUEUE_WAIT_SECS.snapshot()),
            ("journal_append_secs", JOURNAL_APPEND_SECS.snapshot()),
            ("journal_fsync_secs", JOURNAL_FSYNC_SECS.snapshot()),
        ]
    }

    /// Zero every well-known histogram.
    pub fn reset_all() {
        CG_ITERATIONS.reset();
        CG_RESIDUALS.reset();
        ORACLE_BUILD_SECS.reset();
        ORACLE_UPDATE_SECS.reset();
        TRANSITION_SCORE_SECS.reset();
        PACK_IO_SECS.reset();
        SERVE_PUSH_SECS.reset();
        SERVE_CREATE_SECS.reset();
        SERVE_ADMIN_SECS.reset();
        SERVE_QUEUE_WAIT_SECS.reset();
        JOURNAL_APPEND_SECS.reset();
        JOURNAL_FSYNC_SECS.reset();
        labeled::reset_all();
    }

    /// Labeled histogram families: one [`AtomicHistogram`] per allowed
    /// label value, cardinality fixed at compile time (the same bounded
    /// discipline as [`crate::metrics::LabeledCounters`]). The family
    /// name may coincide with an unlabeled histogram's — the Prometheus
    /// renderer groups both under one `# TYPE` declaration.
    pub mod labeled {
        use super::{AtomicHistogram, Histogram};

        /// `serve_push_secs` split by the oracle backend that served
        /// the push (`engine` label). The unlabeled sibling remains the
        /// all-engines aggregate.
        pub struct LabeledHistograms<const N: usize> {
            /// Base metric name (exposition key).
            pub name: &'static str,
            /// The label key (e.g. `engine`).
            pub label: &'static str,
            /// Allowed label values; the last entry is the catch-all.
            pub values: [&'static str; N],
            cells: [AtomicHistogram; N],
        }

        impl<const N: usize> LabeledHistograms<N> {
            /// An empty family (const, for statics).
            pub const fn new(
                name: &'static str,
                label: &'static str,
                values: [&'static str; N],
            ) -> Self {
                LabeledHistograms {
                    name,
                    label,
                    values,
                    cells: [const { AtomicHistogram::new() }; N],
                }
            }

            /// Record one sample under `value` (the trailing catch-all
            /// when `value` is not in the set).
            pub fn observe(&self, value: &str, v: f64) {
                let idx = self
                    .values
                    .iter()
                    .position(|&n| n == value)
                    .unwrap_or(N - 1);
                self.cells[idx].observe(v);
            }

            /// Point-in-time copy per label value, declaration order.
            pub fn snapshot(&self) -> Vec<(&'static str, Histogram)> {
                self.values
                    .iter()
                    .zip(&self.cells)
                    .map(|(&v, c)| (v, c.snapshot()))
                    .collect()
            }

            /// Zero every cell.
            pub fn reset(&self) {
                for c in &self.cells {
                    c.reset();
                }
            }
        }

        /// Push latency by oracle backend.
        pub static SERVE_PUSH_SECS_BY_ENGINE: LabeledHistograms<5> = LabeledHistograms::new(
            "serve_push_secs",
            "engine",
            ["exact", "embedding", "shortest-path", "corrected", "other"],
        );

        /// `cad-part`: wall-clock seconds per per-block solve work unit
        /// (block factor/pseudoinverse build), split by block index.
        /// Blocks beyond the bounded label set aggregate into `other`.
        pub static PART_BLOCK_SOLVE_SECS: LabeledHistograms<9> = LabeledHistograms::new(
            "part_block_solve_secs",
            "block",
            ["0", "1", "2", "3", "4", "5", "6", "7", "other"],
        );

        /// One labeled histogram family:
        /// `(name, label, [(value, histogram)...])`.
        pub type FamilySnapshot = (&'static str, &'static str, Vec<(&'static str, Histogram)>);

        /// Every labeled histogram family.
        pub fn snapshot() -> Vec<FamilySnapshot> {
            vec![
                (
                    SERVE_PUSH_SECS_BY_ENGINE.name,
                    SERVE_PUSH_SECS_BY_ENGINE.label,
                    SERVE_PUSH_SECS_BY_ENGINE.snapshot(),
                ),
                (
                    PART_BLOCK_SOLVE_SECS.name,
                    PART_BLOCK_SOLVE_SECS.label,
                    PART_BLOCK_SOLVE_SECS.snapshot(),
                ),
            ]
        }

        /// Zero every labeled histogram family.
        pub fn reset_all() {
            SERVE_PUSH_SECS_BY_ENGINE.reset();
            PART_BLOCK_SOLVE_SECS.reset();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_layout_is_monotone_and_total() {
        let mut prev = 0.0;
        for i in 0..N_BUCKETS {
            let le = bucket_le(i);
            assert!(le > prev || le.is_infinite(), "bucket {i}: {le} vs {prev}");
            if le.is_finite() {
                prev = le;
            }
        }
        assert_eq!(bucket_index(0.0), 0);
        assert_eq!(bucket_index(-1.0), 0);
        assert_eq!(bucket_index(f64::NAN), 0);
        assert_eq!(bucket_index(1e12), N_BUCKETS - 1);
        assert_eq!(bucket_index(f64::INFINITY), N_BUCKETS - 1);
    }

    #[test]
    fn samples_land_at_or_below_their_bound() {
        for v in [1e-9, 3.7e-6, 0.001, 0.5, 1.0, 1.5, 7.0, 100.0, 2000.0] {
            let i = bucket_index(v);
            assert!(v <= bucket_le(i), "{v} above bound of bucket {i}");
            if i > 0 {
                assert!(v > bucket_le(i - 1), "{v} below bucket {i}");
            }
        }
    }

    #[test]
    fn bounds_are_inclusive() {
        // Exact bound values count in the bucket they bound.
        assert_eq!(bucket_le(bucket_index(1.0)), 1.0);
        assert_eq!(bucket_le(bucket_index(1.25)), 1.25);
        assert_eq!(bucket_le(bucket_index(2048.0)), 2048.0);
        assert_eq!(bucket_index(2048.0001), N_BUCKETS - 1);
        // Just above a bound opens the next bucket.
        let i = bucket_index(1.01);
        assert_eq!(bucket_le(i), 1.25);
        assert_eq!(bucket_index(1.24), i);
        assert_ne!(bucket_index(1.26), i);
    }

    #[test]
    fn records_and_quantiles() {
        let h = Histogram::of((1..=100).map(|i| i as f64 * 0.01));
        assert_eq!(h.count, 100);
        assert!((h.sum - 50.5).abs() < 1e-9);
        assert_eq!(h.max, 1.0);
        assert_eq!(h.quantile(1.0), 1.0, "p100 is exact max");
        // p50 ≈ 0.5 within one bucket width (~19%).
        assert!((h.p50() - 0.5).abs() <= 0.125, "{}", h.p50());
        assert!(h.p90() >= h.p50());
        assert!(h.p99() >= h.p90());
        assert_eq!(Histogram::new().p50(), 0.0);
    }

    #[test]
    fn merge_matches_sequential_recording() {
        let all: Vec<f64> = (0..50).map(|i| (i as f64 * 0.37).sin().abs()).collect();
        let direct = Histogram::of(all.iter().copied());
        // Stripe by index across 4 parts, merge in index order.
        let mut parts = vec![Histogram::new(); 4];
        for (i, &v) in all.iter().enumerate() {
            parts[i % 4].record(v);
        }
        let mut merged = Histogram::new();
        for p in &parts {
            merged.merge(p);
        }
        assert_eq!(merged.count, direct.count);
        assert_eq!(merged.bucket_counts(), direct.bucket_counts());
        assert_eq!(merged.min.to_bits(), direct.min.to_bits());
        assert_eq!(merged.max.to_bits(), direct.max.to_bits());
        // Sum differs by association but merging the same parts twice is
        // bit-identical.
        let mut again = Histogram::new();
        for p in &parts {
            again.merge(p);
        }
        assert_eq!(again.sum.to_bits(), merged.sum.to_bits());
        assert_eq!(
            again.quantile(0.9).to_bits(),
            merged.quantile(0.9).to_bits()
        );
    }

    #[test]
    fn atomic_histogram_concurrent_counts_exact() {
        static H: AtomicHistogram = AtomicHistogram::new();
        H.reset();
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for i in 0..1000 {
                        H.observe(0.001 * (1 + i % 7) as f64);
                    }
                });
            }
        });
        let snap = H.snapshot();
        assert_eq!(snap.count, 4000);
        assert_eq!(snap.bucket_counts().iter().sum::<u64>(), 4000);
        assert_eq!(snap.min, 0.001);
        assert_eq!(snap.max, 0.007);
        assert!((snap.sum - snap.mean() * 4000.0).abs() < 1e-6);
        H.reset();
        assert_eq!(H.snapshot().count, 0);
    }

    #[test]
    fn well_known_histograms_have_stable_names() {
        let names: Vec<&str> = histograms::snapshot().iter().map(|(n, _)| *n).collect();
        assert_eq!(
            names,
            vec![
                "cg_iterations",
                "cg_residuals",
                "oracle_build_secs",
                "oracle_update_secs",
                "transition_score_secs",
                "pack_io_secs",
                "serve_push_secs",
                "serve_create_secs",
                "serve_admin_secs",
                "serve_queue_wait_secs",
                "journal_append_secs",
                "journal_fsync_secs"
            ]
        );
    }

    #[test]
    fn labeled_histograms_route_by_value_with_catch_all() {
        use histograms::labeled::LabeledHistograms;
        static FAM: LabeledHistograms<3> =
            LabeledHistograms::new("test_secs", "engine", ["exact", "embedding", "other"]);
        FAM.observe("exact", 0.5);
        FAM.observe("exact", 1.0);
        FAM.observe("unlisted-backend", 2.0);
        let snap = FAM.snapshot();
        assert_eq!(snap[0].0, "exact");
        assert_eq!(snap[0].1.count, 2);
        assert_eq!(snap[1].1.count, 0);
        assert_eq!(snap[2].1.count, 1);
        FAM.reset();
        assert!(FAM.snapshot().iter().all(|(_, h)| h.count == 0));
    }

    #[test]
    fn set_bucket_bounds_checked() {
        let mut h = Histogram::new();
        assert!(h.set_bucket(0, 3).is_ok());
        assert!(h.set_bucket(N_BUCKETS, 1).is_err());
        assert_eq!(h.bucket_counts()[0], 3);
    }
}
