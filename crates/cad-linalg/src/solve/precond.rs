//! Preconditioners for conjugate gradients.

use crate::error::LinalgError;
use crate::sparse::CsrMatrix;
use crate::Result;

/// Application of `z = M⁻¹ r` for an SPD preconditioner `M`.
pub trait Preconditioner {
    /// `z ← M⁻¹ r`; both slices have the operator dimension.
    fn apply(&self, r: &[f64], z: &mut [f64]);
}

/// No-op preconditioner (`M = I`), turning PCG into plain CG.
#[derive(Debug, Clone, Copy, Default)]
pub struct IdentityPreconditioner;

impl Preconditioner for IdentityPreconditioner {
    fn apply(&self, r: &[f64], z: &mut [f64]) {
        z.copy_from_slice(r);
    }
}

/// Diagonal (Jacobi) preconditioner `M = diag(A)`.
///
/// For graph Laplacians the diagonal is the weighted degree, making this
/// the classic degree-scaling preconditioner: cheap and effective on the
/// kernel-similarity graphs used throughout the paper, whose degrees span
/// orders of magnitude.
#[derive(Debug, Clone)]
pub struct JacobiPreconditioner {
    inv_diag: Vec<f64>,
}

impl JacobiPreconditioner {
    /// Build from an explicit diagonal; entries must be strictly positive.
    pub fn from_diagonal(diag: &[f64]) -> Result<Self> {
        if let Some(idx) = diag.iter().position(|&d| d <= 0.0 || !d.is_finite()) {
            return Err(LinalgError::InvalidInput(format!(
                "jacobi preconditioner needs a positive diagonal; entry {idx} is {}",
                diag[idx]
            )));
        }
        Ok(JacobiPreconditioner {
            inv_diag: diag.iter().map(|d| 1.0 / d).collect(),
        })
    }

    /// Build from the diagonal of a CSR matrix.
    pub fn from_matrix(a: &CsrMatrix) -> Result<Self> {
        Self::from_diagonal(&a.diagonal())
    }
}

impl Preconditioner for JacobiPreconditioner {
    fn apply(&self, r: &[f64], z: &mut [f64]) {
        debug_assert_eq!(r.len(), self.inv_diag.len());
        for ((zi, ri), di) in z.iter_mut().zip(r).zip(&self.inv_diag) {
            *zi = ri * di;
        }
    }
}

/// Zero-fill incomplete Cholesky, IC(0): `M = L̃ L̃ᵀ` with the sparsity
/// pattern of the lower triangle of `A`.
///
/// Falls back to a diagonal shift (`A + σ diag(A)`) and refactors when a
/// pivot breaks down, the standard Manteuffel remedy; after a few shifts
/// the factorization always exists for a symmetric M-matrix like a
/// grounded Laplacian.
#[derive(Debug, Clone)]
pub struct IncompleteCholesky {
    // CSR of the lower-triangular factor (diagonal included, last in row).
    row_ptr: Vec<usize>,
    col_idx: Vec<u32>,
    values: Vec<f64>,
    n: usize,
}

impl IncompleteCholesky {
    /// Factor a symmetric matrix with positive diagonal.
    pub fn factor(a: &CsrMatrix) -> Result<Self> {
        if a.nrows() != a.ncols() {
            return Err(LinalgError::NotSquare {
                rows: a.nrows(),
                cols: a.ncols(),
            });
        }
        let mut shift = 0.0;
        for attempt in 0..8 {
            match Self::try_factor(a, shift) {
                Ok(f) => return Ok(f),
                Err(_) => {
                    shift = if attempt == 0 { 1e-3 } else { shift * 10.0 };
                }
            }
        }
        Err(LinalgError::FactorizationFailed {
            what: "ic0",
            index: 0,
        })
    }

    fn try_factor(a: &CsrMatrix, shift: f64) -> Result<Self> {
        let n = a.nrows();
        // Extract lower triangle (col <= row), diagonal shifted.
        let mut row_ptr = vec![0usize; n + 1];
        let mut col_idx: Vec<u32> = Vec::new();
        let mut values: Vec<f64> = Vec::new();
        for i in 0..n {
            let (cols, vals) = a.row(i);
            for (&c, &v) in cols.iter().zip(vals) {
                if (c as usize) < i {
                    col_idx.push(c);
                    values.push(v);
                }
            }
            // Diagonal entry is required.
            let d = a.get(i, i);
            if d <= 0.0 {
                return Err(LinalgError::FactorizationFailed {
                    what: "ic0",
                    index: i,
                });
            }
            col_idx.push(i as u32);
            values.push(d * (1.0 + shift));
            row_ptr[i + 1] = col_idx.len();
        }

        // IKJ-style IC(0): for each row i, update using previous rows that
        // share pattern, then scale.
        // col_of[i] maps column -> position in row i for fast lookup.
        for i in 0..n {
            let (lo, hi) = (row_ptr[i], row_ptr[i + 1]);
            // For each k (column index < i present in row i):
            for kk in lo..hi - 1 {
                let k = col_idx[kk] as usize;
                // values[kk] currently holds a_ik minus prior updates;
                // divide by d_k (diagonal of row k, last entry of row k).
                let dk = values[row_ptr[k + 1] - 1];
                if dk <= 0.0 {
                    return Err(LinalgError::FactorizationFailed {
                        what: "ic0",
                        index: k,
                    });
                }
                values[kk] /= dk;
                let lik = values[kk];
                // Update remaining entries of row i with pattern of row k:
                // a_ij -= l_ik * l_jk * d_k  for j in row i pattern, j > k.
                for jj in (kk + 1)..hi {
                    let j = col_idx[jj] as usize;
                    // Find l_jk in row j? For IC(0) with our storage we use
                    // row k of L: l_jk is stored at row j... that's a lookup
                    // in row j. Instead use the symmetric update via row k:
                    // find entry (j, k) == value at row j col k.
                    let (jlo, jhi) = (row_ptr[j], row_ptr[j + 1]);
                    let pos = col_idx[jlo..jhi].binary_search(&(k as u32)).ok();
                    if let Some(p) = pos {
                        let ljk = values[jlo + p];
                        values[jj] -= lik * ljk * dk;
                    }
                }
            }
            // After updates, the diagonal must stay positive.
            let d = values[hi - 1];
            if d <= 0.0 || !d.is_finite() {
                return Err(LinalgError::FactorizationFailed {
                    what: "ic0",
                    index: i,
                });
            }
        }

        // Convert LDLᵀ-style storage (unit-lower with diagonal d) to
        // L̃ = L sqrt(D): scale column entries.
        // Our values: for k<i, values holds l_ik (unit-lower); diagonal holds d_i.
        let mut out_vals = values.clone();
        for i in 0..n {
            let (lo, hi) = (row_ptr[i], row_ptr[i + 1]);
            for kk in lo..hi - 1 {
                let k = col_idx[kk] as usize;
                let dk = values[row_ptr[k + 1] - 1];
                out_vals[kk] = values[kk] * dk.sqrt();
            }
            out_vals[hi - 1] = values[hi - 1].sqrt();
        }

        Ok(IncompleteCholesky {
            row_ptr,
            col_idx,
            values: out_vals,
            n,
        })
    }

    /// Solve `L̃ L̃ᵀ z = r`.
    fn solve(&self, r: &[f64], z: &mut [f64]) {
        let n = self.n;
        // Forward: L̃ y = r (rows end with the diagonal).
        for i in 0..n {
            let (lo, hi) = (self.row_ptr[i], self.row_ptr[i + 1]);
            let mut s = r[i];
            for kk in lo..hi - 1 {
                s -= self.values[kk] * z[self.col_idx[kk] as usize];
            }
            z[i] = s / self.values[hi - 1];
        }
        // Backward: L̃ᵀ z = y. Traverse rows in reverse, scattering.
        for i in (0..n).rev() {
            let (lo, hi) = (self.row_ptr[i], self.row_ptr[i + 1]);
            z[i] /= self.values[hi - 1];
            let zi = z[i];
            for kk in lo..hi - 1 {
                z[self.col_idx[kk] as usize] -= self.values[kk] * zi;
            }
        }
    }
}

impl Preconditioner for IncompleteCholesky {
    fn apply(&self, r: &[f64], z: &mut [f64]) {
        self.solve(r, z);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solve::cg::{cg_solve, CgOptions};

    fn tridiag_spd(n: usize) -> CsrMatrix {
        let mut tri = Vec::new();
        for i in 0..n {
            tri.push((i as u32, i as u32, 2.5));
            if i + 1 < n {
                tri.push((i as u32, i as u32 + 1, -1.0));
                tri.push((i as u32 + 1, i as u32, -1.0));
            }
        }
        CsrMatrix::from_triplets(n, n, &tri)
    }

    #[test]
    fn jacobi_inverts_diagonal() {
        let p = JacobiPreconditioner::from_diagonal(&[2.0, 4.0]).unwrap();
        let mut z = vec![0.0; 2];
        p.apply(&[2.0, 4.0], &mut z);
        assert_eq!(z, vec![1.0, 1.0]);
    }

    #[test]
    fn jacobi_rejects_nonpositive() {
        assert!(JacobiPreconditioner::from_diagonal(&[1.0, 0.0]).is_err());
        assert!(JacobiPreconditioner::from_diagonal(&[1.0, -2.0]).is_err());
    }

    #[test]
    fn ic0_exact_on_tridiagonal() {
        // IC(0) on a tridiagonal SPD matrix is the exact Cholesky
        // factorization (no fill is discarded), so M⁻¹ r solves exactly.
        let a = tridiag_spd(6);
        let ic = IncompleteCholesky::factor(&a).unwrap();
        let b: Vec<f64> = (0..6).map(|i| (i as f64) - 2.0).collect();
        let mut z = vec![0.0; 6];
        ic.apply(&b, &mut z);
        let az = a.matvec(&z).unwrap();
        for (l, r) in az.iter().zip(&b) {
            assert!(
                (l - r).abs() < 1e-10,
                "IC(0) should be exact here: {l} vs {r}"
            );
        }
    }

    #[test]
    fn ic0_accelerates_cg() {
        let a = tridiag_spd(50);
        let b: Vec<f64> = (0..50).map(|i| ((i * 7) % 11) as f64 - 5.0).collect();
        let ic = IncompleteCholesky::factor(&a).unwrap();
        let plain = cg_solve(&a, &b, &IdentityPreconditioner, CgOptions::default()).unwrap();
        let fast = cg_solve(&a, &b, &ic, CgOptions::default()).unwrap();
        assert!(fast.converged);
        assert!(
            fast.iterations <= plain.iterations,
            "{} > {}",
            fast.iterations,
            plain.iterations
        );
        // Tridiagonal => exact preconditioner => one iteration.
        assert!(fast.iterations <= 2);
    }

    #[test]
    fn ic0_rejects_rectangular() {
        assert!(IncompleteCholesky::factor(&CsrMatrix::zeros(2, 3)).is_err());
    }

    #[test]
    fn ic0_on_grounded_laplacian_pattern() {
        // 2D-grid-like SPD matrix with off-pattern fill dropped: still a
        // valid preconditioner (M SPD) and CG converges.
        let n = 16;
        let mut tri = Vec::new();
        for i in 0..n {
            tri.push((i as u32, i as u32, 4.2));
            let (r, c) = (i / 4, i % 4);
            if c + 1 < 4 {
                tri.push((i as u32, (i + 1) as u32, -1.0));
                tri.push(((i + 1) as u32, i as u32, -1.0));
            }
            if r + 1 < 4 {
                tri.push((i as u32, (i + 4) as u32, -1.0));
                tri.push(((i + 4) as u32, i as u32, -1.0));
            }
        }
        let a = CsrMatrix::from_triplets(n, n, &tri);
        let ic = IncompleteCholesky::factor(&a).unwrap();
        let b = vec![1.0; n];
        let out = cg_solve(&a, &b, &ic, CgOptions::default()).unwrap();
        assert!(out.converged);
    }
}
