//! Iterative solvers for symmetric positive-(semi)definite systems.
//!
//! The Khoa–Chawla commute-time embedding needs `k ≈ O(log n)` solves of
//! `L x = b` per graph instance, where `L` is the (singular) graph
//! Laplacian. The paper outsources these to a Spielman–Teng near-linear
//! solver; our substitution (DESIGN.md §5) is preconditioned conjugate
//! gradients on a *grounded* Laplacian — one row/column pinned per
//! connected component, which makes the operator SPD — or, optionally, on
//! the ε-regularized system `(L + εI) x = b`, which additionally yields
//! finite resistances between components.

pub mod cg;
pub mod laplacian;
pub mod precond;
pub mod tree;

pub use cg::{cg_solve, CgOptions, CgOutcome, LinOp};
pub use laplacian::{LaplacianSolver, LaplacianSolverOptions, SolverKind};
pub use precond::{IncompleteCholesky, JacobiPreconditioner, Preconditioner};
pub use tree::TreePreconditioner;
