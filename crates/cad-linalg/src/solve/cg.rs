//! (Preconditioned) conjugate gradients.

use crate::dense::vecops;
use crate::error::LinalgError;
use crate::solve::precond::Preconditioner;
use crate::sparse::CsrMatrix;
use crate::Result;

/// Abstract symmetric linear operator `y = A x`.
///
/// Implemented by [`CsrMatrix`] directly and by the grounded/regularized
/// Laplacian views in [`crate::solve::laplacian`], so CG never needs the
/// modified matrix materialized.
pub trait LinOp {
    /// Operator dimension (square).
    fn dim(&self) -> usize;
    /// `y ← A x`; `x` and `y` have length [`LinOp::dim`].
    fn apply(&self, x: &[f64], y: &mut [f64]);
}

impl LinOp for CsrMatrix {
    fn dim(&self) -> usize {
        self.nrows()
    }

    fn apply(&self, x: &[f64], y: &mut [f64]) {
        self.matvec_into(x, y)
            .expect("CsrMatrix::apply shape checked by caller");
    }
}

/// Options for [`cg_solve`].
#[derive(Debug, Clone, Copy)]
pub struct CgOptions {
    /// Relative residual target: stop when `‖r‖₂ ≤ tol·‖b‖₂`.
    pub tol: f64,
    /// Iteration cap; `None` defaults to `10·n + 100`.
    pub max_iter: Option<usize>,
    /// Per-iteration residual trace cap: keep the **last** this many
    /// relative residuals in [`CgOutcome::residual_trace`]. `0` (the
    /// default) disables tracing; the solve path is unchanged either
    /// way — the trace observes `‖r‖/‖b‖` values CG computes anyway.
    pub residual_trace_cap: usize,
}

impl Default for CgOptions {
    fn default() -> Self {
        CgOptions {
            tol: 1e-8,
            max_iter: None,
            residual_trace_cap: 0,
        }
    }
}

/// Bounded ring keeping the newest `cap` residuals in push order.
struct ResidualRing {
    cap: usize,
    buf: Vec<f64>,
    next: usize,
}

impl ResidualRing {
    fn new(cap: usize) -> ResidualRing {
        ResidualRing {
            cap,
            buf: Vec::with_capacity(cap.min(256)),
            next: 0,
        }
    }

    fn push(&mut self, v: f64) {
        if self.cap == 0 {
            return;
        }
        if self.buf.len() < self.cap {
            self.buf.push(v);
        } else {
            self.buf[self.next] = v;
            self.next = (self.next + 1) % self.cap;
        }
    }

    /// The retained residuals, oldest first.
    fn into_chronological(mut self) -> Vec<f64> {
        self.buf.rotate_left(self.next);
        self.buf
    }
}

/// Outcome of a CG solve.
#[derive(Debug, Clone)]
pub struct CgOutcome {
    /// The solution vector.
    pub x: Vec<f64>,
    /// Iterations performed.
    pub iterations: usize,
    /// Final relative residual `‖b − A x‖ / ‖b‖`.
    pub relative_residual: f64,
    /// Whether the tolerance was met.
    pub converged: bool,
    /// The last [`CgOptions::residual_trace_cap`] per-iteration relative
    /// residuals, oldest first (empty when tracing is off).
    pub residual_trace: Vec<f64>,
}

impl CgOutcome {
    /// The convergence record, detached from the solution vector.
    pub fn stats(&self) -> cad_obs::SolveStats {
        cad_obs::SolveStats {
            iterations: self.iterations,
            relative_residual: self.relative_residual,
            converged: self.converged,
            residual_trace: self.residual_trace.clone(),
        }
    }
}

/// Preconditioned conjugate gradients for SPD `A x = b`, starting at 0.
///
/// Does not error on non-convergence: the outcome reports the achieved
/// residual and callers decide (the commute-time embedding tolerates a
/// slightly loose solve; unit tests assert convergence explicitly).
pub fn cg_solve(
    a: &dyn LinOp,
    b: &[f64],
    pre: &dyn Preconditioner,
    opts: CgOptions,
) -> Result<CgOutcome> {
    let n = a.dim();
    if b.len() != n {
        return Err(LinalgError::DimensionMismatch {
            op: "cg_solve",
            expected: (n, 1),
            found: (b.len(), 1),
        });
    }
    let bnorm = vecops::norm2(b);
    if bnorm == 0.0 {
        cad_obs::counters::CG_SOLVES.inc();
        cad_obs::histograms::CG_ITERATIONS.observe(0.0);
        cad_obs::histograms::CG_RESIDUALS.observe(0.0);
        return Ok(CgOutcome {
            x: vec![0.0; n],
            iterations: 0,
            relative_residual: 0.0,
            converged: true,
            residual_trace: Vec::new(),
        });
    }
    let max_iter = opts.max_iter.unwrap_or(10 * n + 100);
    let target = opts.tol * bnorm;
    let mut trace = ResidualRing::new(opts.residual_trace_cap);

    let mut x = vec![0.0; n];
    let mut r = b.to_vec();
    let mut z = vec![0.0; n];
    pre.apply(&r, &mut z);
    let mut p = z.clone();
    let mut rz = vecops::dot(&r, &z);
    let mut ap = vec![0.0; n];

    let mut iterations = 0;
    let mut rnorm = bnorm;
    while iterations < max_iter && rnorm > target {
        a.apply(&p, &mut ap);
        let pap = vecops::dot(&p, &ap);
        if pap <= 0.0 || !pap.is_finite() {
            // Operator not SPD along p (e.g. singular Laplacian drift);
            // stop with the current best iterate.
            break;
        }
        let alpha = rz / pap;
        vecops::axpy(alpha, &p, &mut x);
        vecops::axpy(-alpha, &ap, &mut r);
        rnorm = vecops::norm2(&r);
        iterations += 1;
        trace.push(rnorm / bnorm);
        if rnorm <= target {
            break;
        }
        pre.apply(&r, &mut z);
        let rz_new = vecops::dot(&r, &z);
        let beta = rz_new / rz;
        rz = rz_new;
        for (pi, zi) in p.iter_mut().zip(&z) {
            *pi = zi + beta * *pi;
        }
    }

    cad_obs::counters::CG_SOLVES.inc();
    cad_obs::counters::CG_ITERATIONS.add(iterations as u64);
    cad_obs::histograms::CG_ITERATIONS.observe(iterations as f64);
    cad_obs::histograms::CG_RESIDUALS.observe(rnorm / bnorm);
    Ok(CgOutcome {
        x,
        iterations,
        relative_residual: rnorm / bnorm,
        converged: rnorm <= target,
        residual_trace: trace.into_chronological(),
    })
}

/// Warm-started PCG: like [`cg_solve`] but starting from `x0` instead of
/// the zero vector.
///
/// The initial residual is `b − A x0`, so a guess already within
/// tolerance returns in zero iterations. Convergence is still judged
/// relative to `‖b‖₂` (not the initial residual), which keeps the
/// achieved accuracy identical to a cold solve — a warm start only
/// changes how fast it is reached. Incremental oracle updates feed the
/// previous snapshot's solution here; small graph deltas leave the
/// solution nearly unchanged, so most solves finish in a handful of
/// iterations.
pub fn cg_solve_from(
    a: &dyn LinOp,
    b: &[f64],
    x0: &[f64],
    pre: &dyn Preconditioner,
    opts: CgOptions,
) -> Result<CgOutcome> {
    let n = a.dim();
    if b.len() != n || x0.len() != n {
        return Err(LinalgError::DimensionMismatch {
            op: "cg_solve_from",
            expected: (n, 1),
            found: (if b.len() != n { b.len() } else { x0.len() }, 1),
        });
    }
    let bnorm = vecops::norm2(b);
    if bnorm == 0.0 {
        // A is SPD on the solve subspace, so b = 0 has the unique
        // solution 0 — same short-circuit as the cold solve.
        cad_obs::counters::CG_SOLVES.inc();
        cad_obs::histograms::CG_ITERATIONS.observe(0.0);
        cad_obs::histograms::CG_RESIDUALS.observe(0.0);
        return Ok(CgOutcome {
            x: vec![0.0; n],
            iterations: 0,
            relative_residual: 0.0,
            converged: true,
            residual_trace: Vec::new(),
        });
    }
    let max_iter = opts.max_iter.unwrap_or(10 * n + 100);
    let target = opts.tol * bnorm;
    let mut trace = ResidualRing::new(opts.residual_trace_cap);

    let mut x = x0.to_vec();
    let mut r = vec![0.0; n];
    a.apply(&x, &mut r);
    for (ri, bi) in r.iter_mut().zip(b) {
        *ri = bi - *ri;
    }
    let mut z = vec![0.0; n];
    pre.apply(&r, &mut z);
    let mut p = z.clone();
    let mut rz = vecops::dot(&r, &z);
    let mut ap = vec![0.0; n];

    let mut iterations = 0;
    let mut rnorm = vecops::norm2(&r);
    while iterations < max_iter && rnorm > target {
        a.apply(&p, &mut ap);
        let pap = vecops::dot(&p, &ap);
        if pap <= 0.0 || !pap.is_finite() {
            break;
        }
        let alpha = rz / pap;
        vecops::axpy(alpha, &p, &mut x);
        vecops::axpy(-alpha, &ap, &mut r);
        rnorm = vecops::norm2(&r);
        iterations += 1;
        trace.push(rnorm / bnorm);
        if rnorm <= target {
            break;
        }
        pre.apply(&r, &mut z);
        let rz_new = vecops::dot(&r, &z);
        let beta = rz_new / rz;
        rz = rz_new;
        for (pi, zi) in p.iter_mut().zip(&z) {
            *pi = zi + beta * *pi;
        }
    }

    cad_obs::counters::CG_SOLVES.inc();
    cad_obs::counters::CG_ITERATIONS.add(iterations as u64);
    cad_obs::histograms::CG_ITERATIONS.observe(iterations as f64);
    cad_obs::histograms::CG_RESIDUALS.observe(rnorm / bnorm);
    Ok(CgOutcome {
        x,
        iterations,
        relative_residual: rnorm / bnorm,
        converged: rnorm <= target,
        residual_trace: trace.into_chronological(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solve::precond::{IdentityPreconditioner, JacobiPreconditioner};

    fn spd() -> CsrMatrix {
        CsrMatrix::from_triplets(
            3,
            3,
            &[
                (0, 0, 4.0),
                (0, 1, 1.0),
                (1, 0, 1.0),
                (1, 1, 3.0),
                (1, 2, -1.0),
                (2, 1, -1.0),
                (2, 2, 2.0),
            ],
        )
    }

    #[test]
    fn solves_spd_system() {
        let a = spd();
        let b = vec![1.0, 2.0, 3.0];
        let out = cg_solve(&a, &b, &IdentityPreconditioner, CgOptions::default()).unwrap();
        assert!(out.converged, "residual {}", out.relative_residual);
        let ax = a.matvec(&out.x).unwrap();
        for (l, r) in ax.iter().zip(&b) {
            assert!((l - r).abs() < 1e-6);
        }
    }

    #[test]
    fn jacobi_preconditioner_converges_no_slower() {
        let a = spd();
        let b = vec![1.0, -1.0, 0.5];
        let plain = cg_solve(&a, &b, &IdentityPreconditioner, CgOptions::default()).unwrap();
        let pre = JacobiPreconditioner::from_diagonal(&a.diagonal()).unwrap();
        let jac = cg_solve(&a, &b, &pre, CgOptions::default()).unwrap();
        assert!(jac.converged);
        assert!(jac.iterations <= plain.iterations + 1);
    }

    #[test]
    fn zero_rhs_short_circuits() {
        let a = spd();
        let out = cg_solve(&a, &[0.0; 3], &IdentityPreconditioner, CgOptions::default()).unwrap();
        assert!(out.converged);
        assert_eq!(out.iterations, 0);
        assert_eq!(out.x, vec![0.0; 3]);
    }

    #[test]
    fn dimension_mismatch_rejected() {
        let a = spd();
        assert!(cg_solve(&a, &[1.0], &IdentityPreconditioner, CgOptions::default()).is_err());
    }

    #[test]
    fn exact_in_n_iterations() {
        // CG on an n-dimensional SPD system converges in ≤ n iterations
        // in exact arithmetic; allow a little slack.
        let a = spd();
        let b = vec![1.0, 0.0, 0.0];
        let out = cg_solve(
            &a,
            &b,
            &IdentityPreconditioner,
            CgOptions {
                tol: 1e-12,
                max_iter: Some(5),
                ..Default::default()
            },
        )
        .unwrap();
        assert!(out.converged);
        assert!(out.iterations <= 4);
    }

    #[test]
    fn warm_start_from_exact_solution_takes_no_iterations() {
        let a = spd();
        let b = vec![1.0, 2.0, 3.0];
        let cold = cg_solve(&a, &b, &IdentityPreconditioner, CgOptions::default()).unwrap();
        let warm = cg_solve_from(
            &a,
            &b,
            &cold.x,
            &IdentityPreconditioner,
            CgOptions::default(),
        )
        .unwrap();
        assert!(warm.converged);
        assert_eq!(warm.iterations, 0, "exact guess must short-circuit");
        assert_eq!(warm.x, cold.x);
    }

    #[test]
    fn warm_start_matches_cold_solution() {
        let a = spd();
        let b = vec![1.0, -2.0, 0.5];
        let cold = cg_solve(
            &a,
            &b,
            &IdentityPreconditioner,
            CgOptions {
                tol: 1e-12,
                max_iter: None,
                ..Default::default()
            },
        )
        .unwrap();
        // A deliberately wrong guess still converges to the same answer.
        let warm = cg_solve_from(
            &a,
            &b,
            &[5.0, -5.0, 5.0],
            &IdentityPreconditioner,
            CgOptions {
                tol: 1e-12,
                max_iter: None,
                ..Default::default()
            },
        )
        .unwrap();
        assert!(warm.converged);
        for (w, c) in warm.x.iter().zip(&cold.x) {
            assert!((w - c).abs() < 1e-9, "{w} vs {c}");
        }
    }

    #[test]
    fn warm_start_zero_guess_matches_cold_solve() {
        let a = spd();
        let b = vec![0.5, 1.5, -0.5];
        let cold = cg_solve(&a, &b, &IdentityPreconditioner, CgOptions::default()).unwrap();
        let warm = cg_solve_from(
            &a,
            &b,
            &[0.0; 3],
            &IdentityPreconditioner,
            CgOptions::default(),
        )
        .unwrap();
        assert_eq!(warm.iterations, cold.iterations);
        for (w, c) in warm.x.iter().zip(&cold.x) {
            assert_eq!(w.to_bits(), c.to_bits());
        }
    }

    #[test]
    fn warm_start_rejects_bad_dimensions() {
        let a = spd();
        assert!(cg_solve_from(
            &a,
            &[1.0; 3],
            &[1.0; 2],
            &IdentityPreconditioner,
            CgOptions::default()
        )
        .is_err());
        assert!(cg_solve_from(
            &a,
            &[1.0; 2],
            &[1.0; 3],
            &IdentityPreconditioner,
            CgOptions::default()
        )
        .is_err());
    }

    #[test]
    fn residual_trace_records_monotone_tail_without_perturbing_solve() {
        let a = spd();
        let b = vec![1.0, 2.0, 3.0];
        let plain = cg_solve(&a, &b, &IdentityPreconditioner, CgOptions::default()).unwrap();
        let traced = cg_solve(
            &a,
            &b,
            &IdentityPreconditioner,
            CgOptions {
                residual_trace_cap: 16,
                ..CgOptions::default()
            },
        )
        .unwrap();
        // Tracing is observational: bit-identical solution and counts.
        assert_eq!(traced.iterations, plain.iterations);
        for (t, p) in traced.x.iter().zip(&plain.x) {
            assert_eq!(t.to_bits(), p.to_bits());
        }
        assert!(plain.residual_trace.is_empty());
        assert_eq!(traced.residual_trace.len(), traced.iterations);
        // The last trace entry is exactly the reported final residual.
        assert_eq!(
            traced.residual_trace.last().unwrap().to_bits(),
            traced.relative_residual.to_bits()
        );
    }

    #[test]
    fn residual_trace_keeps_only_the_newest_entries() {
        let a = spd();
        let b = vec![1.0, -2.0, 0.5];
        let full = cg_solve(
            &a,
            &b,
            &IdentityPreconditioner,
            CgOptions {
                tol: 1e-12,
                residual_trace_cap: 64,
                ..CgOptions::default()
            },
        )
        .unwrap();
        assert!(full.iterations >= 2, "need a few iterations to truncate");
        let capped = cg_solve(
            &a,
            &b,
            &IdentityPreconditioner,
            CgOptions {
                tol: 1e-12,
                residual_trace_cap: 2,
                ..CgOptions::default()
            },
        )
        .unwrap();
        assert_eq!(capped.residual_trace.len(), 2);
        // The capped ring holds the chronological tail of the full trace.
        let tail = &full.residual_trace[full.residual_trace.len() - 2..];
        assert_eq!(capped.residual_trace, tail);
    }

    #[test]
    fn warm_start_trace_is_shorter_than_cold() {
        let a = spd();
        let b = vec![1.0, 2.0, 3.0];
        let opts = CgOptions {
            residual_trace_cap: 32,
            ..CgOptions::default()
        };
        let cold = cg_solve(&a, &b, &IdentityPreconditioner, opts).unwrap();
        let warm = cg_solve_from(&a, &b, &cold.x, &IdentityPreconditioner, opts).unwrap();
        assert!(warm.residual_trace.is_empty(), "exact guess: no iterations");
        assert_eq!(cold.residual_trace.len(), cold.iterations);
        assert_eq!(cold.stats().residual_trace, cold.residual_trace);
    }

    #[test]
    fn iteration_cap_respected() {
        let a = spd();
        let b = vec![1.0, 2.0, 3.0];
        let out = cg_solve(
            &a,
            &b,
            &IdentityPreconditioner,
            CgOptions {
                tol: 1e-15,
                max_iter: Some(1),
                ..Default::default()
            },
        )
        .unwrap();
        assert!(out.iterations <= 1);
    }
}
