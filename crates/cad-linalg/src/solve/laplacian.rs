//! Solving singular graph-Laplacian systems.
//!
//! A connected graph's Laplacian `L` is symmetric positive *semi*definite
//! with null space `span{1}`; multi-component graphs have one null vector
//! per component. The embedding pipeline needs `x = L⁺ b` for right-hand
//! sides that are component-wise mean-free (incidence-derived RHSs always
//! are). Two strategies are offered:
//!
//! * [`SolverKind::Grounded`] — pin one node per connected component
//!   (the max-degree node) to zero and solve the resulting SPD submatrix
//!   with PCG; the answer is then re-centered per component, which makes
//!   it *equal* to `L⁺ b` for consistent `b`.
//! * [`SolverKind::Regularized`] — solve `(L + εI) x = b` instead. This
//!   trades an `O(ε)` bias for finite effective resistances *between*
//!   components, which the CAD pipeline needs when a new edge joins two
//!   previously disconnected parts (paper Case 2 in the extreme).

use crate::error::LinalgError;
use crate::solve::cg::{cg_solve, cg_solve_from, CgOptions};
use crate::solve::precond::{
    IdentityPreconditioner, IncompleteCholesky, JacobiPreconditioner, Preconditioner,
};
use crate::solve::tree::TreePreconditioner;
use crate::sparse::CsrMatrix;
use crate::Result;

/// How the singular Laplacian system is made definite.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SolverKind {
    /// Ground one node per component; exact `L⁺ b` for consistent `b`.
    Grounded,
    /// Solve `(L + εI) x = b`; finite cross-component resistances.
    Regularized(f64),
}

/// Preconditioner choice for the PCG solves.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PrecondKind {
    /// Degree (diagonal) scaling — the default; robust and cheap.
    #[default]
    Jacobi,
    /// Zero-fill incomplete Cholesky; fewer iterations, higher setup cost.
    IncompleteCholesky,
    /// Maximum-weight spanning-tree (Vaidya) preconditioner — exact on
    /// trees/paths, the right choice for filament-heavy sparse graphs
    /// (see [`crate::solve::tree`]).
    SpanningTree,
    /// No preconditioning (mostly for ablation benches).
    None,
}

/// Options for [`LaplacianSolver`].
#[derive(Debug, Clone, Copy)]
pub struct LaplacianSolverOptions {
    /// Definiteness strategy.
    pub kind: SolverKind,
    /// Preconditioner choice.
    pub precond: PrecondKind,
    /// CG controls.
    pub cg: CgOptions,
}

impl Default for LaplacianSolverOptions {
    fn default() -> Self {
        LaplacianSolverOptions {
            kind: SolverKind::Grounded,
            precond: PrecondKind::Jacobi,
            cg: CgOptions::default(),
        }
    }
}

enum PrecondImpl {
    Identity(IdentityPreconditioner),
    Jacobi(JacobiPreconditioner),
    Ic0(IncompleteCholesky),
    Tree(TreePreconditioner),
}

impl PrecondImpl {
    fn as_dyn(&self) -> &dyn Preconditioner {
        match self {
            PrecondImpl::Identity(p) => p,
            PrecondImpl::Jacobi(p) => p,
            PrecondImpl::Ic0(p) => p,
            PrecondImpl::Tree(p) => p,
        }
    }
}

/// A prepared solver for repeated right-hand sides against one Laplacian.
///
/// Setup cost (component discovery, grounding, preconditioner
/// factorization) is paid once; the embedding then issues `k` solves.
pub struct LaplacianSolver {
    n: usize,
    kind: SolverKind,
    /// Component id per node.
    component: Vec<u32>,
    /// Number of connected components.
    n_components: usize,
    /// Nodes per component (for mean-centering).
    component_sizes: Vec<usize>,
    /// The SPD operator actually solved.
    op: CsrMatrix,
    /// Grounded strategy: reduced index -> full index. Empty for the
    /// regularized strategy.
    full_index: Vec<usize>,
    /// Grounded strategy: the pinned node of each component. Empty for
    /// the regularized strategy.
    ground: Vec<usize>,
    precond: PrecondImpl,
    cg: CgOptions,
}

impl LaplacianSolver {
    /// Prepare a solver for the given Laplacian.
    ///
    /// `laplacian` must be square and symmetric; its off-diagonal pattern
    /// defines the graph used for component discovery.
    pub fn new(laplacian: &CsrMatrix, opts: LaplacianSolverOptions) -> Result<Self> {
        if laplacian.nrows() != laplacian.ncols() {
            return Err(LinalgError::NotSquare {
                rows: laplacian.nrows(),
                cols: laplacian.ncols(),
            });
        }
        if let SolverKind::Regularized(eps) = opts.kind {
            if eps <= 0.0 || !eps.is_finite() {
                return Err(LinalgError::InvalidInput(format!(
                    "regularization must be positive, got {eps}"
                )));
            }
        }
        let n = laplacian.nrows();
        let (component, n_components) = connected_components(laplacian);
        let mut component_sizes = vec![0usize; n_components];
        for &c in &component {
            component_sizes[c as usize] += 1;
        }

        let (op, full_index, ground) = match opts.kind {
            SolverKind::Regularized(eps) => {
                let mut tri: Vec<(u32, u32, f64)> = laplacian
                    .iter()
                    .map(|(i, j, v)| (i as u32, j as u32, v))
                    .collect();
                for i in 0..n {
                    tri.push((i as u32, i as u32, eps));
                }
                (CsrMatrix::from_triplets(n, n, &tri), Vec::new(), Vec::new())
            }
            SolverKind::Grounded => {
                // Ground the max-degree (max diagonal) node of each component.
                let diag = laplacian.diagonal();
                let mut ground = vec![usize::MAX; n_components];
                for i in 0..n {
                    let c = component[i] as usize;
                    if ground[c] == usize::MAX || diag[i] > diag[ground[c]] {
                        ground[c] = i;
                    }
                }
                let grounded: Vec<bool> =
                    (0..n).map(|i| ground[component[i] as usize] == i).collect();
                let mut reduced_index = vec![usize::MAX; n];
                let mut full_index = Vec::with_capacity(n - n_components);
                for i in 0..n {
                    if !grounded[i] {
                        reduced_index[i] = full_index.len();
                        full_index.push(i);
                    }
                }
                let tri: Vec<(u32, u32, f64)> = laplacian
                    .iter()
                    .filter(|&(i, j, _)| !grounded[i] && !grounded[j])
                    .map(|(i, j, v)| (reduced_index[i] as u32, reduced_index[j] as u32, v))
                    .collect();
                let m = full_index.len();
                (CsrMatrix::from_triplets(m, m, &tri), full_index, ground)
            }
        };

        let precond = match opts.precond {
            PrecondKind::None => PrecondImpl::Identity(IdentityPreconditioner),
            PrecondKind::Jacobi => {
                if op.nrows() == 0 {
                    PrecondImpl::Identity(IdentityPreconditioner)
                } else {
                    PrecondImpl::Jacobi(JacobiPreconditioner::from_matrix(&op)?)
                }
            }
            PrecondKind::IncompleteCholesky => {
                if op.nrows() == 0 {
                    PrecondImpl::Identity(IdentityPreconditioner)
                } else {
                    PrecondImpl::Ic0(IncompleteCholesky::factor(&op)?)
                }
            }
            PrecondKind::SpanningTree => {
                if op.nrows() == 0 {
                    PrecondImpl::Identity(IdentityPreconditioner)
                } else {
                    PrecondImpl::Tree(TreePreconditioner::from_matrix(&op)?)
                }
            }
        };

        Ok(LaplacianSolver {
            n,
            kind: opts.kind,
            component,
            n_components,
            component_sizes,
            op,
            full_index,
            ground,
            precond,
            cg: opts.cg,
        })
    }

    /// Dimension of the underlying Laplacian.
    pub fn dim(&self) -> usize {
        self.n
    }

    /// Number of connected components discovered from the sparsity pattern.
    pub fn n_components(&self) -> usize {
        self.n_components
    }

    /// Component id (0-based) of each node.
    pub fn component_ids(&self) -> &[u32] {
        &self.component
    }

    /// Solve `L x ≈ b`.
    ///
    /// * Grounded: `b` is first made component-wise mean-free (for
    ///   incidence-derived RHSs this is a no-op up to rounding); the
    ///   returned `x` is exactly `L⁺ b_projected`, i.e. component-wise
    ///   mean-free.
    /// * Regularized: returns `(L + εI)⁻¹ b` unchanged.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>> {
        self.solve_with(b, self.cg)
    }

    /// Like [`LaplacianSolver::solve`], also returning the convergence
    /// record of the underlying PCG solve.
    pub fn solve_stats(&self, b: &[f64]) -> Result<(Vec<f64>, cad_obs::SolveStats)> {
        self.solve_with_stats(b, self.cg)
    }

    /// Like [`LaplacianSolver::solve`] with one-off CG controls.
    pub fn solve_with(&self, b: &[f64], cg: CgOptions) -> Result<Vec<f64>> {
        self.solve_with_stats(b, cg).map(|(x, _)| x)
    }

    /// Solve with one-off CG controls, returning the solution together
    /// with the PCG convergence record ([`cad_obs::SolveStats`]).
    pub fn solve_with_stats(
        &self,
        b: &[f64],
        cg: CgOptions,
    ) -> Result<(Vec<f64>, cad_obs::SolveStats)> {
        if b.len() != self.n {
            return Err(LinalgError::DimensionMismatch {
                op: "laplacian solve",
                expected: (self.n, 1),
                found: (b.len(), 1),
            });
        }
        let traced = trace_start();
        let result = match self.kind {
            SolverKind::Regularized(_) => {
                let out = cg_solve(&self.op, b, self.precond.as_dyn(), cg)?;
                let stats = out.stats();
                Ok((out.x, stats))
            }
            SolverKind::Grounded => {
                // Project b per component onto 1⊥.
                let mut bp = b.to_vec();
                self.center_per_component(&mut bp);
                // Restrict to the reduced system.
                let mut br = vec![0.0; self.full_index.len()];
                for (r, &f) in self.full_index.iter().enumerate() {
                    br[r] = bp[f];
                }
                let out = cg_solve(&self.op, &br, self.precond.as_dyn(), cg)?;
                // Expand (grounded entries = 0) and re-center.
                let mut x = vec![0.0; self.n];
                for (r, &f) in self.full_index.iter().enumerate() {
                    x[f] = out.x[r];
                }
                self.center_per_component(&mut x);
                Ok((x, out.stats()))
            }
        };
        trace_finish(traced, &result);
        result
    }

    /// Warm-started solve: like [`LaplacianSolver::solve`], with `x0`
    /// (typically the solution against the previous snapshot's
    /// Laplacian) as the CG initial guess.
    pub fn solve_from(&self, b: &[f64], x0: &[f64]) -> Result<Vec<f64>> {
        self.solve_from_stats(b, x0).map(|(x, _)| x)
    }

    /// Warm-started solve returning the PCG convergence record.
    ///
    /// The achieved tolerance is the same as a cold
    /// [`LaplacianSolver::solve_stats`] (convergence is judged against
    /// `‖b‖`, not the initial residual); a good guess only shrinks the
    /// iteration count. For the grounded strategy `x0` is re-based so
    /// the pinned node of each component sits at zero — the gauge the
    /// reduced system is solved in — before being restricted.
    pub fn solve_from_stats(
        &self,
        b: &[f64],
        x0: &[f64],
    ) -> Result<(Vec<f64>, cad_obs::SolveStats)> {
        if b.len() != self.n || x0.len() != self.n {
            return Err(LinalgError::DimensionMismatch {
                op: "laplacian solve_from",
                expected: (self.n, 1),
                found: (if b.len() != self.n { b.len() } else { x0.len() }, 1),
            });
        }
        let traced = trace_start();
        let result = match self.kind {
            SolverKind::Regularized(_) => {
                let out = cg_solve_from(&self.op, b, x0, self.precond.as_dyn(), self.cg)?;
                let stats = out.stats();
                Ok((out.x, stats))
            }
            SolverKind::Grounded => {
                let mut bp = b.to_vec();
                self.center_per_component(&mut bp);
                let mut br = vec![0.0; self.full_index.len()];
                let mut x0r = vec![0.0; self.full_index.len()];
                for (r, &f) in self.full_index.iter().enumerate() {
                    br[r] = bp[f];
                    x0r[r] = x0[f] - x0[self.ground[self.component[f] as usize]];
                }
                let out = cg_solve_from(&self.op, &br, &x0r, self.precond.as_dyn(), self.cg)?;
                let mut x = vec![0.0; self.n];
                for (r, &f) in self.full_index.iter().enumerate() {
                    x[f] = out.x[r];
                }
                self.center_per_component(&mut x);
                Ok((x, out.stats()))
            }
        };
        trace_finish(traced, &result);
        result
    }

    fn center_per_component(&self, x: &mut [f64]) {
        let mut sums = vec![0.0; self.n_components];
        for (i, &v) in x.iter().enumerate() {
            sums[self.component[i] as usize] += v;
        }
        for (c, s) in sums.iter_mut().enumerate() {
            *s /= self.component_sizes[c].max(1) as f64;
        }
        for (i, v) in x.iter_mut().enumerate() {
            *v -= sums[self.component[i] as usize];
        }
    }
}

/// Start flight-recorder timing for one solve, but only when the thread
/// carries an active request trace — batch runs pay nothing and keep
/// the ring free for serve-side forensics.
fn trace_start() -> Option<std::time::Instant> {
    if cad_obs::trace::current().is_active() {
        Some(std::time::Instant::now())
    } else {
        None
    }
}

/// Record the per-solve `laplacian_solve` event (elapsed seconds, PCG
/// iteration count in `detail`) for a traced solve that succeeded.
fn trace_finish(
    start: Option<std::time::Instant>,
    result: &Result<(Vec<f64>, cad_obs::SolveStats)>,
) {
    if let (Some(t0), Ok((_, stats))) = (start, result) {
        cad_obs::events::record(
            cad_obs::EventKind::SpanClose,
            "laplacian_solve",
            t0.elapsed().as_secs_f64(),
            stats.iterations as u64,
        );
    }
}

// Silence the dead-code lint on the intentionally-unreachable helper while
// keeping the doc note about where CG options live.
#[allow(dead_code)]
fn _assert_traits() {
    fn is_send<T: Send>() {}
    is_send::<LaplacianSolver>();
}

/// Connected components from the symmetric sparsity pattern (diagonal
/// ignored). Returns `(component_id_per_node, component_count)`.
pub fn connected_components(m: &CsrMatrix) -> (Vec<u32>, usize) {
    let n = m.nrows();
    let mut comp = vec![u32::MAX; n];
    let mut next = 0u32;
    let mut stack = Vec::new();
    for start in 0..n {
        if comp[start] != u32::MAX {
            continue;
        }
        comp[start] = next;
        stack.push(start);
        while let Some(u) = stack.pop() {
            let (cols, _) = m.row(u);
            for &c in cols {
                let v = c as usize;
                if v != u && comp[v] == u32::MAX {
                    comp[v] = next;
                    stack.push(v);
                }
            }
        }
        next += 1;
    }
    (comp, next as usize)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dense::vecops;

    /// Path graph 0-1-2-3 Laplacian with unit weights.
    fn path4_laplacian() -> CsrMatrix {
        let mut tri = Vec::new();
        let w = 1.0;
        for (i, j) in [(0u32, 1u32), (1, 2), (2, 3)] {
            tri.push((i, j, -w));
            tri.push((j, i, -w));
            tri.push((i, i, w));
            tri.push((j, j, w));
        }
        CsrMatrix::from_triplets(4, 4, &tri)
    }

    #[test]
    fn components_of_path() {
        let l = path4_laplacian();
        let (comp, k) = connected_components(&l);
        assert_eq!(k, 1);
        assert!(comp.iter().all(|&c| c == 0));
    }

    #[test]
    fn components_of_disconnected() {
        // Edges 0-1 and 2-3, node 4 isolated.
        let tri = vec![
            (0u32, 1u32, -1.0),
            (1, 0, -1.0),
            (0, 0, 1.0),
            (1, 1, 1.0),
            (2, 3, -1.0),
            (3, 2, -1.0),
            (2, 2, 1.0),
            (3, 3, 1.0),
        ];
        let l = CsrMatrix::from_triplets(5, 5, &tri);
        let (comp, k) = connected_components(&l);
        assert_eq!(k, 3);
        assert_eq!(comp[0], comp[1]);
        assert_eq!(comp[2], comp[3]);
        assert_ne!(comp[0], comp[2]);
        assert_ne!(comp[4], comp[0]);
    }

    #[test]
    fn grounded_solve_matches_pseudoinverse_on_path() {
        let l = path4_laplacian();
        let solver = LaplacianSolver::new(&l, LaplacianSolverOptions::default()).unwrap();
        assert_eq!(solver.n_components(), 1);
        // b must be mean-free; use the incidence column of edge (0,3)-ish.
        let b = vec![1.0, 0.0, 0.0, -1.0];
        let x = solver
            .solve_with(
                &b,
                CgOptions {
                    tol: 1e-12,
                    max_iter: None,
                    ..Default::default()
                },
            )
            .unwrap();
        // Check L x = b and x ⊥ 1.
        let lx = l.matvec(&x).unwrap();
        for (got, want) in lx.iter().zip(&b) {
            assert!((got - want).abs() < 1e-8, "{got} vs {want}");
        }
        assert!(x.iter().sum::<f64>().abs() < 1e-9);
        // Effective resistance 0-3 on a unit path of 3 edges is 3:
        // r = (e0 - e3)ᵀ L⁺ (e0 - e3) = x[0] - x[3].
        assert!((x[0] - x[3] - 3.0).abs() < 1e-8);
    }

    #[test]
    fn regularized_solve_close_to_grounded() {
        let l = path4_laplacian();
        let g = LaplacianSolver::new(&l, LaplacianSolverOptions::default()).unwrap();
        let r = LaplacianSolver::new(
            &l,
            LaplacianSolverOptions {
                kind: SolverKind::Regularized(1e-8),
                ..Default::default()
            },
        )
        .unwrap();
        let b = vec![1.0, -1.0, 1.0, -1.0];
        let cg = CgOptions {
            tol: 1e-12,
            max_iter: None,
            ..Default::default()
        };
        let xg = g.solve_with(&b, cg).unwrap();
        let mut xr = r.solve_with(&b, cg).unwrap();
        // Regularized answer differs by ~constant; compare after centering.
        vecops::center(&mut xr);
        for (a, b) in xg.iter().zip(&xr) {
            assert!((a - b).abs() < 1e-5, "{a} vs {b}");
        }
    }

    #[test]
    fn grounded_handles_disconnected_graphs() {
        // Two disjoint edges; b mean-free per component.
        let tri = vec![
            (0u32, 1u32, -2.0),
            (1, 0, -2.0),
            (0, 0, 2.0),
            (1, 1, 2.0),
            (2, 3, -0.5),
            (3, 2, -0.5),
            (2, 2, 0.5),
            (3, 3, 0.5),
        ];
        let l = CsrMatrix::from_triplets(4, 4, &tri);
        let solver = LaplacianSolver::new(&l, LaplacianSolverOptions::default()).unwrap();
        assert_eq!(solver.n_components(), 2);
        let b = vec![1.0, -1.0, 0.5, -0.5];
        let x = solver
            .solve_with(
                &b,
                CgOptions {
                    tol: 1e-12,
                    max_iter: None,
                    ..Default::default()
                },
            )
            .unwrap();
        let lx = l.matvec(&x).unwrap();
        for (got, want) in lx.iter().zip(&b) {
            assert!((got - want).abs() < 1e-8);
        }
        // b = 1·(e0−e1) on the first component, so x0−x1 = r_eff(0,1) = 1/w = 0.5;
        // b = 0.5·(e2−e3) on the second, so x2−x3 = 0.5·r_eff(2,3) = 0.5·2 = 1.0.
        assert!((x[0] - x[1] - 0.5).abs() < 1e-8);
        assert!((x[2] - x[3] - 1.0).abs() < 1e-6);
    }

    #[test]
    fn isolated_nodes_do_not_break_setup() {
        let l = CsrMatrix::zeros(3, 3);
        let solver = LaplacianSolver::new(&l, LaplacianSolverOptions::default()).unwrap();
        assert_eq!(solver.n_components(), 3);
        let x = solver.solve(&[0.0; 3]).unwrap();
        assert_eq!(x, vec![0.0; 3]);
    }

    #[test]
    fn ic0_precond_agrees_with_jacobi() {
        let l = path4_laplacian();
        let cg = CgOptions {
            tol: 1e-12,
            max_iter: None,
            ..Default::default()
        };
        let b = vec![1.0, 2.0, -1.0, -2.0];
        let xj = LaplacianSolver::new(&l, LaplacianSolverOptions::default())
            .unwrap()
            .solve_with(&b, cg)
            .unwrap();
        let xi = LaplacianSolver::new(
            &l,
            LaplacianSolverOptions {
                precond: PrecondKind::IncompleteCholesky,
                ..Default::default()
            },
        )
        .unwrap()
        .solve_with(&b, cg)
        .unwrap();
        for (a, b) in xj.iter().zip(&xi) {
            assert!((a - b).abs() < 1e-7);
        }
    }

    /// 2D grid graph Laplacian with unit edge weights.
    fn grid_laplacian(rows: usize, cols: usize) -> CsrMatrix {
        let idx = |r: usize, c: usize| (r * cols + c) as u32;
        let mut tri = Vec::new();
        for r in 0..rows {
            for c in 0..cols {
                if c + 1 < cols {
                    for (i, j) in [(idx(r, c), idx(r, c + 1)), (idx(r, c + 1), idx(r, c))] {
                        tri.push((i, j, -1.0));
                    }
                    tri.push((idx(r, c), idx(r, c), 1.0));
                    tri.push((idx(r, c + 1), idx(r, c + 1), 1.0));
                }
                if r + 1 < rows {
                    for (i, j) in [(idx(r, c), idx(r + 1, c)), (idx(r + 1, c), idx(r, c))] {
                        tri.push((i, j, -1.0));
                    }
                    tri.push((idx(r, c), idx(r, c), 1.0));
                    tri.push((idx(r + 1, c), idx(r + 1, c), 1.0));
                }
            }
        }
        let n = rows * cols;
        CsrMatrix::from_triplets(n, n, &tri)
    }

    #[test]
    fn solve_stats_reports_convergence() {
        let l = path4_laplacian();
        let solver = LaplacianSolver::new(&l, LaplacianSolverOptions::default()).unwrap();
        let b = vec![1.0, 0.0, 0.0, -1.0];
        let (x, stats) = solver.solve_stats(&b).unwrap();
        assert!(stats.converged);
        assert!(stats.iterations > 0);
        assert!(stats.relative_residual <= 1e-8);
        assert_eq!(x, solver.solve(&b).unwrap());
    }

    #[test]
    fn pcg_ic0_beats_plain_cg_on_grid() {
        // The IC(0)-preconditioned solver must converge in strictly
        // fewer iterations than unpreconditioned CG on a 12x12 grid
        // Laplacian — the reason PCG is the pipeline default.
        let l = grid_laplacian(12, 12);
        let cg = CgOptions {
            tol: 1e-10,
            max_iter: None,
            ..Default::default()
        };
        let n = l.nrows();
        let mut b: Vec<f64> = (0..n).map(|i| (i as f64 * 0.7).sin()).collect();
        let mean = b.iter().sum::<f64>() / n as f64;
        b.iter_mut().for_each(|v| *v -= mean);

        let solve_iters = |precond: PrecondKind| {
            let solver = LaplacianSolver::new(
                &l,
                LaplacianSolverOptions {
                    precond,
                    ..Default::default()
                },
            )
            .unwrap();
            let (_, stats) = solver.solve_with_stats(&b, cg).unwrap();
            assert!(stats.converged, "{precond:?} did not converge");
            stats.iterations
        };
        let plain = solve_iters(PrecondKind::None);
        let ic0 = solve_iters(PrecondKind::IncompleteCholesky);
        assert!(
            ic0 < plain,
            "IC(0) took {ic0} iterations, plain CG took {plain}"
        );
    }

    #[test]
    fn warm_start_reuses_previous_solution() {
        let l = path4_laplacian();
        let solver = LaplacianSolver::new(&l, LaplacianSolverOptions::default()).unwrap();
        let b = vec![1.0, 0.0, 0.0, -1.0];
        let (x, cold) = solver.solve_stats(&b).unwrap();
        // Re-solving the same system from its own solution is free.
        let (xw, warm) = solver.solve_from_stats(&b, &x).unwrap();
        assert!(warm.converged);
        assert!(
            warm.iterations < cold.iterations,
            "warm {} vs cold {}",
            warm.iterations,
            cold.iterations
        );
        for (a, b) in xw.iter().zip(&x) {
            assert!((a - b).abs() < 1e-8);
        }
        // A slightly perturbed Laplacian still profits from the guess
        // and lands on that system's own solution.
        let mut tri: Vec<(u32, u32, f64)> =
            l.iter().map(|(i, j, v)| (i as u32, j as u32, v)).collect();
        for (i, j) in [(1u32, 2u32), (2, 1)] {
            tri.push((i, j, -0.05));
        }
        for i in [1u32, 2] {
            tri.push((i, i, 0.05));
        }
        let l2 = CsrMatrix::from_triplets(4, 4, &tri);
        let s2 = LaplacianSolver::new(&l2, LaplacianSolverOptions::default()).unwrap();
        let (fresh, _) = s2.solve_stats(&b).unwrap();
        let (xw2, warm2) = s2.solve_from_stats(&b, &x).unwrap();
        assert!(warm2.converged);
        for (a, b) in xw2.iter().zip(&fresh) {
            assert!((a - b).abs() < 1e-7, "{a} vs {b}");
        }
    }

    #[test]
    fn warm_start_regularized_and_disconnected() {
        // Regularized path.
        let l = path4_laplacian();
        let r = LaplacianSolver::new(
            &l,
            LaplacianSolverOptions {
                kind: SolverKind::Regularized(1e-8),
                ..Default::default()
            },
        )
        .unwrap();
        let b = vec![1.0, -1.0, 1.0, -1.0];
        let x = r.solve(&b).unwrap();
        let (xw, stats) = r.solve_from_stats(&b, &x).unwrap();
        assert!(stats.converged);
        for (a, b) in xw.iter().zip(&x) {
            assert!((a - b).abs() < 1e-7);
        }
        // Grounded path with two components: the per-component re-basing
        // must keep the guess consistent in each gauge.
        let tri = vec![
            (0u32, 1u32, -2.0),
            (1, 0, -2.0),
            (0, 0, 2.0),
            (1, 1, 2.0),
            (2, 3, -0.5),
            (3, 2, -0.5),
            (2, 2, 0.5),
            (3, 3, 0.5),
        ];
        let l2 = CsrMatrix::from_triplets(4, 4, &tri);
        let s = LaplacianSolver::new(&l2, LaplacianSolverOptions::default()).unwrap();
        let b2 = vec![1.0, -1.0, 0.5, -0.5];
        let x2 = s.solve(&b2).unwrap();
        let (xw2, warm) = s.solve_from_stats(&b2, &x2).unwrap();
        assert!(warm.converged);
        assert_eq!(warm.iterations, 0, "own solution is already converged");
        for (a, b) in xw2.iter().zip(&x2) {
            assert!((a - b).abs() < 1e-9);
        }
        // Dimension checks.
        assert!(s.solve_from(&b2, &[0.0; 3]).is_err());
        assert!(s.solve_from(&[0.0; 3], &b2).is_err());
    }

    #[test]
    fn rejects_bad_inputs() {
        let l = path4_laplacian();
        assert!(LaplacianSolver::new(
            &l,
            LaplacianSolverOptions {
                kind: SolverKind::Regularized(0.0),
                ..Default::default()
            }
        )
        .is_err());
        assert!(
            LaplacianSolver::new(&CsrMatrix::zeros(2, 3), LaplacianSolverOptions::default())
                .is_err()
        );
        let s = LaplacianSolver::new(&l, LaplacianSolverOptions::default()).unwrap();
        assert!(s.solve(&[1.0]).is_err());
    }
}
