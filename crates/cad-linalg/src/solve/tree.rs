//! Spanning-tree (Vaidya) preconditioning for graph Laplacians.
//!
//! The near-linear Laplacian solvers the paper relies on (Spielman–Teng
//! and successors) are built around *combinatorial* preconditioners:
//! solve the Laplacian of a spanning subgraph exactly and let CG correct
//! the rest. The simplest member of that family — Vaidya's maximum-weight
//! spanning tree — is implemented here:
//!
//! * a tree Laplacian solves **exactly in `O(n)`** by leaf elimination
//!   (forward pass) and root-to-leaf substitution (backward pass);
//! * using the max-weight spanning tree of the graph as preconditioner
//!   bounds the PCG iteration count by the tree's *stretch*, which is
//!   small exactly where diagonal preconditioners fail: long weak
//!   filaments, chains and trees — the structures that dominate the
//!   `m = n` random graphs of the paper's scalability study (a path
//!   graph is its own spanning tree, making PCG converge in one
//!   iteration where Jacobi-CG needs `O(n)`).
//!
//! The preconditioner handles forests (one tree per connected component)
//! and acts on the *grounded* system: the grounded node of each
//! component is the tree root, and the reduced tree Laplacian (root
//! row/column removed) is what gets solved.

use crate::error::LinalgError;
use crate::solve::precond::Preconditioner;
use crate::sparse::CsrMatrix;
use crate::Result;

/// Exact `O(n)` solver for (grounded) spanning-forest Laplacians, used
/// as a PCG preconditioner.
///
/// Built from a symmetric matrix with Laplacian sign convention
/// (positive diagonal, non-positive off-diagonals). Off-tree entries are
/// ignored; tree edges are chosen greedily by descending weight
/// (Kruskal), i.e. the maximum-weight spanning forest, which minimizes
/// the stretch of the strongest couplings.
#[derive(Debug, Clone)]
pub struct TreePreconditioner {
    /// Parent of each node in the rooted forest (`usize::MAX` for roots).
    parent: Vec<usize>,
    /// Weight of the edge to the parent (0.0 for roots).
    parent_weight: Vec<f64>,
    /// Diagonal "ground leak": row sum of the tree Laplacian plus any
    /// grounding surplus, per node. For a pure tree Laplacian this is 0
    /// except at grounded rows; a strictly positive value somewhere per
    /// component keeps the system non-singular.
    leak: Vec<f64>,
    /// Topological order (parents after children): leaves first.
    elimination_order: Vec<usize>,
}

impl TreePreconditioner {
    /// Build from a grounded/regularized Laplacian-like SPD matrix.
    ///
    /// `a` must have non-positive off-diagonals (Laplacian sign) and a
    /// positive diagonal. The "leak" (diagonal surplus over the negated
    /// off-diagonal row sum) is kept, which is what makes the grounded
    /// system SPD; if a component has zero leak the constructor adds a
    /// tiny one at its root.
    pub fn from_matrix(a: &CsrMatrix) -> Result<Self> {
        let n = a.nrows();
        if a.ncols() != n {
            return Err(LinalgError::NotSquare {
                rows: n,
                cols: a.ncols(),
            });
        }
        // Collect off-diagonal edges (upper triangle), weight = −a_ij > 0.
        let mut edges: Vec<(f64, u32, u32)> = Vec::new();
        let mut offdiag_rowsum = vec![0.0f64; n];
        for (i, j, v) in a.iter() {
            if i != j {
                offdiag_rowsum[i] += v;
                if i < j && v < 0.0 {
                    edges.push((-v, i as u32, j as u32));
                }
            }
        }
        // Maximum-weight spanning forest via Kruskal.
        edges.sort_by(|x, y| y.0.partial_cmp(&x.0).expect("finite weights"));
        let mut dsu = Dsu::new(n);
        let mut adj: Vec<Vec<(u32, f64)>> = vec![Vec::new(); n];
        for (w, u, v) in edges {
            if dsu.union(u as usize, v as usize) {
                adj[u as usize].push((v, w));
                adj[v as usize].push((u, w));
            }
        }
        // Root each component and record elimination (leaves-first) order.
        let mut parent = vec![usize::MAX; n];
        let mut parent_weight = vec![0.0f64; n];
        let mut visited = vec![false; n];
        let mut order = Vec::with_capacity(n);
        let mut stack = Vec::new();
        let mut component_root = vec![usize::MAX; n];
        for root in 0..n {
            if visited[root] {
                continue;
            }
            visited[root] = true;
            stack.push(root);
            let mut comp_nodes = vec![root];
            component_root[root] = root;
            while let Some(u) = stack.pop() {
                order.push(u);
                for &(v, w) in &adj[u] {
                    let v = v as usize;
                    if !visited[v] {
                        visited[v] = true;
                        parent[v] = u;
                        parent_weight[v] = w;
                        component_root[v] = root;
                        comp_nodes.push(v);
                        stack.push(v);
                    }
                }
            }
            let _ = comp_nodes;
        }
        // order currently roots-first (DFS pre-order); reverse for
        // leaves-first elimination.
        order.reverse();

        // Leak: diagonal surplus of the ORIGINAL matrix over its own
        // off-diagonal row sum — this is where the grounding lives.
        let mut leak = vec![0.0f64; n];
        let mut comp_leak = vec![0.0f64; n];
        for i in 0..n {
            let l = a.get(i, i) + offdiag_rowsum[i]; // a_ii − Σ|a_ij|
            leak[i] = l.max(0.0);
            comp_leak[component_root[i]] += leak[i];
        }
        // Ensure non-singularity per component.
        for i in 0..n {
            if component_root[i] == i && comp_leak[i] <= 0.0 {
                leak[i] = 1e-8_f64.max(a.get(i, i) * 1e-8);
            }
        }

        Ok(TreePreconditioner {
            parent,
            parent_weight,
            leak,
            elimination_order: order,
        })
    }

    /// Exactly solve `T z = r` where `T` is the tree Laplacian plus the
    /// diagonal leak. `O(n)` by Gaussian elimination in tree order.
    fn solve(&self, r: &[f64], z: &mut [f64]) {
        let n = r.len();
        // d[i]: current diagonal; b[i]: current RHS.
        // Forward sweep (leaves to roots): eliminate each non-root node.
        let mut d: Vec<f64> = (0..n)
            .map(|i| self.leak[i] + self.parent_weight[i])
            .collect();
        // Children contributions accumulate into parents below.
        let mut b = r.to_vec();
        // First accumulate child-edge weights into parent diagonals:
        // parent diagonal gets +w for each child edge.
        for &i in &self.elimination_order {
            if self.parent[i] != usize::MAX {
                d[self.parent[i]] += self.parent_weight[i];
            }
        }
        // Eliminate: for node i with parent p and edge weight w:
        // row i: d_i z_i − w z_p = b_i  →  z_i = (b_i + w z_p)/d_i.
        // Schur complement on p: d_p −= w²/d_i; b_p += (w/d_i) b_i.
        for &i in &self.elimination_order {
            let p = self.parent[i];
            if p == usize::MAX {
                continue;
            }
            let w = self.parent_weight[i];
            let di = d[i];
            debug_assert!(di > 0.0, "tree diagonal must stay positive");
            d[p] -= w * w / di;
            b[p] += (w / di) * b[i];
        }
        // Back-substitute roots-first.
        for &i in self.elimination_order.iter().rev() {
            let p = self.parent[i];
            if p == usize::MAX {
                z[i] = b[i] / d[i];
            } else {
                z[i] = (b[i] + self.parent_weight[i] * z[p]) / d[i];
            }
        }
    }
}

impl Preconditioner for TreePreconditioner {
    fn apply(&self, r: &[f64], z: &mut [f64]) {
        self.solve(r, z);
    }
}

/// Disjoint-set union with path halving and union by size.
struct Dsu {
    parent: Vec<u32>,
    size: Vec<u32>,
}

impl Dsu {
    fn new(n: usize) -> Self {
        Dsu {
            parent: (0..n as u32).collect(),
            size: vec![1; n],
        }
    }

    fn find(&mut self, mut x: usize) -> usize {
        while self.parent[x] as usize != x {
            self.parent[x] = self.parent[self.parent[x] as usize];
            x = self.parent[x] as usize;
        }
        x
    }

    fn union(&mut self, a: usize, b: usize) -> bool {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        let (big, small) = if self.size[ra] >= self.size[rb] {
            (ra, rb)
        } else {
            (rb, ra)
        };
        self.parent[small] = big as u32;
        self.size[big] += self.size[small];
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solve::cg::{cg_solve, CgOptions};
    use crate::solve::precond::JacobiPreconditioner;

    /// Grounded Laplacian of a unit path graph (node n−1 grounded out).
    fn grounded_path(n: usize) -> CsrMatrix {
        let mut tri = Vec::new();
        for i in 0..n {
            let mut d = 0.0;
            if i > 0 {
                tri.push((i as u32, (i - 1) as u32, -1.0));
                d += 1.0;
            }
            if i + 1 < n {
                tri.push((i as u32, (i + 1) as u32, -1.0));
                d += 1.0;
            }
            if i + 1 == n {
                d += 1.0; // grounding leak: edge to the removed node
            }
            tri.push((i as u32, i as u32, d));
        }
        CsrMatrix::from_triplets(n, n, &tri)
    }

    #[test]
    fn tree_solve_is_exact_on_trees() {
        // The grounded path IS a tree: the preconditioner solves exactly.
        let a = grounded_path(50);
        let pre = TreePreconditioner::from_matrix(&a).unwrap();
        let b: Vec<f64> = (0..50).map(|i| ((i * 13) % 7) as f64 - 3.0).collect();
        let mut z = vec![0.0; 50];
        pre.apply(&b, &mut z);
        let az = a.matvec(&z).unwrap();
        for (got, want) in az.iter().zip(&b) {
            assert!((got - want).abs() < 1e-9, "{got} vs {want}");
        }
    }

    #[test]
    fn one_iteration_on_path_vs_many_for_jacobi() {
        let a = grounded_path(400);
        let b: Vec<f64> = (0..400).map(|i| (i % 11) as f64 - 5.0).collect();
        let tree = TreePreconditioner::from_matrix(&a).unwrap();
        let jac = JacobiPreconditioner::from_matrix(&a).unwrap();
        let opts = CgOptions {
            tol: 1e-10,
            max_iter: None,
            ..Default::default()
        };
        let fast = cg_solve(&a, &b, &tree, opts).unwrap();
        let slow = cg_solve(&a, &b, &jac, opts).unwrap();
        assert!(fast.converged);
        assert!(fast.iterations <= 3, "tree PCG took {}", fast.iterations);
        assert!(
            slow.iterations > 20 * fast.iterations,
            "jacobi {} vs tree {}",
            slow.iterations,
            fast.iterations
        );
    }

    #[test]
    fn works_on_graphs_with_cycles() {
        // 2D grid (has off-tree edges): PCG must still converge, faster
        // than plain diagonal scaling.
        let n = 100; // 10x10 grid, grounded at the last node
        let side = 10;
        let mut tri = Vec::new();
        let mut deg = vec![0.0f64; n];
        let add = |a: usize, b: usize, tri: &mut Vec<(u32, u32, f64)>, deg: &mut Vec<f64>| {
            tri.push((a as u32, b as u32, -1.0));
            tri.push((b as u32, a as u32, -1.0));
            deg[a] += 1.0;
            deg[b] += 1.0;
        };
        for r in 0..side {
            for c in 0..side {
                let i = r * side + c;
                if c + 1 < side {
                    add(i, i + 1, &mut tri, &mut deg);
                }
                if r + 1 < side {
                    add(i, i + side, &mut tri, &mut deg);
                }
            }
        }
        deg[n - 1] += 1.0; // ground
        for (i, d) in deg.iter().enumerate() {
            tri.push((i as u32, i as u32, *d));
        }
        let a = CsrMatrix::from_triplets(n, n, &tri);
        let b: Vec<f64> = (0..n).map(|i| (i % 5) as f64 - 2.0).collect();
        let tree = TreePreconditioner::from_matrix(&a).unwrap();
        let out = cg_solve(
            &a,
            &b,
            &tree,
            CgOptions {
                tol: 1e-10,
                max_iter: None,
                ..Default::default()
            },
        )
        .unwrap();
        assert!(out.converged);
        let az = a.matvec(&out.x).unwrap();
        for (got, want) in az.iter().zip(&b) {
            assert!((got - want).abs() < 1e-6);
        }
    }

    #[test]
    fn handles_forest_components() {
        // Two disjoint grounded paths.
        let a5 = grounded_path(5);
        let mut tri: Vec<(u32, u32, f64)> =
            a5.iter().map(|(i, j, v)| (i as u32, j as u32, v)).collect();
        for (i, j, v) in a5.iter() {
            tri.push(((i + 5) as u32, (j + 5) as u32, v));
        }
        let a = CsrMatrix::from_triplets(10, 10, &tri);
        let pre = TreePreconditioner::from_matrix(&a).unwrap();
        let b = vec![1.0; 10];
        let mut z = vec![0.0; 10];
        pre.apply(&b, &mut z);
        let az = a.matvec(&z).unwrap();
        for (got, want) in az.iter().zip(&b) {
            assert!((got - want).abs() < 1e-9);
        }
    }

    #[test]
    fn rejects_rectangular() {
        assert!(TreePreconditioner::from_matrix(&CsrMatrix::zeros(2, 3)).is_err());
    }

    #[test]
    fn isolated_nodes_get_leak() {
        // Diagonal-only matrix: every node is its own root with leak.
        let a = CsrMatrix::from_triplets(3, 3, &[(0, 0, 2.0), (1, 1, 4.0), (2, 2, 8.0)]);
        let pre = TreePreconditioner::from_matrix(&a).unwrap();
        let mut z = vec![0.0; 3];
        pre.apply(&[2.0, 4.0, 8.0], &mut z);
        assert!((z[0] - 1.0).abs() < 1e-12);
        assert!((z[1] - 1.0).abs() < 1e-12);
        assert!((z[2] - 1.0).abs() < 1e-12);
    }
}
