//! Deterministic scoped-thread fan-out for embarrassingly parallel work.
//!
//! The CAD pipeline has several index-addressed bulk computations — the
//! `k` Laplacian solves of the commute embedding, the `T` per-instance
//! oracle builds, the `T − 1` per-transition edge scorings — whose items
//! are independent and whose outputs must not depend on the degree of
//! parallelism. The helpers here stripe the index range over scoped
//! worker threads and collect results **in index order**, so:
//!
//! * the output `Vec` is identical (bit-for-bit, for float payloads)
//!   regardless of thread count, and
//! * when several items fail, the error reported is the one with the
//!   smallest index — exactly what a serial loop would have returned.
//!
//! No work-stealing, no channels, no dependencies: just
//! [`std::thread::scope`] plus one mutex-guarded slot per item. The
//! mutexes are uncontended (each slot is written once by one thread) so
//! the overhead is a pointer write per item.

use std::sync::Mutex;

/// Resolve a `threads` knob to a concrete worker count: `0` means "one
/// per available CPU", anything else is taken as-is.
pub fn effective_threads(requested: usize) -> usize {
    if requested == 0 {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    } else {
        requested
    }
}

/// Compute `f(0), f(1), …, f(n − 1)` on up to `threads` workers and
/// return the results in index order.
///
/// `threads == 0` uses one worker per available CPU; `threads <= 1` (after
/// resolution) runs serially with no thread setup at all. Errors follow
/// serial semantics: the `Err` with the smallest index wins, even if a
/// later item failed first in wall-clock terms.
pub fn par_tabulate_result<U, E, F>(
    n: usize,
    threads: usize,
    f: F,
) -> std::result::Result<Vec<U>, E>
where
    U: Send,
    E: Send,
    F: Fn(usize) -> std::result::Result<U, E> + Sync,
{
    let workers = effective_threads(threads).min(n.max(1));
    if workers <= 1 {
        return (0..n).map(f).collect();
    }

    let slots: Vec<Mutex<Option<std::result::Result<U, E>>>> =
        (0..n).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for t in 0..workers {
            let f = &f;
            let slots = &slots;
            scope.spawn(move || {
                let mut i = t;
                while i < n {
                    let out = f(i);
                    *slots[i].lock().expect("result slot poisoned") = Some(out);
                    i += workers;
                }
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("result slot poisoned")
                .expect("every index was assigned to a worker")
        })
        .collect()
}

/// Map `f` over `items` in parallel, returning results in input order.
///
/// Convenience wrapper over [`par_tabulate_result`]; `f` receives the
/// item index alongside the item so callers can label or seed per-item
/// work deterministically.
pub fn par_map_result<T, U, E, F>(
    items: &[T],
    threads: usize,
    f: F,
) -> std::result::Result<Vec<U>, E>
where
    T: Sync,
    U: Send,
    E: Send,
    F: Fn(usize, &T) -> std::result::Result<U, E> + Sync,
{
    par_tabulate_result(items.len(), threads, |i| f(i, &items[i]))
}

/// Infallible parallel map over `items`, preserving input order.
pub fn par_map<T, U, F>(items: &[T], threads: usize, f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(usize, &T) -> U + Sync,
{
    let out: std::result::Result<Vec<U>, std::convert::Infallible> =
        par_map_result(items, threads, |i, item| Ok(f(i, item)));
    match out {
        Ok(v) => v,
        Err(never) => match never {},
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tabulate_matches_serial_for_any_thread_count() {
        let serial: Vec<usize> = (0..37).map(|i| i * i).collect();
        for threads in [0, 1, 2, 3, 8, 64] {
            let par = par_tabulate_result::<_, (), _>(37, threads, |i| Ok(i * i)).unwrap();
            assert_eq!(par, serial, "threads = {threads}");
        }
    }

    #[test]
    fn empty_input() {
        let out = par_tabulate_result::<usize, (), _>(0, 4, |_| unreachable!()).unwrap();
        assert!(out.is_empty());
        let items: [u8; 0] = [];
        assert!(par_map(&items, 4, |_, _| 0usize).is_empty());
    }

    #[test]
    fn first_error_in_index_order_wins() {
        // Items 5 and 20 both fail; the index-5 error must be reported
        // regardless of which worker finishes first.
        for threads in [1, 2, 8] {
            let out = par_tabulate_result::<usize, usize, _>(30, threads, |i| {
                if i == 5 || i == 20 {
                    Err(i)
                } else {
                    Ok(i)
                }
            });
            assert_eq!(out.unwrap_err(), 5, "threads = {threads}");
        }
    }

    #[test]
    fn map_preserves_order_and_passes_index() {
        let items = ["a", "bb", "ccc"];
        let out = par_map(&items, 2, |i, s| (i, s.len()));
        assert_eq!(out, vec![(0, 1), (1, 2), (2, 3)]);
    }

    #[test]
    fn float_results_bit_identical_across_thread_counts() {
        let f = |i: usize| -> std::result::Result<f64, ()> {
            // A value whose low mantissa bits depend on the computation.
            Ok((i as f64 + 0.1).sin() * 1e9)
        };
        let one = par_tabulate_result(100, 1, f).unwrap();
        for threads in [2, 5, 16] {
            let many = par_tabulate_result(100, threads, f).unwrap();
            for (a, b) in one.iter().zip(&many) {
                assert_eq!(a.to_bits(), b.to_bits());
            }
        }
    }

    #[test]
    fn effective_threads_resolves_zero() {
        assert!(effective_threads(0) >= 1);
        assert_eq!(effective_threads(3), 3);
    }
}
