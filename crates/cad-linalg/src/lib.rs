//! Dense and sparse linear-algebra substrate for the CAD reproduction.
//!
//! The SIGMOD'14 CAD paper builds on three numerical primitives, all of
//! which are implemented here from scratch:
//!
//! * **Dense symmetric eigendecomposition** (cyclic Jacobi) — used for the
//!   exact commute-time computation via the Moore–Penrose pseudoinverse of
//!   the graph Laplacian (paper eq. 3) and for the Laplacian-eigenmap
//!   embeddings of Figure 2.
//! * **Sparse matrices (COO/CSR) and iterative solvers** (CG and
//!   preconditioned CG with Jacobi or zero-fill incomplete-Cholesky
//!   preconditioners) — used by the approximate commute-time embedding
//!   (Khoa–Chawla) as a substitute for the Spielman–Teng solver the paper
//!   calls into; see `DESIGN.md` §5.
//! * **Rademacher (±1) random projections** — the `Q` matrix of the
//!   Johnson–Lindenstrauss sketch `Q W^{1/2} B L⁺`, generated on the fly
//!   so it is never materialized.
//!
//! The crate is dependency-free (besides `rand` for seeding utilities) and
//! deliberately small-surface: everything operates on `&[f64]` slices,
//! [`dense::DenseMatrix`] (row-major) or [`sparse::CsrMatrix`].

#![warn(missing_docs)]

pub mod dense;
pub mod eig;
pub mod error;
pub mod par;
pub mod pinv;
pub mod rp;
pub mod solve;
pub mod sparse;

pub use dense::{vecops, DenseMatrix};
pub use error::LinalgError;
pub use sparse::{CooMatrix, CsrMatrix};

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, LinalgError>;
