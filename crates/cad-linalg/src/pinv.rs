//! Moore–Penrose pseudoinverse of symmetric matrices.
//!
//! Exact commute times (paper eq. 3) need `L⁺`, the pseudoinverse of the
//! graph Laplacian. Two routes are provided:
//!
//! * [`sym_pinv`] — via the Householder+QL eigendecomposition, dropping
//!   eigenvalues below a relative cutoff. Works for any symmetric matrix
//!   (including Laplacians of disconnected graphs). `O(n³)`.
//! * [`laplacian_pinv_cholesky`] — the identity
//!   `L⁺ = (L + J/n)⁻¹ − J/n` (with `J` the all-ones matrix), valid for
//!   *connected* graphs; a single dense Cholesky instead of an
//!   eigendecomposition. Also `O(n³)` but ~10× faster in practice.
//!
//! For *incremental* maintenance of `L⁺` across edge-weight changes the
//! Sherman–Morrison primitives [`sym_rank1_update`] and
//! [`pinv_edge_update`] replace the `O(n³)` rebuild with an `O(n²)`
//! rank-1 correction per changed edge (Khoa–Chawla, arXiv 1107.3894;
//! Monnig–Meyer, arXiv 1605.01091).

use crate::dense::{CholeskyFactor, DenseMatrix};
use crate::eig::sym_eigen;
use crate::error::LinalgError;
use crate::Result;

/// Pseudoinverse of a symmetric matrix via eigendecomposition.
///
/// Eigenvalues with `|λ| ≤ rel_cutoff · max|λ|` are treated as zero.
pub fn sym_pinv(a: &DenseMatrix, rel_cutoff: f64) -> Result<DenseMatrix> {
    let e = sym_eigen(a)?;
    let n = e.values.len();
    let max_abs = e.values.iter().fold(0.0f64, |m, v| m.max(v.abs()));
    let cutoff = rel_cutoff * max_abs;
    let inv_vals: Vec<f64> = e
        .values
        .iter()
        .map(|&l| if l.abs() <= cutoff { 0.0 } else { 1.0 / l })
        .collect();
    let mut out = DenseMatrix::zeros(n, n);
    for (k, &w) in inv_vals.iter().enumerate() {
        if w == 0.0 {
            continue;
        }
        for i in 0..n {
            let vik = e.vectors.get(i, k);
            if vik == 0.0 {
                continue;
            }
            let scaled = w * vik;
            for j in 0..n {
                out.add_to(i, j, scaled * e.vectors.get(j, k));
            }
        }
    }
    Ok(out)
}

/// Pseudoinverse of a *connected* graph Laplacian via dense Cholesky.
///
/// Fails (propagating [`LinalgError::FactorizationFailed`]) when the graph
/// is disconnected, because `L + J/n` is then singular; callers fall back
/// to [`sym_pinv`].
pub fn laplacian_pinv_cholesky(l: &DenseMatrix) -> Result<DenseMatrix> {
    if !l.is_square() {
        return Err(LinalgError::NotSquare {
            rows: l.nrows(),
            cols: l.ncols(),
        });
    }
    let n = l.nrows();
    if n == 0 {
        return Ok(DenseMatrix::zeros(0, 0));
    }
    let jn = 1.0 / n as f64;
    let shifted = DenseMatrix::from_fn(n, n, |i, j| l.get(i, j) + jn);
    let inv = CholeskyFactor::factor(&shifted)?.inverse()?;
    Ok(DenseMatrix::from_fn(n, n, |i, j| inv.get(i, j) - jn))
}

/// In-place symmetric rank-1 update `P ← P + scale·y·yᵀ`.
///
/// `P` must be square with `y.len() == P.nrows()`. The full matrix is
/// updated (both triangles) so callers can keep treating `P` as a plain
/// dense symmetric matrix.
pub fn sym_rank1_update(p: &mut DenseMatrix, scale: f64, y: &[f64]) -> Result<()> {
    if !p.is_square() {
        return Err(LinalgError::NotSquare {
            rows: p.nrows(),
            cols: p.ncols(),
        });
    }
    let n = p.nrows();
    if y.len() != n {
        return Err(LinalgError::DimensionMismatch {
            op: "sym_rank1_update",
            expected: (n, 1),
            found: (y.len(), 1),
        });
    }
    for i in 0..n {
        let s = scale * y[i];
        if s == 0.0 {
            continue;
        }
        let row = p.row_mut(i);
        for (pij, yj) in row.iter_mut().zip(y) {
            *pij += s * yj;
        }
    }
    Ok(())
}

/// Sherman–Morrison update of a Laplacian pseudoinverse for one
/// edge-weight change.
///
/// Changing the weight of edge `{u, v}` by `d_weight` perturbs the
/// Laplacian by `d_weight·b bᵀ` with `b = e_u − e_v`. Because `b` is
/// mean-free inside its component, the pseudoinverse of the perturbed
/// Laplacian is (Meyer's theorem 3 / Monnig–Meyer eq. 8)
///
/// ```text
/// L'⁺ = L⁺ − (d_weight / den) · y yᵀ,   y = L⁺ b,
/// den = 1 + d_weight · (y_u − y_v) = 1 + d_weight · r_eff(u, v)
/// ```
///
/// valid **only while the component partition is unchanged** — the
/// caller is responsible for detecting structural deltas. Returns
/// `Ok(true)` when applied; `Ok(false)` when `|den| ≤ den_tol` (the
/// update is singular — e.g. removing a bridge edge — and the caller
/// must rebuild from scratch). `O(n²)`.
pub fn pinv_edge_update(
    pinv: &mut DenseMatrix,
    u: usize,
    v: usize,
    d_weight: f64,
    den_tol: f64,
) -> Result<bool> {
    if !pinv.is_square() {
        return Err(LinalgError::NotSquare {
            rows: pinv.nrows(),
            cols: pinv.ncols(),
        });
    }
    let n = pinv.nrows();
    if u >= n || v >= n || u == v {
        return Err(LinalgError::InvalidInput(format!(
            "edge ({u}, {v}) invalid for a {n}-node pseudoinverse"
        )));
    }
    if d_weight == 0.0 {
        return Ok(true);
    }
    // y = L⁺(e_u − e_v): column u minus column v, read row-wise by
    // symmetry.
    let y: Vec<f64> = (0..n).map(|i| pinv.get(i, u) - pinv.get(i, v)).collect();
    let den = 1.0 + d_weight * (y[u] - y[v]);
    if !den.is_finite() || den.abs() <= den_tol {
        return Ok(false);
    }
    sym_rank1_update(pinv, -d_weight / den, &y)?;
    Ok(true)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path3_laplacian() -> DenseMatrix {
        DenseMatrix::from_rows(&[&[1.0, -1.0, 0.0], &[-1.0, 2.0, -1.0], &[0.0, -1.0, 1.0]]).unwrap()
    }

    fn check_penrose(a: &DenseMatrix, p: &DenseMatrix, tol: f64) {
        // A P A = A
        let apa = a.matmul(p).unwrap().matmul(a).unwrap();
        assert!(apa.max_abs_diff(a).unwrap() < tol, "APA != A");
        // P A P = P
        let pap = p.matmul(a).unwrap().matmul(p).unwrap();
        assert!(pap.max_abs_diff(p).unwrap() < tol, "PAP != P");
        // (AP)ᵀ = AP and (PA)ᵀ = PA
        let ap = a.matmul(p).unwrap();
        assert!(
            ap.max_abs_diff(&ap.transpose()).unwrap() < tol,
            "AP not symmetric"
        );
    }

    #[test]
    fn pinv_of_invertible_is_inverse() {
        let a = DenseMatrix::from_rows(&[&[2.0, 0.0], &[0.0, 4.0]]).unwrap();
        let p = sym_pinv(&a, 1e-12).unwrap();
        assert!((p.get(0, 0) - 0.5).abs() < 1e-12);
        assert!((p.get(1, 1) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn pinv_penrose_conditions_path_laplacian() {
        let l = path3_laplacian();
        let p = sym_pinv(&l, 1e-10).unwrap();
        check_penrose(&l, &p, 1e-9);
        // Null space preserved: P·1 = 0.
        let ones = vec![1.0; 3];
        let p1 = p.matvec(&ones).unwrap();
        assert!(p1.iter().all(|v| v.abs() < 1e-9));
    }

    #[test]
    fn cholesky_route_agrees_with_eigen_route() {
        let l = path3_laplacian();
        let p1 = sym_pinv(&l, 1e-10).unwrap();
        let p2 = laplacian_pinv_cholesky(&l).unwrap();
        assert!(p1.max_abs_diff(&p2).unwrap() < 1e-9);
    }

    #[test]
    fn cholesky_route_unreliable_on_disconnected() {
        // Two isolated nodes: L = 0, so L + J/2 is singular. Depending on
        // rounding, Cholesky either detects the zero pivot or produces a
        // wildly ill-conditioned "inverse"; either way the result is not a
        // pseudoinverse, which is why callers must fall back to sym_pinv.
        let l = DenseMatrix::zeros(2, 2);
        match laplacian_pinv_cholesky(&l) {
            Err(_) => {}
            Ok(p) => {
                let garbage = p.data().iter().any(|v| v.abs() > 1e6);
                assert!(
                    garbage,
                    "unexpectedly sane result on a singular system: {p:?}"
                );
            }
        }
        // Eigen route handles it: pinv of zero matrix is zero.
        let p = sym_pinv(&l, 1e-10).unwrap();
        assert!(p.max_abs_diff(&DenseMatrix::zeros(2, 2)).unwrap() < 1e-12);
    }

    #[test]
    fn pinv_disconnected_blockwise() {
        // Two disjoint unit edges: pinv acts blockwise.
        let l = DenseMatrix::from_rows(&[
            &[1.0, -1.0, 0.0, 0.0],
            &[-1.0, 1.0, 0.0, 0.0],
            &[0.0, 0.0, 1.0, -1.0],
            &[0.0, 0.0, -1.0, 1.0],
        ])
        .unwrap();
        let p = sym_pinv(&l, 1e-10).unwrap();
        check_penrose(&l, &p, 1e-9);
        // Cross-block entries vanish.
        assert!(p.get(0, 2).abs() < 1e-10);
        assert!(p.get(1, 3).abs() < 1e-10);
        // Effective resistance within a block: x = P (e0 - e1), r = x0 - x1 = 1.
        let b = vec![1.0, -1.0, 0.0, 0.0];
        let x = p.matvec(&b).unwrap();
        assert!((x[0] - x[1] - 1.0).abs() < 1e-9);
    }

    #[test]
    fn empty_matrix() {
        let p = laplacian_pinv_cholesky(&DenseMatrix::zeros(0, 0)).unwrap();
        assert_eq!(p.nrows(), 0);
    }

    #[test]
    fn rank1_update_matches_outer_product() {
        let mut p = DenseMatrix::identity(3);
        let y = [1.0, -2.0, 0.5];
        sym_rank1_update(&mut p, 0.25, &y).unwrap();
        for i in 0..3 {
            for j in 0..3 {
                let want = if i == j { 1.0 } else { 0.0 } + 0.25 * y[i] * y[j];
                assert!((p.get(i, j) - want).abs() < 1e-12);
            }
        }
        assert!(sym_rank1_update(&mut p, 1.0, &[1.0, 2.0]).is_err());
    }

    #[test]
    fn edge_update_tracks_fresh_pinv() {
        // Triangle graph; bump edge {0, 2} from 1.0 to 1.7 and compare
        // the Sherman–Morrison update against rebuilding from scratch.
        let mk = |w02: f64| {
            DenseMatrix::from_rows(&[
                &[1.0 + w02, -1.0, -w02],
                &[-1.0, 2.0, -1.0],
                &[-w02, -1.0, 1.0 + w02],
            ])
            .unwrap()
        };
        let mut p = laplacian_pinv_cholesky(&mk(1.0)).unwrap();
        assert!(pinv_edge_update(&mut p, 0, 2, 0.7, 1e-12).unwrap());
        let fresh = laplacian_pinv_cholesky(&mk(1.7)).unwrap();
        assert!(
            p.max_abs_diff(&fresh).unwrap() < 1e-9,
            "diff {}",
            p.max_abs_diff(&fresh).unwrap()
        );
        // A second update stacks on the first.
        assert!(pinv_edge_update(&mut p, 0, 2, -0.7, 1e-12).unwrap());
        let back = laplacian_pinv_cholesky(&mk(1.0)).unwrap();
        assert!(p.max_abs_diff(&back).unwrap() < 1e-9);
    }

    #[test]
    fn edge_update_detects_bridge_removal() {
        // Removing the only edge of a 2-node graph disconnects it:
        // den = 1 + (−w)·r_eff = 1 − 1 = 0 → degenerate, not applied.
        let l = DenseMatrix::from_rows(&[&[1.0, -1.0], &[-1.0, 1.0]]).unwrap();
        let mut p = sym_pinv(&l, 1e-10).unwrap();
        let before = p.clone();
        assert!(!pinv_edge_update(&mut p, 0, 1, -1.0, 1e-9).unwrap());
        assert!(p.max_abs_diff(&before).unwrap() == 0.0, "left untouched");
    }

    #[test]
    fn edge_update_rejects_bad_edges() {
        let mut p = DenseMatrix::identity(3);
        assert!(pinv_edge_update(&mut p, 0, 0, 1.0, 1e-12).is_err());
        assert!(pinv_edge_update(&mut p, 0, 9, 1.0, 1e-12).is_err());
        assert!(pinv_edge_update(&mut p, 1, 2, 0.0, 1e-12).unwrap());
    }
}
