//! Power iteration for the dominant eigenpair of a sparse matrix.
//!
//! The ACT baseline (Ide–Kashima, KDD'04) defines the *activity vector*
//! of a graph instance as the principal eigenvector of its (non-negative,
//! symmetric) adjacency matrix; by Perron–Frobenius it can be taken
//! entry-wise non-negative, which is how we canonicalize the sign.

use crate::dense::vecops;
use crate::error::LinalgError;
use crate::sparse::CsrMatrix;
use crate::Result;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Options for [`dominant_eigenpair`].
#[derive(Debug, Clone, Copy)]
pub struct PowerOptions {
    /// Stop when `‖x_{k+1} − x_k‖₂ < tol` (unit-norm iterates).
    pub tol: f64,
    /// Maximum iterations.
    pub max_iter: usize,
    /// RNG seed for the random start vector.
    pub seed: u64,
}

impl Default for PowerOptions {
    fn default() -> Self {
        PowerOptions {
            tol: 1e-10,
            max_iter: 1000,
            seed: 0x9E3779B97F4A7C15,
        }
    }
}

/// Dominant eigenpair `(λ, v)` of a square sparse matrix by power
/// iteration, with `v` normalized to unit norm and canonical sign
/// (non-negative entry sum).
///
/// For the zero matrix (or an all-zero dominant subspace) returns
/// `λ = 0` with a deterministic unit vector, so ACT degrades gracefully
/// on empty graph instances instead of erroring.
pub fn dominant_eigenpair(a: &CsrMatrix, opts: PowerOptions) -> Result<(f64, Vec<f64>)> {
    if a.nrows() != a.ncols() {
        return Err(LinalgError::NotSquare {
            rows: a.nrows(),
            cols: a.ncols(),
        });
    }
    let n = a.nrows();
    if n == 0 {
        return Ok((0.0, Vec::new()));
    }
    if a.nnz() == 0 {
        let mut v = vec![0.0; n];
        v[0] = 1.0;
        return Ok((0.0, v));
    }

    let mut rng = StdRng::seed_from_u64(opts.seed);
    // Non-negative start correlates with the Perron vector and avoids an
    // accidental start orthogonal to it.
    let mut x: Vec<f64> = (0..n).map(|_| rng.random::<f64>() + 0.1).collect();
    vecops::normalize(&mut x);
    let mut y = vec![0.0; n];

    // Iterate on the shifted operator A + σI with σ = ‖A‖∞. The shift
    // makes the spectrum non-negative, so the dominant eigenvalue of the
    // shifted operator is λ_max(A) + σ and — by Perron–Frobenius for the
    // irreducible non-negative matrices ACT feeds in — simple. Without
    // the shift, bipartite graphs (λ_max = −λ_min) never converge.
    let sigma = (0..n)
        .map(|i| a.row(i).1.iter().map(|v| v.abs()).sum::<f64>())
        .fold(0.0f64, f64::max);

    for _iter in 0..opts.max_iter {
        a.matvec_into(&x, &mut y)?;
        vecops::axpy(sigma, &x, &mut y);
        let ny = vecops::normalize(&mut y);
        if ny <= f64::MIN_POSITIVE {
            // x is (numerically) in the null space; matrix acts as zero here.
            return Ok((0.0, x));
        }
        let diff = vecops::dist2_sq(&x, &y).sqrt();
        std::mem::swap(&mut x, &mut y);
        if diff < opts.tol {
            break;
        }
    }
    canonicalize_sign(&mut x);
    // Rayleigh quotient of the *unshifted* matrix at the converged
    // direction. On non-convergence this is still the best estimate:
    // graph instances in the wild can have near-degenerate top
    // eigenvalues and ACT still works with the resulting direction.
    a.matvec_into(&x, &mut y)?;
    let lambda = vecops::dot(&x, &y);
    Ok((lambda, x))
}

fn canonicalize_sign(x: &mut [f64]) {
    if x.iter().sum::<f64>() < 0.0 {
        vecops::scale(-1.0, x);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_dominant_pair() {
        // [[2,1],[1,2]]: dominant λ=3, v = (1,1)/√2.
        let a =
            CsrMatrix::from_triplets(2, 2, &[(0, 0, 2.0), (0, 1, 1.0), (1, 0, 1.0), (1, 1, 2.0)]);
        let (l, v) = dominant_eigenpair(&a, PowerOptions::default()).unwrap();
        assert!((l - 3.0).abs() < 1e-8);
        assert!((v[0] - v[1]).abs() < 1e-6);
        assert!(v[0] > 0.0);
    }

    #[test]
    fn star_graph_perron_vector() {
        // Star K_{1,3}: adjacency eigenvalue √3, center has the largest entry.
        let mut tri = Vec::new();
        for leaf in 1..4u32 {
            tri.push((0, leaf, 1.0));
            tri.push((leaf, 0, 1.0));
        }
        let a = CsrMatrix::from_triplets(4, 4, &tri);
        let (l, v) = dominant_eigenpair(&a, PowerOptions::default()).unwrap();
        assert!((l - 3f64.sqrt()).abs() < 1e-8);
        assert!(v[0] > v[1] && v[1] > 0.0);
        assert!((v[1] - v[2]).abs() < 1e-8 && (v[2] - v[3]).abs() < 1e-8);
    }

    #[test]
    fn zero_matrix_graceful() {
        let a = CsrMatrix::zeros(3, 3);
        let (l, v) = dominant_eigenpair(&a, PowerOptions::default()).unwrap();
        assert_eq!(l, 0.0);
        assert_eq!(v.len(), 3);
        assert!((vecops::norm2(&v) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn bipartite_tie_resolved_by_shift() {
        // [[0,2],[2,0]] has eigenvalues ±2; the σ-shift makes the iteration
        // converge to the Perron pair (+2, (1,1)/√2).
        let a = CsrMatrix::from_triplets(2, 2, &[(0, 1, 2.0), (1, 0, 2.0)]);
        let (l, v) = dominant_eigenpair(&a, PowerOptions::default()).unwrap();
        assert!((l - 2.0).abs() < 1e-6);
        assert!((v[0] - v[1]).abs() < 1e-6);
        assert!(v[0] > 0.0);
    }

    #[test]
    fn rejects_rectangular() {
        let a = CsrMatrix::zeros(2, 3);
        assert!(dominant_eigenpair(&a, PowerOptions::default()).is_err());
    }

    #[test]
    fn empty_matrix() {
        let a = CsrMatrix::zeros(0, 0);
        let (l, v) = dominant_eigenpair(&a, PowerOptions::default()).unwrap();
        assert_eq!(l, 0.0);
        assert!(v.is_empty());
    }

    #[test]
    fn deterministic_given_seed() {
        let a =
            CsrMatrix::from_triplets(3, 3, &[(0, 1, 1.0), (1, 0, 1.0), (1, 2, 1.0), (2, 1, 1.0)]);
        let r1 = dominant_eigenpair(&a, PowerOptions::default()).unwrap();
        let r2 = dominant_eigenpair(&a, PowerOptions::default()).unwrap();
        assert_eq!(r1.0.to_bits(), r2.0.to_bits());
        assert_eq!(r1.1, r2.1);
    }
}
