//! Symmetric eigensolvers.
//!
//! * [`jacobi::jacobi_eigen`] — cyclic Jacobi rotations for dense
//!   symmetric matrices. `O(n³)` per sweep but unconditionally stable and
//!   accurate to machine precision; exactly what the exact commute-time
//!   path and the Figure 2 eigenmaps need on small graphs.
//! * [`power::dominant_eigenpair`] — power iteration on sparse matrices,
//!   used by the ACT baseline (Ide–Kashima activity vectors need only the
//!   principal eigenvector of each adjacency matrix).
//! * [`lanczos::lanczos_extremal`] — Lanczos with full
//!   reorthogonalization over a [`tridiag::tridiagonal_eigen`] kernel,
//!   for extremal eigenpairs of large sparse operators (scalable
//!   Fiedler/eigenmap computations).

pub mod householder;
pub mod jacobi;
pub mod lanczos;
pub mod power;
pub mod tridiag;

pub use householder::{householder_tridiagonalize, sym_eigen};
pub use jacobi::{jacobi_eigen, EigenDecomposition, JacobiOptions};
pub use lanczos::{lanczos_extremal, LanczosOptions, Which};
pub use power::{dominant_eigenpair, PowerOptions};
pub use tridiag::tridiagonal_eigen;
