//! Householder reduction of a dense symmetric matrix to tridiagonal
//! form, and the fast eigensolver built on it.
//!
//! The cyclic-Jacobi solver is simple and robust but needs several
//! `O(n³)` sweeps; the classic two-stage route — Householder
//! tridiagonalization (`4n³/3` flops, once) followed by implicit-shift
//! QL on the tridiagonal ([`crate::eig::tridiag`]) — is ~5–10× faster at
//! the sizes the exact commute-time engine targets (the paper's GMM
//! benchmark is n = 2000). [`sym_eigen`] is the drop-in fast variant of
//! [`crate::eig::jacobi_eigen`].

use crate::dense::DenseMatrix;
use crate::eig::jacobi::EigenDecomposition;
use crate::eig::tridiag::tridiagonal_eigen;
use crate::error::LinalgError;
use crate::Result;

/// Householder tridiagonalization `A = Q T Qᵀ`.
///
/// Returns `(diag, offdiag, q)` with `T` given by its main diagonal and
/// subdiagonal and `Q` orthogonal. The input must be symmetric.
// The tred2 loops index several buffers at once with shifting sub-ranges;
// keeping the textbook index form beats iterator chains here.
#[allow(clippy::needless_range_loop)]
pub fn householder_tridiagonalize(a: &DenseMatrix) -> Result<(Vec<f64>, Vec<f64>, DenseMatrix)> {
    if !a.is_square() {
        return Err(LinalgError::NotSquare {
            rows: a.nrows(),
            cols: a.ncols(),
        });
    }
    if !a.is_symmetric(1e-8) {
        return Err(LinalgError::InvalidInput(
            "householder tridiagonalization requires a symmetric matrix".into(),
        ));
    }
    let n = a.nrows();
    let mut m = a.clone(); // Working copy; lower triangle holds reflectors.
    let mut diag = vec![0.0; n];
    let mut off = vec![0.0; n.saturating_sub(1)];

    // EISPACK `tred2`-style reduction, processing columns from the end.
    for i in (1..n).rev() {
        let l = i - 1;
        let mut h = 0.0f64;
        if l > 0 {
            let mut scale = 0.0f64;
            for k in 0..=l {
                scale += m.get(i, k).abs();
            }
            if scale == 0.0 {
                off[l] = m.get(i, l);
            } else {
                for k in 0..=l {
                    let v = m.get(i, k) / scale;
                    m.set(i, k, v);
                    h += v * v;
                }
                let mut f = m.get(i, l);
                let g = if f >= 0.0 { -h.sqrt() } else { h.sqrt() };
                off[l] = scale * g;
                h -= f * g;
                m.set(i, l, f - g);
                let mut f_acc = 0.0f64;
                // e (stored in a scratch) = A u / h, then the rank-2 update.
                let mut e_scratch = vec![0.0f64; l + 1];
                for j in 0..=l {
                    m.set(j, i, m.get(i, j) / h);
                    let mut g2 = 0.0f64;
                    for k in 0..=j {
                        g2 += m.get(j, k) * m.get(i, k);
                    }
                    for k in (j + 1)..=l {
                        g2 += m.get(k, j) * m.get(i, k);
                    }
                    e_scratch[j] = g2 / h;
                    f_acc += e_scratch[j] * m.get(i, j);
                }
                let hh = f_acc / (h + h);
                for j in 0..=l {
                    f = m.get(i, j);
                    let g2 = e_scratch[j] - hh * f;
                    e_scratch[j] = g2;
                    for k in 0..=j {
                        let v = m.get(j, k) - f * e_scratch[k] - g2 * m.get(i, k);
                        m.set(j, k, v);
                    }
                }
            }
        } else {
            off[l] = m.get(i, l);
        }
        diag[i] = h;
    }

    // Accumulate Q (tred2 back-accumulation).
    diag[0] = 0.0;
    let mut q = DenseMatrix::identity(n);
    for i in 0..n {
        let l = i; // columns 0..i are finished
        if diag[i] != 0.0 {
            for j in 0..l {
                let mut g = 0.0f64;
                for k in 0..l {
                    g += m.get(i, k) * q.get(k, j);
                }
                for k in 0..l {
                    let v = q.get(k, j) - g * m.get(k, i);
                    q.set(k, j, v);
                }
            }
        }
        diag[i] = m.get(i, i);
        q.set(i, i, 1.0);
        for j in 0..l {
            q.set(i, j, 0.0);
            q.set(j, i, 0.0);
        }
    }
    // After accumulation, recompute the diagonal of T from the working
    // copy (tred2 stores it in `d` during the loop above).
    Ok((diag, off, q))
}

/// Fast symmetric eigendecomposition: Householder + implicit-shift QL.
///
/// Same contract as [`crate::eig::jacobi_eigen`] (ascending eigenvalues,
/// orthonormal columns), several times faster for `n ≳ 100`.
pub fn sym_eigen(a: &DenseMatrix) -> Result<EigenDecomposition> {
    let n = a.nrows();
    if n == 0 {
        return Ok(EigenDecomposition {
            values: Vec::new(),
            vectors: DenseMatrix::zeros(0, 0),
        });
    }
    let (diag, off, q) = householder_tridiagonalize(a)?;
    let (values, z) = tridiagonal_eigen(&diag, &off)?;
    // Eigenvectors of A are Q Z.
    let vectors = q.matmul(&z)?;
    Ok(EigenDecomposition { values, vectors })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dense::vecops;
    use crate::eig::{jacobi_eigen, JacobiOptions};

    fn random_symmetric(n: usize, seed: u64) -> DenseMatrix {
        // Deterministic pseudo-random symmetric matrix.
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64 - 0.5
        };
        let mut m = DenseMatrix::zeros(n, n);
        for i in 0..n {
            for j in 0..=i {
                let v = next() * 4.0;
                m.set(i, j, v);
                m.set(j, i, v);
            }
        }
        m
    }

    fn check_decomposition(a: &DenseMatrix, tol: f64) {
        let n = a.nrows();
        let e = sym_eigen(a).unwrap();
        // Ascending.
        assert!(e.values.windows(2).all(|w| w[0] <= w[1] + 1e-12));
        // A v = λ v.
        for j in 0..n {
            let v = e.vectors.col(j);
            let av = a.matvec(&v).unwrap();
            for i in 0..n {
                assert!(
                    (av[i] - e.values[j] * v[i]).abs() < tol,
                    "residual ({i},{j}): {} vs {}",
                    av[i],
                    e.values[j] * v[i]
                );
            }
        }
        // Orthonormal columns.
        for i in 0..n {
            for j in 0..n {
                let d = vecops::dot(&e.vectors.col(i), &e.vectors.col(j));
                let want = if i == j { 1.0 } else { 0.0 };
                assert!((d - want).abs() < 1e-8, "q{i}·q{j} = {d}");
            }
        }
    }

    #[test]
    fn matches_jacobi_on_random_matrices() {
        for seed in 1..5u64 {
            let a = random_symmetric(12, seed);
            let fast = sym_eigen(&a).unwrap();
            let reference = jacobi_eigen(&a, JacobiOptions::default()).unwrap();
            for (x, y) in fast.values.iter().zip(&reference.values) {
                assert!((x - y).abs() < 1e-8, "{x} vs {y}");
            }
        }
    }

    #[test]
    fn full_contract_on_various_inputs() {
        check_decomposition(&random_symmetric(20, 42), 1e-7);
        check_decomposition(&DenseMatrix::identity(5), 1e-10);
        check_decomposition(&DenseMatrix::zeros(4, 4), 1e-10);
        // Laplacian of a star.
        let mut star = DenseMatrix::zeros(5, 5);
        star.set(0, 0, 4.0);
        for i in 1..5 {
            star.set(i, i, 1.0);
            star.set(0, i, -1.0);
            star.set(i, 0, -1.0);
        }
        check_decomposition(&star, 1e-8);
    }

    #[test]
    fn rejects_asymmetric() {
        let a = DenseMatrix::from_rows(&[&[1.0, 2.0], &[0.0, 1.0]]).unwrap();
        assert!(sym_eigen(&a).is_err());
    }

    #[test]
    fn trivial_sizes() {
        let e = sym_eigen(&DenseMatrix::zeros(0, 0)).unwrap();
        assert!(e.values.is_empty());
        let one = DenseMatrix::from_rows(&[&[3.5]]).unwrap();
        let e = sym_eigen(&one).unwrap();
        assert_eq!(e.values, vec![3.5]);
    }
}
