//! Lanczos iteration for extremal eigenpairs of sparse symmetric
//! operators.
//!
//! Builds a Krylov basis with *full reorthogonalization* (graphs here
//! are small enough in the Krylov dimension that the classic loss-of-
//! orthogonality pathology is cheaper to prevent than to repair), then
//! solves the projected tridiagonal problem with
//! [`crate::eig::tridiag::tridiagonal_eigen`] and maps the Ritz pairs
//! back.
//!
//! Used for scalable Laplacian eigenmaps (Figure 2-style visualization
//! beyond the dense-Jacobi regime): pass the Laplacian, deflate the
//! constant null vector, and ask for the smallest pairs.

use crate::dense::vecops;
use crate::eig::tridiag::tridiagonal_eigen;
use crate::error::LinalgError;
use crate::solve::LinOp;
use crate::Result;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Which end of the spectrum to extract.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Which {
    /// The algebraically smallest eigenvalues.
    Smallest,
    /// The algebraically largest eigenvalues.
    Largest,
}

/// Options for [`lanczos_extremal`].
#[derive(Debug, Clone, Copy)]
pub struct LanczosOptions {
    /// Krylov subspace cap; `None` picks `min(n, max(4k + 30, 60))`.
    pub max_dim: Option<usize>,
    /// Relative Ritz-residual target.
    pub tol: f64,
    /// Seed for the random start vector.
    pub seed: u64,
}

impl Default for LanczosOptions {
    fn default() -> Self {
        LanczosOptions {
            max_dim: None,
            tol: 1e-8,
            seed: 0x1A2C05,
        }
    }
}

/// Compute `k` extremal eigenpairs of a symmetric operator, optionally
/// deflating (orthogonalizing against) a set of known eigenvectors —
/// e.g. a Laplacian's constant null vector.
///
/// Returns `(values, vectors)` ordered from the requested end inward
/// (for [`Which::Smallest`]: ascending).
pub fn lanczos_extremal(
    op: &dyn LinOp,
    k: usize,
    which: Which,
    deflate: &[&[f64]],
    opts: LanczosOptions,
) -> Result<(Vec<f64>, Vec<Vec<f64>>)> {
    let n = op.dim();
    if k == 0 || k > n.saturating_sub(deflate.len()) {
        return Err(LinalgError::InvalidInput(format!(
            "requested {k} pairs from an operator of dimension {n} with {} deflated",
            deflate.len()
        )));
    }
    // Normalized copies of the deflation set.
    let deflate: Vec<Vec<f64>> = deflate
        .iter()
        .map(|v| {
            let mut v = v.to_vec();
            vecops::normalize(&mut v);
            v
        })
        .collect();
    let m_cap = opts.max_dim.unwrap_or_else(|| n.min((4 * k + 30).max(60)));

    let mut rng = StdRng::seed_from_u64(opts.seed);
    let mut basis: Vec<Vec<f64>> = Vec::with_capacity(m_cap);
    let mut alphas: Vec<f64> = Vec::with_capacity(m_cap);
    let mut betas: Vec<f64> = Vec::with_capacity(m_cap);

    // Start vector, orthogonal to the deflation set.
    let mut q: Vec<f64> = (0..n).map(|_| rng.random::<f64>() - 0.5).collect();
    orthogonalize(&mut q, &deflate);
    if vecops::normalize(&mut q) <= f64::MIN_POSITIVE {
        return Err(LinalgError::InvalidInput(
            "start vector vanished after deflation; deflation set spans the space?".into(),
        ));
    }

    let mut w = vec![0.0; n];
    while basis.len() < m_cap {
        basis.push(q.clone());
        op.apply(&q, &mut w);
        let alpha = vecops::dot(&q, &w);
        alphas.push(alpha);
        // w ← w − α q − β q_prev, then full reorthogonalization.
        vecops::axpy(-alpha, &q, &mut w);
        if basis.len() >= 2 {
            let beta_prev = betas[basis.len() - 2];
            vecops::axpy(-beta_prev, &basis[basis.len() - 2], &mut w);
        }
        orthogonalize(&mut w, &deflate);
        for b in &basis {
            let d = vecops::dot(b, &w);
            vecops::axpy(-d, b, &mut w);
        }
        let beta = vecops::norm2(&w);
        betas.push(beta);
        if beta <= 1e-13 {
            break; // Invariant subspace found.
        }
        q = w.iter().map(|x| x / beta).collect();

        // Convergence test every few steps once we have enough pairs.
        let m = basis.len();
        if m >= 2 * k && m.is_multiple_of(5) {
            if let Some(true) = converged(&alphas, &betas, k, which, opts.tol) {
                break;
            }
        }
    }

    // Solve the projected problem.
    let m = basis.len();
    let (vals, z) = tridiagonal_eigen(&alphas, &betas[..m - 1])?;
    let picks: Vec<usize> = match which {
        Which::Smallest => (0..k).collect(),
        Which::Largest => (m - k..m).rev().collect(),
    };
    let mut out_vals = Vec::with_capacity(k);
    let mut out_vecs = Vec::with_capacity(k);
    for &j in &picks {
        out_vals.push(vals[j]);
        let mut v = vec![0.0; n];
        for (i, b) in basis.iter().enumerate() {
            vecops::axpy(z.get(i, j), b, &mut v);
        }
        vecops::normalize(&mut v);
        out_vecs.push(v);
    }
    Ok((out_vals, out_vecs))
}

/// Project `v` orthogonal to every vector in `set` (assumed unit norm).
fn orthogonalize(v: &mut [f64], set: &[Vec<f64>]) {
    for s in set {
        let d = vecops::dot(s, v);
        vecops::axpy(-d, s, v);
    }
}

/// Ritz-residual convergence test on the projected problem: for Ritz
/// pair `(θ_j, z_j)` the residual is `β_m · |z_j[m−1]|`.
fn converged(alphas: &[f64], betas: &[f64], k: usize, which: Which, tol: f64) -> Option<bool> {
    let m = alphas.len();
    let (vals, z) = tridiagonal_eigen(alphas, &betas[..m - 1]).ok()?;
    let beta_m = betas[m - 1];
    let scale = vals.iter().fold(0.0f64, |a, v| a.max(v.abs())).max(1e-30);
    let idx: Vec<usize> = match which {
        Which::Smallest => (0..k).collect(),
        Which::Largest => (m - k..m).collect(),
    };
    Some(
        idx.iter()
            .all(|&j| beta_m * z.get(m - 1, j).abs() <= tol * scale),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eig::{jacobi_eigen, JacobiOptions};
    use crate::sparse::CsrMatrix;

    fn path_laplacian(n: usize) -> CsrMatrix {
        let mut tri = Vec::new();
        for i in 0..n - 1 {
            tri.push((i as u32, (i + 1) as u32, -1.0));
            tri.push(((i + 1) as u32, i as u32, -1.0));
            tri.push((i as u32, i as u32, 1.0));
            tri.push(((i + 1) as u32, (i + 1) as u32, 1.0));
        }
        CsrMatrix::from_triplets(n, n, &tri)
    }

    #[test]
    fn smallest_laplacian_pairs_with_deflation() {
        let n = 40;
        let l = path_laplacian(n);
        let ones = vec![1.0; n];
        let (vals, vecs) =
            lanczos_extremal(&l, 3, Which::Smallest, &[&ones], LanczosOptions::default()).unwrap();
        // Closed form: λ_j = 4 sin²(π j / 2n), j = 1, 2, 3 (null deflated).
        for (j, v) in vals.iter().enumerate() {
            let want = 4.0
                * (std::f64::consts::PI * (j + 1) as f64 / (2.0 * n as f64))
                    .sin()
                    .powi(2);
            assert!((v - want).abs() < 1e-7, "λ_{} = {v}, want {want}", j + 1);
        }
        // Residual check A v ≈ λ v.
        for (v, &lam) in vecs.iter().zip(&vals) {
            let av = l.matvec(v).unwrap();
            for i in 0..n {
                assert!((av[i] - lam * v[i]).abs() < 1e-6);
            }
        }
        // Fiedler vector is monotone on a path.
        let fiedler = &vecs[0];
        let increasing = fiedler.windows(2).all(|w| w[1] >= w[0] - 1e-9);
        let decreasing = fiedler.windows(2).all(|w| w[1] <= w[0] + 1e-9);
        assert!(
            increasing || decreasing,
            "Fiedler vector must be monotone on a path"
        );
    }

    #[test]
    fn largest_pairs_match_dense() {
        let n = 25;
        let l = path_laplacian(n);
        let (vals, _) =
            lanczos_extremal(&l, 2, Which::Largest, &[], LanczosOptions::default()).unwrap();
        let dense = jacobi_eigen(&l.to_dense(), JacobiOptions::default()).unwrap();
        assert!((vals[0] - dense.values[n - 1]).abs() < 1e-8);
        assert!((vals[1] - dense.values[n - 2]).abs() < 1e-8);
        assert!(vals[0] >= vals[1]);
    }

    #[test]
    fn small_operator_exact() {
        // Krylov dim reaches n: Lanczos is exact.
        let a = CsrMatrix::from_triplets(
            3,
            3,
            &[
                (0, 0, 2.0),
                (0, 1, 1.0),
                (1, 0, 1.0),
                (1, 1, 2.0),
                (2, 2, 5.0),
            ],
        );
        let (vals, _) =
            lanczos_extremal(&a, 3, Which::Smallest, &[], LanczosOptions::default()).unwrap();
        assert!((vals[0] - 1.0).abs() < 1e-10);
        assert!((vals[1] - 3.0).abs() < 1e-10);
        assert!((vals[2] - 5.0).abs() < 1e-10);
    }

    #[test]
    fn rejects_bad_k() {
        let a = path_laplacian(5);
        assert!(lanczos_extremal(&a, 0, Which::Smallest, &[], LanczosOptions::default()).is_err());
        assert!(lanczos_extremal(&a, 6, Which::Smallest, &[], LanczosOptions::default()).is_err());
    }

    #[test]
    fn deterministic_per_seed() {
        let a = path_laplacian(20);
        let r1 = lanczos_extremal(&a, 2, Which::Largest, &[], LanczosOptions::default()).unwrap();
        let r2 = lanczos_extremal(&a, 2, Which::Largest, &[], LanczosOptions::default()).unwrap();
        assert_eq!(r1.0, r2.0);
    }
}
