//! Symmetric tridiagonal eigensolver (implicit-shift QL).
//!
//! The inner kernel of the Lanczos path: once a sparse symmetric
//! operator has been reduced to a small tridiagonal matrix `T`, this
//! solves `T = Z Λ Zᵀ` exactly. Classic EISPACK `tql2` algorithm —
//! `O(m²)` per eigenvalue with guaranteed convergence for symmetric
//! tridiagonals.

use crate::dense::DenseMatrix;
use crate::error::LinalgError;
use crate::Result;

/// Eigendecomposition of the symmetric tridiagonal matrix with main
/// diagonal `diag` and subdiagonal `offdiag` (`offdiag.len() ==
/// diag.len() − 1`).
///
/// Returns eigenvalues ascending and the orthonormal eigenvector matrix
/// (column `j` pairs with value `j`).
pub fn tridiagonal_eigen(diag: &[f64], offdiag: &[f64]) -> Result<(Vec<f64>, DenseMatrix)> {
    let n = diag.len();
    if n == 0 {
        return Ok((Vec::new(), DenseMatrix::zeros(0, 0)));
    }
    if offdiag.len() + 1 != n {
        return Err(LinalgError::InvalidInput(format!(
            "offdiagonal length {} must be {} for order {n}",
            offdiag.len(),
            n - 1
        )));
    }
    let mut d = diag.to_vec();
    // e is padded so e[n-1] = 0 (tql2 convention).
    let mut e = vec![0.0; n];
    e[..n - 1].copy_from_slice(offdiag);
    let mut z = DenseMatrix::identity(n);

    for l in 0..n {
        let mut iter = 0;
        loop {
            // Find a small off-diagonal to split at.
            let mut m = l;
            while m + 1 < n {
                let dd = d[m].abs() + d[m + 1].abs();
                if e[m].abs() <= f64::EPSILON * dd {
                    break;
                }
                m += 1;
            }
            if m == l {
                break;
            }
            iter += 1;
            if iter > 50 {
                return Err(LinalgError::NotConverged {
                    what: "tridiagonal_eigen",
                    iterations: iter,
                    residual: e[l].abs(),
                });
            }
            // Form the implicit shift.
            let mut g = (d[l + 1] - d[l]) / (2.0 * e[l]);
            let mut r = g.hypot(1.0);
            g = d[m] - d[l] + e[l] / (g + r.copysign(g));
            let (mut s, mut c) = (1.0f64, 1.0f64);
            let mut p = 0.0f64;
            for i in (l..m).rev() {
                let mut f = s * e[i];
                let b = c * e[i];
                r = f.hypot(g);
                e[i + 1] = r;
                if r == 0.0 {
                    d[i + 1] -= p;
                    e[m] = 0.0;
                    break;
                }
                s = f / r;
                c = g / r;
                g = d[i + 1] - p;
                r = (d[i] - g) * s + 2.0 * c * b;
                p = s * r;
                d[i + 1] = g + p;
                g = c * r - b;
                // Accumulate eigenvectors.
                for k in 0..n {
                    f = z.get(k, i + 1);
                    let zki = z.get(k, i);
                    z.set(k, i + 1, s * zki + c * f);
                    z.set(k, i, c * zki - s * f);
                }
            }
            if r == 0.0 && m > l + 1 {
                continue;
            }
            d[l] -= p;
            e[l] = g;
            e[m] = 0.0;
        }
    }

    // Sort ascending, permuting eigenvector columns.
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &b| d[a].partial_cmp(&d[b]).expect("finite eigenvalues"));
    let values: Vec<f64> = order.iter().map(|&i| d[i]).collect();
    let vectors = DenseMatrix::from_fn(n, n, |i, j| z.get(i, order[j]));
    Ok((values, vectors))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eig::{jacobi_eigen, JacobiOptions};

    fn check_against_jacobi(diag: &[f64], off: &[f64]) {
        let n = diag.len();
        let dense = DenseMatrix::from_fn(n, n, |i, j| {
            if i == j {
                diag[i]
            } else if i.abs_diff(j) == 1 {
                off[i.min(j)]
            } else {
                0.0
            }
        });
        let (vals, vecs) = tridiagonal_eigen(diag, off).unwrap();
        let reference = jacobi_eigen(&dense, JacobiOptions::default()).unwrap();
        for (a, b) in vals.iter().zip(&reference.values) {
            assert!((a - b).abs() < 1e-9, "{a} vs {b}");
        }
        // Verify A v = λ v for each pair.
        for (j, &lambda) in vals.iter().enumerate() {
            let v = vecs.col(j);
            let av = dense.matvec(&v).unwrap();
            for (i, (&avi, &vi)) in av.iter().zip(&v).enumerate() {
                assert!((avi - lambda * vi).abs() < 1e-8, "residual at ({i},{j})");
            }
        }
    }

    #[test]
    fn small_known_matrix() {
        // [[2,1],[1,2]] → 1, 3.
        let (vals, _) = tridiagonal_eigen(&[2.0, 2.0], &[1.0]).unwrap();
        assert!((vals[0] - 1.0).abs() < 1e-12);
        assert!((vals[1] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn path_laplacian_closed_form() {
        // Path Laplacian eigenvalues: 4 sin²(π j / 2n), j = 0..n−1.
        let n = 9;
        let diag: Vec<f64> = (0..n)
            .map(|i| if i == 0 || i == n - 1 { 1.0 } else { 2.0 })
            .collect();
        let off = vec![-1.0; n - 1];
        let (vals, _) = tridiagonal_eigen(&diag, &off).unwrap();
        for (j, v) in vals.iter().enumerate() {
            let want = 4.0
                * (std::f64::consts::PI * j as f64 / (2.0 * n as f64))
                    .sin()
                    .powi(2);
            assert!((v - want).abs() < 1e-9, "λ_{j} = {v}, want {want}");
        }
    }

    #[test]
    fn agrees_with_jacobi_on_random_tridiagonals() {
        check_against_jacobi(&[1.0, -2.0, 3.0, 0.5, 2.0], &[0.7, -1.3, 0.2, 2.1]);
        check_against_jacobi(&[5.0, 5.0, 5.0], &[1e-3, 4.0]);
        check_against_jacobi(&[1.0], &[]);
    }

    #[test]
    fn handles_decoupled_blocks() {
        // A zero off-diagonal splits the problem.
        check_against_jacobi(&[1.0, 3.0, 2.0, 4.0], &[0.5, 0.0, 0.25]);
    }

    #[test]
    fn validates_lengths() {
        assert!(tridiagonal_eigen(&[1.0, 2.0], &[]).is_err());
        assert!(tridiagonal_eigen(&[], &[]).is_ok());
    }
}
