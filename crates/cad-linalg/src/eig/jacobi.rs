//! Cyclic Jacobi eigendecomposition for dense symmetric matrices.

use crate::dense::DenseMatrix;
use crate::error::LinalgError;
use crate::Result;

/// Options for the Jacobi sweep loop.
#[derive(Debug, Clone, Copy)]
pub struct JacobiOptions {
    /// Stop when the off-diagonal Frobenius norm drops below
    /// `tol · ‖A‖_F`.
    pub tol: f64,
    /// Maximum number of full sweeps before giving up.
    pub max_sweeps: usize,
}

impl Default for JacobiOptions {
    fn default() -> Self {
        JacobiOptions {
            tol: 1e-12,
            max_sweeps: 100,
        }
    }
}

/// Result of a symmetric eigendecomposition `A = V diag(λ) Vᵀ`.
#[derive(Debug, Clone)]
pub struct EigenDecomposition {
    /// Eigenvalues sorted ascending.
    pub values: Vec<f64>,
    /// Orthonormal eigenvectors; column `j` pairs with `values[j]`.
    pub vectors: DenseMatrix,
}

impl EigenDecomposition {
    /// Eigenvector for `values[j]` as an owned vector.
    pub fn vector(&self, j: usize) -> Vec<f64> {
        self.vectors.col(j)
    }
}

/// Eigendecomposition of a symmetric matrix by the cyclic Jacobi method.
///
/// The input must be symmetric to `1e-8` (checked); eigenvalues are
/// returned in ascending order with matching orthonormal eigenvectors.
pub fn jacobi_eigen(a: &DenseMatrix, opts: JacobiOptions) -> Result<EigenDecomposition> {
    if !a.is_square() {
        return Err(LinalgError::NotSquare {
            rows: a.nrows(),
            cols: a.ncols(),
        });
    }
    if !a.is_symmetric(1e-8) {
        return Err(LinalgError::InvalidInput(
            "jacobi_eigen requires a symmetric matrix".into(),
        ));
    }
    let n = a.nrows();
    let mut m = a.clone();
    let mut v = DenseMatrix::identity(n);
    if n <= 1 {
        return Ok(EigenDecomposition {
            values: (0..n).map(|i| m.get(i, i)).collect(),
            vectors: v,
        });
    }

    let frob: f64 = m.data().iter().map(|x| x * x).sum::<f64>().sqrt();
    let threshold = (opts.tol * frob).max(f64::MIN_POSITIVE);

    for _sweep in 0..opts.max_sweeps {
        let off: f64 = off_diagonal_norm(&m);
        if off <= threshold {
            break;
        }
        for p in 0..n - 1 {
            for q in p + 1..n {
                let apq = m.get(p, q);
                if apq.abs() <= threshold / (n as f64) {
                    continue;
                }
                let app = m.get(p, p);
                let aqq = m.get(q, q);
                // Classic stable rotation computation.
                let theta = (aqq - app) / (2.0 * apq);
                let t = {
                    let s = if theta >= 0.0 { 1.0 } else { -1.0 };
                    s / (theta.abs() + (theta * theta + 1.0).sqrt())
                };
                let c = 1.0 / (t * t + 1.0).sqrt();
                let s = t * c;

                // Update rows/columns p and q of the symmetric matrix.
                for k in 0..n {
                    if k != p && k != q {
                        let akp = m.get(k, p);
                        let akq = m.get(k, q);
                        let new_kp = c * akp - s * akq;
                        let new_kq = s * akp + c * akq;
                        m.set(k, p, new_kp);
                        m.set(p, k, new_kp);
                        m.set(k, q, new_kq);
                        m.set(q, k, new_kq);
                    }
                }
                let new_pp = app - t * apq;
                let new_qq = aqq + t * apq;
                m.set(p, p, new_pp);
                m.set(q, q, new_qq);
                m.set(p, q, 0.0);
                m.set(q, p, 0.0);

                // Accumulate eigenvectors.
                for k in 0..n {
                    let vkp = v.get(k, p);
                    let vkq = v.get(k, q);
                    v.set(k, p, c * vkp - s * vkq);
                    v.set(k, q, s * vkp + c * vkq);
                }
            }
        }
    }

    let final_off = off_diagonal_norm(&m);
    if final_off > threshold.max(1e-9 * frob.max(1.0)) {
        return Err(LinalgError::NotConverged {
            what: "jacobi_eigen",
            iterations: opts.max_sweeps,
            residual: final_off,
        });
    }

    // Sort ascending by eigenvalue.
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&i, &j| {
        m.get(i, i)
            .partial_cmp(&m.get(j, j))
            .expect("finite eigenvalues")
    });
    let values: Vec<f64> = order.iter().map(|&i| m.get(i, i)).collect();
    let vectors = DenseMatrix::from_fn(n, n, |i, j| v.get(i, order[j]));
    Ok(EigenDecomposition { values, vectors })
}

fn off_diagonal_norm(m: &DenseMatrix) -> f64 {
    let n = m.nrows();
    let mut s = 0.0;
    for i in 0..n {
        for j in (i + 1)..n {
            let v = m.get(i, j);
            s += 2.0 * v * v;
        }
    }
    s.sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dense::vecops;

    fn reconstruct(e: &EigenDecomposition) -> DenseMatrix {
        let n = e.values.len();
        DenseMatrix::from_fn(n, n, |i, j| {
            (0..n)
                .map(|k| e.values[k] * e.vectors.get(i, k) * e.vectors.get(j, k))
                .sum()
        })
    }

    #[test]
    fn diagonal_matrix() {
        let a = DenseMatrix::from_rows(&[&[3.0, 0.0], &[0.0, 1.0]]).unwrap();
        let e = jacobi_eigen(&a, JacobiOptions::default()).unwrap();
        assert!((e.values[0] - 1.0).abs() < 1e-12);
        assert!((e.values[1] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn known_2x2() {
        // [[2,1],[1,2]] has eigenvalues 1, 3.
        let a = DenseMatrix::from_rows(&[&[2.0, 1.0], &[1.0, 2.0]]).unwrap();
        let e = jacobi_eigen(&a, JacobiOptions::default()).unwrap();
        assert!((e.values[0] - 1.0).abs() < 1e-12);
        assert!((e.values[1] - 3.0).abs() < 1e-12);
        // Eigenvector for λ=3 is (1,1)/√2 up to sign.
        let v = e.vector(1);
        assert!((v[0].abs() - std::f64::consts::FRAC_1_SQRT_2).abs() < 1e-10);
        assert!((v[0] - v[1]).abs() < 1e-10);
    }

    #[test]
    fn reconstruction_and_orthonormality() {
        // Path-graph Laplacian on 5 nodes.
        let n = 5;
        let a = DenseMatrix::from_fn(n, n, |i, j| {
            if i == j {
                if i == 0 || i == n - 1 {
                    1.0
                } else {
                    2.0
                }
            } else if i.abs_diff(j) == 1 {
                -1.0
            } else {
                0.0
            }
        });
        let e = jacobi_eigen(&a, JacobiOptions::default()).unwrap();
        assert!(reconstruct(&e).max_abs_diff(&a).unwrap() < 1e-9);
        // Columns orthonormal.
        for i in 0..n {
            for j in 0..n {
                let d = vecops::dot(&e.vector(i), &e.vector(j));
                let want = if i == j { 1.0 } else { 0.0 };
                assert!((d - want).abs() < 1e-9, "col {i} . col {j} = {d}");
            }
        }
        // Laplacian: smallest eigenvalue 0 with constant eigenvector.
        assert!(e.values[0].abs() < 1e-9);
        let v0 = e.vector(0);
        let first = v0[0];
        assert!(v0.iter().all(|&x| (x - first).abs() < 1e-8));
    }

    #[test]
    fn eigenvalues_sorted_ascending() {
        let a = DenseMatrix::from_rows(&[&[5.0, 2.0, 0.0], &[2.0, -3.0, 1.0], &[0.0, 1.0, 1.0]])
            .unwrap();
        let e = jacobi_eigen(&a, JacobiOptions::default()).unwrap();
        assert!(e.values.windows(2).all(|w| w[0] <= w[1]));
        // Trace preserved.
        let trace: f64 = e.values.iter().sum();
        assert!((trace - 3.0).abs() < 1e-10);
    }

    #[test]
    fn rejects_asymmetric() {
        let a = DenseMatrix::from_rows(&[&[1.0, 2.0], &[0.0, 1.0]]).unwrap();
        assert!(jacobi_eigen(&a, JacobiOptions::default()).is_err());
    }

    #[test]
    fn handles_trivial_sizes() {
        let e = jacobi_eigen(&DenseMatrix::zeros(0, 0), JacobiOptions::default()).unwrap();
        assert!(e.values.is_empty());
        let one = DenseMatrix::from_rows(&[&[7.0]]).unwrap();
        let e = jacobi_eigen(&one, JacobiOptions::default()).unwrap();
        assert_eq!(e.values, vec![7.0]);
    }
}
