//! Streaming Rademacher (±1) random projections.
//!
//! The Khoa–Chawla commute-time embedding sketches the scaled incidence
//! matrix with a `k × m` random matrix `Q` whose entries are `±1/√k`.
//! For the graph sizes of the scalability experiment (`m = 10⁷`),
//! materializing `Q` would cost `k·m` doubles; instead each entry is a
//! pure function of `(seed, row, column)` computed with a SplitMix64-style
//! hash, so the projection streams over the edge list with zero storage
//! and is exactly reproducible for a given seed.

/// Deterministic source of `±1` Rademacher variables indexed by
/// `(row, column)`.
#[derive(Debug, Clone, Copy)]
pub struct RademacherSource {
    seed: u64,
}

impl RademacherSource {
    /// Create a source with the given seed.
    pub fn new(seed: u64) -> Self {
        RademacherSource { seed }
    }

    /// The `(row, col)` entry of the implicit sign matrix: `+1.0` or `-1.0`.
    #[inline]
    pub fn sign(&self, row: u64, col: u64) -> f64 {
        // Mix row and column into one word, then SplitMix64 finalize.
        let mut z = self
            .seed
            .wrapping_add(row.wrapping_mul(0x9E3779B97F4A7C15))
            .wrapping_add(col.wrapping_mul(0xBF58476D1CE4E5B9));
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^= z >> 31;
        if z & 1 == 0 {
            1.0
        } else {
            -1.0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn values_are_plus_minus_one() {
        let s = RademacherSource::new(42);
        for r in 0..50 {
            for c in 0..50 {
                let v = s.sign(r, c);
                assert!(v == 1.0 || v == -1.0);
            }
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let a = RademacherSource::new(7);
        let b = RademacherSource::new(7);
        let c = RademacherSource::new(8);
        assert_eq!(a.sign(3, 4), b.sign(3, 4));
        // Different seeds disagree somewhere in a small window.
        let differs = (0..64).any(|i| a.sign(i, 0) != c.sign(i, 0));
        assert!(differs);
    }

    #[test]
    fn roughly_balanced() {
        let s = RademacherSource::new(123);
        let n = 10_000u64;
        let sum: f64 = (0..n).map(|i| s.sign(i / 100, i % 100)).sum();
        // Mean should be within ~4σ of zero, σ = √n.
        assert!(sum.abs() < 4.0 * (n as f64).sqrt(), "sum = {sum}");
    }

    #[test]
    fn rows_are_decorrelated() {
        let s = RademacherSource::new(99);
        let n = 10_000u64;
        let corr: f64 = (0..n).map(|c| s.sign(0, c) * s.sign(1, c)).sum();
        assert!(corr.abs() < 4.0 * (n as f64).sqrt(), "corr = {corr}");
    }

    #[test]
    fn no_trivial_row_column_structure() {
        // Consecutive entries in a row should not alternate deterministically.
        let s = RademacherSource::new(5);
        let first_eight: Vec<f64> = (0..8).map(|c| s.sign(0, c)).collect();
        let alternating: Vec<f64> = (0..8)
            .map(|c| if c % 2 == 0 { 1.0 } else { -1.0 })
            .collect();
        assert_ne!(first_eight, alternating);
        let constant = first_eight.iter().all(|&v| v == first_eight[0]);
        assert!(!constant);
    }
}
