//! Error type shared by all linear-algebra routines.

use std::fmt;

/// Errors produced by the linear-algebra substrate.
///
/// The variants are deliberately coarse: callers either recover by
/// switching algorithm (e.g. regularized solve after a singular grounded
/// solve) or surface the error to the experiment harness.
#[derive(Debug, Clone, PartialEq)]
pub enum LinalgError {
    /// Operand shapes are incompatible (`found` vs `expected`).
    DimensionMismatch {
        /// Human-readable description of the operation that failed.
        op: &'static str,
        /// Shape the operation expected.
        expected: (usize, usize),
        /// Shape it received.
        found: (usize, usize),
    },
    /// A factorization broke down (non-SPD input, zero pivot, ...).
    FactorizationFailed {
        /// Which factorization failed.
        what: &'static str,
        /// Pivot index where breakdown occurred.
        index: usize,
    },
    /// An iterative method did not reach the requested tolerance.
    NotConverged {
        /// Which iteration failed to converge.
        what: &'static str,
        /// Iterations performed before giving up.
        iterations: usize,
        /// Residual norm at the final iteration.
        residual: f64,
    },
    /// The input matrix was expected to be square.
    NotSquare {
        /// Rows of the offending matrix.
        rows: usize,
        /// Columns of the offending matrix.
        cols: usize,
    },
    /// An index was out of bounds for the container.
    IndexOutOfBounds {
        /// The offending index.
        index: usize,
        /// The container length.
        len: usize,
    },
    /// Input value was invalid (NaN weight, negative dimension, ...).
    InvalidInput(String),
}

impl fmt::Display for LinalgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LinalgError::DimensionMismatch {
                op,
                expected,
                found,
            } => write!(
                f,
                "dimension mismatch in {op}: expected {}x{}, found {}x{}",
                expected.0, expected.1, found.0, found.1
            ),
            LinalgError::FactorizationFailed { what, index } => {
                write!(f, "{what} factorization failed at pivot {index}")
            }
            LinalgError::NotConverged {
                what,
                iterations,
                residual,
            } => write!(
                f,
                "{what} did not converge after {iterations} iterations (residual {residual:.3e})"
            ),
            LinalgError::NotSquare { rows, cols } => {
                write!(f, "matrix must be square, found {rows}x{cols}")
            }
            LinalgError::IndexOutOfBounds { index, len } => {
                write!(f, "index {index} out of bounds for length {len}")
            }
            LinalgError::InvalidInput(msg) => write!(f, "invalid input: {msg}"),
        }
    }
}

impl std::error::Error for LinalgError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_dimension_mismatch() {
        let e = LinalgError::DimensionMismatch {
            op: "matvec",
            expected: (3, 4),
            found: (4, 3),
        };
        assert_eq!(
            e.to_string(),
            "dimension mismatch in matvec: expected 3x4, found 4x3"
        );
    }

    #[test]
    fn display_not_converged() {
        let e = LinalgError::NotConverged {
            what: "cg",
            iterations: 10,
            residual: 0.5,
        };
        assert!(e.to_string().contains("cg"));
        assert!(e.to_string().contains("10"));
    }

    #[test]
    fn error_is_std_error() {
        fn assert_err<E: std::error::Error>() {}
        assert_err::<LinalgError>();
    }
}
