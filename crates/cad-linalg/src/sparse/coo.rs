//! Coordinate-format sparse matrix builder.

use crate::error::LinalgError;
use crate::sparse::CsrMatrix;
use crate::Result;

/// Coordinate-list (triplet) sparse matrix used only for construction.
///
/// Duplicate entries are allowed and are summed when converting to CSR,
/// matching the usual "assemble then finalize" idiom.
#[derive(Debug, Clone, Default)]
pub struct CooMatrix {
    nrows: usize,
    ncols: usize,
    entries: Vec<(u32, u32, f64)>,
}

impl CooMatrix {
    /// Empty matrix of the given shape.
    pub fn new(nrows: usize, ncols: usize) -> Self {
        CooMatrix {
            nrows,
            ncols,
            entries: Vec::new(),
        }
    }

    /// Empty matrix with reserved triplet capacity.
    pub fn with_capacity(nrows: usize, ncols: usize, cap: usize) -> Self {
        CooMatrix {
            nrows,
            ncols,
            entries: Vec::with_capacity(cap),
        }
    }

    /// Number of rows.
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Number of stored triplets (including duplicates and zeros).
    pub fn nnz(&self) -> usize {
        self.entries.len()
    }

    /// Append a triplet; errors when out of range or non-finite.
    pub fn push(&mut self, row: usize, col: usize, value: f64) -> Result<()> {
        if row >= self.nrows {
            return Err(LinalgError::IndexOutOfBounds {
                index: row,
                len: self.nrows,
            });
        }
        if col >= self.ncols {
            return Err(LinalgError::IndexOutOfBounds {
                index: col,
                len: self.ncols,
            });
        }
        if !value.is_finite() {
            return Err(LinalgError::InvalidInput(format!(
                "non-finite value {value} at ({row}, {col})"
            )));
        }
        self.entries.push((row as u32, col as u32, value));
        Ok(())
    }

    /// Append a symmetric pair `(i,j,v)` and `(j,i,v)`; diagonal entries
    /// are pushed once.
    pub fn push_sym(&mut self, i: usize, j: usize, value: f64) -> Result<()> {
        self.push(i, j, value)?;
        if i != j {
            self.push(j, i, value)?;
        }
        Ok(())
    }

    /// Convert to CSR, summing duplicates and dropping explicit zeros.
    pub fn to_csr(&self) -> CsrMatrix {
        CsrMatrix::from_triplets(self.nrows, self.ncols, &self.entries)
    }

    /// Iterate stored triplets.
    pub fn iter(&self) -> impl Iterator<Item = (usize, usize, f64)> + '_ {
        self.entries
            .iter()
            .map(|&(r, c, v)| (r as usize, c as usize, v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_bounds_checked() {
        let mut m = CooMatrix::new(2, 3);
        assert!(m.push(0, 0, 1.0).is_ok());
        assert!(m.push(2, 0, 1.0).is_err());
        assert!(m.push(0, 3, 1.0).is_err());
        assert!(m.push(0, 0, f64::NAN).is_err());
    }

    #[test]
    fn push_sym_adds_mirror() {
        let mut m = CooMatrix::new(3, 3);
        m.push_sym(0, 1, 2.0).unwrap();
        m.push_sym(2, 2, 5.0).unwrap();
        assert_eq!(m.nnz(), 3);
        let csr = m.to_csr();
        assert_eq!(csr.get(0, 1), 2.0);
        assert_eq!(csr.get(1, 0), 2.0);
        assert_eq!(csr.get(2, 2), 5.0);
    }

    #[test]
    fn duplicates_sum_in_csr() {
        let mut m = CooMatrix::new(2, 2);
        m.push(0, 1, 1.5).unwrap();
        m.push(0, 1, 2.5).unwrap();
        let csr = m.to_csr();
        assert_eq!(csr.get(0, 1), 4.0);
        assert_eq!(csr.nnz(), 1);
    }

    #[test]
    fn cancelled_duplicates_are_dropped() {
        let mut m = CooMatrix::new(2, 2);
        m.push(0, 1, 1.0).unwrap();
        m.push(0, 1, -1.0).unwrap();
        let csr = m.to_csr();
        assert_eq!(csr.nnz(), 0);
    }

    #[test]
    fn iter_yields_triplets() {
        let mut m = CooMatrix::new(2, 2);
        m.push(1, 0, 3.0).unwrap();
        let v: Vec<_> = m.iter().collect();
        assert_eq!(v, vec![(1, 0, 3.0)]);
    }
}
