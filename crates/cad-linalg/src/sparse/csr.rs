//! Compressed sparse row matrix.

use crate::dense::DenseMatrix;
use crate::error::LinalgError;
use crate::Result;

/// Compressed-sparse-row `f64` matrix with `u32` column indices.
///
/// Within each row the column indices are strictly increasing, which makes
/// `get` a binary search and row merges linear. Explicit zeros are never
/// stored: construction drops them, so `nnz` counts structurally non-zero
/// entries only.
#[derive(Debug, Clone, PartialEq)]
pub struct CsrMatrix {
    nrows: usize,
    ncols: usize,
    row_ptr: Vec<usize>,
    col_idx: Vec<u32>,
    values: Vec<f64>,
}

impl CsrMatrix {
    /// Empty (all-zero) matrix of the given shape.
    pub fn zeros(nrows: usize, ncols: usize) -> Self {
        CsrMatrix {
            nrows,
            ncols,
            row_ptr: vec![0; nrows + 1],
            col_idx: Vec::new(),
            values: Vec::new(),
        }
    }

    /// Build from triplets, summing duplicates and dropping zeros.
    ///
    /// This is the single CSR constructor; [`crate::sparse::CooMatrix`]
    /// delegates here. Runs in `O(nnz + n)` using a counting sort by row,
    /// then per-row sorts by column.
    pub fn from_triplets(nrows: usize, ncols: usize, triplets: &[(u32, u32, f64)]) -> Self {
        // Count entries per row.
        let mut counts = vec![0usize; nrows + 1];
        for &(r, _, _) in triplets {
            counts[r as usize + 1] += 1;
        }
        for i in 0..nrows {
            counts[i + 1] += counts[i];
        }
        // Scatter into row buckets.
        let mut cols = vec![0u32; triplets.len()];
        let mut vals = vec![0.0f64; triplets.len()];
        let mut next = counts.clone();
        for &(r, c, v) in triplets {
            let slot = next[r as usize];
            cols[slot] = c;
            vals[slot] = v;
            next[r as usize] += 1;
        }
        // Sort each row by column and compact duplicates / zeros.
        let mut row_ptr = vec![0usize; nrows + 1];
        let mut out_cols = Vec::with_capacity(triplets.len());
        let mut out_vals = Vec::with_capacity(triplets.len());
        let mut scratch: Vec<(u32, f64)> = Vec::new();
        for r in 0..nrows {
            let (lo, hi) = (counts[r], counts[r + 1]);
            scratch.clear();
            scratch.extend(
                cols[lo..hi]
                    .iter()
                    .copied()
                    .zip(vals[lo..hi].iter().copied()),
            );
            scratch.sort_unstable_by_key(|&(c, _)| c);
            let mut i = 0;
            while i < scratch.len() {
                let c = scratch[i].0;
                let mut sum = 0.0;
                while i < scratch.len() && scratch[i].0 == c {
                    sum += scratch[i].1;
                    i += 1;
                }
                if sum != 0.0 {
                    out_cols.push(c);
                    out_vals.push(sum);
                }
            }
            row_ptr[r + 1] = out_cols.len();
        }
        CsrMatrix {
            nrows,
            ncols,
            row_ptr,
            col_idx: out_cols,
            values: out_vals,
        }
    }

    /// Build from a dense matrix, keeping entries with `|a_ij| > threshold`.
    pub fn from_dense(a: &DenseMatrix, threshold: f64) -> Self {
        let mut triplets = Vec::new();
        for i in 0..a.nrows() {
            for (j, &v) in a.row(i).iter().enumerate() {
                if v.abs() > threshold {
                    triplets.push((i as u32, j as u32, v));
                }
            }
        }
        Self::from_triplets(a.nrows(), a.ncols(), &triplets)
    }

    /// Number of rows.
    #[inline]
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    #[inline]
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Number of stored (non-zero) entries.
    #[inline]
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Column indices and values of row `i`.
    #[inline]
    pub fn row(&self, i: usize) -> (&[u32], &[f64]) {
        let (lo, hi) = (self.row_ptr[i], self.row_ptr[i + 1]);
        (&self.col_idx[lo..hi], &self.values[lo..hi])
    }

    /// Entry lookup by binary search within the row; 0.0 when absent.
    pub fn get(&self, i: usize, j: usize) -> f64 {
        let (cols, vals) = self.row(i);
        match cols.binary_search(&(j as u32)) {
            Ok(pos) => vals[pos],
            Err(_) => 0.0,
        }
    }

    /// Iterate all stored entries as `(row, col, value)`.
    pub fn iter(&self) -> impl Iterator<Item = (usize, usize, f64)> + '_ {
        (0..self.nrows).flat_map(move |i| {
            let (cols, vals) = self.row(i);
            cols.iter()
                .zip(vals)
                .map(move |(&c, &v)| (i, c as usize, v))
        })
    }

    /// Iterate the strictly-upper-triangular stored entries; for a
    /// symmetric matrix these enumerate each undirected edge once.
    pub fn iter_upper(&self) -> impl Iterator<Item = (usize, usize, f64)> + '_ {
        self.iter().filter(|&(i, j, _)| j > i)
    }

    /// `y ← A x` (allocating).
    pub fn matvec(&self, x: &[f64]) -> Result<Vec<f64>> {
        let mut y = vec![0.0; self.nrows];
        self.matvec_into(x, &mut y)?;
        Ok(y)
    }

    /// `y ← A x` into a caller-provided buffer.
    pub fn matvec_into(&self, x: &[f64], y: &mut [f64]) -> Result<()> {
        if x.len() != self.ncols || y.len() != self.nrows {
            return Err(LinalgError::DimensionMismatch {
                op: "csr matvec",
                expected: (self.nrows, self.ncols),
                found: (y.len(), x.len()),
            });
        }
        cad_obs::counters::SPMV.inc();
        for (i, yi) in y.iter_mut().enumerate() {
            let (cols, vals) = self.row(i);
            let mut acc = 0.0;
            for (&c, &v) in cols.iter().zip(vals) {
                acc += v * x[c as usize];
            }
            *yi = acc;
        }
        Ok(())
    }

    /// Transpose copy (counting sort over columns, `O(nnz + n)`).
    pub fn transpose(&self) -> CsrMatrix {
        let mut counts = vec![0usize; self.ncols + 1];
        for &c in &self.col_idx {
            counts[c as usize + 1] += 1;
        }
        for j in 0..self.ncols {
            counts[j + 1] += counts[j];
        }
        let mut row_ptr = counts.clone();
        let mut col_idx = vec![0u32; self.nnz()];
        let mut values = vec![0.0; self.nnz()];
        let mut next = counts;
        for i in 0..self.nrows {
            let (cols, vals) = self.row(i);
            for (&c, &v) in cols.iter().zip(vals) {
                let slot = next[c as usize];
                col_idx[slot] = i as u32;
                values[slot] = v;
                next[c as usize] += 1;
            }
        }
        row_ptr.push(self.nnz());
        row_ptr.truncate(self.ncols + 1);
        row_ptr[self.ncols] = self.nnz();
        CsrMatrix {
            nrows: self.ncols,
            ncols: self.nrows,
            row_ptr,
            col_idx,
            values,
        }
    }

    /// True when `‖A − Aᵀ‖∞ ≤ tol` over stored entries.
    pub fn is_symmetric(&self, tol: f64) -> bool {
        if self.nrows != self.ncols {
            return false;
        }
        self.iter()
            .all(|(i, j, v)| (self.get(j, i) - v).abs() <= tol)
    }

    /// Diagonal as a dense vector.
    pub fn diagonal(&self) -> Vec<f64> {
        (0..self.nrows.min(self.ncols))
            .map(|i| self.get(i, i))
            .collect()
    }

    /// Row sums (for a symmetric adjacency matrix: weighted degrees).
    pub fn row_sums(&self) -> Vec<f64> {
        (0..self.nrows)
            .map(|i| self.row(i).1.iter().sum())
            .collect()
    }

    /// Sum of all stored values.
    pub fn sum(&self) -> f64 {
        self.values.iter().sum()
    }

    /// Entry-wise linear combination `α·A + β·B` (same shapes required).
    ///
    /// Linear-time two-pointer merge over rows; the workhorse of the
    /// adjacency-difference scores (`ΔE` needs `A_{t+1} − A_t`).
    pub fn linear_combination(
        &self,
        alpha: f64,
        other: &CsrMatrix,
        beta: f64,
    ) -> Result<CsrMatrix> {
        if self.nrows != other.nrows || self.ncols != other.ncols {
            return Err(LinalgError::DimensionMismatch {
                op: "csr linear_combination",
                expected: (self.nrows, self.ncols),
                found: (other.nrows, other.ncols),
            });
        }
        let mut row_ptr = vec![0usize; self.nrows + 1];
        let mut col_idx = Vec::with_capacity(self.nnz() + other.nnz());
        let mut values = Vec::with_capacity(self.nnz() + other.nnz());
        for i in 0..self.nrows {
            let (ac, av) = self.row(i);
            let (bc, bv) = other.row(i);
            let (mut p, mut q) = (0, 0);
            while p < ac.len() || q < bc.len() {
                let (c, v) = if q >= bc.len() || (p < ac.len() && ac[p] < bc[q]) {
                    let out = (ac[p], alpha * av[p]);
                    p += 1;
                    out
                } else if p >= ac.len() || bc[q] < ac[p] {
                    let out = (bc[q], beta * bv[q]);
                    q += 1;
                    out
                } else {
                    let out = (ac[p], alpha * av[p] + beta * bv[q]);
                    p += 1;
                    q += 1;
                    out
                };
                if v != 0.0 {
                    col_idx.push(c);
                    values.push(v);
                }
            }
            row_ptr[i + 1] = col_idx.len();
        }
        Ok(CsrMatrix {
            nrows: self.nrows,
            ncols: self.ncols,
            row_ptr,
            col_idx,
            values,
        })
    }

    /// Apply `f` to every stored value (keeps the pattern, drops new zeros).
    pub fn map_values(&self, f: impl Fn(f64) -> f64) -> CsrMatrix {
        let triplets: Vec<(u32, u32, f64)> = self
            .iter()
            .map(|(i, j, v)| (i as u32, j as u32, f(v)))
            .collect();
        CsrMatrix::from_triplets(self.nrows, self.ncols, &triplets)
    }

    /// Densify (small matrices / tests only).
    pub fn to_dense(&self) -> DenseMatrix {
        let mut m = DenseMatrix::zeros(self.nrows, self.ncols);
        for (i, j, v) in self.iter() {
            m.set(i, j, v);
        }
        m
    }

    /// Estimated heap footprint in bytes.
    pub fn memory_bytes(&self) -> usize {
        self.row_ptr.len() * std::mem::size_of::<usize>()
            + self.col_idx.len() * std::mem::size_of::<u32>()
            + self.values.len() * std::mem::size_of::<f64>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn sample() -> CsrMatrix {
        // [[0, 2, 0], [2, 0, 3], [0, 3, 1]]
        CsrMatrix::from_triplets(
            3,
            3,
            &[
                (0, 1, 2.0),
                (1, 0, 2.0),
                (1, 2, 3.0),
                (2, 1, 3.0),
                (2, 2, 1.0),
            ],
        )
    }

    #[test]
    fn construction_sorted_and_deduped() {
        let m = CsrMatrix::from_triplets(2, 2, &[(0, 1, 1.0), (0, 0, 2.0), (0, 1, 1.0)]);
        let (cols, vals) = m.row(0);
        assert_eq!(cols, &[0, 1]);
        assert_eq!(vals, &[2.0, 2.0]);
        assert_eq!(m.nnz(), 2);
    }

    #[test]
    fn get_present_and_absent() {
        let m = sample();
        assert_eq!(m.get(1, 2), 3.0);
        assert_eq!(m.get(0, 2), 0.0);
    }

    #[test]
    fn matvec_matches_dense() {
        let m = sample();
        let x = vec![1.0, -1.0, 2.0];
        let sparse = m.matvec(&x).unwrap();
        let dense = m.to_dense().matvec(&x).unwrap();
        assert_eq!(sparse, dense);
    }

    #[test]
    fn matvec_checks_dims() {
        assert!(sample().matvec(&[1.0]).is_err());
    }

    #[test]
    fn transpose_of_symmetric_is_identity() {
        let m = sample();
        assert!(m.is_symmetric(0.0));
        assert_eq!(m.transpose(), m);
    }

    #[test]
    fn transpose_rectangular() {
        let m = CsrMatrix::from_triplets(2, 3, &[(0, 2, 5.0), (1, 0, 1.0)]);
        let t = m.transpose();
        assert_eq!(t.nrows(), 3);
        assert_eq!(t.ncols(), 2);
        assert_eq!(t.get(2, 0), 5.0);
        assert_eq!(t.get(0, 1), 1.0);
        assert_eq!(t.nnz(), 2);
    }

    #[test]
    fn diagonal_and_row_sums() {
        let m = sample();
        assert_eq!(m.diagonal(), vec![0.0, 0.0, 1.0]);
        assert_eq!(m.row_sums(), vec![2.0, 5.0, 4.0]);
        assert_eq!(m.sum(), 11.0);
    }

    #[test]
    fn linear_combination_difference() {
        let a = sample();
        let b = CsrMatrix::from_triplets(3, 3, &[(0, 1, 2.0), (1, 0, 2.0), (0, 2, 7.0)]);
        let d = b.linear_combination(1.0, &a, -1.0).unwrap();
        // (0,1) cancels; (0,2) from b; a's (1,2),(2,1),(2,2) negated.
        assert_eq!(d.get(0, 1), 0.0);
        assert_eq!(d.get(0, 2), 7.0);
        assert_eq!(d.get(1, 2), -3.0);
        assert_eq!(d.get(2, 2), -1.0);
        // Surviving entries: (0,2), (1,2), (2,1), (2,2).
        assert_eq!(d.nnz(), 4);
    }

    #[test]
    fn map_values_drops_new_zeros() {
        let m = sample();
        let z = m.map_values(|v| if v == 3.0 { 0.0 } else { v });
        assert_eq!(z.nnz(), m.nnz() - 2);
    }

    #[test]
    fn from_dense_thresholds() {
        let d = DenseMatrix::from_rows(&[&[0.5, 0.0], &[1e-9, 2.0]]).unwrap();
        let s = CsrMatrix::from_dense(&d, 1e-6);
        assert_eq!(s.nnz(), 2);
        assert_eq!(s.get(0, 0), 0.5);
        assert_eq!(s.get(1, 1), 2.0);
    }

    #[test]
    fn iter_upper_enumerates_edges_once() {
        let m = sample();
        let edges: Vec<_> = m.iter_upper().collect();
        assert_eq!(edges, vec![(0, 1, 2.0), (1, 2, 3.0)]);
    }

    #[test]
    fn zeros_has_no_entries() {
        let m = CsrMatrix::zeros(4, 4);
        assert_eq!(m.nnz(), 0);
        assert_eq!(m.matvec(&[1.0; 4]).unwrap(), vec![0.0; 4]);
    }

    proptest! {
        #[test]
        fn prop_roundtrip_dense(n in 1usize..8, entries in proptest::collection::vec((0u32..8, 0u32..8, -10.0f64..10.0), 0..30)) {
            let tri: Vec<_> = entries.into_iter()
                .filter(|&(r, c, _)| (r as usize) < n && (c as usize) < n)
                .collect();
            let m = CsrMatrix::from_triplets(n, n, &tri);
            let d = m.to_dense();
            let back = CsrMatrix::from_dense(&d, 0.0);
            prop_assert_eq!(m, back);
        }

        #[test]
        fn prop_transpose_involution(entries in proptest::collection::vec((0u32..6, 0u32..9, -5.0f64..5.0), 0..25)) {
            let m = CsrMatrix::from_triplets(6, 9, &entries);
            prop_assert_eq!(m.transpose().transpose(), m);
        }

        #[test]
        fn prop_matvec_linear(entries in proptest::collection::vec((0u32..5, 0u32..5, -5.0f64..5.0), 0..20), x in proptest::collection::vec(-3.0f64..3.0, 5), a in -2.0f64..2.0) {
            let m = CsrMatrix::from_triplets(5, 5, &entries);
            let ax: Vec<f64> = x.iter().map(|v| a * v).collect();
            let y1 = m.matvec(&ax).unwrap();
            let y2 = m.matvec(&x).unwrap();
            for (l, r) in y1.iter().zip(y2.iter().map(|v| a * v)) {
                prop_assert!((l - r).abs() < 1e-9);
            }
        }
    }
}
