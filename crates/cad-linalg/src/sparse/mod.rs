//! Sparse matrices: COO for construction, CSR for computation.
//!
//! The CAD pipeline stores every graph instance as a symmetric CSR
//! adjacency matrix; Laplacians, incidence products and solver operators
//! are all derived from it. Indices are `u32` (graphs up to ~4.2 billion
//! nodes) to halve the index memory footprint versus `usize`, which
//! matters for the 10⁷-node scalability experiment of §4.1.3.

mod coo;
mod csr;

pub use coo::CooMatrix;
pub use csr::CsrMatrix;
