//! Dense vectors and matrices.
//!
//! Vectors are plain `Vec<f64>` / `&[f64]` manipulated through the free
//! functions in [`vecops`]; matrices are row-major [`DenseMatrix`]. Dense
//! code paths are only used on small problems (exact commute times,
//! Laplacian eigenmaps, toy graphs), so clarity wins over blocking or
//! SIMD tricks here.

mod cholesky;
mod matrix;
pub mod vecops;

pub use cholesky::CholeskyFactor;
pub use matrix::DenseMatrix;
