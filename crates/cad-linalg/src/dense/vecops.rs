//! Free functions over `&[f64]` vectors.
//!
//! All functions panic on length mismatch in debug builds via
//! `debug_assert!`; release paths rely on iterator zipping which silently
//! truncates, so callers are expected to pass equal-length slices (all
//! call sites inside this workspace do).

/// Dot product `xᵀy`.
#[inline]
pub fn dot(x: &[f64], y: &[f64]) -> f64 {
    debug_assert_eq!(x.len(), y.len());
    x.iter().zip(y).map(|(a, b)| a * b).sum()
}

/// Euclidean norm `‖x‖₂`.
#[inline]
pub fn norm2(x: &[f64]) -> f64 {
    dot(x, x).sqrt()
}

/// Squared Euclidean distance `‖x − y‖₂²`.
#[inline]
pub fn dist2_sq(x: &[f64], y: &[f64]) -> f64 {
    debug_assert_eq!(x.len(), y.len());
    x.iter().zip(y).map(|(a, b)| (a - b) * (a - b)).sum()
}

/// `y ← a·x + y`.
#[inline]
pub fn axpy(a: f64, x: &[f64], y: &mut [f64]) {
    debug_assert_eq!(x.len(), y.len());
    for (yi, xi) in y.iter_mut().zip(x) {
        *yi += a * xi;
    }
}

/// `x ← a·x`.
#[inline]
pub fn scale(a: f64, x: &mut [f64]) {
    for xi in x.iter_mut() {
        *xi *= a;
    }
}

/// `z ← x − y` into a fresh vector.
#[inline]
pub fn sub(x: &[f64], y: &[f64]) -> Vec<f64> {
    debug_assert_eq!(x.len(), y.len());
    x.iter().zip(y).map(|(a, b)| a - b).collect()
}

/// Arithmetic mean of the entries (0.0 for the empty slice).
#[inline]
pub fn mean(x: &[f64]) -> f64 {
    if x.is_empty() {
        0.0
    } else {
        x.iter().sum::<f64>() / x.len() as f64
    }
}

/// Subtract the mean from every entry, projecting onto `1⊥`.
///
/// This is how right-hand sides are kept in the range of a connected
/// graph Laplacian before iterative solves.
#[inline]
pub fn center(x: &mut [f64]) {
    let m = mean(x);
    for xi in x.iter_mut() {
        *xi -= m;
    }
}

/// Normalize `x` to unit Euclidean norm; returns the original norm.
///
/// Leaves `x` untouched (and returns 0.0) when its norm underflows,
/// so callers can detect a zero vector.
#[inline]
pub fn normalize(x: &mut [f64]) -> f64 {
    let n = norm2(x);
    if n > f64::MIN_POSITIVE {
        scale(1.0 / n, x);
    }
    n
}

/// Maximum absolute entry (`‖x‖∞`), 0.0 for the empty slice.
#[inline]
pub fn norm_inf(x: &[f64]) -> f64 {
    x.iter().fold(0.0f64, |m, v| m.max(v.abs()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_and_norm() {
        let x = [3.0, 4.0];
        assert_eq!(dot(&x, &x), 25.0);
        assert_eq!(norm2(&x), 5.0);
    }

    #[test]
    fn dist2_sq_basic() {
        assert_eq!(dist2_sq(&[0.0, 0.0], &[3.0, 4.0]), 25.0);
        assert_eq!(dist2_sq(&[1.0], &[1.0]), 0.0);
    }

    #[test]
    fn axpy_accumulates() {
        let mut y = vec![1.0, 1.0, 1.0];
        axpy(2.0, &[1.0, 2.0, 3.0], &mut y);
        assert_eq!(y, vec![3.0, 5.0, 7.0]);
    }

    #[test]
    fn scale_in_place() {
        let mut x = vec![1.0, -2.0];
        scale(-3.0, &mut x);
        assert_eq!(x, vec![-3.0, 6.0]);
    }

    #[test]
    fn sub_produces_difference() {
        assert_eq!(sub(&[5.0, 2.0], &[1.0, 7.0]), vec![4.0, -5.0]);
    }

    #[test]
    fn mean_and_center() {
        let mut x = vec![1.0, 2.0, 3.0];
        assert_eq!(mean(&x), 2.0);
        center(&mut x);
        assert_eq!(x, vec![-1.0, 0.0, 1.0]);
        assert_eq!(mean(&[]), 0.0);
    }

    #[test]
    fn normalize_unit_norm() {
        let mut x = vec![3.0, 4.0];
        let n = normalize(&mut x);
        assert_eq!(n, 5.0);
        assert!((norm2(&x) - 1.0).abs() < 1e-15);
    }

    #[test]
    fn normalize_zero_vector_is_noop() {
        let mut x = vec![0.0, 0.0];
        assert_eq!(normalize(&mut x), 0.0);
        assert_eq!(x, vec![0.0, 0.0]);
    }

    #[test]
    fn norm_inf_max_abs() {
        assert_eq!(norm_inf(&[1.0, -7.0, 3.0]), 7.0);
        assert_eq!(norm_inf(&[]), 0.0);
    }
}
