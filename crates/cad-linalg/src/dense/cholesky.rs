//! Dense Cholesky factorization for SPD matrices.
//!
//! Used for exact commute times on connected graphs via the identity
//! `L⁺ = (L + (1/n)·J)⁻¹ − (1/n)·J` (J the all-ones matrix), which is much
//! cheaper than a full eigendecomposition, and as the reference solver in
//! solver tests.

use crate::dense::DenseMatrix;
use crate::error::LinalgError;
use crate::Result;

/// Lower-triangular Cholesky factor `L` with `A = L Lᵀ`.
#[derive(Debug, Clone)]
pub struct CholeskyFactor {
    /// Lower triangle, stored densely (upper triangle is zero).
    l: DenseMatrix,
}

impl CholeskyFactor {
    /// Factor a symmetric positive-definite matrix.
    ///
    /// Returns [`LinalgError::FactorizationFailed`] when a pivot is not
    /// strictly positive (matrix not SPD to working precision).
    pub fn factor(a: &DenseMatrix) -> Result<Self> {
        if !a.is_square() {
            return Err(LinalgError::NotSquare {
                rows: a.nrows(),
                cols: a.ncols(),
            });
        }
        let n = a.nrows();
        let mut l = DenseMatrix::zeros(n, n);
        for j in 0..n {
            let mut d = a.get(j, j);
            for k in 0..j {
                let v = l.get(j, k);
                d -= v * v;
            }
            if d <= 0.0 || !d.is_finite() {
                return Err(LinalgError::FactorizationFailed {
                    what: "cholesky",
                    index: j,
                });
            }
            let dj = d.sqrt();
            l.set(j, j, dj);
            for i in (j + 1)..n {
                let mut s = a.get(i, j);
                for k in 0..j {
                    s -= l.get(i, k) * l.get(j, k);
                }
                l.set(i, j, s / dj);
            }
        }
        Ok(CholeskyFactor { l })
    }

    /// Order of the factored matrix.
    pub fn dim(&self) -> usize {
        self.l.nrows()
    }

    /// Solve `A x = b` using forward/back substitution.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>> {
        let n = self.dim();
        if b.len() != n {
            return Err(LinalgError::DimensionMismatch {
                op: "cholesky solve",
                expected: (n, 1),
                found: (b.len(), 1),
            });
        }
        // Forward: L y = b.
        let mut y = b.to_vec();
        for i in 0..n {
            let row = self.l.row(i);
            let mut s = y[i];
            for (rk, yk) in row.iter().zip(&y).take(i) {
                s -= rk * yk;
            }
            y[i] = s / row[i];
        }
        // Back: Lᵀ x = y.
        for i in (0..n).rev() {
            let mut s = y[i];
            for (k, &yk) in y.iter().enumerate().skip(i + 1) {
                s -= self.l.get(k, i) * yk;
            }
            y[i] = s / self.l.get(i, i);
        }
        Ok(y)
    }

    /// Compute `A⁻¹` column by column.
    pub fn inverse(&self) -> Result<DenseMatrix> {
        let n = self.dim();
        let mut inv = DenseMatrix::zeros(n, n);
        let mut e = vec![0.0; n];
        for j in 0..n {
            e[j] = 1.0;
            let x = self.solve(&e)?;
            for (i, &xi) in x.iter().enumerate() {
                inv.set(i, j, xi);
            }
            e[j] = 0.0;
        }
        Ok(inv)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spd3() -> DenseMatrix {
        DenseMatrix::from_rows(&[&[4.0, 1.0, 0.0], &[1.0, 3.0, -1.0], &[0.0, -1.0, 2.0]]).unwrap()
    }

    #[test]
    fn factor_and_solve() {
        let a = spd3();
        let f = CholeskyFactor::factor(&a).unwrap();
        let b = vec![1.0, 2.0, 3.0];
        let x = f.solve(&b).unwrap();
        let ax = a.matvec(&x).unwrap();
        for (l, r) in ax.iter().zip(&b) {
            assert!((l - r).abs() < 1e-12, "residual too large");
        }
    }

    #[test]
    fn inverse_times_matrix_is_identity() {
        let a = spd3();
        let inv = CholeskyFactor::factor(&a).unwrap().inverse().unwrap();
        let prod = a.matmul(&inv).unwrap();
        let eye = DenseMatrix::identity(3);
        assert!(prod.max_abs_diff(&eye).unwrap() < 1e-12);
    }

    #[test]
    fn rejects_indefinite() {
        let a = DenseMatrix::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]).unwrap();
        assert!(matches!(
            CholeskyFactor::factor(&a),
            Err(LinalgError::FactorizationFailed { .. })
        ));
    }

    #[test]
    fn rejects_non_square() {
        let a = DenseMatrix::zeros(2, 3);
        assert!(matches!(
            CholeskyFactor::factor(&a),
            Err(LinalgError::NotSquare { .. })
        ));
    }

    #[test]
    fn solve_checks_rhs_len() {
        let f = CholeskyFactor::factor(&spd3()).unwrap();
        assert!(f.solve(&[1.0, 2.0]).is_err());
    }
}
