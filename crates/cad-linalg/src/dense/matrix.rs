//! Row-major dense matrix.

use crate::error::LinalgError;
use crate::Result;
use std::fmt;

/// A row-major dense `f64` matrix.
///
/// Used for small problems only (exact commute times on graphs with a few
/// thousand nodes, eigenmap embeddings, toy examples); large graphs go
/// through [`crate::sparse::CsrMatrix`].
#[derive(Clone, PartialEq)]
pub struct DenseMatrix {
    nrows: usize,
    ncols: usize,
    data: Vec<f64>,
}

impl DenseMatrix {
    /// All-zero matrix of the given shape.
    pub fn zeros(nrows: usize, ncols: usize) -> Self {
        DenseMatrix {
            nrows,
            ncols,
            data: vec![0.0; nrows * ncols],
        }
    }

    /// Identity matrix of order `n`.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m.set(i, i, 1.0);
        }
        m
    }

    /// Build from a generator function `f(row, col)`.
    pub fn from_fn(nrows: usize, ncols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut data = Vec::with_capacity(nrows * ncols);
        for i in 0..nrows {
            for j in 0..ncols {
                data.push(f(i, j));
            }
        }
        DenseMatrix { nrows, ncols, data }
    }

    /// Build from row-major data; errors if `data.len() != nrows*ncols`.
    pub fn from_vec(nrows: usize, ncols: usize, data: Vec<f64>) -> Result<Self> {
        if data.len() != nrows * ncols {
            return Err(LinalgError::InvalidInput(format!(
                "expected {} entries for a {}x{} matrix, got {}",
                nrows * ncols,
                nrows,
                ncols,
                data.len()
            )));
        }
        Ok(DenseMatrix { nrows, ncols, data })
    }

    /// Build a square matrix from nested row slices (test convenience).
    pub fn from_rows(rows: &[&[f64]]) -> Result<Self> {
        let nrows = rows.len();
        let ncols = rows.first().map_or(0, |r| r.len());
        if rows.iter().any(|r| r.len() != ncols) {
            return Err(LinalgError::InvalidInput("ragged rows".into()));
        }
        let data = rows.iter().flat_map(|r| r.iter().copied()).collect();
        Ok(DenseMatrix { nrows, ncols, data })
    }

    /// Number of rows.
    #[inline]
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    #[inline]
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// True when the matrix is square.
    #[inline]
    pub fn is_square(&self) -> bool {
        self.nrows == self.ncols
    }

    /// Entry accessor (panics when out of bounds, like slice indexing).
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> f64 {
        debug_assert!(i < self.nrows && j < self.ncols);
        self.data[i * self.ncols + j]
    }

    /// Entry mutator (panics when out of bounds).
    #[inline]
    pub fn set(&mut self, i: usize, j: usize, v: f64) {
        debug_assert!(i < self.nrows && j < self.ncols);
        self.data[i * self.ncols + j] = v;
    }

    /// Add `v` to entry `(i, j)`.
    #[inline]
    pub fn add_to(&mut self, i: usize, j: usize, v: f64) {
        self.data[i * self.ncols + j] += v;
    }

    /// Borrow row `i` as a slice.
    #[inline]
    pub fn row(&self, i: usize) -> &[f64] {
        &self.data[i * self.ncols..(i + 1) * self.ncols]
    }

    /// Mutably borrow row `i`.
    #[inline]
    pub fn row_mut(&mut self, i: usize) -> &mut [f64] {
        &mut self.data[i * self.ncols..(i + 1) * self.ncols]
    }

    /// Copy column `j` into a fresh vector.
    pub fn col(&self, j: usize) -> Vec<f64> {
        (0..self.nrows).map(|i| self.get(i, j)).collect()
    }

    /// Raw row-major data.
    #[inline]
    pub fn data(&self) -> &[f64] {
        &self.data
    }

    /// `y = A x`.
    pub fn matvec(&self, x: &[f64]) -> Result<Vec<f64>> {
        if x.len() != self.ncols {
            return Err(LinalgError::DimensionMismatch {
                op: "dense matvec",
                expected: (self.ncols, 1),
                found: (x.len(), 1),
            });
        }
        Ok((0..self.nrows)
            .map(|i| crate::dense::vecops::dot(self.row(i), x))
            .collect())
    }

    /// Matrix product `A B`.
    pub fn matmul(&self, other: &DenseMatrix) -> Result<DenseMatrix> {
        if self.ncols != other.nrows {
            return Err(LinalgError::DimensionMismatch {
                op: "dense matmul",
                expected: (self.ncols, self.ncols),
                found: (other.nrows, other.ncols),
            });
        }
        let mut out = DenseMatrix::zeros(self.nrows, other.ncols);
        for i in 0..self.nrows {
            for k in 0..self.ncols {
                let aik = self.get(i, k);
                if aik == 0.0 {
                    continue;
                }
                let orow = other.row(k);
                let out_row = out.row_mut(i);
                for (o, b) in out_row.iter_mut().zip(orow) {
                    *o += aik * b;
                }
            }
        }
        Ok(out)
    }

    /// Transpose copy.
    pub fn transpose(&self) -> DenseMatrix {
        DenseMatrix::from_fn(self.ncols, self.nrows, |i, j| self.get(j, i))
    }

    /// `‖A − B‖∞` over entries; errors on shape mismatch.
    pub fn max_abs_diff(&self, other: &DenseMatrix) -> Result<f64> {
        if self.nrows != other.nrows || self.ncols != other.ncols {
            return Err(LinalgError::DimensionMismatch {
                op: "max_abs_diff",
                expected: (self.nrows, self.ncols),
                found: (other.nrows, other.ncols),
            });
        }
        Ok(self
            .data
            .iter()
            .zip(&other.data)
            .fold(0.0f64, |m, (a, b)| m.max((a - b).abs())))
    }

    /// True when `‖A − Aᵀ‖∞ ≤ tol`.
    pub fn is_symmetric(&self, tol: f64) -> bool {
        if !self.is_square() {
            return false;
        }
        for i in 0..self.nrows {
            for j in (i + 1)..self.ncols {
                if (self.get(i, j) - self.get(j, i)).abs() > tol {
                    return false;
                }
            }
        }
        true
    }

    /// Replace `A` with `(A + Aᵀ)/2`.
    pub fn symmetrize(&mut self) {
        assert!(self.is_square(), "symmetrize requires a square matrix");
        for i in 0..self.nrows {
            for j in (i + 1)..self.ncols {
                let v = 0.5 * (self.get(i, j) + self.get(j, i));
                self.set(i, j, v);
                self.set(j, i, v);
            }
        }
    }

    /// Entry-wise sum `A + B`.
    pub fn add(&self, other: &DenseMatrix) -> Result<DenseMatrix> {
        if self.nrows != other.nrows || self.ncols != other.ncols {
            return Err(LinalgError::DimensionMismatch {
                op: "dense add",
                expected: (self.nrows, self.ncols),
                found: (other.nrows, other.ncols),
            });
        }
        let data = self
            .data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| a + b)
            .collect();
        Ok(DenseMatrix {
            nrows: self.nrows,
            ncols: self.ncols,
            data,
        })
    }

    /// Entry-wise scale `c·A` in place.
    pub fn scale(&mut self, c: f64) {
        for v in &mut self.data {
            *v *= c;
        }
    }
}

impl fmt::Debug for DenseMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "DenseMatrix {}x{} [", self.nrows, self.ncols)?;
        for i in 0..self.nrows.min(8) {
            write!(f, "  ")?;
            for j in 0..self.ncols.min(8) {
                write!(f, "{:>10.4} ", self.get(i, j))?;
            }
            writeln!(f, "{}", if self.ncols > 8 { "..." } else { "" })?;
        }
        if self.nrows > 8 {
            writeln!(f, "  ...")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_identity() {
        let z = DenseMatrix::zeros(2, 3);
        assert_eq!(z.nrows(), 2);
        assert_eq!(z.ncols(), 3);
        assert!(z.data().iter().all(|&v| v == 0.0));
        let i = DenseMatrix::identity(3);
        assert_eq!(i.get(1, 1), 1.0);
        assert_eq!(i.get(0, 1), 0.0);
    }

    #[test]
    fn from_vec_checks_len() {
        assert!(DenseMatrix::from_vec(2, 2, vec![1.0; 3]).is_err());
        assert!(DenseMatrix::from_vec(2, 2, vec![1.0; 4]).is_ok());
    }

    #[test]
    fn from_rows_rejects_ragged() {
        assert!(DenseMatrix::from_rows(&[&[1.0, 2.0], &[3.0]]).is_err());
    }

    #[test]
    fn matvec_known() {
        let a = DenseMatrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]).unwrap();
        assert_eq!(a.matvec(&[1.0, 1.0]).unwrap(), vec![3.0, 7.0]);
        assert!(a.matvec(&[1.0]).is_err());
    }

    #[test]
    fn matmul_known() {
        let a = DenseMatrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]).unwrap();
        let b = DenseMatrix::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]).unwrap();
        let c = a.matmul(&b).unwrap();
        assert_eq!(c.row(0), &[2.0, 1.0]);
        assert_eq!(c.row(1), &[4.0, 3.0]);
    }

    #[test]
    fn transpose_roundtrip() {
        let a = DenseMatrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]).unwrap();
        let at = a.transpose();
        assert_eq!(at.nrows(), 3);
        assert_eq!(at.get(2, 1), 6.0);
        assert_eq!(at.transpose(), a);
    }

    #[test]
    fn symmetry_check_and_symmetrize() {
        let mut a = DenseMatrix::from_rows(&[&[1.0, 2.0], &[4.0, 1.0]]).unwrap();
        assert!(!a.is_symmetric(1e-12));
        a.symmetrize();
        assert!(a.is_symmetric(1e-12));
        assert_eq!(a.get(0, 1), 3.0);
    }

    #[test]
    fn add_and_scale() {
        let a = DenseMatrix::identity(2);
        let mut b = a.add(&a).unwrap();
        assert_eq!(b.get(0, 0), 2.0);
        b.scale(0.5);
        assert_eq!(b.get(0, 0), 1.0);
    }

    #[test]
    fn col_extracts_column() {
        let a = DenseMatrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]).unwrap();
        assert_eq!(a.col(1), vec![2.0, 4.0]);
    }

    #[test]
    fn max_abs_diff_shapes() {
        let a = DenseMatrix::identity(2);
        let b = DenseMatrix::zeros(2, 2);
        assert_eq!(a.max_abs_diff(&b).unwrap(), 1.0);
        assert!(a.max_abs_diff(&DenseMatrix::zeros(3, 3)).is_err());
    }
}
