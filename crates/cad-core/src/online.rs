//! Streaming (online) CAD.
//!
//! Paper §4.2 notes that the offline δ-selection "can be suitably
//! modified in an online setting by aggregating scores up to the current
//! graph instance and updating the threshold". This module implements
//! that modification: graph instances arrive one at a time, each new
//! transition is scored immediately (reusing the previous instance's
//! commute-time engine, so the marginal cost per arrival is one engine
//! build plus `O(m log m)` scoring), and δ is re-calibrated against the
//! pooled score history so that the *running* average anomaly rate
//! tracks the target `l`.

use crate::detector::TransitionAnomalies;
use crate::scores::{pair_edge_scores, EdgeScore};
use crate::threshold::{choose_delta, select_prefix};
use crate::{CadOptions, Result};
use cad_commute::{EdgeDelta, OracleProvider, RebuildReason, SharedOracle, UpdateOutcome};
use cad_graph::WeightedGraph;
use std::sync::Arc;

/// How the streaming detector obtains each arriving instance's oracle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum UpdateMode {
    /// Build a fresh oracle per snapshot — bit-identical to batch
    /// detection for every backend and thread count. The default.
    #[default]
    Rebuild,
    /// Update the previous oracle in place from the edge delta
    /// ([`cad_commute::UpdatableOracle`]); falls back to a fresh build
    /// when the backend declines (structural delta, degenerate
    /// denominator, unsupported backend). Results agree with rebuild
    /// within [`cad_commute::UPDATE_REL_TOL`].
    Incremental,
    /// [`UpdateMode::Incremental`], plus a forced fresh build every
    /// [`REFRESH_THRESHOLD`] consecutive updates to cap accumulated
    /// floating-point drift.
    Auto,
}

/// Consecutive in-place updates [`UpdateMode::Auto`] allows before
/// forcing a fresh build.
pub const REFRESH_THRESHOLD: usize = 32;

impl UpdateMode {
    /// Stable lowercase name (CLI flags, NDJSON events, HTTP bodies).
    pub fn name(self) -> &'static str {
        match self {
            UpdateMode::Rebuild => "rebuild",
            UpdateMode::Incremental => "incremental",
            UpdateMode::Auto => "auto",
        }
    }

    /// Parse a [`UpdateMode::name`] back (CLI/serve knob).
    pub fn from_name(s: &str) -> Option<UpdateMode> {
        match s {
            "rebuild" => Some(UpdateMode::Rebuild),
            "incremental" => Some(UpdateMode::Incremental),
            "auto" => Some(UpdateMode::Auto),
            _ => None,
        }
    }
}

/// How the streaming detector chooses its threshold δ.
#[derive(Debug, Clone, Copy)]
pub enum ThresholdMode {
    /// Re-calibrate δ after every arrival so the running average
    /// anomaly rate tracks this many nodes per transition (paper §4.2's
    /// online modification). Keeps the full score history.
    TargetNodes(usize),
    /// A fixed δ for the whole stream. No score history is kept —
    /// memory stays bounded however long the stream runs — and each
    /// transition's anomaly set is exactly what batch detection with
    /// the same δ would produce.
    Fixed(f64),
}

/// Everything an [`OnlineCad`] carries *across* pushes, captured by
/// [`OnlineCad::state`] and reinstalled by [`OnlineCad::resume`].
///
/// Configuration ([`CadOptions`], [`ThresholdMode`], [`UpdateMode`],
/// provider) is intentionally excluded: the caller persists it
/// separately (it is part of the session spec, not of the stream), and
/// resume installs this state into a detector already configured the
/// same way. The previous oracle is excluded too — it is a pure
/// function of `prev_graph` and the configuration, so resume rebuilds
/// it rather than serializing solver internals.
#[derive(Debug, Clone)]
pub struct OnlineState {
    /// Node count pinned by the first arrival (`None` before it).
    pub n_nodes: Option<usize>,
    /// Transitions observed so far.
    pub seen: usize,
    /// Current calibrated threshold δ (`f64::MAX` before the first
    /// transition under [`ThresholdMode::TargetNodes`]).
    pub delta: f64,
    /// Scored history, one sorted list per transition
    /// ([`ThresholdMode::TargetNodes`] only; empty under a fixed δ).
    pub history: Vec<Vec<EdgeScore>>,
    /// The most recent instance — the next transition's left operand.
    pub prev_graph: Option<WeightedGraph>,
}

/// How one arrival's oracle was actually obtained (the mode *taken*,
/// as opposed to the configured [`UpdateMode`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum StepOracle {
    /// Built fresh: the first arrival, [`UpdateMode::Rebuild`], or a
    /// provider/cache load.
    Rebuilt,
    /// Updated in place from the previous instance's oracle.
    Incremental {
        /// Wall-clock seconds applying the delta.
        update_secs: f64,
        /// Edge changes folded in.
        changes: usize,
    },
    /// An incremental update was attempted (or due) but declined, and
    /// the oracle was rebuilt fresh instead.
    Fallback(RebuildReason),
}

impl StepOracle {
    /// `"incremental"` or `"rebuild"` — the stable event/response label.
    pub fn mode_name(self) -> &'static str {
        match self {
            StepOracle::Incremental { .. } => "incremental",
            StepOracle::Rebuilt | StepOracle::Fallback(_) => "rebuild",
        }
    }

    /// The fallback reason, when this step declined an update.
    pub fn fallback_reason(self) -> Option<RebuildReason> {
        match self {
            StepOracle::Fallback(r) => Some(r),
            _ => None,
        }
    }
}

/// Observability record for one [`OnlineCad::push_metered`] arrival.
///
/// The oracle for the arriving instance is built (or updated) exactly
/// once and cached for the next transition's left operand, so `build`
/// describes the *only* oracle work this arrival triggered.
#[derive(Debug, Clone)]
pub struct OnlineStepMetrics {
    /// What building the arriving instance's oracle cost. For an
    /// incremental step no build happened: the backend name is real but
    /// `build_secs` is 0 — the update cost lives in [`StepOracle`].
    pub build: cad_obs::OracleBuildStats,
    /// Wall-clock seconds scoring the new transition (0 on the first
    /// arrival, which has no transition).
    pub score_secs: f64,
    /// Candidate (changed) edges scored (0 on the first arrival).
    pub n_scored: usize,
    /// How the oracle was obtained (rebuild vs in-place update).
    pub oracle: StepOracle,
    /// Block layout of the arriving instance's oracle, when it is a
    /// partitioned build (`CadOptions::partition`); `None` for
    /// monolithic oracles.
    pub partition: Option<cad_commute::PartitionInfo>,
}

/// Streaming CAD detector: push instances, get per-transition anomaly
/// sets with a self-calibrating threshold.
///
/// ```
/// use cad_core::online::OnlineCad;
/// use cad_core::CadOptions;
/// use cad_graph::WeightedGraph;
///
/// let mut online = OnlineCad::new(CadOptions::default(), 2);
/// let g = |extra: f64| WeightedGraph::from_edges(
///     4, &[(0, 1, 3.0), (2, 3, 3.0), (1, 2, 0.2 + extra)]).unwrap();
/// assert!(online.push(g(0.0)).unwrap().is_none()); // first instance
/// let report = online.push(g(0.0)).unwrap().unwrap(); // quiet transition
/// assert!(report.edges.is_empty());
/// ```
pub struct OnlineCad {
    opts: CadOptions,
    mode: ThresholdMode,
    /// Oracle source; `None` builds fresh (see
    /// [`cad_commute::OracleProvider`]). The sliding-window payoff of
    /// the `cad-store` cache: a re-seen instance loads its artifact
    /// instead of rebuilding.
    provider: Option<Arc<dyn OracleProvider>>,
    /// Rebuild per snapshot, or update the held oracle per delta.
    update_mode: UpdateMode,
    /// Consecutive in-place updates since the last fresh build
    /// ([`UpdateMode::Auto`]'s refresh trigger).
    updates_since_build: usize,
    n_nodes: Option<usize>,
    /// Previous instance and its distance oracle.
    prev: Option<(WeightedGraph, SharedOracle)>,
    /// Scored history, one sorted score list per seen transition
    /// ([`ThresholdMode::TargetNodes`] only — stays empty under a fixed
    /// δ so memory is bounded).
    history: Vec<Vec<EdgeScore>>,
    /// Transitions observed so far.
    seen: usize,
    /// Current calibrated threshold.
    delta: f64,
}

impl std::fmt::Debug for OnlineCad {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("OnlineCad")
            .field("mode", &self.mode)
            .field("n_nodes", &self.n_nodes)
            .field("n_transitions", &self.seen)
            .field("delta", &self.delta)
            .finish_non_exhaustive()
    }
}

impl OnlineCad {
    /// Create a streaming detector targeting `l` anomalous nodes per
    /// transition on (running) average.
    pub fn new(opts: CadOptions, l: usize) -> Self {
        Self::with_mode(opts, ThresholdMode::TargetNodes(l))
    }

    /// Create a streaming detector with an explicit threshold mode.
    pub fn with_mode(opts: CadOptions, mode: ThresholdMode) -> Self {
        let delta = match mode {
            ThresholdMode::TargetNodes(_) => f64::MAX,
            ThresholdMode::Fixed(d) => d,
        };
        OnlineCad {
            opts,
            mode,
            provider: None,
            update_mode: UpdateMode::default(),
            updates_since_build: 0,
            n_nodes: None,
            prev: None,
            history: Vec::new(),
            seen: 0,
            delta,
        }
    }

    /// Use `provider` as the oracle source (e.g. the `cad-store`
    /// content-addressed cache); must honour the [`OracleProvider`]
    /// bit-identity contract.
    pub fn with_provider(mut self, provider: Arc<dyn OracleProvider>) -> Self {
        self.provider = Some(provider);
        self
    }

    /// Choose how arriving instances obtain their oracle (default:
    /// [`UpdateMode::Rebuild`]).
    pub fn with_update_mode(mut self, mode: UpdateMode) -> Self {
        self.update_mode = mode;
        self
    }

    /// The configured oracle-update mode.
    pub fn update_mode(&self) -> UpdateMode {
        self.update_mode
    }

    /// Number of transitions observed so far.
    pub fn n_transitions(&self) -> usize {
        self.seen
    }

    /// The current calibrated threshold δ (`f64::MAX` before the first
    /// transition).
    pub fn delta(&self) -> f64 {
        self.delta
    }

    /// Feed the next graph instance.
    ///
    /// Returns `None` for the very first instance (no transition yet);
    /// afterwards returns the anomaly set of the newest transition under
    /// the re-calibrated threshold.
    pub fn push(&mut self, g: WeightedGraph) -> Result<Option<TransitionAnomalies>> {
        self.push_metered(g).map(|(out, _)| out)
    }

    /// Like [`OnlineCad::push`], also returning what the arrival cost:
    /// the (single) oracle build and the transition-scoring latency.
    pub fn push_metered(
        &mut self,
        g: WeightedGraph,
    ) -> Result<(Option<TransitionAnomalies>, OnlineStepMetrics)> {
        match self.n_nodes {
            None => self.n_nodes = Some(g.n_nodes()),
            Some(n) if n != g.n_nodes() => {
                return Err(cad_graph::GraphError::MixedNodeCounts {
                    expected: n,
                    found: g.n_nodes(),
                    at: self.seen + 1,
                });
            }
            Some(_) => {}
        }
        // The sliding oracle cache: this build (or in-place update) is
        // the only oracle work the arrival triggers — G_t's oracle was
        // cached by the previous push and becomes this transition's
        // left operand.
        let (engine, step) = self.obtain_oracle(&g)?;
        let build = match step {
            // No build happened; the clone carries the *previous* build's
            // stats, which would misreport this arrival's cost.
            StepOracle::Incremental { .. } => {
                cad_obs::OracleBuildStats::direct(engine.kind().name(), 0.0)
            }
            _ => engine
                .build_stats()
                .cloned()
                .unwrap_or_else(|| cad_obs::OracleBuildStats::direct(engine.kind().name(), 0.0)),
        };
        let mut metrics = OnlineStepMetrics {
            build,
            score_secs: 0.0,
            n_scored: 0,
            oracle: step,
            partition: engine.partition_info(),
        };
        let out = if let Some((prev_g, prev_engine)) = &self.prev {
            let (scores, secs) = cad_obs::time_it(|| {
                pair_edge_scores(
                    prev_g,
                    &g,
                    prev_engine.as_ref(),
                    engine.as_ref(),
                    self.opts.kind,
                )
            });
            let scores = scores?;
            cad_obs::histograms::TRANSITION_SCORE_SECS.observe(secs);
            metrics.score_secs = secs;
            metrics.n_scored = scores.len();
            self.seen += 1;
            let newest = match self.mode {
                ThresholdMode::TargetNodes(l) => {
                    self.history.push(scores);
                    // Re-calibrate δ over everything seen so far (paper
                    // §4.2's online modification).
                    let n = self.n_nodes.expect("set above");
                    self.delta = choose_delta(&self.history, n, l * self.history.len());
                    self.history.last().expect("just pushed")
                }
                ThresholdMode::Fixed(_) => &scores,
            };
            let k = select_prefix(newest, self.delta);
            let edges: Vec<EdgeScore> = newest[..k].to_vec();
            let mut nodes: Vec<usize> = edges.iter().flat_map(|e| [e.u, e.v]).collect();
            nodes.sort_unstable();
            nodes.dedup();
            Some(TransitionAnomalies {
                t: self.seen - 1,
                edges,
                nodes,
            })
        } else {
            None
        };
        self.prev = Some((g, engine));
        Ok((out, metrics))
    }

    /// Obtain the arriving instance's oracle according to the configured
    /// [`UpdateMode`]: in-place delta update when possible, fresh build
    /// otherwise. Bumps the `commute.incremental_updates` /
    /// `commute.rebuild_fallbacks` counters and the `oracle_update_secs`
    /// histogram accordingly; fresh builds keep their existing
    /// `commute.oracle_builds` accounting inside
    /// [`CommuteTimeEngine::compute`].
    fn obtain_oracle(&mut self, g: &WeightedGraph) -> Result<(SharedOracle, StepOracle)> {
        // First decide without mutating: either an updated clone of the
        // held oracle, or the reason a fresh build is needed.
        let attempt: Option<std::result::Result<(SharedOracle, f64, usize), RebuildReason>> =
            match (self.update_mode, &self.prev) {
                (UpdateMode::Rebuild, _) | (_, None) => None,
                (mode, Some((prev_g, prev_oracle))) => {
                    if mode == UpdateMode::Auto && self.updates_since_build >= REFRESH_THRESHOLD {
                        Some(Err(RebuildReason::Refresh))
                    } else {
                        let delta = EdgeDelta::between(prev_g, g);
                        let mut candidate = prev_oracle.clone_box();
                        match candidate.as_updatable() {
                            None => Some(Err(RebuildReason::Unsupported)),
                            Some(upd) => {
                                let (outcome, secs) = cad_obs::time_it(|| upd.apply_delta(&delta));
                                match outcome? {
                                    UpdateOutcome::Applied { changes } => {
                                        Some(Ok((candidate, secs, changes)))
                                    }
                                    // The half-updated clone is dropped
                                    // here — the held oracle is untouched.
                                    UpdateOutcome::RebuildRequired(reason) => Some(Err(reason)),
                                }
                            }
                        }
                    }
                }
            };
        match attempt {
            Some(Ok((oracle, update_secs, changes))) => {
                cad_obs::counters::INCREMENTAL_UPDATES.inc();
                cad_obs::histograms::ORACLE_UPDATE_SECS.observe(update_secs);
                cad_obs::events::record(
                    cad_obs::EventKind::Update,
                    "incremental",
                    update_secs,
                    changes as u64,
                );
                self.updates_since_build += 1;
                Ok((
                    oracle,
                    StepOracle::Incremental {
                        update_secs,
                        changes,
                    },
                ))
            }
            Some(Err(reason)) => {
                cad_obs::counters::REBUILD_FALLBACKS.inc();
                cad_obs::labeled::REBUILD_FALLBACKS_BY_REASON.inc(reason.name());
                cad_obs::events::record(cad_obs::EventKind::Fallback, reason.name(), 0.0, 0);
                let (oracle, build_secs) = cad_obs::time_it(|| self.build_fresh(g));
                let oracle = oracle?;
                cad_obs::events::record(cad_obs::EventKind::Update, "rebuild", build_secs, 0);
                self.updates_since_build = 0;
                Ok((oracle, StepOracle::Fallback(reason)))
            }
            None => {
                let (oracle, build_secs) = cad_obs::time_it(|| self.build_fresh(g));
                let oracle = oracle?;
                cad_obs::events::record(cad_obs::EventKind::Update, "rebuild", build_secs, 0);
                self.updates_since_build = 0;
                Ok((oracle, StepOracle::Rebuilt))
            }
        }
    }

    fn build_fresh(&self, g: &WeightedGraph) -> Result<SharedOracle> {
        crate::build_oracle(self.provider.as_deref(), self.seen, g, &self.opts)
    }

    /// Capture the cross-push state needed to resume this stream later
    /// (crash recovery, checkpointing). The previous instance's *oracle*
    /// is deliberately not captured — [`OnlineCad::resume`] rebuilds it
    /// fresh from the graph, which under [`UpdateMode::Rebuild`] is
    /// bit-identical to what the uninterrupted stream held.
    pub fn state(&self) -> OnlineState {
        OnlineState {
            n_nodes: self.n_nodes,
            seen: self.seen,
            delta: self.delta,
            history: self.history.clone(),
            prev_graph: self.prev.as_ref().map(|(g, _)| g.clone()),
        }
    }

    /// Install a previously captured [`OnlineState`] into a freshly
    /// configured detector (same `opts`/mode/provider/update-mode as the
    /// original), rebuilding the previous instance's oracle fresh.
    ///
    /// Under [`UpdateMode::Rebuild`] — the default — every subsequent
    /// push is bit-identical to the uninterrupted stream, because the
    /// uninterrupted stream also built that oracle fresh. Under
    /// [`UpdateMode::Incremental`]/[`UpdateMode::Auto`] the resume point
    /// introduces one fresh build where the original may have updated in
    /// place (results then agree within
    /// [`cad_commute::UPDATE_REL_TOL`], the mode's documented contract).
    pub fn resume(mut self, state: OnlineState) -> Result<Self> {
        self.n_nodes = state.n_nodes;
        self.seen = state.seen;
        self.delta = match self.mode {
            ThresholdMode::Fixed(d) => d,
            ThresholdMode::TargetNodes(_) => state.delta,
        };
        self.history = state.history;
        self.updates_since_build = 0;
        self.prev = match state.prev_graph {
            Some(g) => {
                let oracle = self.build_fresh(&g)?;
                Some((g, oracle))
            }
            None => None,
        };
        Ok(self)
    }

    /// Re-evaluate *all* seen transitions at the current δ — converges
    /// to exactly the offline result once the stream ends.
    ///
    /// Only meaningful under [`ThresholdMode::TargetNodes`]; a fixed-δ
    /// stream keeps no history (its per-arrival output already equals
    /// the batch result), so this returns an empty vector there.
    pub fn reevaluate_all(&self) -> Vec<TransitionAnomalies> {
        self.history
            .iter()
            .enumerate()
            .map(|(t, scores)| {
                let k = select_prefix(scores, self.delta);
                let edges: Vec<EdgeScore> = scores[..k].to_vec();
                let mut nodes: Vec<usize> = edges.iter().flat_map(|e| [e.u, e.v]).collect();
                nodes.sort_unstable();
                nodes.dedup();
                TransitionAnomalies { t, edges, nodes }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::detector::CadDetector;
    use cad_graph::GraphSequence;

    fn instance(bridge: f64) -> WeightedGraph {
        let mut edges = vec![
            (0, 1, 3.0),
            (0, 2, 3.0),
            (1, 2, 3.0),
            (3, 4, 3.0),
            (3, 5, 3.0),
            (4, 5, 3.0),
            (2, 3, 0.2),
        ];
        if bridge > 0.0 {
            edges.push((0, 5, bridge));
        }
        WeightedGraph::from_edges(6, &edges).unwrap()
    }

    #[test]
    fn first_push_yields_nothing() {
        let mut online = OnlineCad::new(CadOptions::default(), 2);
        assert!(online.push(instance(0.0)).unwrap().is_none());
        assert_eq!(online.n_transitions(), 0);
    }

    #[test]
    fn detects_event_in_stream() {
        let mut online = OnlineCad::new(CadOptions::default(), 2);
        online.push(instance(0.0)).unwrap();
        // Two quiet transitions...
        let quiet = online.push(instance(0.0)).unwrap().unwrap();
        assert!(quiet.edges.is_empty());
        online.push(instance(0.0)).unwrap();
        // ...then the cross-cluster bridge appears.
        let event = online.push(instance(1.5)).unwrap().unwrap();
        assert_eq!(event.t, 2);
        assert!(!event.edges.is_empty());
        assert_eq!((event.edges[0].u, event.edges[0].v), (0, 5));
        assert_eq!(event.nodes, vec![0, 5]);
    }

    #[test]
    fn rejects_mixed_node_counts() {
        let mut online = OnlineCad::new(CadOptions::default(), 2);
        online.push(instance(0.0)).unwrap();
        let wrong = WeightedGraph::from_edges(3, &[(0, 1, 1.0)]).unwrap();
        assert!(online.push(wrong).is_err());
    }

    #[test]
    fn final_reevaluation_matches_offline() {
        let stream = [0.0, 0.0, 1.5, 1.5, 0.0];
        let graphs: Vec<WeightedGraph> = stream.iter().map(|&b| instance(b)).collect();

        let mut online = OnlineCad::new(CadOptions::default(), 2);
        for g in graphs.clone() {
            online.push(g).unwrap();
        }
        let final_sets = online.reevaluate_all();

        let offline = CadDetector::new(CadOptions::default())
            .detect_top_l(&GraphSequence::new(graphs).unwrap(), 2)
            .unwrap();
        assert_eq!(final_sets.len(), offline.transitions.len());
        for (on, off) in final_sets.iter().zip(&offline.transitions) {
            assert_eq!(on.nodes, off.nodes, "transition {}", on.t);
            assert_eq!(on.edges.len(), off.edges.len());
        }
    }

    #[test]
    fn fixed_delta_matches_batch_per_arrival() {
        let stream = [0.0, 0.0, 1.5, 0.0];
        let graphs: Vec<WeightedGraph> = stream.iter().map(|&b| instance(b)).collect();
        let delta = 0.4;
        let offline = CadDetector::new(CadOptions::default())
            .detect(&GraphSequence::new(graphs.clone()).unwrap(), delta)
            .unwrap();

        let mut online = OnlineCad::with_mode(CadOptions::default(), ThresholdMode::Fixed(delta));
        let mut sets = Vec::new();
        for (i, g) in graphs.into_iter().enumerate() {
            let (out, m) = online.push_metered(g).unwrap();
            assert!(!m.build.backend.is_empty());
            match out {
                None => {
                    assert_eq!(i, 0, "only the first arrival lacks a transition");
                    assert_eq!(m.n_scored, 0);
                    assert_eq!(m.score_secs, 0.0);
                }
                Some(tr) => sets.push(tr),
            }
        }
        assert_eq!(online.delta(), delta);
        assert_eq!(sets.len(), offline.transitions.len());
        for (on, off) in sets.iter().zip(&offline.transitions) {
            assert_eq!(on.t, off.t);
            assert_eq!(on.nodes, off.nodes, "transition {}", on.t);
            assert_eq!(on.edges.len(), off.edges.len());
            for (a, b) in on.edges.iter().zip(&off.edges) {
                assert_eq!(a.score.to_bits(), b.score.to_bits());
            }
        }
        // Fixed mode keeps no history.
        assert!(online.reevaluate_all().is_empty());
        assert_eq!(online.n_transitions(), 3);
    }

    #[test]
    fn update_mode_names_round_trip() {
        for mode in [
            UpdateMode::Rebuild,
            UpdateMode::Incremental,
            UpdateMode::Auto,
        ] {
            assert_eq!(UpdateMode::from_name(mode.name()), Some(mode));
        }
        assert_eq!(UpdateMode::from_name("nope"), None);
        assert_eq!(UpdateMode::default(), UpdateMode::Rebuild);
    }

    #[test]
    fn incremental_mode_matches_rebuild_within_tolerance() {
        let stream = [0.0, 0.3, 1.5, 1.2, 0.9];
        let graphs: Vec<WeightedGraph> = stream.iter().map(|&b| instance(b)).collect();
        let delta = 0.4;

        let run = |mode: UpdateMode| {
            let mut online =
                OnlineCad::with_mode(CadOptions::default(), ThresholdMode::Fixed(delta))
                    .with_update_mode(mode);
            let mut sets = Vec::new();
            let mut steps = Vec::new();
            for g in graphs.clone() {
                let (out, m) = online.push_metered(g).unwrap();
                steps.push(m.oracle);
                if let Some(tr) = out {
                    sets.push(tr);
                }
            }
            (sets, steps)
        };
        let (rebuilt, rebuilt_steps) = run(UpdateMode::Rebuild);
        let (incr, incr_steps) = run(UpdateMode::Incremental);

        assert!(rebuilt_steps.iter().all(|s| *s == StepOracle::Rebuilt));
        // First arrival has nothing to update; the bridge edge toggling
        // between 0 and positive weight never disconnects `instance`, so
        // every later step updates in place.
        assert_eq!(incr_steps[0], StepOracle::Rebuilt);
        for (i, s) in incr_steps.iter().enumerate().skip(1) {
            assert!(
                matches!(s, StepOracle::Incremental { .. }),
                "step {i}: {s:?}"
            );
            assert_eq!(s.mode_name(), "incremental");
        }

        assert_eq!(incr.len(), rebuilt.len());
        for (a, b) in incr.iter().zip(&rebuilt) {
            assert_eq!(a.t, b.t);
            assert_eq!(a.nodes, b.nodes, "transition {}", a.t);
            assert_eq!(a.edges.len(), b.edges.len());
            for (ea, eb) in a.edges.iter().zip(&b.edges) {
                assert!(
                    (ea.score - eb.score).abs()
                        <= cad_commute::UPDATE_REL_TOL * (1.0 + eb.score.abs()),
                    "t={} edge ({},{}): {} vs {}",
                    a.t,
                    ea.u,
                    ea.v,
                    ea.score,
                    eb.score
                );
            }
        }
    }

    #[test]
    fn incremental_mode_falls_back_on_structural_delta() {
        // instance(0.0) → instance(bridge) keeps the partition, but a
        // genuinely disconnecting stream must fall back.
        let joined =
            WeightedGraph::from_edges(4, &[(0, 1, 1.0), (1, 2, 1.0), (2, 3, 1.0)]).unwrap();
        let split = WeightedGraph::from_edges(4, &[(0, 1, 1.0), (2, 3, 1.0)]).unwrap();
        let mut online = OnlineCad::with_mode(CadOptions::default(), ThresholdMode::Fixed(0.5))
            .with_update_mode(UpdateMode::Incremental);
        let (_, m0) = online.push_metered(joined.clone()).unwrap();
        assert_eq!(m0.oracle, StepOracle::Rebuilt);
        let (_, m1) = online.push_metered(split).unwrap();
        assert_eq!(
            m1.oracle,
            StepOracle::Fallback(cad_commute::RebuildReason::Structural)
        );
        assert_eq!(m1.oracle.mode_name(), "rebuild");
        assert_eq!(
            m1.oracle.fallback_reason(),
            Some(cad_commute::RebuildReason::Structural)
        );
        // Reconnecting is structural again; a plain weight bump is not.
        let (_, m2) = online.push_metered(joined).unwrap();
        assert_eq!(
            m2.oracle,
            StepOracle::Fallback(cad_commute::RebuildReason::Structural)
        );
        let bumped =
            WeightedGraph::from_edges(4, &[(0, 1, 2.0), (1, 2, 1.0), (2, 3, 1.0)]).unwrap();
        let (_, m3) = online.push_metered(bumped).unwrap();
        assert!(matches!(m3.oracle, StepOracle::Incremental { .. }));
    }

    #[test]
    fn auto_mode_refreshes_after_threshold() {
        let mut online = OnlineCad::with_mode(CadOptions::default(), ThresholdMode::Fixed(0.5))
            .with_update_mode(UpdateMode::Auto);
        online.push(instance(0.0)).unwrap();
        let mut fallbacks = Vec::new();
        for i in 0..REFRESH_THRESHOLD + 1 {
            let (_, m) = online
                .push_metered(instance(0.1 + 0.01 * i as f64))
                .unwrap();
            if let StepOracle::Fallback(r) = m.oracle {
                fallbacks.push((i, r));
            }
        }
        assert_eq!(
            fallbacks,
            vec![(REFRESH_THRESHOLD, cad_commute::RebuildReason::Refresh)],
            "exactly one forced refresh, after {REFRESH_THRESHOLD} updates"
        );
    }

    #[test]
    fn state_resume_is_bit_identical_at_every_prefix() {
        let stream = [0.0, 0.3, 1.5, 0.0, 1.2, 0.9];
        let graphs: Vec<WeightedGraph> = stream.iter().map(|&b| instance(b)).collect();

        // Uninterrupted reference run.
        let mut reference = OnlineCad::new(CadOptions::default(), 2);
        let full: Vec<Option<TransitionAnomalies>> = graphs
            .iter()
            .map(|g| reference.push(g.clone()).unwrap())
            .collect();

        for cut in 0..graphs.len() {
            let mut first = OnlineCad::new(CadOptions::default(), 2);
            for g in &graphs[..cut] {
                first.push(g.clone()).unwrap();
            }
            let mut resumed = OnlineCad::new(CadOptions::default(), 2)
                .resume(first.state())
                .unwrap();
            assert_eq!(resumed.n_transitions(), first.n_transitions());
            assert_eq!(resumed.delta().to_bits(), first.delta().to_bits());
            for (g, expect) in graphs[cut..].iter().zip(&full[cut..]) {
                let got = resumed.push(g.clone()).unwrap();
                match (got, expect) {
                    (None, None) => {}
                    (Some(a), Some(b)) => {
                        assert_eq!(a.t, b.t);
                        assert_eq!(a.nodes, b.nodes, "cut={cut} t={}", a.t);
                        assert_eq!(a.edges.len(), b.edges.len());
                        for (ea, eb) in a.edges.iter().zip(&b.edges) {
                            assert_eq!((ea.u, ea.v), (eb.u, eb.v));
                            assert_eq!(ea.score.to_bits(), eb.score.to_bits());
                            assert_eq!(ea.d_weight.to_bits(), eb.d_weight.to_bits());
                            assert_eq!(ea.d_commute.to_bits(), eb.d_commute.to_bits());
                        }
                    }
                    (got, expect) => panic!("cut={cut}: {got:?} vs {expect:?}"),
                }
            }
        }
    }

    #[test]
    fn delta_tightens_with_history() {
        // With one huge transition in the history, δ must rise above the
        // noise floor so later quiet transitions stay quiet.
        let mut online = OnlineCad::new(CadOptions::default(), 1);
        online.push(instance(0.0)).unwrap();
        online.push(instance(2.5)).unwrap(); // big event
        let d1 = online.delta();
        let quiet = online.push(instance(2.5)).unwrap().unwrap();
        assert!(quiet.edges.is_empty(), "unchanged instance must be quiet");
        assert!(online.delta() > 0.0 && d1 > 0.0);
    }
}
