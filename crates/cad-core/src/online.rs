//! Streaming (online) CAD.
//!
//! Paper §4.2 notes that the offline δ-selection "can be suitably
//! modified in an online setting by aggregating scores up to the current
//! graph instance and updating the threshold". This module implements
//! that modification: graph instances arrive one at a time, each new
//! transition is scored immediately (reusing the previous instance's
//! commute-time engine, so the marginal cost per arrival is one engine
//! build plus `O(m log m)` scoring), and δ is re-calibrated against the
//! pooled score history so that the *running* average anomaly rate
//! tracks the target `l`.

use crate::detector::TransitionAnomalies;
use crate::scores::{pair_edge_scores, EdgeScore};
use crate::threshold::{choose_delta, select_prefix};
use crate::{CadOptions, Result};
use cad_commute::{CommuteTimeEngine, SharedOracle};
use cad_graph::WeightedGraph;

/// Streaming CAD detector: push instances, get per-transition anomaly
/// sets with a self-calibrating threshold.
///
/// ```
/// use cad_core::online::OnlineCad;
/// use cad_core::CadOptions;
/// use cad_graph::WeightedGraph;
///
/// let mut online = OnlineCad::new(CadOptions::default(), 2);
/// let g = |extra: f64| WeightedGraph::from_edges(
///     4, &[(0, 1, 3.0), (2, 3, 3.0), (1, 2, 0.2 + extra)]).unwrap();
/// assert!(online.push(g(0.0)).unwrap().is_none()); // first instance
/// let report = online.push(g(0.0)).unwrap().unwrap(); // quiet transition
/// assert!(report.edges.is_empty());
/// ```
pub struct OnlineCad {
    opts: CadOptions,
    /// Target anomalous nodes per transition.
    l: usize,
    n_nodes: Option<usize>,
    /// Previous instance and its distance oracle.
    prev: Option<(WeightedGraph, SharedOracle)>,
    /// Scored history, one sorted score list per seen transition.
    history: Vec<Vec<EdgeScore>>,
    /// Current calibrated threshold.
    delta: f64,
}

impl std::fmt::Debug for OnlineCad {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("OnlineCad")
            .field("l", &self.l)
            .field("n_nodes", &self.n_nodes)
            .field("n_transitions", &self.history.len())
            .field("delta", &self.delta)
            .finish_non_exhaustive()
    }
}

impl OnlineCad {
    /// Create a streaming detector targeting `l` anomalous nodes per
    /// transition on (running) average.
    pub fn new(opts: CadOptions, l: usize) -> Self {
        OnlineCad {
            opts,
            l,
            n_nodes: None,
            prev: None,
            history: Vec::new(),
            delta: f64::MAX,
        }
    }

    /// Number of transitions observed so far.
    pub fn n_transitions(&self) -> usize {
        self.history.len()
    }

    /// The current calibrated threshold δ (`f64::MAX` before the first
    /// transition).
    pub fn delta(&self) -> f64 {
        self.delta
    }

    /// Feed the next graph instance.
    ///
    /// Returns `None` for the very first instance (no transition yet);
    /// afterwards returns the anomaly set of the newest transition under
    /// the re-calibrated threshold.
    pub fn push(&mut self, g: WeightedGraph) -> Result<Option<TransitionAnomalies>> {
        match self.n_nodes {
            None => self.n_nodes = Some(g.n_nodes()),
            Some(n) if n != g.n_nodes() => {
                return Err(cad_graph::GraphError::MixedNodeCounts {
                    expected: n,
                    found: g.n_nodes(),
                    at: self.history.len() + 1,
                });
            }
            Some(_) => {}
        }
        let engine = CommuteTimeEngine::compute(&g, &self.opts.engine)?;
        let out = if let Some((prev_g, prev_engine)) = &self.prev {
            let scores = pair_edge_scores(
                prev_g,
                &g,
                prev_engine.as_ref(),
                engine.as_ref(),
                self.opts.kind,
            )?;
            self.history.push(scores);
            // Re-calibrate δ over everything seen so far (paper §4.2's
            // online modification).
            let n = self.n_nodes.expect("set above");
            self.delta = choose_delta(&self.history, n, self.l * self.history.len());
            let newest = self.history.last().expect("just pushed");
            let k = select_prefix(newest, self.delta);
            let edges: Vec<EdgeScore> = newest[..k].to_vec();
            let mut nodes: Vec<usize> = edges.iter().flat_map(|e| [e.u, e.v]).collect();
            nodes.sort_unstable();
            nodes.dedup();
            Some(TransitionAnomalies {
                t: self.history.len() - 1,
                edges,
                nodes,
            })
        } else {
            None
        };
        self.prev = Some((g, engine));
        Ok(out)
    }

    /// Re-evaluate *all* seen transitions at the current δ — converges
    /// to exactly the offline result once the stream ends.
    pub fn reevaluate_all(&self) -> Vec<TransitionAnomalies> {
        self.history
            .iter()
            .enumerate()
            .map(|(t, scores)| {
                let k = select_prefix(scores, self.delta);
                let edges: Vec<EdgeScore> = scores[..k].to_vec();
                let mut nodes: Vec<usize> = edges.iter().flat_map(|e| [e.u, e.v]).collect();
                nodes.sort_unstable();
                nodes.dedup();
                TransitionAnomalies { t, edges, nodes }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::detector::CadDetector;
    use cad_graph::GraphSequence;

    fn instance(bridge: f64) -> WeightedGraph {
        let mut edges = vec![
            (0, 1, 3.0),
            (0, 2, 3.0),
            (1, 2, 3.0),
            (3, 4, 3.0),
            (3, 5, 3.0),
            (4, 5, 3.0),
            (2, 3, 0.2),
        ];
        if bridge > 0.0 {
            edges.push((0, 5, bridge));
        }
        WeightedGraph::from_edges(6, &edges).unwrap()
    }

    #[test]
    fn first_push_yields_nothing() {
        let mut online = OnlineCad::new(CadOptions::default(), 2);
        assert!(online.push(instance(0.0)).unwrap().is_none());
        assert_eq!(online.n_transitions(), 0);
    }

    #[test]
    fn detects_event_in_stream() {
        let mut online = OnlineCad::new(CadOptions::default(), 2);
        online.push(instance(0.0)).unwrap();
        // Two quiet transitions...
        let quiet = online.push(instance(0.0)).unwrap().unwrap();
        assert!(quiet.edges.is_empty());
        online.push(instance(0.0)).unwrap();
        // ...then the cross-cluster bridge appears.
        let event = online.push(instance(1.5)).unwrap().unwrap();
        assert_eq!(event.t, 2);
        assert!(!event.edges.is_empty());
        assert_eq!((event.edges[0].u, event.edges[0].v), (0, 5));
        assert_eq!(event.nodes, vec![0, 5]);
    }

    #[test]
    fn rejects_mixed_node_counts() {
        let mut online = OnlineCad::new(CadOptions::default(), 2);
        online.push(instance(0.0)).unwrap();
        let wrong = WeightedGraph::from_edges(3, &[(0, 1, 1.0)]).unwrap();
        assert!(online.push(wrong).is_err());
    }

    #[test]
    fn final_reevaluation_matches_offline() {
        let stream = [0.0, 0.0, 1.5, 1.5, 0.0];
        let graphs: Vec<WeightedGraph> = stream.iter().map(|&b| instance(b)).collect();

        let mut online = OnlineCad::new(CadOptions::default(), 2);
        for g in graphs.clone() {
            online.push(g).unwrap();
        }
        let final_sets = online.reevaluate_all();

        let offline = CadDetector::new(CadOptions::default())
            .detect_top_l(&GraphSequence::new(graphs).unwrap(), 2)
            .unwrap();
        assert_eq!(final_sets.len(), offline.transitions.len());
        for (on, off) in final_sets.iter().zip(&offline.transitions) {
            assert_eq!(on.nodes, off.nodes, "transition {}", on.t);
            assert_eq!(on.edges.len(), off.edges.len());
        }
    }

    #[test]
    fn delta_tightens_with_history() {
        // With one huge transition in the history, δ must rise above the
        // noise floor so later quiet transitions stay quiet.
        let mut online = OnlineCad::new(CadOptions::default(), 1);
        online.push(instance(0.0)).unwrap();
        online.push(instance(2.5)).unwrap(); // big event
        let d1 = online.delta();
        let quiet = online.push(instance(2.5)).unwrap().unwrap();
        assert!(quiet.edges.is_empty(), "unchanged instance must be quiet");
        assert!(online.delta() > 0.0 && d1 > 0.0);
    }
}
