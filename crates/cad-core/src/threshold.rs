//! Anomalous-set selection and automatic threshold choice.
//!
//! Paper §2.4.1: with a decomposable distance, the minimal anomalous set
//! `E_t` at level `δ` is the smallest prefix of the descending score
//! order such that the *left-out* mass drops below `δ`:
//!
//! ```text
//! E_t = smallest S with Σ_{e ∉ S} ΔE_t(e) < δ
//! ```
//!
//! Paper §4.2 automates picking `δ`: given a target of `l` anomalous
//! nodes per transition on average, choose one global `δ` such that
//! `Σ_t |V_t| = l·(T−1)`. A single global threshold — rather than a
//! per-transition top-`l` — is what lets quiet transitions report *no*
//! anomalies and busy transitions report more than `l`.

use crate::node_scores::node_scores_from_edges;
use crate::scores::EdgeScore;

/// How the per-transition anomaly sets are cut from the score lists.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ThresholdPolicy {
    /// Use an explicit `δ` (paper Algorithm 1 input).
    Fixed(f64),
    /// Choose `δ` so the *average* number of anomalous nodes per
    /// transition is `l` (paper §4.2).
    TargetNodesPerTransition(usize),
    /// Keep the top `k` edges of every transition (a simpler baseline
    /// policy, kept for ablation — the paper argues against it).
    TopEdgesPerTransition(usize),
}

/// Number of leading edges of a **descending** score list selected at
/// level `delta` (the `|E_t|` of paper §2.4.1).
pub fn select_prefix(scores_desc: &[EdgeScore], delta: f64) -> usize {
    debug_assert!(
        scores_desc.windows(2).all(|w| w[0].score >= w[1].score),
        "scores must be sorted descending"
    );
    let total: f64 = scores_desc.iter().map(|e| e.score).sum();
    if total < delta {
        return 0;
    }
    let mut remaining = total;
    for (idx, e) in scores_desc.iter().enumerate() {
        remaining -= e.score;
        if remaining < delta {
            return idx + 1;
        }
    }
    scores_desc.len()
}

/// Total number of distinct anomalous nodes across transitions at level
/// `delta` (`Σ_t |V_t(δ)|`).
fn total_nodes_at(transitions: &[Vec<EdgeScore>], n_nodes: usize, delta: f64) -> usize {
    transitions
        .iter()
        .map(|scores| {
            let k = select_prefix(scores, delta);
            let ns = node_scores_from_edges(n_nodes, &scores[..k]);
            ns.iter().filter(|&&v| v > 0.0).count()
        })
        .sum()
}

/// Choose a single global `δ` such that `Σ_t |V_t| ≈ l·(T−1)`
/// (paper §4.2), by bisection over the anomaly-mass range.
///
/// `target_total_nodes = l·(T−1)`. Node counts are integers, so the
/// target may be unattainable exactly; the returned `δ` is the smallest
/// tested level whose node count does not exceed the target (falling
/// back to the closest achievable count).
pub fn choose_delta(
    transitions: &[Vec<EdgeScore>],
    n_nodes: usize,
    target_total_nodes: usize,
) -> f64 {
    let max_total = transitions
        .iter()
        .map(|s| s.iter().map(|e| e.score).sum::<f64>())
        .fold(0.0f64, f64::max);
    if max_total == 0.0 {
        return f64::MIN_POSITIVE; // No anomaly mass anywhere.
    }
    // δ slightly above the largest per-transition total selects nothing;
    // δ → 0 selects every positive-score edge.
    let (mut lo, mut hi) = (0.0f64, max_total * (1.0 + 1e-9) + f64::MIN_POSITIVE);
    // Bisect: node count is non-increasing in δ.
    for _ in 0..200 {
        let mid = 0.5 * (lo + hi);
        let count = total_nodes_at(transitions, n_nodes, mid);
        if count > target_total_nodes {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    hi
}

/// Apply a [`ThresholdPolicy`], returning the δ in effect (`None` for
/// the δ-free top-k policy) and the per-transition number of selected
/// edges.
pub fn apply_policy(
    transitions: &[Vec<EdgeScore>],
    n_nodes: usize,
    n_transitions_total: usize,
    policy: ThresholdPolicy,
) -> (Option<f64>, Vec<usize>) {
    match policy {
        ThresholdPolicy::Fixed(delta) => {
            let counts = transitions
                .iter()
                .map(|s| select_prefix(s, delta))
                .collect();
            (Some(delta), counts)
        }
        ThresholdPolicy::TargetNodesPerTransition(l) => {
            let delta = choose_delta(transitions, n_nodes, l * n_transitions_total);
            let counts = transitions
                .iter()
                .map(|s| select_prefix(s, delta))
                .collect();
            (Some(delta), counts)
        }
        ThresholdPolicy::TopEdgesPerTransition(k) => {
            let counts = transitions.iter().map(|s| s.len().min(k)).collect();
            (None, counts)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn e(u: usize, v: usize, score: f64) -> EdgeScore {
        EdgeScore {
            u,
            v,
            score,
            d_weight: 0.0,
            d_commute: 0.0,
        }
    }

    #[test]
    fn select_prefix_basics() {
        let s = vec![e(0, 1, 10.0), e(1, 2, 5.0), e(2, 3, 1.0)];
        // total = 16. δ=20 > total → nothing anomalous.
        assert_eq!(select_prefix(&s, 20.0), 0);
        // δ=7: drop 10 → remaining 6 ≥ 7? no, 6 < 7 → prefix 1.
        assert_eq!(select_prefix(&s, 7.0), 1);
        // δ=6: after 10 remaining 6, not < 6; after 5 remaining 1 < 6 → 2.
        assert_eq!(select_prefix(&s, 6.0), 2);
        // δ=0.5: need remaining < 0.5 → all three.
        assert_eq!(select_prefix(&s, 0.5), 3);
        // Tiny positive δ keeps everything with positive score.
        assert_eq!(select_prefix(&s, f64::MIN_POSITIVE), 3);
    }

    #[test]
    fn select_prefix_empty() {
        assert_eq!(select_prefix(&[], 1.0), 0);
    }

    #[test]
    fn choose_delta_hits_target() {
        // Transition A: one dominant edge; transition B: quiet.
        let trans = vec![
            vec![e(0, 1, 100.0), e(2, 3, 1.0), e(3, 4, 0.5)],
            vec![e(5, 6, 0.8), e(6, 7, 0.1)],
        ];
        // Target 2 nodes total → only the dominant edge of A selected.
        let delta = choose_delta(&trans, 8, 2);
        assert_eq!(select_prefix(&trans[0], delta), 1);
        assert_eq!(select_prefix(&trans[1], delta), 0);
    }

    #[test]
    fn choose_delta_busy_transitions_get_more() {
        // One very busy transition and one quiet one; target 4 nodes.
        let trans = vec![
            vec![e(0, 1, 50.0), e(2, 3, 40.0), e(4, 5, 30.0)],
            vec![e(6, 7, 0.01)],
        ];
        let delta = choose_delta(&trans, 8, 4);
        let busy = select_prefix(&trans[0], delta);
        let quiet = select_prefix(&trans[1], delta);
        assert!(busy >= 2, "busy transition got {busy}");
        assert_eq!(quiet, 0, "quiet transition should stay quiet");
    }

    #[test]
    fn choose_delta_no_mass() {
        let trans: Vec<Vec<EdgeScore>> = vec![vec![], vec![]];
        let delta = choose_delta(&trans, 4, 3);
        assert!(delta > 0.0);
        assert_eq!(select_prefix(&[], delta), 0);
    }

    #[test]
    fn apply_policy_variants() {
        let trans = vec![vec![e(0, 1, 10.0), e(1, 2, 5.0)], vec![e(2, 3, 2.0)]];
        let (d, counts) = apply_policy(&trans, 4, 2, ThresholdPolicy::Fixed(6.0));
        assert_eq!(d, Some(6.0));
        assert_eq!(counts, vec![1, 0]);
        let (d, counts) = apply_policy(&trans, 4, 2, ThresholdPolicy::TopEdgesPerTransition(1));
        assert_eq!(d, None);
        assert_eq!(counts, vec![1, 1]);
        let (_, counts) = apply_policy(&trans, 4, 2, ThresholdPolicy::TargetNodesPerTransition(1));
        // Target 2 nodes total: the strongest edge only.
        assert_eq!(counts, vec![1, 0]);
    }
}
