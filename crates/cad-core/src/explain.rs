//! Classifying anomalous edges into the paper's case taxonomy (§2.1).
//!
//! The problem statement distinguishes three kinds of anomalous
//! weight change:
//!
//! * **Case 1** — high-magnitude change (increase or decrease) on an
//!   existing edge;
//! * **Case 2** — a new (or strengthened) edge that pulls structurally
//!   *distant* nodes together;
//! * **Case 3** — a weakened or deleted edge between *bridge* nodes that
//!   pushes previously proximal nodes apart.
//!
//! Each [`crate::EdgeScore`] already carries the two signed factors
//! (`ΔA` and `Δc`), which is exactly the information needed to classify:
//! the sign of `Δc` says whether nodes moved together or apart, the sign
//! and relative magnitude of `ΔA` separate "sharp volume change" from
//! "appearance/disappearance". Analyst-facing output (the CLI and the
//! insider-threat example) uses these labels to say *what kind* of
//! anomaly was found, not just where.

use crate::scores::EdgeScore;

/// The paper's §2.1 anomaly cases.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AnomalyCase {
    /// High-magnitude weight change on a persisting relationship.
    MagnitudeChange,
    /// New/strengthened tie pulling distant nodes closer (`Δc < 0`).
    DistantNodesJoined,
    /// Weakened/severed tie pushing proximal nodes apart (`Δc > 0`).
    BridgeWeakened,
}

impl AnomalyCase {
    /// Analyst-facing label.
    pub fn label(&self) -> &'static str {
        match self {
            AnomalyCase::MagnitudeChange => "case 1: sharp weight change",
            AnomalyCase::DistantNodesJoined => "case 2: distant nodes joined",
            AnomalyCase::BridgeWeakened => "case 3: bridge weakened",
        }
    }
}

/// Classification of one anomalous edge.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Explanation {
    /// Which of the paper's cases the edge falls into.
    pub case: AnomalyCase,
    /// Weight of the edge at `t` (reconstructed from the score factors
    /// when available; 0 means the edge appeared).
    pub appeared: bool,
    /// True when the edge vanished at `t+1`.
    pub vanished: bool,
}

/// Classify an anomalous edge from its score factors and its weights at
/// the two instants.
///
/// Decision rule, following §2.1's phrasing:
/// * the edge **appeared** (`w_t = 0`) and commute distance dropped →
///   Case 2;
/// * the edge **vanished** (`w_{t+1} = 0`) or weakened with commute
///   distance rising → Case 3;
/// * otherwise (a persisting edge whose weight moved sharply) → Case 1,
///   with the `Δc` sign still distinguishing a tightening
///   (strengthening) from a loosening (weakening) change.
pub fn classify(edge: &EdgeScore, w_t: f64, w_t1: f64) -> Explanation {
    let appeared = w_t == 0.0 && w_t1 > 0.0;
    let vanished = w_t1 == 0.0 && w_t > 0.0;
    let case = if appeared && edge.d_commute < 0.0 {
        AnomalyCase::DistantNodesJoined
    } else if (vanished || edge.d_weight < 0.0) && edge.d_commute > 0.0 {
        AnomalyCase::BridgeWeakened
    } else {
        AnomalyCase::MagnitudeChange
    };
    Explanation {
        case,
        appeared,
        vanished,
    }
}

/// Classify every edge of a transition's anomaly set against the two
/// graph instances.
pub fn explain_transition(
    edges: &[EdgeScore],
    g_t: &cad_graph::WeightedGraph,
    g_t1: &cad_graph::WeightedGraph,
) -> Vec<Explanation> {
    edges
        .iter()
        .map(|e| classify(e, g_t.weight(e.u, e.v), g_t1.weight(e.u, e.v)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn edge(d_weight: f64, d_commute: f64) -> EdgeScore {
        EdgeScore {
            u: 0,
            v: 1,
            score: d_weight.abs() * d_commute.abs(),
            d_weight,
            d_commute,
        }
    }

    #[test]
    fn new_bridging_edge_is_case2() {
        let ex = classify(&edge(1.5, -40.0), 0.0, 1.5);
        assert_eq!(ex.case, AnomalyCase::DistantNodesJoined);
        assert!(ex.appeared);
        assert!(!ex.vanished);
    }

    #[test]
    fn severed_bridge_is_case3() {
        let ex = classify(&edge(-2.0, 55.0), 2.0, 0.0);
        assert_eq!(ex.case, AnomalyCase::BridgeWeakened);
        assert!(ex.vanished);
    }

    #[test]
    fn weakened_bridge_is_case3() {
        let ex = classify(&edge(-1.5, 30.0), 2.0, 0.5);
        assert_eq!(ex.case, AnomalyCase::BridgeWeakened);
        assert!(!ex.vanished && !ex.appeared);
    }

    #[test]
    fn sharp_strengthening_is_case1() {
        let ex = classify(&edge(5.0, -8.0), 1.0, 6.0);
        assert_eq!(ex.case, AnomalyCase::MagnitudeChange);
    }

    #[test]
    fn toy_example_cases_match_scenarios() {
        use cad_commute::EngineOptions;
        use cad_graph::generators::toy::{b, r, toy_example};
        let toy = toy_example();
        let det = crate::CadDetector::new(crate::CadOptions {
            engine: EngineOptions::Exact,
            ..Default::default()
        });
        let result = det.detect_top_l(&toy.seq, 6).expect("detection");
        let tr = &result.transitions[0];
        let explanations = explain_transition(&tr.edges, toy.seq.graph(0), toy.seq.graph(1));
        let case_of = |u: usize, v: usize| {
            tr.edges
                .iter()
                .zip(&explanations)
                .find(|(e, _)| (e.u, e.v) == (u.min(v), u.max(v)))
                .map(|(_, x)| x.case)
                .expect("edge in anomaly set")
        };
        // S1: new cross-cluster edge → Case 2.
        assert_eq!(case_of(b(1), r(1)), AnomalyCase::DistantNodesJoined);
        // S2: weakened bridge → Case 3.
        assert_eq!(case_of(r(7), r(8)), AnomalyCase::BridgeWeakened);
        // S3: sharp strengthening → Case 1.
        assert_eq!(case_of(b(4), b(5)), AnomalyCase::MagnitudeChange);
    }

    #[test]
    fn labels_are_stable() {
        assert!(AnomalyCase::MagnitudeChange.label().starts_with("case 1"));
        assert!(AnomalyCase::DistantNodesJoined
            .label()
            .starts_with("case 2"));
        assert!(AnomalyCase::BridgeWeakened.label().starts_with("case 3"));
    }
}
