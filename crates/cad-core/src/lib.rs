//! **CAD** — Commute-time based Anomaly Detection in Dynamic graphs.
//!
//! Reproduction of the SIGMOD 2014 paper *"Localizing anomalous changes
//! in time-evolving graphs"* (Sricharan & Das). Given a sequence of
//! weighted undirected graphs over a fixed vertex set, CAD finds the
//! *edges* whose weight changes are responsible for anomalous structural
//! change between consecutive instances — and from them the responsible
//! nodes — rather than merely flagging that "something changed", which is
//! what event-detection methods like ACT do.
//!
//! The edge anomaly score for the transition `t → t+1` is
//!
//! ```text
//! ΔE_t(i, j) = |A_{t+1}(i, j) − A_t(i, j)| · |c_{t+1}(i, j) − c_t(i, j)|
//! ```
//!
//! the product of the *weight* change and the *commute-time* change of
//! the edge. Sorting these scores solves the minimal-anomalous-set
//! optimization of paper §2.4 exactly (the distance decomposes edge-wise,
//! condition (2) of the paper).
//!
//! # Quick start
//!
//! ```
//! use cad_core::{CadDetector, CadOptions};
//! use cad_graph::{GraphSequence, WeightedGraph};
//!
//! // Two snapshots of a 4-node graph: edge {0,3} appears out of nowhere
//! // and bridges the two previously-distant pairs.
//! let g0 = WeightedGraph::from_edges(4, &[(0, 1, 3.0), (2, 3, 3.0), (1, 2, 0.2)]).unwrap();
//! let g1 = WeightedGraph::from_edges(4, &[(0, 1, 3.0), (2, 3, 3.0), (1, 2, 0.2), (0, 3, 1.0)])
//!     .unwrap();
//! let seq = GraphSequence::new(vec![g0, g1]).unwrap();
//!
//! let detector = CadDetector::new(CadOptions::default());
//! let result = detector.detect_top_l(&seq, 2).unwrap();
//! // The new bridging edge is the top anomaly of the only transition.
//! let top = &result.transitions[0].edges[0];
//! assert_eq!((top.u, top.v), (0, 3));
//! ```
//!
//! The full pipeline (per-transition anomalous edge sets `E_t` and node
//! sets `V_t`, automatic threshold selection from a target anomaly rate,
//! and the `ΔN` node scores used for ROC evaluation) lives in
//! [`detector::CadDetector`]; the pieces are reusable separately via
//! [`scores`], [`node_scores`] and [`threshold`].

#![warn(missing_docs)]

pub mod detector;
pub mod explain;
pub mod node_scores;
pub mod online;
pub mod report;
pub mod scores;
pub mod threshold;

pub use detector::{
    CadDetector, CadOptions, DetectionMetrics, DetectionResult, InstanceMetrics, NodeScorer,
    TransitionAnomalies, TransitionMetrics,
};
pub use explain::{classify, explain_transition, AnomalyCase, Explanation};
pub use node_scores::node_scores_from_edges;
pub use online::{
    OnlineCad, OnlineState, OnlineStepMetrics, StepOracle, ThresholdMode, UpdateMode,
    REFRESH_THRESHOLD,
};
pub use report::{render_report, ReportOptions};
pub use scores::{pair_edge_scores, transition_edge_scores, EdgeScore, ScoreKind};
pub use threshold::{choose_delta, select_prefix, ThresholdPolicy};

/// Crate-wide result alias (errors surface from the graph/linalg layers).
pub type Result<T> = std::result::Result<T, cad_graph::GraphError>;

/// Build (or load) the oracle for instance `t` under `opts` — the one
/// routing point between monolithic and block-partitioned builds, shared
/// by [`CadDetector`] and [`OnlineCad`].
///
/// With a provider, partitioned requests go through
/// [`cad_commute::OracleProvider::oracle_partitioned`] so the `cad-store`
/// cache can key artifacts by partition layout; without one they build
/// directly via [`cad_part::PartitionedOracle`].
pub(crate) fn build_oracle(
    provider: Option<&dyn cad_commute::OracleProvider>,
    t: usize,
    g: &cad_graph::WeightedGraph,
    opts: &CadOptions,
) -> Result<cad_commute::SharedOracle> {
    match (provider, opts.partition) {
        (Some(p), Some(spec)) => p.oracle_partitioned(t, g, &opts.engine, spec, opts.threads),
        (Some(p), None) => p.oracle(t, g, &opts.engine),
        (None, Some(spec)) => {
            cad_part::PartitionedOracle::build(g, &opts.engine, spec, opts.threads)
        }
        (None, None) => cad_commute::CommuteTimeEngine::compute(g, &opts.engine),
    }
}
