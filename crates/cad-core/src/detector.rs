//! The end-to-end CAD detector (paper Algorithm 1 + §4.2 automation).

use crate::node_scores::node_scores_from_edges;
use crate::scores::{transition_edge_scores, EdgeScore, ScoreKind};
use crate::threshold::{apply_policy, ThresholdPolicy};
use crate::Result;
use cad_commute::{EngineOptions, OracleProvider, SharedOracle};
use cad_graph::GraphSequence;
use std::sync::Arc;

/// Configuration of a [`CadDetector`].
#[derive(Debug, Clone, Copy)]
pub struct CadOptions {
    /// Commute-time engine (exact / approximate / auto).
    pub engine: EngineOptions,
    /// Score factorization; [`ScoreKind::Cad`] unless running the ADJ or
    /// COM ablation.
    pub kind: ScoreKind,
    /// Worker threads for per-instance oracle construction and
    /// per-transition scoring (1 = sequential, 0 = one per core).
    /// Results are bit-identical regardless of thread count.
    pub threads: usize,
    /// Block-partitioned oracle builds (`cad-part`): `None` (default)
    /// builds monolithic oracles; `Some(spec)` splits each instance
    /// into blocks and solves them as independent work units. Results
    /// stay bit-identical across thread counts, and track the
    /// monolithic detector within `cad_part::PART_REL_TOL` (exactly,
    /// when blocks are connected components).
    pub partition: Option<cad_commute::PartitionSpec>,
}

impl Default for CadOptions {
    fn default() -> Self {
        CadOptions {
            engine: EngineOptions::default(),
            kind: ScoreKind::Cad,
            threads: 1,
            partition: None,
        }
    }
}

/// Observability record for one oracle construction.
#[derive(Debug, Clone)]
pub struct InstanceMetrics {
    /// Instance index `t`.
    pub t: usize,
    /// What the build cost (backend, wall-time, JL dimension, per-solve
    /// convergence records).
    pub build: cad_obs::OracleBuildStats,
}

/// Observability record for one transition's scoring + thresholding.
#[derive(Debug, Clone)]
pub struct TransitionMetrics {
    /// Transition index `t`.
    pub t: usize,
    /// Wall-clock seconds spent scoring this transition.
    pub score_secs: f64,
    /// Number of candidate (changed) edges scored.
    pub n_scored: usize,
    /// Distribution of the `ΔE` scores at this transition.
    pub scores: cad_obs::Summary,
    /// `|E_t|` after thresholding (0 until a detect pass runs).
    pub n_edges_flagged: usize,
    /// `|V_t|` after thresholding (0 until a detect pass runs).
    pub n_nodes_flagged: usize,
}

/// Observability record for a full [`CadDetector`] run.
///
/// Assembled on the coordinating thread by merging per-item stats in
/// index order, so every field except the wall-times is bit-identical
/// for any [`CadOptions::threads`] setting. Nothing here is written to
/// the global [`cad_obs`] registry — the caller decides what to publish.
#[derive(Debug, Clone, Default)]
pub struct DetectionMetrics {
    /// One record per graph instance (empty for the ADJ ablation, which
    /// never builds oracles).
    pub instances: Vec<InstanceMetrics>,
    /// One record per transition.
    pub transitions: Vec<TransitionMetrics>,
}

impl DetectionMetrics {
    /// Fold this run's records into a [`cad_obs::Report`]: per-instance
    /// build records, per-transition scoring records, one
    /// [`cad_obs::SolveReport`] per iterative solve, and the pooled
    /// `detect.scores` summary. Everything written here except the
    /// wall-time fields is bit-identical for any thread count.
    pub fn fill_report(&self, report: &mut cad_obs::Report) {
        // Report histograms are rebuilt here from the per-item records
        // (instance order, then row order) rather than snapshotted from
        // the live atomic sinks, so they honor the bit-identity
        // contract; only the *_secs series carry wall-times.
        let mut cg_iterations = cad_obs::Histogram::new();
        let mut cg_residuals = cad_obs::Histogram::new();
        let mut oracle_build_secs = cad_obs::Histogram::new();
        let mut transition_score_secs = cad_obs::Histogram::new();
        for inst in &self.instances {
            oracle_build_secs.record(inst.build.build_secs);
            for s in &inst.build.solves {
                cg_iterations.record(s.iterations as f64);
                cg_residuals.record(s.relative_residual);
            }
        }
        for tr in &self.transitions {
            transition_score_secs.record(tr.score_secs);
        }
        for (name, h) in [
            ("cg_iterations", cg_iterations),
            ("cg_residuals", cg_residuals),
            ("oracle_build_secs", oracle_build_secs),
            ("transition_score_secs", transition_score_secs),
        ] {
            report
                .histograms
                .entry(name.to_string())
                .or_default()
                .merge(&h);
        }
        for inst in &self.instances {
            report.instances.push(cad_obs::InstanceReport {
                t: inst.t as u64,
                backend: inst.build.backend.to_string(),
                build_secs: inst.build.build_secs,
                jl_dim: inst.build.jl_dim.map(|k| k as u64),
                n_solves: inst.build.solves.len() as u64,
                iterations: inst.build.iteration_summary(),
                residuals: inst.build.residual_summary(),
            });
            for (row, s) in inst.build.solves.iter().enumerate() {
                report.solves.push(cad_obs::SolveReport {
                    context: format!("instance={}/row={row}", inst.t),
                    iterations: s.iterations as u64,
                    residual: s.relative_residual,
                    converged: s.converged,
                    residual_trace: s.residual_trace.clone(),
                });
            }
        }
        let mut pooled = cad_obs::Summary::new();
        for tr in &self.transitions {
            pooled.merge(&tr.scores);
            report.transitions.push(cad_obs::TransitionReport {
                t: tr.t as u64,
                score_secs: tr.score_secs,
                n_scored: tr.n_scored as u64,
                n_edges_flagged: tr.n_edges_flagged as u64,
                n_nodes_flagged: tr.n_nodes_flagged as u64,
                score: tr.scores,
            });
        }
        report
            .summaries
            .entry("detect.scores".to_string())
            .or_default()
            .merge(&pooled);
    }
}

/// Anomalies reported for one transition `t → t+1`.
#[derive(Debug, Clone)]
pub struct TransitionAnomalies {
    /// Transition index `t` (between instances `t` and `t+1`).
    pub t: usize,
    /// The anomalous edge set `E_t`, strongest first.
    pub edges: Vec<EdgeScore>,
    /// The anomalous node set `V_t` (endpoints of `E_t`), ascending.
    pub nodes: Vec<usize>,
}

/// Full detection output across a sequence.
#[derive(Debug, Clone)]
pub struct DetectionResult {
    /// The threshold `δ` that produced the anomaly sets (`None` for the
    /// top-k policy, which has no δ).
    pub delta: Option<f64>,
    /// Per-transition anomaly sets.
    pub transitions: Vec<TransitionAnomalies>,
}

impl DetectionResult {
    /// Total number of anomalous nodes across transitions (`Σ_t |V_t|`).
    pub fn total_nodes(&self) -> usize {
        self.transitions.iter().map(|t| t.nodes.len()).sum()
    }

    /// Transitions with a non-empty anomaly set.
    pub fn anomalous_transitions(&self) -> Vec<usize> {
        self.transitions
            .iter()
            .filter(|t| !t.edges.is_empty())
            .map(|t| t.t)
            .collect()
    }
}

/// Scorers that produce per-transition node anomaly scores.
///
/// Implemented by [`CadDetector`] (via `ΔN`) and by every baseline in
/// `cad-baselines`; ROC evaluation is generic over this trait.
pub trait NodeScorer {
    /// Method name for reporting ("CAD", "ACT", …).
    fn name(&self) -> &'static str;

    /// For each transition `t → t+1`, a score per node (higher = more
    /// anomalous). Output shape: `(T−1) × n`.
    fn node_scores(&self, seq: &GraphSequence) -> Result<Vec<Vec<f64>>>;
}

/// The CAD detector (paper Algorithm 1).
///
/// Computes one commute-time engine per graph instance (`O(n log n)`
/// with the approximate engine), scores the changed edges of every
/// transition, and cuts anomaly sets with a fixed or automatically
/// selected threshold.
#[derive(Clone, Default)]
pub struct CadDetector {
    opts: CadOptions,
    /// Where per-instance oracles come from. `None` builds fresh via
    /// [`CommuteTimeEngine::compute`]; the `cad-store` oracle cache
    /// plugs in here to load persisted artifacts instead.
    provider: Option<Arc<dyn OracleProvider>>,
}

impl std::fmt::Debug for CadDetector {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CadDetector")
            .field("opts", &self.opts)
            .field("provider", &self.provider.as_ref().map(|_| "custom"))
            .finish()
    }
}

impl CadDetector {
    /// Create a detector with the given options.
    pub fn new(opts: CadOptions) -> Self {
        CadDetector {
            opts,
            provider: None,
        }
    }

    /// Use `provider` as the oracle source (e.g. the `cad-store`
    /// content-addressed cache). Providers must honour the
    /// [`OracleProvider`] contract: same query results as a fresh
    /// build, bit for bit.
    pub fn with_provider(mut self, provider: Arc<dyn OracleProvider>) -> Self {
        self.provider = Some(provider);
        self
    }

    /// The configured options.
    pub fn options(&self) -> &CadOptions {
        &self.opts
    }

    /// Edge scores for every transition, each sorted descending
    /// (steps 3–7 of Algorithm 1).
    ///
    /// Oracle construction (one per instance, the dominant cost) and
    /// per-transition scoring both run on the `cad_linalg::par` worker
    /// pool with [`CadOptions::threads`] workers. Work is striped by
    /// index and collected in order, so output is bit-identical for any
    /// thread count.
    pub fn score_sequence(&self, seq: &GraphSequence) -> Result<Vec<Vec<EdgeScore>>> {
        self.score_sequence_metered(seq).map(|(scored, _)| scored)
    }

    /// Like [`CadDetector::score_sequence`], also returning the run's
    /// [`DetectionMetrics`] (per-instance build costs, per-transition
    /// scoring time and score distributions).
    pub fn score_sequence_metered(
        &self,
        seq: &GraphSequence,
    ) -> Result<(Vec<Vec<EdgeScore>>, DetectionMetrics)> {
        // ADJ never consults commute times; skip the engines entirely.
        if self.opts.kind == ScoreKind::Adj {
            let mut scored = Vec::with_capacity(seq.n_transitions());
            let mut transitions = Vec::with_capacity(seq.n_transitions());
            for t in 0..seq.n_transitions() {
                let (edges, secs) =
                    cad_obs::time_it(|| crate::scores::adj_transition_scores(seq, t));
                transitions.push(Self::transition_metrics(t, &edges, secs));
                scored.push(edges);
            }
            return Ok((
                scored,
                DetectionMetrics {
                    instances: Vec::new(),
                    transitions,
                },
            ));
        }
        // One oracle per instance, reused by both adjacent transitions.
        let engines: Vec<SharedOracle> = {
            let _span = cad_obs::span!("build_oracles");
            cad_linalg::par::par_map_result(seq.graphs(), self.opts.threads, |t, g| {
                crate::build_oracle(self.provider.as_deref(), t, g, &self.opts)
            })?
        };
        // Build stats ride on the oracles, which the pool returned in
        // instance order — merging here is thread-count invariant.
        let instances = engines
            .iter()
            .enumerate()
            .map(|(t, e)| InstanceMetrics {
                t,
                build: e
                    .build_stats()
                    .cloned()
                    .unwrap_or_else(|| cad_obs::OracleBuildStats::direct(e.kind().name(), 0.0)),
            })
            .collect();
        let timed: Vec<(Vec<EdgeScore>, f64)> = {
            let _span = cad_obs::span!("score_transitions");
            cad_linalg::par::par_tabulate_result(seq.n_transitions(), self.opts.threads, |t| {
                let (res, secs) = cad_obs::time_it(|| {
                    transition_edge_scores(
                        seq,
                        t,
                        engines[t].as_ref(),
                        engines[t + 1].as_ref(),
                        self.opts.kind,
                    )
                });
                res.map(|edges| (edges, secs))
            })?
        };
        let mut scored = Vec::with_capacity(timed.len());
        let mut transitions = Vec::with_capacity(timed.len());
        for (t, (edges, secs)) in timed.into_iter().enumerate() {
            transitions.push(Self::transition_metrics(t, &edges, secs));
            scored.push(edges);
        }
        Ok((
            scored,
            DetectionMetrics {
                instances,
                transitions,
            },
        ))
    }

    fn transition_metrics(t: usize, edges: &[EdgeScore], secs: f64) -> TransitionMetrics {
        TransitionMetrics {
            t,
            score_secs: secs,
            n_scored: edges.len(),
            scores: cad_obs::Summary::of(edges.iter().map(|e| e.score)),
            n_edges_flagged: 0,
            n_nodes_flagged: 0,
        }
    }

    /// Run detection with an explicit threshold `δ` (Algorithm 1).
    pub fn detect(&self, seq: &GraphSequence, delta: f64) -> Result<DetectionResult> {
        self.detect_with_policy(seq, ThresholdPolicy::Fixed(delta))
    }

    /// Run detection with `δ` chosen so that `l` nodes are anomalous per
    /// transition on average (paper §4.2).
    pub fn detect_top_l(&self, seq: &GraphSequence, l: usize) -> Result<DetectionResult> {
        self.detect_with_policy(seq, ThresholdPolicy::TargetNodesPerTransition(l))
    }

    /// Run detection under any [`ThresholdPolicy`].
    pub fn detect_with_policy(
        &self,
        seq: &GraphSequence,
        policy: ThresholdPolicy,
    ) -> Result<DetectionResult> {
        self.detect_with_policy_metered(seq, policy)
            .map(|(res, _)| res)
    }

    /// Run detection under any [`ThresholdPolicy`], also returning the
    /// run's [`DetectionMetrics`] with the per-transition anomalous-set
    /// sizes filled in.
    pub fn detect_with_policy_metered(
        &self,
        seq: &GraphSequence,
        policy: ThresholdPolicy,
    ) -> Result<(DetectionResult, DetectionMetrics)> {
        let _span = cad_obs::span!("detect");
        let (scored, mut metrics) = self.score_sequence_metered(seq)?;
        let (delta, counts) = {
            let _span = cad_obs::span!("threshold");
            apply_policy(&scored, seq.n_nodes(), seq.n_transitions(), policy)
        };
        let transitions: Vec<TransitionAnomalies> = scored
            .into_iter()
            .zip(counts)
            .enumerate()
            .map(|(t, (scores, k))| {
                let edges: Vec<EdgeScore> = scores.into_iter().take(k).collect();
                let mut nodes: Vec<usize> = edges.iter().flat_map(|e| [e.u, e.v]).collect();
                nodes.sort_unstable();
                nodes.dedup();
                TransitionAnomalies { t, edges, nodes }
            })
            .collect();
        for (m, tr) in metrics.transitions.iter_mut().zip(&transitions) {
            m.n_edges_flagged = tr.edges.len();
            m.n_nodes_flagged = tr.nodes.len();
        }
        Ok((DetectionResult { delta, transitions }, metrics))
    }
}

impl NodeScorer for CadDetector {
    fn name(&self) -> &'static str {
        self.opts.kind.name()
    }

    fn node_scores(&self, seq: &GraphSequence) -> Result<Vec<Vec<f64>>> {
        let scored = self.score_sequence(seq)?;
        Ok(scored
            .iter()
            .map(|edges| node_scores_from_edges(seq.n_nodes(), edges))
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cad_graph::WeightedGraph;

    /// Two clusters with a weak tie; at t+1 a strong cross-cluster edge
    /// appears (anomalous) and one intra-cluster weight jitters (benign).
    fn two_cluster_seq() -> GraphSequence {
        let base = vec![
            (0, 1, 3.0),
            (0, 2, 3.0),
            (1, 2, 3.0),
            (3, 4, 3.0),
            (3, 5, 3.0),
            (4, 5, 3.0),
            (2, 3, 0.2),
        ];
        let mut after = base.clone();
        after[0] = (0, 1, 3.3); // benign jitter
        after.push((0, 5, 1.5)); // anomalous cross-cluster edge
        let g0 = WeightedGraph::from_edges(6, &base).unwrap();
        let g1 = WeightedGraph::from_edges(6, &after).unwrap();
        GraphSequence::new(vec![g0, g1]).unwrap()
    }

    #[test]
    fn detects_cross_cluster_edge() {
        let seq = two_cluster_seq();
        let det = CadDetector::new(CadOptions::default());
        let res = det.detect_top_l(&seq, 2).unwrap();
        assert_eq!(res.transitions.len(), 1);
        let tr = &res.transitions[0];
        assert_eq!((tr.edges[0].u, tr.edges[0].v), (0, 5));
        assert_eq!(tr.nodes, vec![0, 5]);
    }

    #[test]
    fn fixed_delta_controls_set_size() {
        let seq = two_cluster_seq();
        let det = CadDetector::new(CadOptions::default());
        let all = det.detect(&seq, f64::MIN_POSITIVE).unwrap();
        assert_eq!(all.transitions[0].edges.len(), 2); // both changed edges
        let none = det.detect(&seq, f64::MAX).unwrap();
        assert!(none.transitions[0].edges.is_empty());
        assert!(none.anomalous_transitions().is_empty());
    }

    #[test]
    fn node_scorer_interface() {
        let seq = two_cluster_seq();
        let det = CadDetector::new(CadOptions::default());
        assert_eq!(det.name(), "CAD");
        let ns = det.node_scores(&seq).unwrap();
        assert_eq!(ns.len(), 1);
        assert_eq!(ns[0].len(), 6);
        // Endpoints of the anomalous edge dominate.
        let max = ns[0].iter().cloned().fold(0.0f64, f64::max);
        assert!(ns[0][0] == max || ns[0][5] == max);
        assert!(ns[0][4] < 0.5 * max);
    }

    #[test]
    fn quiet_transition_reports_nothing() {
        let g0 = WeightedGraph::from_edges(3, &[(0, 1, 1.0), (1, 2, 1.0)]).unwrap();
        let seq = GraphSequence::new(vec![g0.clone(), g0.clone(), g0]).unwrap();
        let det = CadDetector::new(CadOptions::default());
        let res = det.detect_top_l(&seq, 3).unwrap();
        assert_eq!(res.total_nodes(), 0);
    }

    #[test]
    fn adj_ablation_misranks() {
        // ADJ ranks by |ΔA| only: the benign 0.3 jitter loses to the 1.5
        // cross edge here, so instead check ADJ assigns the jitter a score
        // equal to its weight change — no structural discount.
        let seq = two_cluster_seq();
        let det = CadDetector::new(CadOptions {
            kind: ScoreKind::Adj,
            ..Default::default()
        });
        assert_eq!(det.name(), "ADJ");
        let scored = det.score_sequence(&seq).unwrap();
        let jitter = scored[0].iter().find(|e| (e.u, e.v) == (0, 1)).unwrap();
        assert!((jitter.score - 0.3).abs() < 1e-9);
    }

    #[test]
    fn delta_reported_back() {
        let seq = two_cluster_seq();
        let det = CadDetector::new(CadOptions::default());
        let res = det.detect(&seq, 0.123).unwrap();
        assert_eq!(res.delta, Some(0.123));
        let auto = det.detect_top_l(&seq, 2).unwrap();
        let d = auto.delta.expect("auto policy reports a delta");
        assert!(d.is_finite() && d > 0.0);
        let topk = det
            .detect_with_policy(&seq, ThresholdPolicy::TopEdgesPerTransition(1))
            .unwrap();
        assert_eq!(topk.delta, None, "top-k policy has no delta");
    }

    #[test]
    fn metered_detection_matches_unmetered_and_fills_metrics() {
        let seq = two_cluster_seq();
        let det = CadDetector::new(CadOptions::default());
        let plain = det.detect_top_l(&seq, 2).unwrap();
        let (metered, metrics) = det
            .detect_with_policy_metered(&seq, ThresholdPolicy::TargetNodesPerTransition(2))
            .unwrap();
        assert_eq!(
            metered.delta.unwrap().to_bits(),
            plain.delta.unwrap().to_bits()
        );
        assert_eq!(metrics.instances.len(), 2);
        assert_eq!(metrics.transitions.len(), 1);
        for inst in &metrics.instances {
            assert_eq!(inst.build.backend, "exact");
            assert!(inst.build.build_secs >= 0.0);
        }
        let tr = &metrics.transitions[0];
        assert_eq!(tr.n_scored, 2); // jitter + cross edge
        assert_eq!(tr.scores.count, 2);
        assert_eq!(tr.n_edges_flagged, metered.transitions[0].edges.len());
        assert_eq!(tr.n_nodes_flagged, metered.transitions[0].nodes.len());
        assert!(tr.scores.max >= tr.scores.min);
    }

    #[test]
    fn adj_metered_has_no_instances() {
        let seq = two_cluster_seq();
        let det = CadDetector::new(CadOptions {
            kind: ScoreKind::Adj,
            ..Default::default()
        });
        let (_, metrics) = det.score_sequence_metered(&seq).unwrap();
        assert!(metrics.instances.is_empty());
        assert_eq!(metrics.transitions.len(), 1);
    }

    #[test]
    fn metrics_deterministic_across_thread_counts() {
        let seq = two_cluster_seq();
        let (_, base) = CadDetector::new(CadOptions::default())
            .detect_with_policy_metered(&seq, ThresholdPolicy::TargetNodesPerTransition(2))
            .unwrap();
        for threads in [2, 4] {
            let (_, m) = CadDetector::new(CadOptions {
                threads,
                ..Default::default()
            })
            .detect_with_policy_metered(&seq, ThresholdPolicy::TargetNodesPerTransition(2))
            .unwrap();
            for (a, b) in m.transitions.iter().zip(&base.transitions) {
                assert_eq!(a.n_scored, b.n_scored);
                assert_eq!(a.scores.sum.to_bits(), b.scores.sum.to_bits());
                assert_eq!(a.n_edges_flagged, b.n_edges_flagged);
                assert_eq!(a.n_nodes_flagged, b.n_nodes_flagged);
            }
            for (a, b) in m.instances.iter().zip(&base.instances) {
                assert_eq!(a.build.backend, b.build.backend);
                assert_eq!(a.build.solves.len(), b.build.solves.len());
            }
        }
    }

    #[test]
    fn thread_count_does_not_change_results() {
        let seq = two_cluster_seq();
        let serial = CadDetector::new(CadOptions::default())
            .detect_top_l(&seq, 2)
            .unwrap();
        for threads in [0, 2, 8] {
            let par = CadDetector::new(CadOptions {
                threads,
                ..Default::default()
            })
            .detect_top_l(&seq, 2)
            .unwrap();
            assert_eq!(
                par.delta.unwrap().to_bits(),
                serial.delta.unwrap().to_bits(),
                "threads={threads}"
            );
            for (a, b) in par.transitions.iter().zip(&serial.transitions) {
                assert_eq!(a.nodes, b.nodes);
                assert_eq!(a.edges.len(), b.edges.len());
                for (x, y) in a.edges.iter().zip(&b.edges) {
                    assert_eq!(x.score.to_bits(), y.score.to_bits());
                }
            }
        }
    }
}
