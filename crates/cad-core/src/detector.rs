//! The end-to-end CAD detector (paper Algorithm 1 + §4.2 automation).

use crate::node_scores::node_scores_from_edges;
use crate::scores::{transition_edge_scores, EdgeScore, ScoreKind};
use crate::threshold::{apply_policy, ThresholdPolicy};
use crate::Result;
use cad_commute::{CommuteTimeEngine, EngineOptions, SharedOracle};
use cad_graph::GraphSequence;

/// Configuration of a [`CadDetector`].
#[derive(Debug, Clone, Copy)]
pub struct CadOptions {
    /// Commute-time engine (exact / approximate / auto).
    pub engine: EngineOptions,
    /// Score factorization; [`ScoreKind::Cad`] unless running the ADJ or
    /// COM ablation.
    pub kind: ScoreKind,
    /// Worker threads for per-instance oracle construction and
    /// per-transition scoring (1 = sequential, 0 = one per core).
    /// Results are bit-identical regardless of thread count.
    pub threads: usize,
}

impl Default for CadOptions {
    fn default() -> Self {
        CadOptions {
            engine: EngineOptions::default(),
            kind: ScoreKind::Cad,
            threads: 1,
        }
    }
}

/// Anomalies reported for one transition `t → t+1`.
#[derive(Debug, Clone)]
pub struct TransitionAnomalies {
    /// Transition index `t` (between instances `t` and `t+1`).
    pub t: usize,
    /// The anomalous edge set `E_t`, strongest first.
    pub edges: Vec<EdgeScore>,
    /// The anomalous node set `V_t` (endpoints of `E_t`), ascending.
    pub nodes: Vec<usize>,
}

/// Full detection output across a sequence.
#[derive(Debug, Clone)]
pub struct DetectionResult {
    /// The threshold `δ` that produced the anomaly sets (`None` for the
    /// top-k policy, which has no δ).
    pub delta: Option<f64>,
    /// Per-transition anomaly sets.
    pub transitions: Vec<TransitionAnomalies>,
}

impl DetectionResult {
    /// Total number of anomalous nodes across transitions (`Σ_t |V_t|`).
    pub fn total_nodes(&self) -> usize {
        self.transitions.iter().map(|t| t.nodes.len()).sum()
    }

    /// Transitions with a non-empty anomaly set.
    pub fn anomalous_transitions(&self) -> Vec<usize> {
        self.transitions
            .iter()
            .filter(|t| !t.edges.is_empty())
            .map(|t| t.t)
            .collect()
    }
}

/// Scorers that produce per-transition node anomaly scores.
///
/// Implemented by [`CadDetector`] (via `ΔN`) and by every baseline in
/// `cad-baselines`; ROC evaluation is generic over this trait.
pub trait NodeScorer {
    /// Method name for reporting ("CAD", "ACT", …).
    fn name(&self) -> &'static str;

    /// For each transition `t → t+1`, a score per node (higher = more
    /// anomalous). Output shape: `(T−1) × n`.
    fn node_scores(&self, seq: &GraphSequence) -> Result<Vec<Vec<f64>>>;
}

/// The CAD detector (paper Algorithm 1).
///
/// Computes one commute-time engine per graph instance (`O(n log n)`
/// with the approximate engine), scores the changed edges of every
/// transition, and cuts anomaly sets with a fixed or automatically
/// selected threshold.
#[derive(Debug, Clone, Default)]
pub struct CadDetector {
    opts: CadOptions,
}

impl CadDetector {
    /// Create a detector with the given options.
    pub fn new(opts: CadOptions) -> Self {
        CadDetector { opts }
    }

    /// The configured options.
    pub fn options(&self) -> &CadOptions {
        &self.opts
    }

    /// Edge scores for every transition, each sorted descending
    /// (steps 3–7 of Algorithm 1).
    ///
    /// Oracle construction (one per instance, the dominant cost) and
    /// per-transition scoring both run on the `cad_linalg::par` worker
    /// pool with [`CadOptions::threads`] workers. Work is striped by
    /// index and collected in order, so output is bit-identical for any
    /// thread count.
    pub fn score_sequence(&self, seq: &GraphSequence) -> Result<Vec<Vec<EdgeScore>>> {
        // ADJ never consults commute times; skip the engines entirely.
        if self.opts.kind == ScoreKind::Adj {
            return Ok((0..seq.n_transitions())
                .map(|t| crate::scores::adj_transition_scores(seq, t))
                .collect());
        }
        // One oracle per instance, reused by both adjacent transitions.
        let engines: Vec<SharedOracle> =
            cad_linalg::par::par_map_result(seq.graphs(), self.opts.threads, |_, g| {
                CommuteTimeEngine::compute(g, &self.opts.engine)
            })?;
        cad_linalg::par::par_tabulate_result(seq.n_transitions(), self.opts.threads, |t| {
            transition_edge_scores(
                seq,
                t,
                engines[t].as_ref(),
                engines[t + 1].as_ref(),
                self.opts.kind,
            )
        })
    }

    /// Run detection with an explicit threshold `δ` (Algorithm 1).
    pub fn detect(&self, seq: &GraphSequence, delta: f64) -> Result<DetectionResult> {
        self.detect_with_policy(seq, ThresholdPolicy::Fixed(delta))
    }

    /// Run detection with `δ` chosen so that `l` nodes are anomalous per
    /// transition on average (paper §4.2).
    pub fn detect_top_l(&self, seq: &GraphSequence, l: usize) -> Result<DetectionResult> {
        self.detect_with_policy(seq, ThresholdPolicy::TargetNodesPerTransition(l))
    }

    /// Run detection under any [`ThresholdPolicy`].
    pub fn detect_with_policy(
        &self,
        seq: &GraphSequence,
        policy: ThresholdPolicy,
    ) -> Result<DetectionResult> {
        let scored = self.score_sequence(seq)?;
        let (delta, counts) = apply_policy(&scored, seq.n_nodes(), seq.n_transitions(), policy);
        let transitions = scored
            .into_iter()
            .zip(counts)
            .enumerate()
            .map(|(t, (scores, k))| {
                let edges: Vec<EdgeScore> = scores.into_iter().take(k).collect();
                let mut nodes: Vec<usize> = edges.iter().flat_map(|e| [e.u, e.v]).collect();
                nodes.sort_unstable();
                nodes.dedup();
                TransitionAnomalies { t, edges, nodes }
            })
            .collect();
        Ok(DetectionResult { delta, transitions })
    }
}

impl NodeScorer for CadDetector {
    fn name(&self) -> &'static str {
        self.opts.kind.name()
    }

    fn node_scores(&self, seq: &GraphSequence) -> Result<Vec<Vec<f64>>> {
        let scored = self.score_sequence(seq)?;
        Ok(scored
            .iter()
            .map(|edges| node_scores_from_edges(seq.n_nodes(), edges))
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cad_graph::WeightedGraph;

    /// Two clusters with a weak tie; at t+1 a strong cross-cluster edge
    /// appears (anomalous) and one intra-cluster weight jitters (benign).
    fn two_cluster_seq() -> GraphSequence {
        let base = vec![
            (0, 1, 3.0),
            (0, 2, 3.0),
            (1, 2, 3.0),
            (3, 4, 3.0),
            (3, 5, 3.0),
            (4, 5, 3.0),
            (2, 3, 0.2),
        ];
        let mut after = base.clone();
        after[0] = (0, 1, 3.3); // benign jitter
        after.push((0, 5, 1.5)); // anomalous cross-cluster edge
        let g0 = WeightedGraph::from_edges(6, &base).unwrap();
        let g1 = WeightedGraph::from_edges(6, &after).unwrap();
        GraphSequence::new(vec![g0, g1]).unwrap()
    }

    #[test]
    fn detects_cross_cluster_edge() {
        let seq = two_cluster_seq();
        let det = CadDetector::new(CadOptions::default());
        let res = det.detect_top_l(&seq, 2).unwrap();
        assert_eq!(res.transitions.len(), 1);
        let tr = &res.transitions[0];
        assert_eq!((tr.edges[0].u, tr.edges[0].v), (0, 5));
        assert_eq!(tr.nodes, vec![0, 5]);
    }

    #[test]
    fn fixed_delta_controls_set_size() {
        let seq = two_cluster_seq();
        let det = CadDetector::new(CadOptions::default());
        let all = det.detect(&seq, f64::MIN_POSITIVE).unwrap();
        assert_eq!(all.transitions[0].edges.len(), 2); // both changed edges
        let none = det.detect(&seq, f64::MAX).unwrap();
        assert!(none.transitions[0].edges.is_empty());
        assert!(none.anomalous_transitions().is_empty());
    }

    #[test]
    fn node_scorer_interface() {
        let seq = two_cluster_seq();
        let det = CadDetector::new(CadOptions::default());
        assert_eq!(det.name(), "CAD");
        let ns = det.node_scores(&seq).unwrap();
        assert_eq!(ns.len(), 1);
        assert_eq!(ns[0].len(), 6);
        // Endpoints of the anomalous edge dominate.
        let max = ns[0].iter().cloned().fold(0.0f64, f64::max);
        assert!(ns[0][0] == max || ns[0][5] == max);
        assert!(ns[0][4] < 0.5 * max);
    }

    #[test]
    fn quiet_transition_reports_nothing() {
        let g0 = WeightedGraph::from_edges(3, &[(0, 1, 1.0), (1, 2, 1.0)]).unwrap();
        let seq = GraphSequence::new(vec![g0.clone(), g0.clone(), g0]).unwrap();
        let det = CadDetector::new(CadOptions::default());
        let res = det.detect_top_l(&seq, 3).unwrap();
        assert_eq!(res.total_nodes(), 0);
    }

    #[test]
    fn adj_ablation_misranks() {
        // ADJ ranks by |ΔA| only: the benign 0.3 jitter loses to the 1.5
        // cross edge here, so instead check ADJ assigns the jitter a score
        // equal to its weight change — no structural discount.
        let seq = two_cluster_seq();
        let det = CadDetector::new(CadOptions {
            kind: ScoreKind::Adj,
            ..Default::default()
        });
        assert_eq!(det.name(), "ADJ");
        let scored = det.score_sequence(&seq).unwrap();
        let jitter = scored[0].iter().find(|e| (e.u, e.v) == (0, 1)).unwrap();
        assert!((jitter.score - 0.3).abs() < 1e-9);
    }

    #[test]
    fn delta_reported_back() {
        let seq = two_cluster_seq();
        let det = CadDetector::new(CadOptions::default());
        let res = det.detect(&seq, 0.123).unwrap();
        assert_eq!(res.delta, Some(0.123));
        let auto = det.detect_top_l(&seq, 2).unwrap();
        let d = auto.delta.expect("auto policy reports a delta");
        assert!(d.is_finite() && d > 0.0);
        let topk = det
            .detect_with_policy(&seq, ThresholdPolicy::TopEdgesPerTransition(1))
            .unwrap();
        assert_eq!(topk.delta, None, "top-k policy has no delta");
    }

    #[test]
    fn thread_count_does_not_change_results() {
        let seq = two_cluster_seq();
        let serial = CadDetector::new(CadOptions::default())
            .detect_top_l(&seq, 2)
            .unwrap();
        for threads in [0, 2, 8] {
            let par = CadDetector::new(CadOptions {
                threads,
                ..Default::default()
            })
            .detect_top_l(&seq, 2)
            .unwrap();
            assert_eq!(
                par.delta.unwrap().to_bits(),
                serial.delta.unwrap().to_bits(),
                "threads={threads}"
            );
            for (a, b) in par.transitions.iter().zip(&serial.transitions) {
                assert_eq!(a.nodes, b.nodes);
                assert_eq!(a.edges.len(), b.edges.len());
                for (x, y) in a.edges.iter().zip(&b.edges) {
                    assert_eq!(x.score.to_bits(), y.score.to_bits());
                }
            }
        }
    }
}
