//! Per-edge anomaly scores `ΔE_t` (paper §2.5 / §3.2).

use crate::Result;
use cad_commute::DistanceOracle;
use cad_graph::GraphSequence;

/// Which factorization of the edge score to compute.
///
/// `Cad` is the paper's contribution; `Adj` and `Com` are the two
/// single-factor ablations discussed in §3.4 and evaluated as baselines
/// in Figure 6 (both satisfy the decomposability condition (2) but flag
/// benign edges).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScoreKind {
    /// `|ΔA| · |Δc|` — weight change times commute-time change.
    Cad,
    /// `|ΔA|` only.
    Adj,
    /// `|Δc|` only.
    Com,
}

impl ScoreKind {
    /// Short method name used in experiment output.
    pub fn name(&self) -> &'static str {
        match self {
            ScoreKind::Cad => "CAD",
            ScoreKind::Adj => "ADJ",
            ScoreKind::Com => "COM",
        }
    }
}

/// Score of one candidate edge at one transition.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EdgeScore {
    /// Smaller endpoint.
    pub u: usize,
    /// Larger endpoint.
    pub v: usize,
    /// The anomaly score (`ΔE_t` for the chosen [`ScoreKind`]).
    pub score: f64,
    /// `A_{t+1}(u, v) − A_t(u, v)` (signed).
    pub d_weight: f64,
    /// `c_{t+1}(u, v) − c_t(u, v)` (signed).
    pub d_commute: f64,
}

/// ADJ scores for transition `t → t+1`, sorted descending.
///
/// ADJ never looks at commute times, so this path skips engine
/// construction entirely — that is what makes ADJ the cheapest method in
/// the paper's scalability study (§4.1.3).
pub fn adj_transition_scores(seq: &GraphSequence, t: usize) -> Vec<EdgeScore> {
    let mut out: Vec<EdgeScore> = seq
        .changed_edges(t)
        .into_iter()
        .map(|(u, v, w_t, w_t1)| EdgeScore {
            u,
            v,
            score: (w_t1 - w_t).abs(),
            d_weight: w_t1 - w_t,
            d_commute: 0.0,
        })
        .collect();
    out.sort_by(|a, b| b.score.partial_cmp(&a.score).expect("scores are finite"));
    out
}

/// Compute edge scores for transition `t → t+1`, sorted descending.
///
/// The support is the set of edges whose weight or presence changed plus
/// (for [`ScoreKind::Com`]) every edge present at either instant: a CAD
/// or ADJ score is zero wherever `ΔA = 0`, so restricting to changed
/// edges loses nothing and keeps scoring `O(m)` — the key to the paper's
/// `O(n log n + m log m)` per-transition cost (§3.3). For COM the score
/// can be non-zero on unchanged edges; the paper keeps its evaluation to
/// the `O(m)` edge support as well (its COM runtime equals CAD's), which
/// is what we do.
pub fn transition_edge_scores(
    seq: &GraphSequence,
    t: usize,
    engine_t: &dyn DistanceOracle,
    engine_t1: &dyn DistanceOracle,
    kind: ScoreKind,
) -> Result<Vec<EdgeScore>> {
    pair_edge_scores(seq.graph(t), seq.graph(t + 1), engine_t, engine_t1, kind)
}

/// Like [`transition_edge_scores`] for an explicit pair of graph
/// instances — the entry point of the online detector, which never holds
/// a full [`GraphSequence`].
pub fn pair_edge_scores(
    g_t: &cad_graph::WeightedGraph,
    g_t1: &cad_graph::WeightedGraph,
    engine_t: &dyn DistanceOracle,
    engine_t1: &dyn DistanceOracle,
    kind: ScoreKind,
) -> Result<Vec<EdgeScore>> {
    let mut out = Vec::new();
    let a_t = g_t.adjacency();
    let a_t1 = g_t1.adjacency();

    let mut push = |u: usize, v: usize, w_t: f64, w_t1: f64| {
        let d_weight = w_t1 - w_t;
        let d_commute = engine_t1.distance(u, v) - engine_t.distance(u, v);
        let score = match kind {
            ScoreKind::Cad => d_weight.abs() * d_commute.abs(),
            ScoreKind::Adj => d_weight.abs(),
            ScoreKind::Com => d_commute.abs(),
        };
        out.push(EdgeScore {
            u,
            v,
            score,
            d_weight,
            d_commute,
        });
    };

    let diff = a_t1
        .linear_combination(1.0, a_t, -1.0)
        .map_err(cad_graph::GraphError::from)?;
    match kind {
        ScoreKind::Cad | ScoreKind::Adj => {
            for (u, v, _) in diff.iter_upper() {
                push(u, v, a_t.get(u, v), a_t1.get(u, v));
            }
        }
        ScoreKind::Com => {
            // Union of the supports of A_t and A_{t+1}.
            let union = a_t1
                .linear_combination(1.0, a_t, 1.0)
                .map_err(cad_graph::GraphError::from)?;
            for (u, v, _) in union.iter_upper() {
                push(u, v, a_t.get(u, v), a_t1.get(u, v));
            }
        }
    }

    out.sort_by(|a, b| b.score.partial_cmp(&a.score).expect("scores are finite"));
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cad_commute::{CommuteTimeEngine, EngineOptions, SharedOracle};
    use cad_graph::WeightedGraph;

    fn fixture() -> (GraphSequence, SharedOracle, SharedOracle) {
        // Path 0-1-2-3 at t; at t+1 a shortcut edge {0,3} appears and
        // {1,2} strengthens slightly.
        let g0 = WeightedGraph::from_edges(4, &[(0, 1, 2.0), (1, 2, 2.0), (2, 3, 2.0)]).unwrap();
        let g1 =
            WeightedGraph::from_edges(4, &[(0, 1, 2.0), (1, 2, 2.2), (2, 3, 2.0), (0, 3, 1.0)])
                .unwrap();
        let seq = GraphSequence::new(vec![g0, g1]).unwrap();
        let e0 = CommuteTimeEngine::compute(seq.graph(0), &EngineOptions::Exact).unwrap();
        let e1 = CommuteTimeEngine::compute(seq.graph(1), &EngineOptions::Exact).unwrap();
        (seq, e0, e1)
    }

    #[test]
    fn cad_ranks_bridge_edge_first() {
        let (seq, e0, e1) = fixture();
        let scores =
            transition_edge_scores(&seq, 0, e0.as_ref(), e1.as_ref(), ScoreKind::Cad).unwrap();
        assert_eq!(scores.len(), 2);
        assert_eq!((scores[0].u, scores[0].v), (0, 3));
        assert!(scores[0].score > 5.0 * scores[1].score);
    }

    #[test]
    fn score_factors_recorded() {
        let (seq, e0, e1) = fixture();
        let scores =
            transition_edge_scores(&seq, 0, e0.as_ref(), e1.as_ref(), ScoreKind::Cad).unwrap();
        let bridge = scores.iter().find(|s| (s.u, s.v) == (0, 3)).unwrap();
        assert_eq!(bridge.d_weight, 1.0);
        assert!(bridge.d_commute < 0.0, "new edge shrinks commute distance");
        assert!((bridge.score - bridge.d_weight.abs() * bridge.d_commute.abs()).abs() < 1e-12);
    }

    #[test]
    fn adj_ignores_structure() {
        let (seq, e0, e1) = fixture();
        let scores =
            transition_edge_scores(&seq, 0, e0.as_ref(), e1.as_ref(), ScoreKind::Adj).unwrap();
        let bridge = scores.iter().find(|s| (s.u, s.v) == (0, 3)).unwrap();
        let benign = scores.iter().find(|s| (s.u, s.v) == (1, 2)).unwrap();
        assert_eq!(bridge.score, 1.0);
        assert!((benign.score - 0.2).abs() < 1e-12);
    }

    #[test]
    fn com_covers_unchanged_edges() {
        let (seq, e0, e1) = fixture();
        let scores =
            transition_edge_scores(&seq, 0, e0.as_ref(), e1.as_ref(), ScoreKind::Com).unwrap();
        // All four union edges scored, including unchanged {0,1}, {2,3}.
        assert_eq!(scores.len(), 4);
        let unchanged = scores.iter().find(|s| (s.u, s.v) == (0, 1)).unwrap();
        assert!(
            unchanged.score > 0.0,
            "commute time changed even where weight did not"
        );
    }

    #[test]
    fn no_changes_no_cad_scores() {
        let g = WeightedGraph::from_edges(3, &[(0, 1, 1.0), (1, 2, 1.0)]).unwrap();
        let seq = GraphSequence::new(vec![g.clone(), g]).unwrap();
        let e0 = CommuteTimeEngine::compute(seq.graph(0), &EngineOptions::Exact).unwrap();
        let e1 = CommuteTimeEngine::compute(seq.graph(1), &EngineOptions::Exact).unwrap();
        let scores =
            transition_edge_scores(&seq, 0, e0.as_ref(), e1.as_ref(), ScoreKind::Cad).unwrap();
        assert!(scores.is_empty());
    }

    #[test]
    fn scores_sorted_descending() {
        let (seq, e0, e1) = fixture();
        for kind in [ScoreKind::Cad, ScoreKind::Adj, ScoreKind::Com] {
            let scores = transition_edge_scores(&seq, 0, e0.as_ref(), e1.as_ref(), kind).unwrap();
            assert!(
                scores.windows(2).all(|w| w[0].score >= w[1].score),
                "{kind:?}"
            );
        }
    }

    #[test]
    fn kind_names() {
        assert_eq!(ScoreKind::Cad.name(), "CAD");
        assert_eq!(ScoreKind::Adj.name(), "ADJ");
        assert_eq!(ScoreKind::Com.name(), "COM");
    }
}
