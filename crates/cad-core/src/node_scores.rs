//! Node anomaly scores `ΔN_t` (paper §3.5.1).
//!
//! For comparison with node-attribution methods like ACT, the paper
//! aggregates edge scores onto nodes:
//!
//! ```text
//! ΔN_t(i) = Σ_j ΔE_t(e_{i,j})
//! ```
//!
//! This is the quantity behind Table 2, Figure 3 and every ROC curve of
//! §4.1.

use crate::scores::EdgeScore;

/// Aggregate edge scores into per-node scores (length `n_nodes`).
pub fn node_scores_from_edges(n_nodes: usize, edges: &[EdgeScore]) -> Vec<f64> {
    let mut out = vec![0.0; n_nodes];
    for e in edges {
        out[e.u] += e.score;
        out[e.v] += e.score;
    }
    out
}

/// Normalize scores by their maximum (used for the Figure 3 comparison;
/// all-zero input stays all-zero).
pub fn normalize_by_max(scores: &[f64]) -> Vec<f64> {
    let max = scores.iter().fold(0.0f64, |m, &v| m.max(v));
    if max <= 0.0 {
        return scores.to_vec();
    }
    scores.iter().map(|&v| v / max).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn e(u: usize, v: usize, score: f64) -> EdgeScore {
        EdgeScore {
            u,
            v,
            score,
            d_weight: 0.0,
            d_commute: 0.0,
        }
    }

    #[test]
    fn sums_incident_edge_scores() {
        let edges = vec![e(0, 1, 2.0), e(1, 2, 3.0)];
        let n = node_scores_from_edges(4, &edges);
        assert_eq!(n, vec![2.0, 5.0, 3.0, 0.0]);
    }

    #[test]
    fn empty_edges_all_zero() {
        assert_eq!(node_scores_from_edges(3, &[]), vec![0.0; 3]);
    }

    #[test]
    fn normalize_scales_to_unit_max() {
        let n = normalize_by_max(&[2.0, 4.0, 1.0]);
        assert_eq!(n, vec![0.5, 1.0, 0.25]);
    }

    #[test]
    fn normalize_handles_all_zero() {
        assert_eq!(normalize_by_max(&[0.0, 0.0]), vec![0.0, 0.0]);
    }
}
