//! Human-readable rendering of detection results.
//!
//! Shared by the CLI and the examples: turns a
//! [`crate::DetectionResult`] into an analyst-facing report, with an
//! optional node labeller so applications can print "Kenneth Lay"
//! instead of "node 0".

use crate::detector::DetectionResult;
use std::fmt::Write as _;

/// Options for [`render_report`].
pub struct ReportOptions<'a> {
    /// Maximum edges printed per transition.
    pub max_edges: usize,
    /// Skip transitions with empty anomaly sets.
    pub skip_quiet: bool,
    /// Node labeller (defaults to the index).
    pub label: Option<&'a dyn Fn(usize) -> String>,
}

impl Default for ReportOptions<'_> {
    fn default() -> Self {
        ReportOptions {
            max_edges: 10,
            skip_quiet: true,
            label: None,
        }
    }
}

/// Render a detection result as a multi-line report string.
pub fn render_report(result: &DetectionResult, opts: &ReportOptions<'_>) -> String {
    let label = |n: usize| match opts.label {
        Some(f) => f(n),
        None => n.to_string(),
    };
    let mut out = String::new();
    let delta = match result.delta {
        Some(d) => format!("{d:.6}"),
        None => "n/a (top-k policy)".to_string(),
    };
    let _ = writeln!(
        out,
        "detection report: δ = {}, {} transitions, {} anomalous",
        delta,
        result.transitions.len(),
        result.anomalous_transitions().len()
    );
    for tr in &result.transitions {
        if tr.edges.is_empty() && opts.skip_quiet {
            continue;
        }
        let _ = writeln!(out, "transition {} -> {}:", tr.t, tr.t + 1);
        if tr.edges.is_empty() {
            let _ = writeln!(out, "  (quiet)");
            continue;
        }
        for e in tr.edges.iter().take(opts.max_edges) {
            let _ = writeln!(
                out,
                "  {} -- {}  ΔE {:.4} (ΔA {:+.3}, Δc {:+.3})",
                label(e.u),
                label(e.v),
                e.score,
                e.d_weight,
                e.d_commute
            );
        }
        if tr.edges.len() > opts.max_edges {
            let _ = writeln!(out, "  ... {} more edges", tr.edges.len() - opts.max_edges);
        }
        let names: Vec<String> = tr.nodes.iter().map(|&n| label(n)).collect();
        let _ = writeln!(out, "  nodes: {}", names.join(", "));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::detector::TransitionAnomalies;
    use crate::scores::EdgeScore;

    fn sample() -> DetectionResult {
        let e = EdgeScore {
            u: 0,
            v: 2,
            score: 3.5,
            d_weight: 1.0,
            d_commute: -3.5,
        };
        DetectionResult {
            delta: Some(1.25),
            transitions: vec![
                TransitionAnomalies {
                    t: 0,
                    edges: vec![],
                    nodes: vec![],
                },
                TransitionAnomalies {
                    t: 1,
                    edges: vec![e],
                    nodes: vec![0, 2],
                },
            ],
        }
    }

    #[test]
    fn default_report_skips_quiet() {
        let text = render_report(&sample(), &ReportOptions::default());
        assert!(text.contains("transition 1 -> 2"));
        assert!(!text.contains("transition 0 -> 1"));
        assert!(text.contains("0 -- 2"));
        assert!(text.contains("nodes: 0, 2"));
    }

    #[test]
    fn missing_delta_rendered_as_na() {
        let mut r = sample();
        r.delta = None;
        let text = render_report(&r, &ReportOptions::default());
        assert!(text.contains("δ = n/a (top-k policy)"));
    }

    #[test]
    fn quiet_transitions_shown_when_requested() {
        let opts = ReportOptions {
            skip_quiet: false,
            ..Default::default()
        };
        let text = render_report(&sample(), &opts);
        assert!(text.contains("(quiet)"));
    }

    #[test]
    fn labels_applied() {
        let label = |n: usize| format!("employee-{n}");
        let opts = ReportOptions {
            label: Some(&label),
            ..Default::default()
        };
        let text = render_report(&sample(), &opts);
        assert!(text.contains("employee-0 -- employee-2"));
        assert!(text.contains("nodes: employee-0, employee-2"));
    }

    #[test]
    fn edge_cap_with_ellipsis() {
        let mut r = sample();
        let e = r.transitions[1].edges[0];
        r.transitions[1].edges = vec![e; 5];
        let opts = ReportOptions {
            max_edges: 2,
            ..Default::default()
        };
        let text = render_report(&r, &opts);
        assert!(text.contains("... 3 more edges"));
    }
}
