//! Argument parsing for the `cad` binary (dependency-free).

use std::collections::HashMap;

/// Usage text printed on parse errors and `--help`.
pub const USAGE: &str = "\
cad — localize anomalous changes in time-evolving graphs (SIGMOD'14 CAD)

USAGE:
  cad detect   --input <seq.txt|pack.cadpack> [--l <n> | --delta <x>]
               [--kind cad|adj|com] [--engine auto|exact|approx|corrected]
               [--k <dim>] [--threads <n>] [--trace] [--profile <trace.json>]
               [--metrics-json <report.json>] [--store-dir <dir>]
               [--partition <blocks> [--partition-mode auto|components|bfs]]
  cad score    --input <seq.txt> [--kind cad|adj|com] [--top <n>] [--threads <n>]
  cad watch    [--input -|<dir>|<seq.txt>] [--l <n> | --delta <x>]
               [--kind cad|adj|com] [--engine auto|exact|approx|corrected]
               [--k <dim>] [--events <log.ndjson>] [--metrics-addr <ip:port>]
               [--max-instances <n>] [--poll-ms <ms>] [--hold-ms <ms>]
               [--store-dir <dir>] [--update-mode rebuild|incremental|auto]
               [--access-log <path|->]
  cad profile  <command and its flags> [--out <trace.json>]
  cad serve    [--addr <ip:port>] [--workers <n>] [--max-body <bytes>]
               [--max-sessions <n>] [--store-dir <dir>]
               [--update-mode rebuild|incremental|auto]
               [--access-log <path|->] [--journal-dir <dir>]
               [--journal-fsync always|never|every-<n>]
               [--max-push-rps <rate>]
  cad generate --dataset toy|gmm|enron|dblp|precip [--out <seq.txt>] [--seed <s>]
  cad pack     --input <seq.txt> --out <pack.cadpack> [--label <text>]
  cad inspect  --input <pack.cadpack>
  cad store    gc --store-dir <dir> --max-bytes <n>
  cad journal  inspect|compact <journal-dir>
  cad validate-report --input <report.json>
  cad bench-diff <old.json> <new.json> [--threshold <ratio>] [--update]

The input format is a plain edge list:
  nodes 17
  instance
  0 1 3.0
  ...
  instance
  ...

detect   prints the anomalous edge/node sets per transition
score    prints ranked edge scores per transition
watch    streams instances (stdin NDJSON `-`, a directory to tail, or a
         sequence file to replay), detects per arriving transition with a
         sliding oracle cache, and appends one NDJSON event per
         transition; --metrics-addr serves Prometheus /metrics + /healthz
serve    runs the HTTP detection service: POST /v1/sequences creates a
         session, POST /v1/sequences/{id}/snapshots pushes instances
         (JSON edge lists or binary .cadpack edge deltas) and returns
         the transition's anomaly set; GET /metrics, GET /healthz and
         POST /v1/shutdown (graceful drain) round it out. A full worker
         queue answers 503 + Retry-After instead of queueing unboundedly.
         --access-log appends one NDJSON line per request (trace id,
         status, queue wait, latency); GET /v1/debug/trace?limit=N dumps
         the newest flight-recorder events
generate writes a synthetic workload (for trying the tool end to end)
pack     converts a sequence file into a compact checksummed binary
         `.cadpack` (base snapshot + per-transition edge deltas);
         detect accepts `.cadpack` inputs directly
inspect  prints a pack's header, sizes and integrity status without
         loading the graphs into a detector
store gc shrinks a --store-dir oracle cache to --max-bytes by deleting
         the least-recently-used artifacts first, printing what it freed
journal inspect prints every session journal under <journal-dir>
         (segments, record counts, torn tails) without modifying it;
         journal compact replays each session offline and rewrites its
         journal down to a single checkpoint segment — the same
         compaction serve runs in the background, forced now
validate-report checks a --metrics-json report against the schema
bench-diff compares two bench reports metric-by-metric and exits 4 when
         a wall-time metric regresses past --threshold (default 1.3);
         --update blesses <new.json> as the baseline instead
profile  runs the wrapped command with tracing active and writes a
         Chrome-trace/Perfetto timeline (trace-event JSON) of its spans
         and flight-recorder events to --out (default trace.json; when
         the trailing flags are `--out <path>` they belong to profile,
         everything else is passed to the wrapped command verbatim)

--trace prints a nested per-phase timing tree (plus solver and scoring
digests) to stderr after detection; --metrics-json writes the same data
as a schema-versioned machine-readable JSON report; --profile <path>
additionally writes the Perfetto timeline of the run (detection output
is bit-identical with or without it).

--partition <blocks> splits the graph into blocks and solves each block
independently (block-partitioned oracle): connected components are
exact; BFS splits of connected graphs stitch cross-block distances
through a boundary interface solve and track the monolithic oracle to
a documented relative tolerance. --partition-mode picks how blocks are
formed (`auto` uses components when there are enough, else bfs) and
requires --partition.

--store-dir <dir> keeps a content-addressed oracle cache in <dir>:
detect/watch reuse an oracle artifact whenever the (snapshot, engine,
parameters) key matches a previous build, skipping the build entirely.

--journal-dir <dir> makes serve durable: each session appends its
lifecycle (create, per-push edge delta, delete) to a per-session
write-ahead log under <dir> before the response is sent, and a restart
replays the journals to rebuild every session bit-identically — a torn
record from a crash is dropped at the last complete frame.
--journal-fsync picks when appends reach the disk: `always` (the
default) survives power loss, `every-<n>` bounds loss to n records,
`never` leaves flushing to the OS (sealed segments still sync).
--max-push-rps <rate> rate-limits snapshot pushes per session with a
token bucket; over-limit pushes get 429 + Retry-After.

--update-mode picks the oracle lifecycle for streaming detection
(watch, and the serve default new sessions inherit): `rebuild` builds a
fresh oracle per snapshot (the default; bit-identical to batch),
`incremental` applies each edge delta to the previous oracle in place
(falling back to a rebuild on structural changes), `auto` is
incremental with a periodic full refresh.";

/// Which detector scoring to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum KindArg {
    /// The CAD product score.
    #[default]
    Cad,
    /// Weight change only.
    Adj,
    /// Commute change only.
    Com,
}

/// Which commute engine to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EngineArg {
    /// Exact below 512 nodes, embedding above.
    #[default]
    Auto,
    /// Always exact.
    Exact,
    /// Always the embedding.
    Approx,
    /// Exact amplified (von Luxburg-corrected) commute distance.
    Corrected,
}

/// How `--partition` forms blocks (`--partition-mode`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PartitionModeArg {
    /// Components when the graph has enough, BFS otherwise.
    #[default]
    Auto,
    /// One block per connected component (exact).
    Components,
    /// Greedy balanced BFS splitter (approximate on connected graphs).
    Bfs,
}

/// Oracle lifecycle for streaming detection (`--update-mode`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum UpdateModeArg {
    /// Fresh oracle per snapshot (bit-identical to batch).
    #[default]
    Rebuild,
    /// Delta-update the previous oracle; rebuild only on fallback.
    Incremental,
    /// Incremental with a periodic full refresh.
    Auto,
}

/// The `cad journal` action.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JournalAction {
    /// Summarize every session journal without modifying anything.
    Inspect,
    /// Replay each session and rewrite its journal to one checkpoint.
    Compact,
}

/// A parsed command.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// Run detection and print anomaly sets.
    Detect {
        /// Input sequence path.
        input: String,
        /// Target nodes/transition (`--l`); mutually exclusive with delta.
        l: Option<usize>,
        /// Explicit threshold (`--delta`).
        delta: Option<f64>,
        /// Score kind.
        kind: KindArg,
        /// Engine selection.
        engine: EngineArg,
        /// Embedding dimension.
        k: usize,
        /// Worker threads (1 = sequential, 0 = one per core).
        threads: usize,
        /// Print the per-phase timing tree after detection (`--trace`).
        trace: bool,
        /// Write the machine-readable JSON report here
        /// (`--metrics-json <path>`).
        metrics_json: Option<String>,
        /// Oracle-cache directory (`--store-dir`); no caching when
        /// absent.
        store_dir: Option<String>,
        /// Write a Chrome-trace/Perfetto timeline of the run here
        /// (`--profile <path>`).
        profile: Option<String>,
        /// Block-partitioned oracle target block count (`--partition`);
        /// monolithic when absent.
        partition: Option<usize>,
        /// How partition blocks are formed (`--partition-mode`).
        partition_mode: PartitionModeArg,
    },
    /// Print ranked edge scores.
    Score {
        /// Input sequence path.
        input: String,
        /// Score kind.
        kind: KindArg,
        /// How many edges to print per transition.
        top: usize,
        /// Worker threads (1 = sequential, 0 = one per core).
        threads: usize,
    },
    /// Write a synthetic workload.
    Generate {
        /// Dataset name.
        dataset: String,
        /// Output path (stdout when absent).
        out: Option<String>,
        /// Generator seed.
        seed: u64,
    },
    /// Validate a `--metrics-json` report against the schema.
    ValidateReport {
        /// Report path.
        input: String,
    },
    /// Stream instances and detect per arriving transition.
    Watch {
        /// `-` for stdin NDJSON, a directory to tail, or a sequence
        /// file to replay.
        input: String,
        /// Target nodes/transition (`--l`); mutually exclusive with delta.
        l: Option<usize>,
        /// Fixed threshold (`--delta`).
        delta: Option<f64>,
        /// Score kind.
        kind: KindArg,
        /// Engine selection.
        engine: EngineArg,
        /// Embedding dimension.
        k: usize,
        /// Append NDJSON events here (stdout when absent).
        events: Option<String>,
        /// Serve Prometheus `/metrics` + `/healthz` at this address.
        metrics_addr: Option<String>,
        /// Stop after this many instances (endless when absent).
        max_instances: Option<usize>,
        /// Directory-tail poll interval in milliseconds.
        poll_ms: u64,
        /// Keep the process (and exporter) alive this long after the
        /// input ends.
        hold_ms: u64,
        /// Oracle-cache directory (`--store-dir`); no caching when
        /// absent.
        store_dir: Option<String>,
        /// Oracle lifecycle (`--update-mode`).
        update_mode: UpdateModeArg,
        /// NDJSON access-log destination (`--access-log`): a file path,
        /// `-` for stderr, disabled when absent.
        access_log: Option<String>,
    },
    /// Convert a sequence file into a `.cadpack`.
    Pack {
        /// Input sequence path.
        input: String,
        /// Output pack path.
        out: String,
        /// Free-form label stored in the pack header.
        label: String,
    },
    /// Print a pack's header and integrity status.
    Inspect {
        /// Pack path.
        input: String,
    },
    /// Run the HTTP detection service.
    Serve {
        /// Listen address (`--addr`), e.g. `127.0.0.1:8080`; port 0
        /// picks a free port.
        addr: String,
        /// Worker-thread count (`--workers`).
        workers: usize,
        /// Maximum request body size in bytes (`--max-body`).
        max_body: usize,
        /// Maximum live sessions (`--max-sessions`).
        max_sessions: usize,
        /// Oracle-cache directory (`--store-dir`); no caching when
        /// absent.
        store_dir: Option<String>,
        /// Default oracle lifecycle for new sessions (`--update-mode`).
        update_mode: UpdateModeArg,
        /// NDJSON access-log destination (`--access-log`): a file path,
        /// `-` for stderr, disabled when absent.
        access_log: Option<String>,
        /// Write-ahead-log root (`--journal-dir`); sessions are not
        /// durable when absent.
        journal_dir: Option<String>,
        /// Journal fsync policy name (`--journal-fsync`):
        /// `always` | `never` | `every-<n>`.
        journal_fsync: Option<String>,
        /// Per-session push rate limit in requests/second
        /// (`--max-push-rps`); unlimited when absent.
        max_push_rps: Option<f64>,
    },
    /// Shrink an oracle cache to a byte budget (LRU eviction).
    StoreGc {
        /// Cache directory (`--store-dir`).
        store_dir: String,
        /// Byte budget the cache is trimmed down to (`--max-bytes`).
        max_bytes: u64,
    },
    /// Inspect or compact the write-ahead journals under a directory.
    Journal {
        /// What to do with the journals.
        action: JournalAction,
        /// Journal root directory (`serve --journal-dir`).
        dir: String,
    },
    /// Compare two bench reports and gate on wall-time regressions.
    BenchDiff {
        /// Baseline report path.
        old: String,
        /// Candidate report path.
        new: String,
        /// Regression gate: fail when `new/old` exceeds this ratio.
        threshold: f64,
        /// Bless `<new>` as the baseline instead of gating.
        update: bool,
    },
    /// Run another command under tracing and write its timeline.
    Profile {
        /// The wrapped command.
        inner: Box<Command>,
        /// Trace-event JSON output path (`--out`).
        out: String,
    },
}

/// Parsed command line.
#[derive(Debug, Clone, PartialEq)]
pub struct Cli {
    /// The selected command.
    pub command: Command,
}

impl Cli {
    /// Parse a token stream (without the program name).
    pub fn parse<I: IntoIterator<Item = String>>(args: I) -> Result<Self, String> {
        let mut iter = args.into_iter();
        let sub = iter.next().ok_or_else(|| USAGE.to_string())?;
        if sub == "--help" || sub == "-h" || sub == "help" {
            return Err(USAGE.to_string());
        }
        if sub == "profile" {
            // Everything after `profile` is the wrapped command, except
            // a *trailing* `--out <path>` pair, which names the trace
            // file (trailing so a wrapped `generate --out ...` keeps
            // its own flag).
            let mut rest: Vec<String> = iter.collect();
            let mut out = "trace.json".to_string();
            if rest.len() >= 2 && rest[rest.len() - 2] == "--out" {
                out = rest.pop().expect("length checked");
                rest.pop();
            }
            match rest.first().map(String::as_str) {
                None => return Err(format!("profile needs a command to run\n\n{USAGE}")),
                Some("profile") => {
                    return Err(format!("profile cannot wrap itself\n\n{USAGE}"));
                }
                Some(_) => {}
            }
            let inner = Cli::parse(rest)?;
            return Ok(Cli {
                command: Command::Profile {
                    inner: Box::new(inner.command),
                    out,
                },
            });
        }
        // Flags that are bare switches (no value token follows).
        const SWITCHES: &[&str] = &["trace", "update"];
        let mut flags: HashMap<String, String> = HashMap::new();
        let mut positionals: Vec<String> = Vec::new();
        let mut pending: Option<String> = None;
        for tok in iter {
            match pending.take() {
                Some(key) => {
                    flags.insert(key, tok);
                }
                None => match tok.strip_prefix("--") {
                    Some(key) => {
                        if SWITCHES.contains(&key) {
                            flags.insert(key.to_string(), "true".to_string());
                        } else {
                            pending = Some(key.to_string());
                        }
                    }
                    None => positionals.push(tok),
                },
            }
        }
        if let Some(key) = pending {
            return Err(format!("flag `--{key}` is missing a value\n\n{USAGE}"));
        }
        // Only bench-diff (report paths), store (the `gc` action) and
        // journal (action + directory) take positional operands.
        if sub != "bench-diff" && sub != "store" && sub != "journal" {
            if let Some(p) = positionals.first() {
                return Err(format!("unexpected argument `{p}`\n\n{USAGE}"));
            }
        }

        let get = |k: &str| flags.get(k).cloned();
        let parse_threads = |flags: &HashMap<String, String>| -> Result<usize, String> {
            match flags.get("threads") {
                Some(v) => v.parse().map_err(|_| format!("invalid --threads `{v}`")),
                None => Ok(1),
            }
        };
        let parse_kind = |flags: &HashMap<String, String>| -> Result<KindArg, String> {
            match flags.get("kind").map(String::as_str) {
                None | Some("cad") => Ok(KindArg::Cad),
                Some("adj") => Ok(KindArg::Adj),
                Some("com") => Ok(KindArg::Com),
                Some(other) => Err(format!("unknown --kind `{other}` (cad|adj|com)")),
            }
        };
        let parse_engine = |flags: &HashMap<String, String>| -> Result<EngineArg, String> {
            match flags.get("engine").map(String::as_str) {
                None | Some("auto") => Ok(EngineArg::Auto),
                Some("exact") => Ok(EngineArg::Exact),
                Some("approx") => Ok(EngineArg::Approx),
                Some("corrected") => Ok(EngineArg::Corrected),
                Some(other) => Err(format!(
                    "unknown --engine `{other}` (auto|exact|approx|corrected)"
                )),
            }
        };
        let parse_l_delta =
            |flags: &HashMap<String, String>| -> Result<(Option<usize>, Option<f64>), String> {
                let l = match flags.get("l") {
                    Some(v) => Some(v.parse().map_err(|_| format!("invalid --l `{v}`"))?),
                    None => None,
                };
                let delta = match flags.get("delta") {
                    Some(v) => Some(v.parse().map_err(|_| format!("invalid --delta `{v}`"))?),
                    None => None,
                };
                if l.is_some() && delta.is_some() {
                    return Err("--l and --delta are mutually exclusive".into());
                }
                Ok((l, delta))
            };
        let parse_update_mode = |flags: &HashMap<String, String>| -> Result<UpdateModeArg, String> {
            match flags.get("update-mode").map(String::as_str) {
                None | Some("rebuild") => Ok(UpdateModeArg::Rebuild),
                Some("incremental") => Ok(UpdateModeArg::Incremental),
                Some("auto") => Ok(UpdateModeArg::Auto),
                Some(other) => Err(format!(
                    "unknown --update-mode `{other}` (rebuild|incremental|auto)"
                )),
            }
        };
        let parse_partition =
            |flags: &HashMap<String, String>| -> Result<(Option<usize>, PartitionModeArg), String> {
                let blocks = match flags.get("partition") {
                    Some(v) => {
                        let b: usize = v
                            .parse()
                            .map_err(|_| format!("invalid --partition `{v}`"))?;
                        if b == 0 {
                            return Err("--partition must be ≥ 1".into());
                        }
                        Some(b)
                    }
                    None => None,
                };
                let mode = match flags.get("partition-mode").map(String::as_str) {
                    None => PartitionModeArg::Auto,
                    Some("auto") => PartitionModeArg::Auto,
                    Some("components") => PartitionModeArg::Components,
                    Some("bfs") => PartitionModeArg::Bfs,
                    Some(other) => {
                        return Err(format!(
                            "unknown --partition-mode `{other}` (auto|components|bfs)"
                        ))
                    }
                };
                if blocks.is_none() && flags.contains_key("partition-mode") {
                    return Err("--partition-mode requires --partition <blocks>".into());
                }
                Ok((blocks, mode))
            };
        let parse_k = |flags: &HashMap<String, String>| -> Result<usize, String> {
            match flags.get("k") {
                Some(v) => v.parse().map_err(|_| format!("invalid --k `{v}`")),
                None => Ok(50),
            }
        };

        let command = match sub.as_str() {
            "detect" => {
                let input =
                    get("input").ok_or_else(|| format!("detect needs --input\n\n{USAGE}"))?;
                let (l, delta) = parse_l_delta(&flags)?;
                let (partition, partition_mode) = parse_partition(&flags)?;
                Command::Detect {
                    input,
                    l,
                    delta,
                    kind: parse_kind(&flags)?,
                    engine: parse_engine(&flags)?,
                    k: parse_k(&flags)?,
                    threads: parse_threads(&flags)?,
                    trace: flags.contains_key("trace"),
                    metrics_json: get("metrics-json"),
                    store_dir: get("store-dir"),
                    profile: get("profile"),
                    partition,
                    partition_mode,
                }
            }
            "watch" => {
                let (l, delta) = parse_l_delta(&flags)?;
                let parse_u64 = |key: &str, default: u64| -> Result<u64, String> {
                    match flags.get(key) {
                        Some(v) => v.parse().map_err(|_| format!("invalid --{key} `{v}`")),
                        None => Ok(default),
                    }
                };
                let max_instances = match get("max-instances") {
                    Some(v) => Some(
                        v.parse()
                            .map_err(|_| format!("invalid --max-instances `{v}`"))?,
                    ),
                    None => None,
                };
                Command::Watch {
                    input: get("input").unwrap_or_else(|| "-".to_string()),
                    l,
                    delta,
                    kind: parse_kind(&flags)?,
                    engine: parse_engine(&flags)?,
                    k: parse_k(&flags)?,
                    events: get("events"),
                    metrics_addr: get("metrics-addr"),
                    max_instances,
                    poll_ms: parse_u64("poll-ms", 200)?,
                    hold_ms: parse_u64("hold-ms", 0)?,
                    store_dir: get("store-dir"),
                    update_mode: parse_update_mode(&flags)?,
                    access_log: get("access-log"),
                }
            }
            "pack" => {
                let input = get("input").ok_or_else(|| format!("pack needs --input\n\n{USAGE}"))?;
                let out = get("out").ok_or_else(|| format!("pack needs --out\n\n{USAGE}"))?;
                Command::Pack {
                    input,
                    out,
                    label: get("label").unwrap_or_default(),
                }
            }
            "inspect" => {
                let input =
                    get("input").ok_or_else(|| format!("inspect needs --input\n\n{USAGE}"))?;
                Command::Inspect { input }
            }
            "bench-diff" => {
                if positionals.len() != 2 {
                    return Err(format!(
                        "bench-diff needs exactly two report paths, got {}\n\n{USAGE}",
                        positionals.len()
                    ));
                }
                let threshold = match get("threshold") {
                    Some(v) => {
                        let t: f64 = v
                            .parse()
                            .map_err(|_| format!("invalid --threshold `{v}`"))?;
                        if !(t.is_finite() && t >= 1.0) {
                            return Err(format!("--threshold must be ≥ 1.0, got `{v}`"));
                        }
                        t
                    }
                    None => 1.3,
                };
                Command::BenchDiff {
                    old: positionals[0].clone(),
                    new: positionals[1].clone(),
                    threshold,
                    update: flags.contains_key("update"),
                }
            }
            "score" => {
                let input =
                    get("input").ok_or_else(|| format!("score needs --input\n\n{USAGE}"))?;
                let top = match get("top") {
                    Some(v) => v.parse().map_err(|_| format!("invalid --top `{v}`"))?,
                    None => 20,
                };
                Command::Score {
                    input,
                    kind: parse_kind(&flags)?,
                    top,
                    threads: parse_threads(&flags)?,
                }
            }
            "generate" => {
                let dataset =
                    get("dataset").ok_or_else(|| format!("generate needs --dataset\n\n{USAGE}"))?;
                let seed = match get("seed") {
                    Some(v) => v.parse().map_err(|_| format!("invalid --seed `{v}`"))?,
                    None => 7,
                };
                Command::Generate {
                    dataset,
                    out: get("out"),
                    seed,
                }
            }
            "serve" => {
                let parse_usize = |key: &str, default: usize| -> Result<usize, String> {
                    match flags.get(key) {
                        Some(v) => v.parse().map_err(|_| format!("invalid --{key} `{v}`")),
                        None => Ok(default),
                    }
                };
                let workers = parse_usize("workers", 4)?;
                if workers == 0 {
                    return Err("--workers must be ≥ 1".into());
                }
                let journal_dir = get("journal-dir");
                let journal_fsync = match get("journal-fsync") {
                    None => None,
                    Some(v) => {
                        // Mirrors cad-journal's FsyncPolicy::from_name
                        // grammar so bad values fail at flag parsing.
                        let every = v
                            .strip_prefix("every-")
                            .and_then(|n| n.parse::<u32>().ok())
                            .is_some_and(|n| n >= 1);
                        if !(v == "always" || v == "never" || every) {
                            return Err(format!(
                                "unknown --journal-fsync `{v}` (always|never|every-<n>)"
                            ));
                        }
                        if journal_dir.is_none() {
                            return Err("--journal-fsync requires --journal-dir <dir>".into());
                        }
                        Some(v)
                    }
                };
                let max_push_rps = match get("max-push-rps") {
                    None => None,
                    Some(v) => {
                        let r: f64 = v
                            .parse()
                            .map_err(|_| format!("invalid --max-push-rps `{v}`"))?;
                        if !(r.is_finite() && r > 0.0) {
                            return Err(format!("--max-push-rps must be > 0, got `{v}`"));
                        }
                        Some(r)
                    }
                };
                Command::Serve {
                    addr: get("addr").unwrap_or_else(|| "127.0.0.1:8080".to_string()),
                    workers,
                    max_body: parse_usize("max-body", 4 * 1024 * 1024)?,
                    max_sessions: parse_usize("max-sessions", 256)?,
                    store_dir: get("store-dir"),
                    update_mode: parse_update_mode(&flags)?,
                    access_log: get("access-log"),
                    journal_dir,
                    journal_fsync,
                    max_push_rps,
                }
            }
            "journal" => {
                let action = match positionals.first().map(String::as_str) {
                    Some("inspect") => JournalAction::Inspect,
                    Some("compact") => JournalAction::Compact,
                    _ => {
                        return Err(format!(
                            "journal needs `inspect <dir>` or `compact <dir>`\n\n{USAGE}"
                        ))
                    }
                };
                if positionals.len() != 2 {
                    return Err(format!(
                        "journal {} needs exactly one <journal-dir>, got {}\n\n{USAGE}",
                        positionals[0],
                        positionals.len() - 1
                    ));
                }
                Command::Journal {
                    action,
                    dir: positionals[1].clone(),
                }
            }
            "store" => {
                match positionals.first().map(String::as_str) {
                    Some("gc") if positionals.len() == 1 => {}
                    _ => return Err(format!("store needs the `gc` action\n\n{USAGE}")),
                }
                let store_dir = get("store-dir")
                    .ok_or_else(|| format!("store gc needs --store-dir\n\n{USAGE}"))?;
                let max_bytes = match get("max-bytes") {
                    Some(v) => v
                        .parse()
                        .map_err(|_| format!("invalid --max-bytes `{v}`"))?,
                    None => return Err(format!("store gc needs --max-bytes\n\n{USAGE}")),
                };
                Command::StoreGc {
                    store_dir,
                    max_bytes,
                }
            }
            "validate-report" => {
                let input = get("input")
                    .ok_or_else(|| format!("validate-report needs --input\n\n{USAGE}"))?;
                Command::ValidateReport { input }
            }
            other => return Err(format!("unknown command `{other}`\n\n{USAGE}")),
        };
        Ok(Cli { command })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(s: &str) -> Result<Cli, String> {
        Cli::parse(s.split_whitespace().map(String::from))
    }

    #[test]
    fn detect_defaults() {
        let cli = parse("detect --input seq.txt").unwrap();
        match cli.command {
            Command::Detect {
                input,
                l,
                delta,
                kind,
                engine,
                k,
                threads,
                trace,
                metrics_json,
                store_dir,
                profile,
                partition,
                partition_mode,
            } => {
                assert_eq!(input, "seq.txt");
                assert_eq!(store_dir, None);
                assert_eq!(l, None);
                assert_eq!(delta, None);
                assert_eq!(kind, KindArg::Cad);
                assert_eq!(engine, EngineArg::Auto);
                assert_eq!(k, 50);
                assert_eq!(threads, 1);
                assert!(!trace);
                assert_eq!(metrics_json, None);
                assert_eq!(profile, None);
                assert_eq!(partition, None);
                assert_eq!(partition_mode, PartitionModeArg::Auto);
            }
            other => panic!("wrong command {other:?}"),
        }
    }

    #[test]
    fn trace_and_metrics_json_parse() {
        let cli = parse("detect --input s.txt --trace --metrics-json out.json --l 3").unwrap();
        match cli.command {
            Command::Detect {
                trace,
                metrics_json,
                l,
                ..
            } => {
                assert!(trace);
                assert_eq!(metrics_json.as_deref(), Some("out.json"));
                assert_eq!(l, Some(3), "switch must not swallow later flags");
            }
            other => panic!("wrong command {other:?}"),
        }
    }

    #[test]
    fn validate_report_parses() {
        let cli = parse("validate-report --input report.json").unwrap();
        assert_eq!(
            cli.command,
            Command::ValidateReport {
                input: "report.json".into()
            }
        );
        assert!(parse("validate-report").unwrap_err().contains("--input"));
    }

    #[test]
    fn detect_full_flags() {
        let cli = parse("detect --input s.txt --l 5 --kind com --engine approx --k 32 --threads 4")
            .unwrap();
        match cli.command {
            Command::Detect {
                l,
                kind,
                engine,
                k,
                threads,
                ..
            } => {
                assert_eq!(l, Some(5));
                assert_eq!(kind, KindArg::Com);
                assert_eq!(engine, EngineArg::Approx);
                assert_eq!(k, 32);
                assert_eq!(threads, 4);
            }
            other => panic!("wrong command {other:?}"),
        }
    }

    #[test]
    fn corrected_engine_parses() {
        let cli = parse("detect --input s.txt --engine corrected").unwrap();
        assert!(matches!(
            cli.command,
            Command::Detect {
                engine: EngineArg::Corrected,
                ..
            }
        ));
    }

    #[test]
    fn partition_flags_parse() {
        assert!(matches!(
            parse("detect --input s.txt --partition 4").unwrap().command,
            Command::Detect {
                partition: Some(4),
                partition_mode: PartitionModeArg::Auto,
                ..
            }
        ));
        assert!(matches!(
            parse("detect --input s.txt --partition 3 --partition-mode components")
                .unwrap()
                .command,
            Command::Detect {
                partition: Some(3),
                partition_mode: PartitionModeArg::Components,
                ..
            }
        ));
        assert!(matches!(
            parse("detect --input s.txt --partition 2 --partition-mode bfs")
                .unwrap()
                .command,
            Command::Detect {
                partition_mode: PartitionModeArg::Bfs,
                ..
            }
        ));
        // --partition-mode without --partition is a usage error.
        assert!(parse("detect --input s.txt --partition-mode bfs")
            .unwrap_err()
            .contains("requires --partition"));
        assert!(parse("detect --input s.txt --partition 0")
            .unwrap_err()
            .contains("≥ 1"));
        assert!(parse("detect --input s.txt --partition x")
            .unwrap_err()
            .contains("--partition"));
        assert!(
            parse("detect --input s.txt --partition 2 --partition-mode warp")
                .unwrap_err()
                .contains("--partition-mode")
        );
    }

    #[test]
    fn l_and_delta_exclusive() {
        assert!(parse("detect --input s --l 5 --delta 2.0").is_err());
    }

    #[test]
    fn score_and_generate() {
        assert!(matches!(
            parse("score --input s.txt --top 5").unwrap().command,
            Command::Score { top: 5, .. }
        ));
        assert!(matches!(
            parse("generate --dataset toy --seed 9").unwrap().command,
            Command::Generate { seed: 9, .. }
        ));
    }

    #[test]
    fn watch_defaults_and_flags() {
        let cli = parse("watch").unwrap();
        match cli.command {
            Command::Watch {
                input,
                l,
                delta,
                events,
                metrics_addr,
                max_instances,
                poll_ms,
                hold_ms,
                ..
            } => {
                assert_eq!(input, "-");
                assert_eq!((l, delta), (None, None));
                assert_eq!(events, None);
                assert_eq!(metrics_addr, None);
                assert_eq!(max_instances, None);
                assert_eq!(poll_ms, 200);
                assert_eq!(hold_ms, 0);
            }
            other => panic!("wrong command {other:?}"),
        }
        assert!(matches!(
            parse("watch").unwrap().command,
            Command::Watch {
                update_mode: UpdateModeArg::Rebuild,
                ..
            }
        ));
        let cli = parse(
            "watch --input snaps --delta 0.5 --events ev.ndjson \
             --metrics-addr 127.0.0.1:9184 --max-instances 10 --poll-ms 50 --hold-ms 250 \
             --update-mode incremental",
        )
        .unwrap();
        match cli.command {
            Command::Watch {
                input,
                delta,
                events,
                metrics_addr,
                max_instances,
                poll_ms,
                hold_ms,
                update_mode,
                ..
            } => {
                assert_eq!(input, "snaps");
                assert_eq!(delta, Some(0.5));
                assert_eq!(events.as_deref(), Some("ev.ndjson"));
                assert_eq!(metrics_addr.as_deref(), Some("127.0.0.1:9184"));
                assert_eq!(max_instances, Some(10));
                assert_eq!(poll_ms, 50);
                assert_eq!(hold_ms, 250);
                assert_eq!(update_mode, UpdateModeArg::Incremental);
            }
            other => panic!("wrong command {other:?}"),
        }
        assert!(parse("watch --l 3 --delta 1.0").is_err());
        assert!(parse("watch --update-mode warp")
            .unwrap_err()
            .contains("--update-mode"));
        assert!(matches!(
            parse("watch").unwrap().command,
            Command::Watch {
                access_log: None,
                ..
            }
        ));
        assert!(matches!(
            parse("watch --access-log -").unwrap().command,
            Command::Watch { access_log: Some(dest), .. } if dest == "-"
        ));
    }

    #[test]
    fn profile_wraps_a_command_and_takes_a_trailing_out() {
        let cli = parse("profile detect --input s.txt --l 3 --out run.json").unwrap();
        match cli.command {
            Command::Profile { inner, out } => {
                assert_eq!(out, "run.json");
                assert!(matches!(
                    *inner,
                    Command::Detect { ref input, l: Some(3), .. } if input == "s.txt"
                ));
            }
            other => panic!("wrong command {other:?}"),
        }
        // --out defaults to trace.json.
        assert!(matches!(
            parse("profile detect --input s.txt").unwrap().command,
            Command::Profile { out, .. } if out == "trace.json"
        ));
        // A non-trailing --out belongs to the wrapped command.
        match parse("profile generate --dataset toy --out seq.txt --seed 3")
            .unwrap()
            .command
        {
            Command::Profile { inner, out } => {
                assert_eq!(out, "trace.json");
                assert!(matches!(
                    *inner,
                    Command::Generate { out: Some(ref p), .. } if p == "seq.txt"
                ));
            }
            other => panic!("wrong command {other:?}"),
        }
        assert!(parse("profile").unwrap_err().contains("needs a command"));
        assert!(parse("profile profile detect --input s")
            .unwrap_err()
            .contains("cannot wrap itself"));
        // Bad inner commands surface the inner parse error.
        assert!(parse("profile detect").unwrap_err().contains("--input"));
    }

    #[test]
    fn detect_profile_flag_parses() {
        assert!(matches!(
            parse("detect --input s.txt --profile tl.json").unwrap().command,
            Command::Detect { profile: Some(p), .. } if p == "tl.json"
        ));
    }

    #[test]
    fn pack_and_inspect_parse() {
        let cli = parse("pack --input seq.txt --out seq.cadpack --label nightly").unwrap();
        assert_eq!(
            cli.command,
            Command::Pack {
                input: "seq.txt".into(),
                out: "seq.cadpack".into(),
                label: "nightly".into(),
            }
        );
        // Label defaults to empty.
        assert!(matches!(
            parse("pack --input a --out b").unwrap().command,
            Command::Pack { label, .. } if label.is_empty()
        ));
        assert!(parse("pack --input a").unwrap_err().contains("--out"));
        assert!(parse("pack --out b").unwrap_err().contains("--input"));

        let cli = parse("inspect --input seq.cadpack").unwrap();
        assert_eq!(
            cli.command,
            Command::Inspect {
                input: "seq.cadpack".into()
            }
        );
        assert!(parse("inspect").unwrap_err().contains("--input"));
    }

    #[test]
    fn store_dir_parses_on_detect_and_watch() {
        assert!(matches!(
            parse("detect --input s.txt --store-dir cache").unwrap().command,
            Command::Detect { store_dir: Some(d), .. } if d == "cache"
        ));
        assert!(matches!(
            parse("watch --input snaps --store-dir cache").unwrap().command,
            Command::Watch { store_dir: Some(d), .. } if d == "cache"
        ));
        assert!(matches!(
            parse("watch").unwrap().command,
            Command::Watch {
                store_dir: None,
                ..
            }
        ));
    }

    #[test]
    fn serve_defaults_and_flags() {
        let cli = parse("serve").unwrap();
        assert_eq!(
            cli.command,
            Command::Serve {
                addr: "127.0.0.1:8080".into(),
                workers: 4,
                max_body: 4 * 1024 * 1024,
                max_sessions: 256,
                store_dir: None,
                update_mode: UpdateModeArg::Rebuild,
                access_log: None,
                journal_dir: None,
                journal_fsync: None,
                max_push_rps: None,
            }
        );
        let cli = parse(
            "serve --addr 0.0.0.0:9000 --workers 8 --max-body 1024 \
             --max-sessions 2 --store-dir cache --update-mode auto \
             --access-log - --journal-dir wal --journal-fsync every-8 \
             --max-push-rps 2.5",
        )
        .unwrap();
        assert_eq!(
            cli.command,
            Command::Serve {
                addr: "0.0.0.0:9000".into(),
                workers: 8,
                max_body: 1024,
                max_sessions: 2,
                store_dir: Some("cache".into()),
                update_mode: UpdateModeArg::Auto,
                access_log: Some("-".into()),
                journal_dir: Some("wal".into()),
                journal_fsync: Some("every-8".into()),
                max_push_rps: Some(2.5),
            }
        );
        assert!(parse("serve --workers 0").unwrap_err().contains("workers"));
        assert!(parse("serve --max-body x")
            .unwrap_err()
            .contains("--max-body"));
        assert!(parse("serve stray")
            .unwrap_err()
            .contains("unexpected argument"));
    }

    #[test]
    fn serve_journal_flags_validated() {
        // Every fsync grammar production parses (with a journal dir).
        for policy in ["always", "never", "every-1", "every-64"] {
            assert!(matches!(
                parse(&format!("serve --journal-dir wal --journal-fsync {policy}"))
                    .unwrap()
                    .command,
                Command::Serve { journal_fsync: Some(p), .. } if p == policy
            ));
        }
        assert!(parse("serve --journal-dir wal --journal-fsync sometimes")
            .unwrap_err()
            .contains("--journal-fsync"));
        assert!(parse("serve --journal-dir wal --journal-fsync every-0")
            .unwrap_err()
            .contains("--journal-fsync"));
        // Fsync policy without a journal is a usage error.
        assert!(parse("serve --journal-fsync always")
            .unwrap_err()
            .contains("requires --journal-dir"));
        assert!(parse("serve --max-push-rps 0")
            .unwrap_err()
            .contains("--max-push-rps"));
        assert!(parse("serve --max-push-rps nan")
            .unwrap_err()
            .contains("--max-push-rps"));
        assert!(parse("serve --max-push-rps x")
            .unwrap_err()
            .contains("--max-push-rps"));
    }

    #[test]
    fn journal_subcommand_parses() {
        assert_eq!(
            parse("journal inspect wal").unwrap().command,
            Command::Journal {
                action: JournalAction::Inspect,
                dir: "wal".into(),
            }
        );
        assert_eq!(
            parse("journal compact wal").unwrap().command,
            Command::Journal {
                action: JournalAction::Compact,
                dir: "wal".into(),
            }
        );
        assert!(parse("journal").unwrap_err().contains("inspect <dir>"));
        assert!(parse("journal prune wal")
            .unwrap_err()
            .contains("inspect <dir>"));
        assert!(parse("journal inspect")
            .unwrap_err()
            .contains("exactly one"));
        assert!(parse("journal compact a b")
            .unwrap_err()
            .contains("exactly one"));
    }

    #[test]
    fn store_gc_parses() {
        let cli = parse("store gc --store-dir cache --max-bytes 4096").unwrap();
        assert_eq!(
            cli.command,
            Command::StoreGc {
                store_dir: "cache".into(),
                max_bytes: 4096,
            }
        );
        assert!(parse("store").unwrap_err().contains("gc"));
        assert!(parse("store prune --store-dir c --max-bytes 1")
            .unwrap_err()
            .contains("gc"));
        assert!(parse("store gc --max-bytes 1")
            .unwrap_err()
            .contains("--store-dir"));
        assert!(parse("store gc --store-dir c")
            .unwrap_err()
            .contains("--max-bytes"));
        assert!(parse("store gc --store-dir c --max-bytes tiny")
            .unwrap_err()
            .contains("--max-bytes"));
    }

    #[test]
    fn bench_diff_positionals() {
        let cli = parse("bench-diff old.json new.json").unwrap();
        assert_eq!(
            cli.command,
            Command::BenchDiff {
                old: "old.json".into(),
                new: "new.json".into(),
                threshold: 1.3,
                update: false,
            }
        );
        let cli = parse("bench-diff a.json b.json --threshold 2.0 --update").unwrap();
        assert!(matches!(
            cli.command,
            Command::BenchDiff {
                threshold, update: true, ..
            } if threshold == 2.0
        ));
        assert!(parse("bench-diff only-one.json")
            .unwrap_err()
            .contains("exactly two"));
        assert!(parse("bench-diff a b c")
            .unwrap_err()
            .contains("exactly two"));
        assert!(parse("bench-diff a b --threshold 0.5")
            .unwrap_err()
            .contains("threshold"));
    }

    #[test]
    fn positionals_rejected_outside_bench_diff() {
        assert!(parse("detect stray --input s.txt")
            .unwrap_err()
            .contains("unexpected argument `stray`"));
    }

    #[test]
    fn errors_are_helpful() {
        assert!(parse("frobnicate").unwrap_err().contains("unknown command"));
        assert!(parse("detect").unwrap_err().contains("--input"));
        assert!(parse("detect --input")
            .unwrap_err()
            .contains("missing a value"));
        assert!(parse("help").unwrap_err().contains("USAGE"));
        assert!(parse("detect --input s --engine warp")
            .unwrap_err()
            .contains("--engine"));
        assert!(parse("detect --input s --kind x")
            .unwrap_err()
            .contains("--kind"));
        assert!(parse("detect --input s --threads x")
            .unwrap_err()
            .contains("--threads"));
    }
}
