//! `cad watch` — streaming detection over arriving graph snapshots.
//!
//! Instances arrive from one of three sources:
//!
//! * **stdin NDJSON** (`--input -`, the default): one snapshot per line,
//!   `{"nodes": N, "edges": [[u, v, w], ...]}`;
//! * **a directory to tail** (`--input <dir>`): snapshot files in the
//!   plain sequence-file format, processed in lexicographic filename
//!   order as they appear (poll interval `--poll-ms`);
//! * **a sequence file to replay** (`--input <seq.txt>`): every
//!   instance of an offline sequence, in order.
//!
//! Each arrival triggers exactly one oracle build ([`OnlineCad`]'s
//! sliding cache keeps `G_t`'s oracle as the next transition's left
//! operand) and, from the second instance on, one scored transition.
//! Every transition appends one NDJSON *event* — timestamp, transition
//! id, δ, anomalous edge/node counts, and a latency breakdown by phase —
//! to `--events` (stdout by default). `--metrics-addr` additionally
//! serves the live counter/histogram registry as Prometheus text plus a
//! `/healthz` liveness probe for the duration of the run.

use crate::cli::{EngineArg, KindArg};
use crate::commands::CliError;
use cad_core::{OnlineCad, StepOracle, ThresholdMode, TransitionAnomalies, UpdateMode};
use cad_graph::io::{read_graph, read_sequence};
use cad_graph::WeightedGraph;
use cad_obs::Json;
use std::collections::BTreeSet;
use std::fs::File;
use std::io::{BufRead, Write};
use std::path::Path;
use std::sync::Arc;
use std::time::{Duration, SystemTime, UNIX_EPOCH};

/// Everything `cad watch` needs beyond the detector options.
pub struct WatchConfig {
    /// Threshold mode (fixed δ or running-average target).
    pub mode: ThresholdMode,
    /// Event-log path (append); stdout when `None`.
    pub events: Option<String>,
    /// Exporter bind address, e.g. `127.0.0.1:9184`.
    pub metrics_addr: Option<String>,
    /// Stop after this many instances.
    pub max_instances: Option<usize>,
    /// Directory-tail poll interval.
    pub poll_ms: u64,
    /// Linger after the input ends (lets a scraper catch the final
    /// state before the exporter goes away).
    pub hold_ms: u64,
    /// Oracle-cache directory; no caching when `None`.
    pub store_dir: Option<String>,
    /// Oracle lifecycle (`--update-mode`).
    pub update_mode: UpdateMode,
    /// NDJSON access-log destination: a path (append), `-` for stderr,
    /// disabled when `None`. Same line schema as `cad serve`.
    pub access_log: Option<String>,
}

/// One NDJSON access-log line per processed instance, mirroring the
/// `cad serve` schema (ts_ms, trace_id, method, path, status, worker,
/// queue_wait_secs, handler_secs, update_mode, fallback) so one log
/// pipeline digests both tools. `method` is the fixed verb `WATCH` and
/// `path` addresses the instance index in the stream.
fn access_line(
    ts_ms: u128,
    trace_id: u64,
    instance: usize,
    status: u16,
    handler_secs: f64,
    update_mode: Option<&str>,
    fallback: Option<&str>,
) -> String {
    let mut fields = vec![
        ("ts_ms", Json::Num(ts_ms as f64)),
        ("trace_id", Json::Str(cad_obs::trace::id_hex(trace_id))),
        ("method", Json::Str("WATCH".to_string())),
        ("path", Json::Str(format!("/watch/instances/{instance}"))),
        ("status", Json::Num(status as f64)),
        ("worker", Json::Num(0.0)),
        ("queue_wait_secs", Json::Num(0.0)),
        ("handler_secs", Json::Num(handler_secs)),
    ];
    if let Some(mode) = update_mode {
        fields.push(("update_mode", Json::Str(mode.to_string())));
    }
    if let Some(reason) = fallback {
        fields.push(("fallback", Json::Str(reason.to_string())));
    }
    Json::obj(fields).compact()
}

/// Parse one stdin NDJSON snapshot line.
fn graph_from_ndjson(line: &str) -> Result<WeightedGraph, CliError> {
    let v = cad_obs::parse_json(line)
        .map_err(|e| CliError::Usage(format!("bad snapshot line: {e}")))?;
    let n = v
        .get("nodes")
        .and_then(Json::as_u64)
        .ok_or_else(|| CliError::Usage("snapshot needs a `nodes` integer".into()))?;
    let mut edges = Vec::new();
    let arr = v
        .get("edges")
        .and_then(Json::as_arr)
        .ok_or_else(|| CliError::Usage("snapshot needs an `edges` array".into()))?;
    for (i, e) in arr.iter().enumerate() {
        let triple = e
            .as_arr()
            .filter(|t| t.len() == 3)
            .ok_or_else(|| CliError::Usage(format!("edges[{i}] is not a [u, v, w] triple")))?;
        let u = triple[0]
            .as_u64()
            .ok_or_else(|| CliError::Usage(format!("edges[{i}] endpoint not an integer")))?;
        let v2 = triple[1]
            .as_u64()
            .ok_or_else(|| CliError::Usage(format!("edges[{i}] endpoint not an integer")))?;
        let w = triple[2]
            .as_f64()
            .ok_or_else(|| CliError::Usage(format!("edges[{i}] weight not a number")))?;
        edges.push((u as usize, v2 as usize, w));
    }
    Ok(WeightedGraph::from_edges(n as usize, &edges)?)
}

/// One NDJSON event line for a completed transition (no trailing
/// newline). Timestamps are Unix epoch milliseconds. `"trace_id"` is
/// the 16-hex id minted for the instance that completed the
/// transition, matching the flight-recorder events the push emitted.
/// `"mode"` is the oracle path the step actually took (`incremental`
/// or `rebuild`); a fallback additionally names its trigger in
/// `"fallback"` so a storm of rebuilds under `--update-mode
/// incremental` is visible in the log.
#[allow(clippy::too_many_arguments)]
fn event_line(
    ts_ms: u128,
    trace_id: u64,
    tr: &TransitionAnomalies,
    delta: f64,
    n_scored: usize,
    oracle: StepOracle,
    build_secs: f64,
    score_secs: f64,
) -> String {
    let fallback = match oracle.fallback_reason() {
        Some(r) => format!(", \"fallback\": \"{}\"", r.name()),
        None => String::new(),
    };
    let update_secs = match oracle {
        StepOracle::Incremental { update_secs, .. } => update_secs,
        _ => 0.0,
    };
    format!(
        "{{\"ts_ms\": {ts_ms}, \"trace_id\": \"{}\", \"t\": {}, \"delta\": {}, \
         \"n_scored\": {}, \
         \"n_edges\": {}, \"n_nodes\": {}, \"mode\": \"{}\"{fallback}, \
         \"latency\": {{\"build_secs\": {:.6}, \"update_secs\": {:.6}, \
         \"score_secs\": {:.6}, \"total_secs\": {:.6}}}}}",
        cad_obs::trace::id_hex(trace_id),
        tr.t,
        if delta == f64::MAX {
            "null".to_string()
        } else {
            format!("{delta:.6e}")
        },
        n_scored,
        tr.edges.len(),
        tr.nodes.len(),
        oracle.mode_name(),
        build_secs,
        update_secs,
        score_secs,
        build_secs + update_secs + score_secs,
    )
}

fn now_ms() -> u128 {
    SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_millis())
        .unwrap_or(0)
}

/// Drive the streaming detector over a source of instances, emitting
/// one event per transition into `events`. Returns
/// `(instances, transitions)` processed. Factored out of [`run_watch`]
/// so integration tests can feed an in-memory source and sink.
pub fn watch_loop<'w>(
    source: &mut dyn Iterator<Item = Result<WeightedGraph, CliError>>,
    online: &mut OnlineCad,
    events: &mut dyn Write,
    mut access: Option<&mut (dyn Write + 'w)>,
    health: &cad_obs::WatchHealth,
    max_instances: Option<usize>,
) -> Result<(usize, usize), CliError> {
    let mut instances = 0usize;
    let mut transitions = 0usize;
    for g in source {
        // Mint a fresh trace per incoming instance so the oracle
        // update/fallback events this push emits into the flight
        // recorder share an id with the NDJSON event line below.
        let trace = cad_obs::TraceCtx::mint(0);
        let _guard = cad_obs::trace::set_current(trace);
        let (outcome, m) = match g.and_then(|g| Ok(online.push_metered(g)?)) {
            Ok(step) => step,
            Err(CliError::Graph(e)) => {
                // A malformed snapshot (e.g. a vertex id past the
                // stream's vertex-set size) emits the same structured
                // error body the serve endpoint answers with, so log
                // consumers see one schema either way.
                let (status, code) = cad_serve::graph_error_code(&e);
                let body = cad_obs::http::error_body(code, &e.to_string());
                events.write_all(body.as_bytes())?;
                events.flush()?;
                if let Some(w) = access.as_deref_mut() {
                    let line =
                        access_line(now_ms(), trace.trace_id, instances, status, 0.0, None, None);
                    writeln!(w, "{line}")?;
                    w.flush()?;
                }
                return Err(CliError::Graph(e));
            }
            Err(other) => return Err(other),
        };
        if let Some(w) = access.as_deref_mut() {
            let update_secs = match m.oracle {
                StepOracle::Incremental { update_secs, .. } => update_secs,
                _ => 0.0,
            };
            let line = access_line(
                now_ms(),
                trace.trace_id,
                instances,
                200,
                m.build.build_secs + update_secs + m.score_secs,
                Some(m.oracle.mode_name()),
                m.oracle.fallback_reason().map(|r| r.name()),
            );
            writeln!(w, "{line}")?;
            w.flush()?;
        }
        instances += 1;
        if let Some(tr) = outcome {
            transitions += 1;
            health.mark_transition();
            let line = event_line(
                now_ms(),
                trace.trace_id,
                &tr,
                online.delta(),
                m.n_scored,
                m.oracle,
                m.build.build_secs,
                m.score_secs,
            );
            writeln!(events, "{line}")?;
            events.flush()?;
        }
        if max_instances.is_some_and(|max| instances >= max) {
            break;
        }
    }
    Ok((instances, transitions))
}

/// A directory tail: yields snapshot files in lexicographic filename
/// order as they appear, polling until `max_instances` are seen.
///
/// Dotfiles and `*.tmp` files are invisible to the tail, so producers
/// get atomic visibility by writing to `.snap.tmp` (or any hidden/tmp
/// name) and renaming into place — the tail never observes a snapshot
/// mid-write.
struct DirTail {
    dir: String,
    seen: BTreeSet<String>,
    queue: Vec<String>,
    poll: Duration,
    remaining: Option<usize>,
}

/// Should the directory tail consider this filename at all?
fn tailable(name: &str) -> bool {
    !name.starts_with('.') && !name.ends_with(".tmp")
}

impl Iterator for DirTail {
    type Item = Result<WeightedGraph, CliError>;

    fn next(&mut self) -> Option<Self::Item> {
        if let Some(0) = self.remaining {
            return None;
        }
        loop {
            if let Some(path) = self.queue.pop() {
                if let Some(r) = self.remaining.as_mut() {
                    *r -= 1;
                }
                let g = match File::open(&path) {
                    Ok(f) => read_graph(f)
                        .map_err(|e| CliError::Usage(format!("snapshot `{path}` unreadable: {e}"))),
                    Err(e) => Err(CliError::Usage(format!("cannot open `{path}`: {e}"))),
                };
                return Some(g);
            }
            let mut fresh: Vec<String> = match std::fs::read_dir(&self.dir) {
                Ok(entries) => entries
                    .filter_map(|e| e.ok())
                    .filter(|e| e.path().is_file())
                    .filter(|e| tailable(&e.file_name().to_string_lossy()))
                    .map(|e| e.path().to_string_lossy().into_owned())
                    .filter(|p| !self.seen.contains(p))
                    .collect(),
                Err(e) => return Some(Err(CliError::Io(e))),
            };
            if fresh.is_empty() {
                std::thread::sleep(self.poll);
                continue;
            }
            // Lexicographic arrival order; pop() takes from the back,
            // so sort descending.
            fresh.sort_unstable_by(|a, b| b.cmp(a));
            for p in &fresh {
                self.seen.insert(p.clone());
            }
            self.queue = fresh;
        }
    }
}

/// Run the full `cad watch` command. The `--l`/`--delta` flags have
/// already been folded into `cfg.mode` by the dispatcher.
pub fn run_watch(
    input: &str,
    kind: KindArg,
    engine: EngineArg,
    k: usize,
    cfg: &WatchConfig,
    out: &mut dyn Write,
) -> Result<(), CliError> {
    let opts = cad_core::CadOptions {
        engine: crate::commands::engine_options(engine, k),
        kind: crate::commands::score_kind(kind),
        threads: 1,
        partition: None,
    };
    let mut online = OnlineCad::with_mode(opts, cfg.mode).with_update_mode(cfg.update_mode);
    if let Some(dir) = &cfg.store_dir {
        let store = cad_store::OracleStore::open(Path::new(dir))
            .map_err(|e| CliError::Usage(format!("cannot open store `{dir}`: {e}")))?;
        online = online.with_provider(Arc::new(store));
    }
    let health = Arc::new(cad_obs::WatchHealth::new());
    let server = match &cfg.metrics_addr {
        Some(addr) => {
            let s = cad_obs::MetricsServer::start(addr, Arc::clone(&health))?;
            cad_obs::progress!("serving /metrics and /healthz at http://{}", s.addr());
            Some(s)
        }
        None => None,
    };
    let mut event_sink: Box<dyn Write + '_> = match &cfg.events {
        Some(path) => Box::new(File::options().create(true).append(true).open(path)?),
        None => Box::new(&mut *out),
    };
    // Same destination convention as `cad serve --access-log`: `-` means
    // stderr (keeps stdout clean for events/summary), else append to a
    // file so successive runs accumulate one audit trail.
    let mut access_sink: Option<Box<dyn Write>> = match &cfg.access_log {
        Some(p) if p == "-" => Some(Box::new(std::io::stderr())),
        Some(p) => Some(Box::new(File::options().create(true).append(true).open(p)?)),
        None => None,
    };

    let path = Path::new(input);
    let (instances, transitions) = if input == "-" {
        let stdin = std::io::stdin();
        let mut source = stdin.lock().lines().filter_map(|line| match line {
            Ok(l) if l.trim().is_empty() => None,
            Ok(l) => Some(graph_from_ndjson(&l)),
            Err(e) => Some(Err(CliError::Io(e))),
        });
        watch_loop(
            &mut source,
            &mut online,
            &mut event_sink,
            access_sink.as_deref_mut(),
            &health,
            cfg.max_instances,
        )?
    } else if path.is_dir() {
        let mut source = DirTail {
            dir: input.to_string(),
            seen: BTreeSet::new(),
            queue: Vec::new(),
            poll: Duration::from_millis(cfg.poll_ms),
            remaining: cfg.max_instances,
        };
        watch_loop(
            &mut source,
            &mut online,
            &mut event_sink,
            access_sink.as_deref_mut(),
            &health,
            cfg.max_instances,
        )?
    } else {
        let file = File::open(input)
            .map_err(|e| CliError::Usage(format!("cannot open `{input}`: {e}")))?;
        let seq = read_sequence(file)?;
        let mut source = seq.graphs().iter().cloned().map(Ok);
        watch_loop(
            &mut source,
            &mut online,
            &mut event_sink,
            access_sink.as_deref_mut(),
            &health,
            cfg.max_instances,
        )?
    };

    drop(event_sink);
    if cfg.hold_ms > 0 {
        std::thread::sleep(Duration::from_millis(cfg.hold_ms));
    }
    if let Some(s) = server {
        s.shutdown();
    }
    cad_obs::progress!("watch done: {instances} instances, {transitions} transitions");
    // When events go to a file, stdout still gets a one-line summary.
    if cfg.events.is_some() {
        writeln!(out, "{instances} instances, {transitions} transitions")?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use cad_core::CadOptions;

    fn instance(bridge: f64) -> WeightedGraph {
        let mut edges = vec![
            (0, 1, 3.0),
            (0, 2, 3.0),
            (1, 2, 3.0),
            (3, 4, 3.0),
            (3, 5, 3.0),
            (4, 5, 3.0),
            (2, 3, 0.2),
        ];
        if bridge > 0.0 {
            edges.push((0, 5, bridge));
        }
        WeightedGraph::from_edges(6, &edges).unwrap()
    }

    #[test]
    fn ndjson_snapshot_parses() {
        let g = graph_from_ndjson(r#"{"nodes": 4, "edges": [[0, 1, 1.5], [2, 3, 0.25]]}"#).unwrap();
        assert_eq!(g.n_nodes(), 4);
        assert_eq!(g.edges().count(), 2);

        assert!(graph_from_ndjson("not json").is_err());
        assert!(graph_from_ndjson(r#"{"edges": []}"#).is_err());
        assert!(graph_from_ndjson(r#"{"nodes": 2, "edges": [[0, 1]]}"#).is_err());
    }

    #[test]
    fn event_lines_are_valid_single_line_json() {
        let tr = TransitionAnomalies {
            t: 3,
            edges: Vec::new(),
            nodes: Vec::new(),
        };
        let line = event_line(
            1234,
            0xdead_beef_0042,
            &tr,
            0.5,
            7,
            StepOracle::Rebuilt,
            0.001,
            0.0005,
        );
        assert!(!line.contains('\n'));
        let v = cad_obs::parse_json(&line).expect("event parses");
        assert_eq!(v.get("t").and_then(Json::as_u64), Some(3));
        assert_eq!(v.get("n_scored").and_then(Json::as_u64), Some(7));
        assert_eq!(
            v.get("trace_id").and_then(Json::as_str),
            Some("0000deadbeef0042")
        );
        assert_eq!(v.get("mode").and_then(Json::as_str), Some("rebuild"));
        assert!(v.get("fallback").is_none(), "a plain rebuild has no reason");
        assert!(v.get("latency").and_then(|l| l.get("total_secs")).is_some());
        // δ before first calibration serializes as null.
        let line = event_line(0, 1, &tr, f64::MAX, 0, StepOracle::Rebuilt, 0.0, 0.0);
        let v = cad_obs::parse_json(&line).expect("parses");
        assert!(matches!(v.get("delta"), Some(Json::Null)));

        // An incremental step reports its mode and update latency.
        let step = StepOracle::Incremental {
            update_secs: 0.002,
            changes: 3,
        };
        let line = event_line(0, 1, &tr, 0.5, 7, step, 0.0, 0.0005);
        let v = cad_obs::parse_json(&line).expect("parses");
        assert_eq!(v.get("mode").and_then(Json::as_str), Some("incremental"));
        let latency = v.get("latency").unwrap();
        let upd = latency.get("update_secs").and_then(Json::as_f64).unwrap();
        assert!((upd - 0.002).abs() < 1e-9);

        // A fallback names its trigger.
        let step = StepOracle::Fallback(cad_commute::RebuildReason::Structural);
        let line = event_line(0, 1, &tr, 0.5, 7, step, 0.001, 0.0005);
        let v = cad_obs::parse_json(&line).expect("parses");
        assert_eq!(v.get("mode").and_then(Json::as_str), Some("rebuild"));
        assert_eq!(v.get("fallback").and_then(Json::as_str), Some("structural"));
    }

    #[test]
    fn incremental_watch_events_report_the_mode_taken() {
        let graphs = vec![instance(0.0), instance(0.0), instance(1.5)];
        let mut source = graphs.into_iter().map(Ok);
        let mut online = OnlineCad::with_mode(CadOptions::default(), ThresholdMode::Fixed(0.4))
            .with_update_mode(UpdateMode::Incremental);
        let mut sink = Vec::new();
        let health = cad_obs::WatchHealth::new();
        let (instances, transitions) =
            watch_loop(&mut source, &mut online, &mut sink, None, &health, None).unwrap();
        assert_eq!((instances, transitions), (3, 2));
        let text = String::from_utf8(sink).unwrap();
        for line in text.lines() {
            let v = cad_obs::parse_json(line).unwrap();
            assert_eq!(
                v.get("mode").and_then(Json::as_str),
                Some("incremental"),
                "weight-only deltas stay incremental: {line}"
            );
        }
    }

    #[test]
    fn watch_loop_emits_one_event_per_transition() {
        let graphs = vec![instance(0.0), instance(0.0), instance(1.5)];
        let mut source = graphs.into_iter().map(Ok);
        let mut online = OnlineCad::with_mode(CadOptions::default(), ThresholdMode::Fixed(0.4));
        let mut sink = Vec::new();
        let health = cad_obs::WatchHealth::new();
        let (instances, transitions) =
            watch_loop(&mut source, &mut online, &mut sink, None, &health, None).unwrap();
        assert_eq!(instances, 3);
        assert_eq!(transitions, 2);
        assert_eq!(health.transitions(), 2);
        let text = String::from_utf8(sink).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        for line in &lines {
            assert!(cad_obs::parse_json(line).is_ok(), "bad event: {line}");
        }
        // The bridge transition flags the cross-cluster edge.
        let last = cad_obs::parse_json(lines[1]).unwrap();
        assert_eq!(last.get("t").and_then(Json::as_u64), Some(1));
        assert_eq!(last.get("n_edges").and_then(Json::as_u64), Some(1));
        assert_eq!(last.get("n_nodes").and_then(Json::as_u64), Some(2));
    }

    fn snapshot_text(w: f64) -> String {
        format!("nodes 3\ninstance\n0 1 {w}\n1 2 {w}\n")
    }

    fn tail_dir(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("cad-watch-tests").join(name);
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("mk tail dir");
        dir
    }

    #[test]
    fn dir_tail_orders_lexicographically_not_by_arrival() {
        let dir = tail_dir("order");
        // Created newest-name-first: arrival order is 02 then 01, but
        // the tail must still deliver 01 before 02.
        std::fs::write(dir.join("02.snap"), snapshot_text(2.0)).unwrap();
        std::fs::write(dir.join("01.snap"), snapshot_text(1.0)).unwrap();
        let mut tail = DirTail {
            dir: dir.to_string_lossy().into_owned(),
            seen: BTreeSet::new(),
            queue: Vec::new(),
            poll: Duration::from_millis(1),
            remaining: Some(3),
        };
        let first = tail.next().unwrap().unwrap();
        let second = tail.next().unwrap().unwrap();
        assert_eq!(first.weight(0, 1), 1.0, "01.snap comes first");
        assert_eq!(second.weight(0, 1), 2.0);
        // A later arrival with an earlier name still gets processed
        // (queue refills once drained).
        std::fs::write(dir.join("00.snap"), snapshot_text(0.5)).unwrap();
        let third = tail.next().unwrap().unwrap();
        assert_eq!(third.weight(0, 1), 0.5);
        assert!(tail.next().is_none(), "remaining budget exhausted");
    }

    #[test]
    fn dir_tail_ignores_tmp_and_hidden_files_until_renamed() {
        let dir = tail_dir("partial");
        // A producer mid-write: truncated content under a .tmp name and
        // a hidden scratch file. Neither may reach the detector.
        std::fs::write(dir.join("01.snap.tmp"), "nodes 3\ninstance\n0 1").unwrap();
        std::fs::write(dir.join(".scratch"), "garbage").unwrap();
        std::fs::write(dir.join("02.snap"), snapshot_text(2.0)).unwrap();
        let mut tail = DirTail {
            dir: dir.to_string_lossy().into_owned(),
            seen: BTreeSet::new(),
            queue: Vec::new(),
            poll: Duration::from_millis(1),
            remaining: Some(2),
        };
        let first = tail.next().unwrap().unwrap();
        assert_eq!(first.weight(0, 1), 2.0, "tmp file skipped");
        // The producer finishes: write-then-rename makes the complete
        // snapshot visible atomically, and it is read intact.
        std::fs::write(dir.join("01.snap.tmp"), snapshot_text(1.0)).unwrap();
        std::fs::rename(dir.join("01.snap.tmp"), dir.join("01.snap")).unwrap();
        let second = tail.next().unwrap().unwrap();
        assert_eq!(second.weight(0, 1), 1.0);
        assert!(tail.next().is_none());
    }

    #[test]
    fn bad_snapshots_leave_a_structured_error_event() {
        // A vertex id past the stream's vertex set: the loop fails, but
        // the event log's last line is the serve-endpoint error schema.
        let mut source = vec![
            Ok(instance(0.0)),
            graph_from_ndjson(r#"{"nodes": 6, "edges": [[0, 9, 1.0]]}"#),
        ]
        .into_iter();
        let mut online = OnlineCad::with_mode(CadOptions::default(), ThresholdMode::Fixed(0.4));
        let mut sink = Vec::new();
        let health = cad_obs::WatchHealth::new();
        let err = watch_loop(&mut source, &mut online, &mut sink, None, &health, None).unwrap_err();
        assert!(matches!(
            err,
            CliError::Graph(cad_graph::GraphError::NodeOutOfRange { node: 9, .. })
        ));
        let text = String::from_utf8(sink).unwrap();
        let last = text.lines().last().expect("an error event");
        let v = cad_obs::parse_json(last).expect("structured error parses");
        assert_eq!(
            v.get("error")
                .and_then(|e| e.get("code"))
                .and_then(Json::as_str),
            Some("node_out_of_range")
        );

        // A snapshot whose vertex-set size disagrees with the stream's
        // trips the same path from inside the detector.
        let mut source = vec![
            Ok(instance(0.0)),
            Ok(WeightedGraph::from_edges(5, &[(0, 1, 1.0)]).unwrap()),
        ]
        .into_iter();
        let mut online = OnlineCad::with_mode(CadOptions::default(), ThresholdMode::Fixed(0.4));
        let mut sink = Vec::new();
        watch_loop(&mut source, &mut online, &mut sink, None, &health, None).unwrap_err();
        let text = String::from_utf8(sink).unwrap();
        assert!(text.contains("\"mixed_node_counts\""), "{text}");
    }

    #[test]
    fn access_log_gets_one_serve_schema_line_per_instance() {
        let graphs = vec![instance(0.0), instance(0.0), instance(1.5)];
        let mut source = graphs.into_iter().map(Ok);
        let mut online = OnlineCad::with_mode(CadOptions::default(), ThresholdMode::Fixed(0.4))
            .with_update_mode(UpdateMode::Incremental);
        let mut sink = Vec::new();
        let mut access = Vec::new();
        let health = cad_obs::WatchHealth::new();
        let (instances, _) = watch_loop(
            &mut source,
            &mut online,
            &mut sink,
            Some(&mut access),
            &health,
            None,
        )
        .unwrap();
        assert_eq!(instances, 3);
        let text = String::from_utf8(access).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3, "one access line per instance: {text}");
        for (i, line) in lines.iter().enumerate() {
            let v = cad_obs::parse_json(line).expect("access line parses");
            // Field parity with the serve access log.
            for key in [
                "ts_ms",
                "trace_id",
                "method",
                "path",
                "status",
                "worker",
                "queue_wait_secs",
                "handler_secs",
                "update_mode",
            ] {
                assert!(v.get(key).is_some(), "missing {key} in {line}");
            }
            assert_eq!(v.get("method").and_then(Json::as_str), Some("WATCH"));
            assert_eq!(v.get("status").and_then(Json::as_u64), Some(200));
            assert_eq!(
                v.get("path").and_then(Json::as_str),
                Some(format!("/watch/instances/{i}").as_str())
            );
            let id = v.get("trace_id").and_then(Json::as_str).unwrap();
            assert_eq!(id.len(), 16, "16-hex trace id: {id}");
            assert!(id.chars().all(|c| c.is_ascii_hexdigit()));
            assert!(
                v.get("handler_secs").and_then(Json::as_f64).unwrap() >= 0.0,
                "{line}"
            );
        }
    }

    #[test]
    fn a_failing_instance_still_leaves_an_access_line_with_its_status() {
        let mut source = vec![
            Ok(instance(0.0)),
            graph_from_ndjson(r#"{"nodes": 6, "edges": [[0, 9, 1.0]]}"#),
        ]
        .into_iter();
        let mut online = OnlineCad::with_mode(CadOptions::default(), ThresholdMode::Fixed(0.4));
        let mut sink = Vec::new();
        let mut access = Vec::new();
        let health = cad_obs::WatchHealth::new();
        watch_loop(
            &mut source,
            &mut online,
            &mut sink,
            Some(&mut access),
            &health,
            None,
        )
        .unwrap_err();
        let text = String::from_utf8(access).unwrap();
        let last = text.lines().last().expect("an access line for the failure");
        let v = cad_obs::parse_json(last).unwrap();
        assert_eq!(v.get("status").and_then(Json::as_u64), Some(422), "{last}");
    }

    #[test]
    fn watch_loop_respects_max_instances() {
        let graphs = vec![instance(0.0); 10];
        let mut source = graphs.into_iter().map(Ok);
        let mut online = OnlineCad::with_mode(CadOptions::default(), ThresholdMode::Fixed(0.4));
        let mut sink = Vec::new();
        let health = cad_obs::WatchHealth::new();
        let (instances, transitions) =
            watch_loop(&mut source, &mut online, &mut sink, None, &health, Some(4)).unwrap();
        assert_eq!(instances, 4);
        assert_eq!(transitions, 3);
    }
}
