//! Library backing the `cad` command-line tool.
//!
//! The binary (`src/main.rs`) is a thin wrapper over [`run`], so the
//! whole command surface — parsing, dispatch, output formatting — is
//! unit-testable without spawning processes.
//!
//! ```text
//! cad detect   --input seq.txt [--l 5 | --delta 3.5] [--kind cad|adj|com]
//!              [--engine auto|exact|approx] [--k 50]
//! cad score    --input seq.txt [--kind cad|adj|com] [--top 20]
//! cad generate --dataset toy|gmm|enron|dblp|precip [--out seq.txt] [--seed 7]
//! ```

#![warn(missing_docs)]

pub mod bench_diff;
pub mod cli;
pub mod commands;
pub mod watch;

pub use cli::{Cli, Command};

/// Parse arguments and run; returns the process exit code.
///
/// Exit codes: 0 success, 1 runtime error, 2 flag-parse error, 4 bench
/// regression past threshold (so CI can soft-fail on slow runners while
/// hard-failing on real errors).
pub fn run<I: IntoIterator<Item = String>>(args: I, out: &mut dyn std::io::Write) -> i32 {
    match Cli::parse(args) {
        Ok(cli) => match commands::dispatch(&cli, out) {
            Ok(()) => 0,
            Err(commands::CliError::BenchRegression(msg)) => {
                let _ = writeln!(out, "{msg}");
                4
            }
            Err(e) => {
                let _ = writeln!(out, "error: {e}");
                1
            }
        },
        Err(msg) => {
            let _ = writeln!(out, "{msg}");
            2
        }
    }
}
