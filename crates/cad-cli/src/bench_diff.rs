//! `cad bench-diff` — the benchmark regression gate.
//!
//! Compares two schema-versioned bench reports (as written by
//! `bench_report` or `cad detect --metrics-json`) metric by metric:
//!
//! * **name/schema mismatches are hard errors** (exit 1): a counter,
//!   summary, histogram, or phase present in one report but not the
//!   other means the two runs measured different things and no ratio is
//!   meaningful;
//! * **wall-time metrics gate the exit code**: phase totals and
//!   per-backend oracle-build sums are compared as `new / old` ratios,
//!   and any ratio past `--threshold` (default 1.3×) makes the command
//!   exit 4 ([`CliError::BenchRegression`]) so CI can soft-fail on
//!   noisy 1-core runners while hard-failing on real errors;
//! * **counts are informational**: event counters are printed in the
//!   ratio table (a drifting count is a determinism smell worth eyes)
//!   but never gate, since workload-size changes are legitimate;
//! * **v3 surfaces are first-class**: gauge names and labeled-counter
//!   cells (family label keys and per-value cells) must match exactly —
//!   a missing `mem.heap_peak_bytes` gauge or a vanished
//!   `engine=exact` cell is a schema drift, not a perf delta — while
//!   labeled-histogram cells (flattened as `name{label=value}` rows)
//!   gate on their wall-time sums like any other latency metric;
//! * **v4 `memory` is informational**: allocator totals are printed as
//!   ratio rows but never gate, since a v3 baseline reads back as all
//!   zeros and allocation counts legitimately track workload size.
//!
//! `--update` skips the comparison and blesses `<new>` as the baseline
//! by copying it over `<old>`.

use crate::commands::CliError;
use std::io::Write;

/// Wall-times below this floor (seconds) never gate: at micro scale the
/// scheduler noise on a shared runner dwarfs any real regression.
const NOISE_FLOOR_SECS: f64 = 1e-3;

fn load_report(path: &str) -> Result<cad_obs::Report, CliError> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| CliError::Usage(format!("cannot open `{path}`: {e}")))?;
    let value = cad_obs::parse_json(&text)
        .map_err(|e| CliError::Usage(format!("`{path}` is not valid JSON: {e}")))?;
    cad_obs::Report::validate_json(&value).map_err(|errs| {
        CliError::Usage(format!(
            "`{path}` failed schema validation:\n  {}",
            errs.join("\n  ")
        ))
    })?;
    cad_obs::Report::from_json(&value).map_err(|e| CliError::Usage(format!("`{path}`: {e}")))
}

/// Whether a metric name belongs to the block-partition telemetry
/// namespace (`part.blocks`, `part_block_solve_secs{block=0}`, ...).
fn is_part_metric(name: &str) -> bool {
    name.starts_with("part.") || name.starts_with("part_")
}

/// Require identical key sets in one metric namespace. With
/// `allow_part_additions`, names in the `part.*` telemetry namespace
/// that appear only in the new report are tolerated — a baseline
/// predating the partitioned oracle gains them on the first partitioned
/// run, which is an addition, not a drift.
fn check_names<'a>(
    kind: &str,
    old: impl Iterator<Item = &'a String>,
    new: impl Iterator<Item = &'a String>,
    allow_part_additions: bool,
) -> Result<(), CliError> {
    let old: std::collections::BTreeSet<&String> = old.collect();
    let new: std::collections::BTreeSet<&String> = new.collect();
    let missing: Vec<&str> = old.difference(&new).map(|s| s.as_str()).collect();
    let extra: Vec<&str> = new
        .difference(&old)
        .map(|s| s.as_str())
        .filter(|s| !(allow_part_additions && is_part_metric(s)))
        .collect();
    if missing.is_empty() && extra.is_empty() {
        return Ok(());
    }
    let mut msg = format!("{kind} name sets differ:");
    if !missing.is_empty() {
        msg.push_str(&format!(" missing in new: [{}]", missing.join(", ")));
    }
    if !extra.is_empty() {
        msg.push_str(&format!(" extra in new: [{}]", extra.join(", ")));
    }
    Err(CliError::Usage(msg))
}

/// One row of the comparison table.
struct Row {
    name: String,
    old: f64,
    new: f64,
    /// Wall-time rows gate the exit code; count rows are informational.
    gated: bool,
}

impl Row {
    fn ratio(&self) -> f64 {
        if self.old == 0.0 {
            if self.new == 0.0 {
                1.0
            } else {
                f64::INFINITY
            }
        } else {
            self.new / self.old
        }
    }

    /// A gated row regresses when `new` exceeds the threshold multiple
    /// of `old`, with both ends clamped to the noise floor.
    fn regressed(&self, threshold: f64) -> bool {
        self.gated
            && self.new > NOISE_FLOOR_SECS
            && self.new > threshold * self.old.max(NOISE_FLOOR_SECS)
    }
}

/// Per-backend oracle-build wall-time sums over the instance records.
fn build_sums(report: &cad_obs::Report) -> std::collections::BTreeMap<String, f64> {
    let mut sums = std::collections::BTreeMap::new();
    for inst in &report.instances {
        *sums.entry(inst.backend.clone()).or_insert(0.0) += inst.build_secs;
    }
    sums
}

/// Run the comparison. See the module docs for the contract.
pub fn run_bench_diff(
    old_path: &str,
    new_path: &str,
    threshold: f64,
    update: bool,
    out: &mut dyn Write,
) -> Result<(), CliError> {
    if update {
        // Bless: the candidate becomes the committed baseline. `part.*`
        // counter/histogram additions are what blessing a first
        // partitioned run looks like, so they pass; any *other*
        // counter/histogram name drift against a readable baseline is
        // still refused — blessing should not silently paper over a
        // renamed metric. A missing or unreadable baseline blesses
        // unconditionally (first-time baseline).
        let new = load_report(new_path)?; // still refuse to bless garbage
        if let Ok(old) = load_report(old_path) {
            check_names("counter", old.counters.keys(), new.counters.keys(), true)?;
            check_names(
                "histogram",
                old.histograms.keys(),
                new.histograms.keys(),
                true,
            )?;
        }
        std::fs::copy(new_path, old_path)?;
        writeln!(out, "blessed {new_path} as the new baseline {old_path}")?;
        return Ok(());
    }
    let old = load_report(old_path)?;
    let new = load_report(new_path)?;

    check_names("counter", old.counters.keys(), new.counters.keys(), false)?;
    check_names("summary", old.summaries.keys(), new.summaries.keys(), false)?;
    check_names(
        "histogram",
        old.histograms.keys(),
        new.histograms.keys(),
        false,
    )?;
    check_names("phase", old.phases.keys(), new.phases.keys(), false)?;
    check_names("gauge", old.gauges.keys(), new.gauges.keys(), false)?;
    check_names("label family", old.labels.keys(), new.labels.keys(), false)?;
    for (family, old_cells) in &old.labels {
        // Same family on both sides (checked above); now the cells.
        check_names(
            &format!("label cell ({family})"),
            old_cells.values.keys(),
            new.labels[family].values.keys(),
            false,
        )?;
    }
    let old_builds = build_sums(&old);
    let new_builds = build_sums(&new);
    check_names("backend", old_builds.keys(), new_builds.keys(), false)?;

    let mut rows: Vec<Row> = Vec::new();
    for (path, stat) in &old.phases {
        rows.push(Row {
            name: format!("phase/{path}"),
            old: stat.total_secs,
            new: new.phases[path].total_secs,
            gated: true,
        });
    }
    for (backend, secs) in &old_builds {
        rows.push(Row {
            name: format!("build/{backend}"),
            old: *secs,
            new: new_builds[backend],
            gated: true,
        });
    }
    // Labeled-histogram cells arrive flattened as `name{label=value}`
    // histogram keys; their per-cell wall-time sums gate so a latency
    // regression confined to one engine cannot hide inside an
    // unchanged aggregate.
    for (name, h) in &old.histograms {
        if name.contains('{') {
            rows.push(Row {
                name: format!("cell/{name}"),
                old: h.sum,
                new: new.histograms[name].sum,
                gated: true,
            });
        }
    }
    for (name, value) in &old.counters {
        rows.push(Row {
            name: format!("counter/{name}"),
            old: *value as f64,
            new: new.counters[name] as f64,
            gated: false,
        });
    }
    for (name, value) in &old.gauges {
        rows.push(Row {
            name: format!("gauge/{name}"),
            old: *value as f64,
            new: new.gauges[name] as f64,
            gated: false,
        });
    }
    // Allocator totals (schema v4): informational — a v3 baseline reads
    // back zeroed, and allocation counts scale with workload size.
    if old.memory != cad_obs::MemoryReport::default()
        || new.memory != cad_obs::MemoryReport::default()
    {
        for (name, o, n) in [
            ("allocs", old.memory.allocs, new.memory.allocs),
            (
                "bytes_allocated",
                old.memory.bytes_allocated,
                new.memory.bytes_allocated,
            ),
            ("heap_bytes", old.memory.heap_bytes, new.memory.heap_bytes),
            (
                "heap_peak_bytes",
                old.memory.heap_peak_bytes,
                new.memory.heap_peak_bytes,
            ),
        ] {
            rows.push(Row {
                name: format!("memory/{name}"),
                old: o as f64,
                new: n as f64,
                gated: false,
            });
        }
    }

    let width = rows.iter().map(|r| r.name.len()).max().unwrap_or(6).max(6);
    writeln!(
        out,
        "noise floor: wall-times at or below {NOISE_FLOOR_SECS:.0e}s never gate"
    )?;
    writeln!(
        out,
        "{:width$}  {:>12}  {:>12}  {:>7}  gate",
        "metric", "old", "new", "ratio"
    )?;
    let mut regressions = Vec::new();
    for row in &rows {
        let status = if row.regressed(threshold) {
            regressions.push(row.name.clone());
            "REGRESSED"
        } else if !row.gated {
            "info"
        } else if row.old.max(row.new) <= NOISE_FLOOR_SECS {
            "noise"
        } else {
            "ok"
        };
        writeln!(
            out,
            "{:width$}  {:>12.6}  {:>12.6}  {:>6.3}x  {status}",
            row.name,
            row.old,
            row.new,
            row.ratio()
        )?;
    }
    if regressions.is_empty() {
        writeln!(
            out,
            "no wall-time metric regressed past {threshold:.2}x ({} compared)",
            rows.len()
        )?;
        Ok(())
    } else {
        Err(CliError::BenchRegression(format!(
            "{} wall-time metric(s) regressed past {threshold:.2}x: {}\n\
             (re-bless with `cad bench-diff {old_path} {new_path} --update` if intended)",
            regressions.len(),
            regressions.join(", ")
        )))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report_with(phase_secs: f64, build_secs: f64, counter: u64) -> String {
        let mut r = cad_obs::Report::new("bench_test");
        r.phases.insert(
            "detect".into(),
            cad_obs::SpanStat {
                calls: 1,
                total_secs: phase_secs,
            },
        );
        r.counters.insert("linalg.spmv".into(), counter);
        r.instances.push(cad_obs::InstanceReport {
            t: 0,
            backend: "exact".into(),
            build_secs,
            jl_dim: None,
            n_solves: 0,
            iterations: cad_obs::Summary::default(),
            residuals: cad_obs::Summary::default(),
        });
        r.to_json_string()
    }

    fn tmp(name: &str, content: &str) -> String {
        let dir = std::env::temp_dir().join("cad-bench-diff-tests");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(name).to_string_lossy().into_owned();
        std::fs::write(&path, content).unwrap();
        path
    }

    fn diff(old: &str, new: &str, threshold: f64) -> (Result<(), CliError>, String) {
        let mut out = Vec::new();
        let r = run_bench_diff(old, new, threshold, false, &mut out);
        (r, String::from_utf8(out).unwrap())
    }

    #[test]
    fn identical_reports_pass() {
        let text = report_with(0.1, 0.05, 100);
        let old = tmp("id-old.json", &text);
        let new = tmp("id-new.json", &text);
        let (r, table) = diff(&old, &new, 1.3);
        assert!(r.is_ok(), "{table}");
        assert!(table.contains("no wall-time metric regressed"), "{table}");
        assert!(table.contains("phase/detect"), "{table}");
        assert!(table.contains("build/exact"), "{table}");
    }

    #[test]
    fn regression_past_threshold_fails() {
        let old = tmp("reg-old.json", &report_with(0.1, 0.05, 100));
        let new = tmp("reg-new.json", &report_with(0.25, 0.05, 100));
        let (r, table) = diff(&old, &new, 1.3);
        match r {
            Err(CliError::BenchRegression(msg)) => {
                assert!(msg.contains("phase/detect"), "{msg}")
            }
            other => panic!("expected regression, got {other:?}\n{table}"),
        }
        assert!(table.contains("REGRESSED"), "{table}");
    }

    #[test]
    fn counter_drift_is_informational() {
        let old = tmp("cnt-old.json", &report_with(0.1, 0.05, 100));
        let new = tmp("cnt-new.json", &report_with(0.1, 0.05, 100_000));
        let (r, table) = diff(&old, &new, 1.3);
        assert!(r.is_ok(), "counters must not gate: {table}");
        assert!(table.contains("info"), "{table}");
    }

    #[test]
    fn sub_noise_times_never_gate() {
        let old = tmp("ns-old.json", &report_with(0.00001, 0.00002, 7));
        let new = tmp("ns-new.json", &report_with(0.00009, 0.00001, 7));
        let (r, table) = diff(&old, &new, 1.3);
        assert!(r.is_ok(), "sub-millisecond noise must pass: {table}");
        assert!(table.contains("noise"), "{table}");
    }

    #[test]
    fn header_prints_the_noise_floor() {
        let text = report_with(0.1, 0.05, 100);
        let old = tmp("nf-old.json", &text);
        let new = tmp("nf-new.json", &text);
        let (r, table) = diff(&old, &new, 1.3);
        assert!(r.is_ok(), "{table}");
        assert!(
            table.contains("noise floor") && table.contains("1e-3"),
            "header must state the floor value: {table}"
        );
    }

    #[test]
    fn exact_noise_floor_boundary_never_gates() {
        // `regressed` uses a strict `>` against the floor: a new time of
        // exactly 1ms is still noise, even against a near-zero baseline.
        let at_floor = Row {
            name: "phase/x".into(),
            old: 1e-9,
            new: NOISE_FLOOR_SECS,
            gated: true,
        };
        assert!(!at_floor.regressed(1.3), "exactly 1ms must not gate");
        // One ULP above the floor is past it; with old clamped up to the
        // floor the threshold comparison takes over (still not enough
        // to regress at 1.3x)...
        let just_above = Row {
            name: "phase/x".into(),
            old: 1e-9,
            new: NOISE_FLOOR_SECS * (1.0 + f64::EPSILON),
            gated: true,
        };
        assert!(!just_above.regressed(1.3), "needs threshold x floor");
        // ...while clearing threshold * floor does regress.
        let past = Row {
            name: "phase/x".into(),
            old: 1e-9,
            new: 1.3f64 * NOISE_FLOOR_SECS + 1e-12,
            gated: true,
        };
        assert!(past.regressed(1.3));
        // And an old time exactly at the floor is clamped, not zeroed:
        // new must exceed threshold * floor, not threshold * 0.
        let old_at_floor = Row {
            name: "phase/x".into(),
            old: NOISE_FLOOR_SECS,
            new: 1.2e-3,
            gated: true,
        };
        assert!(!old_at_floor.regressed(1.3));
    }

    #[test]
    fn name_mismatch_is_a_hard_error() {
        let old = tmp("nm-old.json", &report_with(0.1, 0.05, 100));
        let mut r = cad_obs::Report::new("bench_test");
        r.phases.insert(
            "renamed_phase".into(),
            cad_obs::SpanStat {
                calls: 1,
                total_secs: 0.1,
            },
        );
        r.counters.insert("linalg.spmv".into(), 100);
        let new = tmp("nm-new.json", &r.to_json_string());
        let (result, _) = diff(&old, &new, 1.3);
        match result {
            Err(CliError::Usage(msg)) => {
                assert!(msg.contains("name sets differ"), "{msg}")
            }
            other => panic!("expected usage error, got {other:?}"),
        }
    }

    #[test]
    fn gauge_name_mismatch_is_a_hard_error_but_drift_is_informational() {
        let with_gauges = |heap: u64, extra: bool| {
            let mut r = cad_obs::Report::new("bench_test");
            r.gauges.insert("mem.heap_peak_bytes".into(), heap);
            if extra {
                r.gauges.insert("sessions.active".into(), 3);
            }
            r.to_json_string()
        };
        // A gauge present in only one report: schema drift, exit 1.
        let old = tmp("gg-old.json", &with_gauges(1000, false));
        let new = tmp("gg-new.json", &with_gauges(1000, true));
        let (result, _) = diff(&old, &new, 1.3);
        match result {
            Err(CliError::Usage(msg)) => {
                assert!(
                    msg.contains("gauge name sets differ") && msg.contains("sessions.active"),
                    "{msg}"
                )
            }
            other => panic!("expected usage error, got {other:?}"),
        }
        // Same names, 100x the value: informational only.
        let old = tmp("gd-old.json", &with_gauges(1000, true));
        let new = tmp("gd-new.json", &with_gauges(100_000, true));
        let (r, table) = diff(&old, &new, 1.3);
        assert!(r.is_ok(), "gauges must not gate: {table}");
        assert!(table.contains("gauge/mem.heap_peak_bytes"), "{table}");
    }

    #[test]
    fn labeled_histogram_cells_gate_and_label_cells_must_match() {
        let with_cell = |secs: f64, value: &str| {
            let mut r = cad_obs::Report::new("bench_test");
            r.histograms.insert(
                format!("serve_push_secs{{engine={value}}}"),
                cad_obs::Histogram::of([secs]),
            );
            let mut fam = cad_obs::LabelFamily {
                label: "reason".into(),
                values: std::collections::BTreeMap::new(),
            };
            fam.values.insert(value.to_string(), 2);
            r.labels.insert("fallbacks".into(), fam);
            r.to_json_string()
        };
        // A 10x regression confined to one engine cell gates.
        let old = tmp("lc-old.json", &with_cell(0.01, "exact"));
        let new = tmp("lc-new.json", &with_cell(0.1, "exact"));
        let (result, table) = diff(&old, &new, 1.3);
        match result {
            Err(CliError::BenchRegression(msg)) => {
                assert!(msg.contains("cell/serve_push_secs{engine=exact}"), "{msg}")
            }
            other => panic!("expected regression, got {other:?}\n{table}"),
        }
        // A renamed labeled-counter cell is a hard error.
        let old = tmp("lv-old.json", &with_cell(0.01, "exact"));
        let new = tmp("lv-new.json", &with_cell(0.01, "cg"));
        let (result, _) = diff(&old, &new, 1.3);
        assert!(
            matches!(result, Err(CliError::Usage(_))),
            "cell rename must be a hard error, got {result:?}"
        );
    }

    #[test]
    fn memory_section_is_informational_even_against_a_v3_baseline() {
        // Old report: no memory section (reads back zeroed, like v3).
        let old = tmp("mm-old.json", &report_with(0.1, 0.05, 100));
        let mut r = cad_obs::Report::new("bench_test");
        r.phases.insert(
            "detect".into(),
            cad_obs::SpanStat {
                calls: 1,
                total_secs: 0.1,
            },
        );
        r.counters.insert("linalg.spmv".into(), 100);
        r.instances.push(cad_obs::InstanceReport {
            t: 0,
            backend: "exact".into(),
            build_secs: 0.05,
            jl_dim: None,
            n_solves: 0,
            iterations: cad_obs::Summary::default(),
            residuals: cad_obs::Summary::default(),
        });
        r.memory = cad_obs::MemoryReport {
            allocs: 10_000,
            frees: 9_000,
            bytes_allocated: 1 << 20,
            bytes_freed: 1 << 19,
            heap_bytes: 1 << 19,
            heap_peak_bytes: 1 << 20,
        };
        let new = tmp("mm-new.json", &r.to_json_string());
        let (result, table) = diff(&old, &new, 1.3);
        assert!(result.is_ok(), "memory must not gate: {table}");
        assert!(table.contains("memory/heap_peak_bytes"), "{table}");
    }

    #[test]
    fn part_additions_bless_with_update_but_hard_fail_without() {
        // The new report measured the same run plus the partitioned
        // oracle's telemetry: part.* counter and histogram additions.
        let with_part = |part: bool| {
            let mut r = cad_obs::Report::new("bench_test");
            r.phases.insert(
                "detect".into(),
                cad_obs::SpanStat {
                    calls: 1,
                    total_secs: 0.1,
                },
            );
            r.counters.insert("linalg.spmv".into(), 100);
            if part {
                r.counters.insert("part.blocks".into(), 4);
                r.counters.insert("part.block_solves".into(), 4);
                r.histograms.insert(
                    "part_block_solve_secs{block=0}".into(),
                    cad_obs::Histogram::of([0.01]),
                );
            }
            r.to_json_string()
        };
        // Without --update: a part.* addition is still a name-set
        // mismatch, exit 1.
        let old = tmp("pt-old.json", &with_part(false));
        let new = tmp("pt-new.json", &with_part(true));
        let (result, _) = diff(&old, &new, 1.3);
        match result {
            Err(CliError::Usage(msg)) => {
                assert!(
                    msg.contains("name sets differ") && msg.contains("part."),
                    "{msg}"
                )
            }
            other => panic!("expected usage error, got {other:?}"),
        }
        // With --update: part.* additions are blessed in.
        let mut out = Vec::new();
        run_bench_diff(&old, &new, 1.3, true, &mut out).unwrap();
        assert_eq!(std::fs::read_to_string(&old).unwrap(), with_part(true));
        // After blessing, the strict diff is clean again.
        let (r, table) = diff(&old, &new, 1.3);
        assert!(r.is_ok(), "{table}");
    }

    #[test]
    fn update_still_refuses_non_part_name_drift() {
        let with_counter = |name: &str| {
            let mut r = cad_obs::Report::new("bench_test");
            r.counters.insert("linalg.spmv".into(), 100);
            r.counters.insert(name.into(), 1);
            r.to_json_string()
        };
        let old_text = with_counter("detect.anomalous_nodes");
        let old = tmp("np-old.json", &old_text);
        let new = tmp("np-new.json", &with_counter("detect.renamed_nodes"));
        let mut out = Vec::new();
        let result = run_bench_diff(&old, &new, 1.3, true, &mut out);
        match result {
            Err(CliError::Usage(msg)) => {
                assert!(msg.contains("name sets differ"), "{msg}")
            }
            other => panic!("expected usage error, got {other:?}"),
        }
        // The refused bless must leave the baseline untouched.
        assert_eq!(std::fs::read_to_string(&old).unwrap(), old_text);
        // A missing baseline blesses unconditionally (first baseline).
        let fresh = std::env::temp_dir()
            .join("cad-bench-diff-tests")
            .join("np-fresh-baseline.json");
        let _ = std::fs::remove_file(&fresh);
        let fresh = fresh.to_string_lossy().into_owned();
        let mut out = Vec::new();
        run_bench_diff(&fresh, &new, 1.3, true, &mut out).unwrap();
        assert!(std::fs::metadata(&fresh).is_ok(), "baseline was created");
    }

    #[test]
    fn update_blesses_baseline() {
        let old = tmp("up-old.json", &report_with(0.1, 0.05, 100));
        let new_text = report_with(0.9, 0.5, 200);
        let new = tmp("up-new.json", &new_text);
        let mut out = Vec::new();
        run_bench_diff(&old, &new, 1.3, true, &mut out).unwrap();
        assert_eq!(std::fs::read_to_string(&old).unwrap(), new_text);
        // After blessing, the diff is clean.
        let (r, _) = diff(&old, &new, 1.3);
        assert!(r.is_ok());
    }
}
