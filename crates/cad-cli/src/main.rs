//! The `cad` command-line tool — see [`cad_cli`] for the command
//! surface and `cad --help` for usage.

fn main() {
    let mut stdout = std::io::stdout().lock();
    let code = cad_cli::run(std::env::args().skip(1), &mut stdout);
    std::process::exit(code);
}
