//! The `cad` command-line tool — see [`cad_cli`] for the command
//! surface and `cad --help` for usage.

/// Exact heap accounting for the whole binary: feeds the `mem.*`
/// gauges in `/metrics` and the report's `memory` section.
#[global_allocator]
static ALLOC: cad_obs::CountingAlloc = cad_obs::CountingAlloc::new();

fn main() {
    let mut stdout = std::io::stdout().lock();
    let code = cad_cli::run(std::env::args().skip(1), &mut stdout);
    std::process::exit(code);
}
