//! Command implementations for the `cad` binary.

use crate::cli::{
    Cli, Command, EngineArg, JournalAction, KindArg, PartitionModeArg, UpdateModeArg,
};
use cad_commute::{EmbeddingOptions, EngineOptions, PartitionMode, PartitionSpec};
use cad_core::{CadDetector, CadOptions, ScoreKind, ThresholdMode, ThresholdPolicy, UpdateMode};
use cad_graph::io::{read_sequence, write_sequence};
use cad_graph::GraphSequence;
use std::fs::File;
use std::io::Write;

/// Top-level error for CLI runs.
#[derive(Debug)]
pub enum CliError {
    /// Filesystem problem.
    Io(std::io::Error),
    /// Parse / graph / numerical problem.
    Graph(cad_graph::GraphError),
    /// Bad user input not caught at flag parsing.
    Usage(String),
    /// `bench-diff` found a wall-time regression past the threshold
    /// (exit code 4 so CI can distinguish it from hard failures).
    BenchRegression(String),
}

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CliError::Io(e) => write!(f, "{e}"),
            CliError::Graph(e) => write!(f, "{e}"),
            CliError::Usage(m) => write!(f, "{m}"),
            CliError::BenchRegression(m) => write!(f, "{m}"),
        }
    }
}

impl From<std::io::Error> for CliError {
    fn from(e: std::io::Error) -> Self {
        CliError::Io(e)
    }
}

impl From<cad_graph::GraphError> for CliError {
    fn from(e: cad_graph::GraphError) -> Self {
        CliError::Graph(e)
    }
}

pub(crate) fn engine_options(engine: EngineArg, k: usize) -> EngineOptions {
    engine_options_traced(engine, k, 0)
}

/// Like [`engine_options`], with per-solve residual tracing: keep the
/// last `residual_trace_cap` relative residuals of every PCG solve
/// (surfaced in the v4 report's `solves[].residual_trace`). Purely
/// observational — the solve path and its output are unchanged.
pub(crate) fn engine_options_traced(
    engine: EngineArg,
    k: usize,
    residual_trace_cap: usize,
) -> EngineOptions {
    let mut solver = cad_linalg::solve::LaplacianSolverOptions::default();
    solver.cg.residual_trace_cap = residual_trace_cap;
    let embedding = EmbeddingOptions {
        k,
        solver,
        ..Default::default()
    };
    match engine {
        EngineArg::Auto => EngineOptions::Auto {
            threshold: 512,
            embedding,
        },
        EngineArg::Exact => EngineOptions::Exact,
        EngineArg::Approx => EngineOptions::Approximate(embedding),
        EngineArg::Corrected => EngineOptions::Corrected,
    }
}

pub(crate) fn update_mode(mode: UpdateModeArg) -> UpdateMode {
    match mode {
        UpdateModeArg::Rebuild => UpdateMode::Rebuild,
        UpdateModeArg::Incremental => UpdateMode::Incremental,
        UpdateModeArg::Auto => UpdateMode::Auto,
    }
}

/// Map the parsed `--partition` / `--partition-mode` pair onto the
/// engine-facing spec (`None` = monolithic oracle).
pub(crate) fn partition_spec(
    blocks: Option<usize>,
    mode: PartitionModeArg,
) -> Option<PartitionSpec> {
    blocks.map(|blocks| PartitionSpec {
        blocks,
        mode: match mode {
            PartitionModeArg::Auto => PartitionMode::Auto,
            PartitionModeArg::Components => PartitionMode::Components,
            PartitionModeArg::Bfs => PartitionMode::Bfs,
        },
    })
}

pub(crate) fn score_kind(kind: KindArg) -> ScoreKind {
    match kind {
        KindArg::Cad => ScoreKind::Cad,
        KindArg::Adj => ScoreKind::Adj,
        KindArg::Com => ScoreKind::Com,
    }
}

fn load_sequence(path: &str) -> Result<GraphSequence, CliError> {
    // Packed inputs route through the validated binary reader; anything
    // else is the plain-text sequence format.
    if path.ends_with(".cadpack") {
        let seq = cad_store::read_pack(std::path::Path::new(path))
            .map_err(|e| CliError::Usage(format!("cannot load pack `{path}`: {e}")))?;
        return Ok(seq);
    }
    let file =
        File::open(path).map_err(|e| CliError::Usage(format!("cannot open `{path}`: {e}")))?;
    Ok(read_sequence(file)?)
}

/// Open the oracle cache when `--store-dir` was given.
fn open_store(
    dir: &Option<String>,
) -> Result<Option<std::sync::Arc<cad_store::OracleStore>>, CliError> {
    match dir {
        Some(d) => {
            let store = cad_store::OracleStore::open(std::path::Path::new(d))
                .map_err(|e| CliError::Usage(format!("cannot open store `{d}`: {e}")))?;
            Ok(Some(std::sync::Arc::new(store)))
        }
        None => Ok(None),
    }
}

/// Run one parsed command, writing human-readable output to `out`.
pub fn dispatch(cli: &Cli, out: &mut dyn Write) -> Result<(), CliError> {
    match &cli.command {
        Command::Detect {
            input,
            l,
            delta,
            kind,
            engine,
            k,
            threads,
            trace,
            metrics_json,
            store_dir,
            profile,
            partition,
            partition_mode,
        } => {
            let seq = load_sequence(input)?;
            // Any observability sink opts into per-solve residual
            // traces; the bounded ring never perturbs the solves.
            let residual_cap = if *trace || metrics_json.is_some() || profile.is_some() {
                DETECT_RESIDUAL_TRACE_CAP
            } else {
                0
            };
            let mut det = CadDetector::new(CadOptions {
                engine: engine_options_traced(*engine, *k, residual_cap),
                kind: score_kind(*kind),
                threads: *threads,
                partition: partition_spec(*partition, *partition_mode),
            });
            if let Some(store) = open_store(store_dir)? {
                det = det.with_provider(store);
            }
            let policy = match (l, delta) {
                (_, Some(d)) => ThresholdPolicy::Fixed(*d),
                (Some(l), None) => ThresholdPolicy::TargetNodesPerTransition(*l),
                (None, None) => ThresholdPolicy::TargetNodesPerTransition(5),
            };
            // With `--profile` an ambient trace context is installed so
            // trace-gated events (e.g. laplacian_solve span closes)
            // reach the flight recorder for the timeline.
            let _trace_guard = profile
                .as_ref()
                .map(|_| cad_obs::trace::set_current(cad_obs::TraceCtx::mint(0)));
            let (result, metrics) = det.detect_with_policy_metered(&seq, policy)?;
            if *trace || metrics_json.is_some() {
                let report = build_report(&result, &metrics);
                if *trace {
                    eprint!("{}", report.render_trace());
                }
                if let Some(path) = metrics_json {
                    std::fs::write(path, report.to_json_string())?;
                    writeln!(out, "metrics report written to {path}")?;
                }
            }
            let delta_text = match result.delta {
                Some(d) => format!("{d:.6}"),
                None => "n/a".to_string(),
            };
            writeln!(
                out,
                "{} nodes, {} instances, {} transitions; δ = {}",
                seq.n_nodes(),
                seq.len(),
                seq.n_transitions(),
                delta_text
            )?;
            for tr in &result.transitions {
                if tr.edges.is_empty() {
                    continue;
                }
                writeln!(out, "transition {} -> {}:", tr.t, tr.t + 1)?;
                let explanations =
                    cad_core::explain_transition(&tr.edges, seq.graph(tr.t), seq.graph(tr.t + 1));
                for (e, x) in tr.edges.iter().zip(&explanations) {
                    writeln!(
                        out,
                        "  edge {} {}  score {:.6}  d_weight {:+.4}  d_commute {:+.4}  [{}]",
                        e.u,
                        e.v,
                        e.score,
                        e.d_weight,
                        e.d_commute,
                        x.case.label()
                    )?;
                }
                let nodes: Vec<String> = tr.nodes.iter().map(|n| n.to_string()).collect();
                writeln!(out, "  nodes: {}", nodes.join(" "))?;
            }
            let quiet = result
                .transitions
                .iter()
                .filter(|t| t.edges.is_empty())
                .count();
            writeln!(out, "{quiet} quiet transitions")?;
            if let Some(path) = profile {
                write_profile(path)?;
                eprintln!("profile written to {path}");
            }
            Ok(())
        }
        Command::Score {
            input,
            kind,
            top,
            threads,
        } => {
            let seq = load_sequence(input)?;
            let det = CadDetector::new(CadOptions {
                engine: EngineOptions::default(),
                kind: score_kind(*kind),
                threads: *threads,
                partition: None,
            });
            let scored = det.score_sequence(&seq)?;
            for (t, scores) in scored.iter().enumerate() {
                writeln!(
                    out,
                    "transition {t} -> {} ({} scored edges):",
                    t + 1,
                    scores.len()
                )?;
                for e in scores.iter().take(*top) {
                    writeln!(out, "  {} {}  {:.6}", e.u, e.v, e.score)?;
                }
            }
            Ok(())
        }
        Command::Generate {
            dataset,
            out: out_path,
            seed,
        } => {
            let seq = generate_dataset(dataset, *seed)?;
            match out_path {
                Some(path) => {
                    let file = File::create(path)?;
                    write_sequence(file, &seq)?;
                    writeln!(
                        out,
                        "wrote {} instances over {} nodes to {path}",
                        seq.len(),
                        seq.n_nodes()
                    )?;
                }
                None => write_sequence(out, &seq)?,
            }
            Ok(())
        }
        Command::Watch {
            input,
            l,
            delta,
            kind,
            engine,
            k,
            events,
            metrics_addr,
            max_instances,
            poll_ms,
            hold_ms,
            store_dir,
            update_mode: upd,
            access_log,
        } => {
            let mode = match (l, delta) {
                (_, Some(d)) => ThresholdMode::Fixed(*d),
                (Some(l), None) => ThresholdMode::TargetNodes(*l),
                (None, None) => ThresholdMode::TargetNodes(5),
            };
            let cfg = crate::watch::WatchConfig {
                mode,
                events: events.clone(),
                metrics_addr: metrics_addr.clone(),
                max_instances: *max_instances,
                poll_ms: *poll_ms,
                hold_ms: *hold_ms,
                store_dir: store_dir.clone(),
                update_mode: update_mode(*upd),
                access_log: access_log.clone(),
            };
            if access_log.is_some() {
                // Same crash story as serve: an operator who asked for
                // an access log gets the flight recorder on panic too.
                let default_hook = std::panic::take_hook();
                std::panic::set_hook(Box::new(move |info| {
                    let _ = cad_obs::recorder().dump(&mut std::io::stderr().lock());
                    default_hook(info);
                }));
            }
            crate::watch::run_watch(input, *kind, *engine, *k, &cfg, out)
        }
        Command::Pack {
            input,
            out: dest,
            label,
        } => {
            let seq = load_sequence(input)?;
            let bytes = cad_store::write_pack(std::path::Path::new(dest), &seq, label)
                .map_err(|e| CliError::Usage(format!("cannot write pack `{dest}`: {e}")))?;
            writeln!(
                out,
                "packed {} instances over {} nodes into {dest} ({bytes} bytes)",
                seq.len(),
                seq.n_nodes()
            )?;
            Ok(())
        }
        Command::Inspect { input } => {
            let info = cad_store::inspect_pack(std::path::Path::new(input))
                .map_err(|e| CliError::Usage(format!("cannot inspect `{input}`: {e}")))?;
            writeln!(out, "pack: {input}")?;
            writeln!(out, "  format version : {}", info.version)?;
            writeln!(out, "  label          : {:?}", info.meta.label)?;
            writeln!(out, "  nodes          : {}", info.meta.n_nodes)?;
            writeln!(out, "  instances      : {}", info.meta.n_instances)?;
            writeln!(out, "  base edges     : {}", info.base_edges)?;
            writeln!(out, "  delta edges    : {:?}", info.delta_edges)?;
            writeln!(out, "  file bytes     : {}", info.file_bytes)?;
            writeln!(out, "  integrity      : all section checksums ok")?;
            Ok(())
        }
        Command::Serve {
            addr,
            workers,
            max_body,
            max_sessions,
            store_dir,
            update_mode: upd,
            access_log,
            journal_dir,
            journal_fsync,
            max_push_rps,
        } => {
            let mut journal = cad_journal::JournalConfig::default();
            if let Some(name) = journal_fsync {
                journal.fsync = cad_journal::FsyncPolicy::from_name(name)
                    .ok_or_else(|| CliError::Usage(format!("unknown --journal-fsync `{name}`")))?;
            }
            let cfg = cad_serve::ServeConfig {
                addr: addr.clone(),
                workers: *workers,
                max_body_bytes: *max_body,
                max_sessions: *max_sessions,
                store_dir: store_dir.clone().map(std::path::PathBuf::from),
                update_mode: update_mode(*upd),
                access_log: access_log.clone(),
                journal_dir: journal_dir.clone().map(std::path::PathBuf::from),
                journal,
                max_push_rps: *max_push_rps,
                ..Default::default()
            };
            // A crash should leave the last-seconds story behind: dump
            // the flight-recorder ring to stderr before unwinding.
            let default_hook = std::panic::take_hook();
            std::panic::set_hook(Box::new(move |info| {
                let _ = cad_obs::recorder().dump(&mut std::io::stderr().lock());
                default_hook(info);
            }));
            let server = cad_serve::Server::start(cfg)
                .map_err(|e| CliError::Usage(format!("cannot start server: {e}")))?;
            if let Some(log) = server.access_log() {
                // Panicking must not strand buffered access-log lines:
                // flush and fsync them before the recorder dump above
                // (the previous hook) runs.
                let prev_hook = std::panic::take_hook();
                std::panic::set_hook(Box::new(move |info| {
                    log.sync();
                    prev_hook(info);
                }));
            }
            if let Some(dir) = journal_dir {
                writeln!(
                    out,
                    "recovered {} session(s) from {dir}",
                    server.recovered_sessions()
                )?;
            }
            writeln!(out, "serving detection API at http://{}", server.addr())?;
            out.flush()?;
            server.serve_until_shutdown();
            writeln!(out, "drained; all sessions closed")?;
            Ok(())
        }
        Command::StoreGc {
            store_dir,
            max_bytes,
        } => {
            let store = cad_store::OracleStore::open(std::path::Path::new(store_dir))
                .map_err(|e| CliError::Usage(format!("cannot open store `{store_dir}`: {e}")))?;
            let stats = store
                .gc(*max_bytes)
                .map_err(|e| CliError::Usage(format!("gc failed in `{store_dir}`: {e}")))?;
            writeln!(
                out,
                "reclaimed {} bytes ({} files); kept {} bytes ({} files)",
                stats.bytes_reclaimed, stats.files_removed, stats.bytes_kept, stats.files_kept
            )?;
            Ok(())
        }
        Command::Journal { action, dir } => {
            let root = std::path::Path::new(dir);
            match action {
                JournalAction::Inspect => {
                    let infos = cad_journal::inspect_root(root).map_err(|e| {
                        CliError::Usage(format!("cannot inspect journals in `{dir}`: {e}"))
                    })?;
                    if infos.is_empty() {
                        writeln!(out, "no session journals under {dir}")?;
                        return Ok(());
                    }
                    for info in &infos {
                        let bytes: u64 = info.segments.iter().map(|&(_, b)| b).sum();
                        writeln!(out, "session {}:", info.session_id)?;
                        write!(out, "  segments  : {} ({bytes} bytes)", info.segments.len())?;
                        if info.stale_segments > 0 {
                            write!(out, " + {} stale pre-checkpoint", info.stale_segments)?;
                        }
                        writeln!(out)?;
                        writeln!(
                            out,
                            "  records   : {} create, {} delta, {} delete, {} checkpoint",
                            info.counts[0], info.counts[1], info.counts[2], info.counts[3]
                        )?;
                        writeln!(
                            out,
                            "  torn tail : {}",
                            if info.torn_tail {
                                "yes (dropped on recovery)"
                            } else {
                                "no"
                            }
                        )?;
                    }
                    Ok(())
                }
                JournalAction::Compact => {
                    let recovered = cad_journal::recover_root(root).map_err(|e| {
                        CliError::Usage(format!("cannot recover journals in `{dir}`: {e}"))
                    })?;
                    if recovered.is_empty() {
                        writeln!(out, "no session journals under {dir}")?;
                        return Ok(());
                    }
                    for rec in &recovered {
                        let sid = rec.session_id;
                        // Replay offline (no oracle cache — the state we
                        // checkpoint is engine-independent) and collapse
                        // the whole record stream into one checkpoint.
                        let rs = cad_serve::replay(rec, None)
                            .map_err(|e| CliError::Usage(format!("session {sid}: {e}")))?;
                        let checkpoint = cad_serve::journal::encode_checkpoint(
                            &rs.spec_json,
                            &rs.online.state(),
                        );
                        let mut journal = cad_journal::SessionJournal::open(
                            root,
                            cad_journal::JournalConfig::default(),
                            rec,
                        )
                        .map_err(|e| {
                            CliError::Usage(format!("session {sid}: cannot reopen journal: {e}"))
                        })?;
                        journal.compact(&checkpoint).map_err(|e| {
                            CliError::Usage(format!("session {sid}: compaction failed: {e}"))
                        })?;
                        writeln!(
                            out,
                            "session {sid}: {} records, {} -> {} bytes",
                            rec.records.len(),
                            rec.total_bytes,
                            journal.total_bytes()
                        )?;
                    }
                    Ok(())
                }
            }
        }
        Command::BenchDiff {
            old,
            new,
            threshold,
            update,
        } => crate::bench_diff::run_bench_diff(old, new, *threshold, *update, out),
        Command::Profile {
            inner,
            out: trace_out,
        } => {
            // Install an ambient trace context so gated instrumentation
            // (laplacian_solve, span close events) records while the
            // wrapped command runs; its own output is untouched.
            let guard = cad_obs::trace::set_current(cad_obs::TraceCtx::mint(0));
            let inner_cli = Cli {
                command: (**inner).clone(),
            };
            // The whole wrapped command runs inside one traced span, so
            // even a batch run (which never touches the flight recorder
            // on its own) leaves a span-close record carrying the trace
            // id — the timeline's flow anchor.
            let result = {
                let _span = cad_obs::TraceSpan::enter("command");
                dispatch(&inner_cli, out)
            };
            drop(guard);
            write_profile(trace_out)?;
            eprintln!("profile written to {trace_out}");
            result
        }
        Command::ValidateReport { input } => {
            let text = std::fs::read_to_string(input)
                .map_err(|e| CliError::Usage(format!("cannot open `{input}`: {e}")))?;
            let value = cad_obs::parse_json(&text)
                .map_err(|e| CliError::Usage(format!("`{input}` is not valid JSON: {e}")))?;
            match cad_obs::Report::validate_json(&value) {
                Ok(()) => {
                    let report = cad_obs::Report::from_json(&value)
                        .map_err(|e| CliError::Usage(format!("`{input}`: {e}")))?;
                    writeln!(
                        out,
                        "valid report (schema_version {}, tool `{}`): {} phases, \
                         {} instances, {} transitions, {} solves",
                        report.schema_version,
                        report.tool,
                        report.phases.len(),
                        report.instances.len(),
                        report.transitions.len(),
                        report.solves.len()
                    )?;
                    Ok(())
                }
                Err(errs) => Err(CliError::Usage(format!(
                    "`{input}` failed schema validation:\n  {}",
                    errs.join("\n  ")
                ))),
            }
        }
    }
}

/// How many trailing per-iteration residuals each traced PCG solve
/// keeps (bounded ring; see `CgOptions::residual_trace_cap`).
const DETECT_RESIDUAL_TRACE_CAP: usize = 32;

/// Render the process-wide span registry + flight recorder as a
/// Chrome-trace/Perfetto trace-event JSON file.
fn write_profile(path: &str) -> Result<(), CliError> {
    let doc = cad_obs::profile::capture(cad_obs::RING_CAPACITY);
    std::fs::write(path, doc.compact())?;
    Ok(())
}

/// Assemble the machine-readable run report: detection metrics (merged
/// deterministically on the coordinator), the global span registry and
/// the hot-path counters.
fn build_report(
    result: &cad_core::DetectionResult,
    metrics: &cad_core::DetectionMetrics,
) -> cad_obs::Report {
    let mut report = cad_obs::Report::new("cad detect");
    report.absorb_snapshot(&cad_obs::global().snapshot());
    for (name, value) in cad_obs::counters::snapshot() {
        report.counters.insert(name.to_string(), value);
    }
    for (name, value) in cad_obs::gauges::snapshot() {
        report.gauges.insert(name.to_string(), value);
    }
    for (name, label, values) in cad_obs::labeled::snapshot() {
        report.labels.insert(
            name.to_string(),
            cad_obs::LabelFamily {
                label: label.to_string(),
                values: values
                    .into_iter()
                    .map(|(value, count)| (value.to_string(), count))
                    .collect(),
            },
        );
    }
    metrics.fill_report(&mut report);
    report.capture_memory();
    report.counters.insert(
        "detect.anomalous_nodes".to_string(),
        result.total_nodes() as u64,
    );
    report.counters.insert(
        "detect.anomalous_transitions".to_string(),
        result.anomalous_transitions().len() as u64,
    );
    if let Some(delta) = result.delta {
        report
            .summaries
            .insert("detect.delta".to_string(), cad_obs::Summary::of([delta]));
    }
    report
}

fn generate_dataset(name: &str, seed: u64) -> Result<GraphSequence, CliError> {
    use cad_datasets::*;
    let seq = match name {
        "toy" => cad_graph::generators::toy::toy_example().seq,
        "gmm" => {
            let mut opts = GmmBenchmarkOptions::with_n(300);
            opts.seed = seed;
            GmmBenchmark::generate(&opts)?.seq
        }
        "enron" => {
            EnronSim::generate(&EnronSimOptions {
                seed,
                ..Default::default()
            })?
            .seq
        }
        "dblp" => {
            DblpSim::generate(&DblpSimOptions {
                seed,
                ..Default::default()
            })?
            .seq
        }
        "precip" => {
            PrecipSim::generate(&PrecipSimOptions {
                seed,
                ..Default::default()
            })?
            .seq
        }
        other => {
            return Err(CliError::Usage(format!(
                "unknown dataset `{other}` (toy|gmm|enron|dblp|precip)"
            )))
        }
    };
    Ok(seq)
}

#[cfg(test)]
mod tests {
    use crate::run;

    fn run_str(cmd: &str) -> (i32, String) {
        let mut out = Vec::new();
        let code = run(cmd.split_whitespace().map(String::from), &mut out);
        (code, String::from_utf8(out).expect("utf8 output"))
    }

    fn tmp(name: &str) -> String {
        let dir = std::env::temp_dir().join("cad-cli-tests");
        std::fs::create_dir_all(&dir).expect("mk tmp dir");
        dir.join(name).to_string_lossy().into_owned()
    }

    #[test]
    fn generate_then_detect_roundtrip() {
        let path = tmp("toy-seq.txt");
        let (code, msg) = run_str(&format!("generate --dataset toy --out {path}"));
        assert_eq!(code, 0, "{msg}");
        assert!(msg.contains("17 nodes"));

        let (code, report) = run_str(&format!("detect --input {path} --l 6 --engine exact"));
        assert_eq!(code, 0, "{report}");
        // The toy example's three anomalous edges appear (b4=3, b5=4 etc.
        // use raw indices: b1=0, r1=8; b4=3, b5=4; r7=14, r8=15).
        assert!(report.contains("edge 0 8"), "{report}");
        assert!(report.contains("edge 3 4"), "{report}");
        assert!(report.contains("edge 14 15"), "{report}");
    }

    #[test]
    fn score_lists_ranked_edges() {
        let path = tmp("toy-seq2.txt");
        run_str(&format!("generate --dataset toy --out {path}"));
        let (code, report) = run_str(&format!("score --input {path} --top 2"));
        assert_eq!(code, 0, "{report}");
        assert!(
            report.contains("transition 0 -> 1 (5 scored edges)"),
            "{report}"
        );
    }

    #[test]
    fn generate_to_stdout() {
        let (code, text) = run_str("generate --dataset toy");
        assert_eq!(code, 0);
        assert!(text.starts_with("nodes 17"), "{text}");
        assert!(text.matches("instance").count() == 2);
    }

    #[test]
    fn missing_file_is_a_usage_error() {
        let (code, msg) = run_str("detect --input /definitely/not/here.txt");
        assert_eq!(code, 1);
        assert!(msg.contains("cannot open"), "{msg}");
    }

    #[test]
    fn unknown_dataset_rejected() {
        let (code, msg) = run_str("generate --dataset mars");
        assert_eq!(code, 1);
        assert!(msg.contains("unknown dataset"));
    }

    #[test]
    fn bad_flags_exit_2() {
        let (code, msg) = run_str("detect");
        assert_eq!(code, 2);
        assert!(msg.contains("--input"));
    }

    #[test]
    fn threads_flag_gives_identical_report() {
        let path = tmp("toy-seq4.txt");
        run_str(&format!("generate --dataset toy --out {path}"));
        let (code, serial) = run_str(&format!("detect --input {path} --l 6 --threads 1"));
        assert_eq!(code, 0, "{serial}");
        let (code, par) = run_str(&format!("detect --input {path} --l 6 --threads 4"));
        assert_eq!(code, 0, "{par}");
        assert_eq!(serial, par, "output must be thread-count invariant");
    }

    #[test]
    fn partitioned_detect_runs() {
        let path = tmp("toy-seq-part.txt");
        run_str(&format!("generate --dataset toy --out {path}"));
        let (code, report) = run_str(&format!(
            "detect --input {path} --l 6 --engine exact --partition 3"
        ));
        assert_eq!(code, 0, "{report}");
        assert!(report.contains("transition 0 -> 1"), "{report}");
        // The toy example's anomalous edges survive partitioning.
        assert!(report.contains("edge 0 8"), "{report}");
        let (code, report) = run_str(&format!(
            "detect --input {path} --l 6 --engine exact --partition 2 --partition-mode bfs"
        ));
        assert_eq!(code, 0, "{report}");
        assert!(report.contains("edge 0 8"), "{report}");
    }

    #[test]
    fn corrected_engine_runs() {
        let path = tmp("toy-seq5.txt");
        run_str(&format!("generate --dataset toy --out {path}"));
        let (code, report) = run_str(&format!("detect --input {path} --l 6 --engine corrected"));
        assert_eq!(code, 0, "{report}");
        assert!(report.contains("transition 0 -> 1"), "{report}");
    }

    #[test]
    fn metrics_json_writes_validatable_report() {
        let seq = tmp("toy-seq6.txt");
        run_str(&format!("generate --dataset toy --out {seq}"));
        let report_path = tmp("report6.json");
        let (code, msg) = run_str(&format!(
            "detect --input {seq} --l 6 --metrics-json {report_path}"
        ));
        assert_eq!(code, 0, "{msg}");
        assert!(msg.contains("metrics report written"), "{msg}");

        // The written file parses and reconstructs losslessly.
        let text = std::fs::read_to_string(&report_path).expect("report file");
        let value = cad_obs::parse_json(&text).expect("valid json");
        let report = cad_obs::Report::from_json(&value).expect("valid schema");
        assert_eq!(report.schema_version, cad_obs::SCHEMA_VERSION);
        assert_eq!(report.tool, "cad detect");
        assert_eq!(report.instances.len(), 2, "toy has two instances");
        assert_eq!(report.transitions.len(), 1);
        assert!(report.counters.contains_key("linalg.spmv"));
        assert!(report.summaries.contains_key("detect.scores"));

        // And the validate-report subcommand accepts it.
        let (code, msg) = run_str(&format!("validate-report --input {report_path}"));
        assert_eq!(code, 0, "{msg}");
        assert!(msg.contains("valid report (schema_version 4"), "{msg}");
    }

    #[test]
    fn validate_report_rejects_garbage() {
        let bad = tmp("bad-report.json");
        std::fs::write(&bad, "not json at all").unwrap();
        let (code, msg) = run_str(&format!("validate-report --input {bad}"));
        assert_eq!(code, 1);
        assert!(msg.contains("not valid JSON"), "{msg}");

        // Valid JSON, wrong schema.
        std::fs::write(&bad, "{\"schema_version\": \"nope\"}").unwrap();
        let (code, msg) = run_str(&format!("validate-report --input {bad}"));
        assert_eq!(code, 1);
        assert!(msg.contains("failed schema validation"), "{msg}");
    }

    #[test]
    fn trace_flag_runs_clean() {
        let seq = tmp("toy-seq7.txt");
        run_str(&format!("generate --dataset toy --out {seq}"));
        let (code, msg) = run_str(&format!("detect --input {seq} --l 6 --trace"));
        assert_eq!(code, 0, "{msg}");
        // stdout stays the normal anomaly report; the tree goes to stderr.
        assert!(msg.contains("transition 0 -> 1"), "{msg}");
    }

    #[test]
    fn profile_flag_leaves_detection_output_bit_identical() {
        let seq = tmp("toy-seq-prof.txt");
        run_str(&format!("generate --dataset toy --out {seq}"));
        let trace = tmp("prof-detect.json");
        let (code, plain) = run_str(&format!("detect --input {seq} --l 6"));
        assert_eq!(code, 0, "{plain}");
        let (code, profiled) = run_str(&format!("detect --input {seq} --l 6 --profile {trace}"));
        assert_eq!(code, 0, "{profiled}");
        // The profile notice goes to stderr; stdout must be the same
        // bytes with profiling on or off.
        assert_eq!(plain, profiled, "profiling must not perturb detection");
        let text = std::fs::read_to_string(&trace).expect("trace file");
        assert!(cad_obs::parse_json(&text).is_ok(), "trace is JSON: {text}");
    }

    #[test]
    fn profile_command_wraps_detect_and_writes_a_perfetto_trace() {
        let seq = tmp("toy-seq-profcmd.txt");
        run_str(&format!("generate --dataset toy --out {seq}"));
        let trace = tmp("profcmd.json");
        let (code, msg) = run_str(&format!("profile detect --input {seq} --l 6 --out {trace}"));
        assert_eq!(code, 0, "{msg}");
        assert!(msg.contains("transition 0 -> 1"), "{msg}");
        let text = std::fs::read_to_string(&trace).expect("trace file");
        let v = cad_obs::parse_json(&text).expect("valid trace-event json");
        let events = v
            .get("traceEvents")
            .and_then(cad_obs::Json::as_arr)
            .expect("traceEvents");
        // Aggregates lay child span paths (detect/...) inside their
        // parents, so a detect run always yields nested "X" events.
        assert!(
            events.iter().any(|e| {
                e.get("ph").and_then(cad_obs::Json::as_str) == Some("X")
                    && e.get("name")
                        .and_then(cad_obs::Json::as_str)
                        .is_some_and(|n| n.contains('/'))
            }),
            "expected a nested duration event: {text}"
        );
        assert!(
            events
                .iter()
                .any(|e| e.get("bind_id").and_then(cad_obs::Json::as_str).is_some()),
            "expected at least one flow binding: {text}"
        );
    }

    #[test]
    fn pack_inspect_detect_roundtrip() {
        let seq = tmp("toy-seq8.txt");
        run_str(&format!("generate --dataset toy --out {seq}"));
        let pack = tmp("toy-seq8.cadpack");
        let (code, msg) = run_str(&format!("pack --input {seq} --out {pack} --label toy"));
        assert_eq!(code, 0, "{msg}");
        assert!(msg.contains("packed 2 instances over 17 nodes"), "{msg}");

        let (code, msg) = run_str(&format!("inspect --input {pack}"));
        assert_eq!(code, 0, "{msg}");
        assert!(msg.contains("instances      : 2"), "{msg}");
        assert!(msg.contains("nodes          : 17"), "{msg}");
        assert!(msg.contains("label          : \"toy\""), "{msg}");
        assert!(msg.contains("all section checksums ok"), "{msg}");

        // Detection on the pack matches detection on the text file.
        let (code, from_text) = run_str(&format!("detect --input {seq} --l 6 --engine exact"));
        assert_eq!(code, 0, "{from_text}");
        let (code, from_pack) = run_str(&format!("detect --input {pack} --l 6 --engine exact"));
        assert_eq!(code, 0, "{from_pack}");
        assert_eq!(from_text, from_pack, "pack must be a lossless input");
    }

    #[test]
    fn inspect_rejects_corrupt_pack() {
        let seq = tmp("toy-seq9.txt");
        run_str(&format!("generate --dataset toy --out {seq}"));
        let pack = tmp("toy-seq9.cadpack");
        run_str(&format!("pack --input {seq} --out {pack}"));
        let mut bytes = std::fs::read(&pack).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        std::fs::write(&pack, &bytes).unwrap();
        let (code, msg) = run_str(&format!("inspect --input {pack}"));
        assert_eq!(code, 1);
        assert!(msg.contains("cannot inspect"), "{msg}");
        let (code, msg) = run_str(&format!("detect --input {pack} --l 6"));
        assert_eq!(code, 1);
        assert!(msg.contains("cannot load pack"), "{msg}");
    }

    #[test]
    fn store_dir_caches_across_runs() {
        let seq = tmp("toy-seq10.txt");
        run_str(&format!("generate --dataset toy --out {seq}"));
        let store = tmp("store10");
        let _ = std::fs::remove_dir_all(&store);
        let (code, cold) = run_str(&format!(
            "detect --input {seq} --l 6 --engine exact --store-dir {store}"
        ));
        assert_eq!(code, 0, "{cold}");
        let (code, warm) = run_str(&format!(
            "detect --input {seq} --l 6 --engine exact --store-dir {store}"
        ));
        assert_eq!(code, 0, "{warm}");
        assert_eq!(cold, warm, "cache reuse must not change the output");
        // The store directory holds one artifact per distinct snapshot.
        let n = std::fs::read_dir(std::path::Path::new(&store).join("oracles"))
            .unwrap()
            .count();
        assert_eq!(n, 2, "toy has two distinct instances");
    }

    #[test]
    fn store_gc_trims_the_cache() {
        let seq = tmp("toy-seq11.txt");
        run_str(&format!("generate --dataset toy --out {seq}"));
        let store = tmp("store11");
        let _ = std::fs::remove_dir_all(&store);
        let (code, msg) = run_str(&format!(
            "detect --input {seq} --l 6 --engine exact --store-dir {store}"
        ));
        assert_eq!(code, 0, "{msg}");

        // A zero budget evicts every artifact and reports the bytes.
        let (code, msg) = run_str(&format!("store gc --store-dir {store} --max-bytes 0"));
        assert_eq!(code, 0, "{msg}");
        assert!(msg.contains("(2 files)"), "{msg}");
        assert!(msg.contains("kept 0 bytes (0 files)"), "{msg}");
        let n = std::fs::read_dir(std::path::Path::new(&store).join("oracles"))
            .unwrap()
            .count();
        assert_eq!(n, 0, "gc with zero budget must empty the cache");
    }

    #[test]
    fn journal_inspect_and_compact_cli() {
        let dir = tmp("wal-cli");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();

        // Both actions handle an empty root gracefully.
        let (code, msg) = run_str(&format!("journal inspect {dir}"));
        assert_eq!(code, 0, "{msg}");
        assert!(msg.contains("no session journals"), "{msg}");
        let (code, msg) = run_str(&format!("journal compact {dir}"));
        assert_eq!(code, 0, "{msg}");
        assert!(msg.contains("no session journals"), "{msg}");

        // Forge a journal the way serve writes one: a create record
        // carrying the session spec, then one edge-delta per push.
        let root = std::path::Path::new(&dir);
        let mut j =
            cad_journal::SessionJournal::create(root, 7, cad_journal::JournalConfig::default())
                .unwrap();
        j.append(
            cad_journal::RecordKind::Create,
            br#"{"nodes":6,"delta":0.5,"engine":"exact","update_mode":"rebuild"}"#,
        )
        .unwrap();
        let empty = cad_graph::WeightedGraph::from_edges(6, &[]).unwrap();
        let g1 = cad_graph::WeightedGraph::from_edges(
            6,
            &[(0, 1, 1.0), (1, 2, 2.0), (3, 4, 1.0), (4, 5, 1.0)],
        )
        .unwrap();
        let g2 = cad_graph::WeightedGraph::from_edges(
            6,
            &[(0, 1, 1.0), (1, 2, 9.0), (3, 4, 1.0), (4, 5, 1.0)],
        )
        .unwrap();
        j.append(
            cad_journal::RecordKind::Delta,
            &cad_store::encode_edge_delta(&empty, &g1),
        )
        .unwrap();
        j.append(
            cad_journal::RecordKind::Delta,
            &cad_store::encode_edge_delta(&g1, &g2),
        )
        .unwrap();
        drop(j);

        let (code, msg) = run_str(&format!("journal inspect {dir}"));
        assert_eq!(code, 0, "{msg}");
        assert!(msg.contains("session 7:"), "{msg}");
        assert!(msg.contains("1 create, 2 delta"), "{msg}");
        assert!(msg.contains("torn tail : no"), "{msg}");

        let (code, msg) = run_str(&format!("journal compact {dir}"));
        assert_eq!(code, 0, "{msg}");
        assert!(msg.contains("session 7: 3 records"), "{msg}");

        // The compacted journal is a single checkpoint and still
        // replayable/inspectable.
        let (code, msg) = run_str(&format!("journal inspect {dir}"));
        assert_eq!(code, 0, "{msg}");
        assert!(
            msg.contains("0 create, 0 delta, 0 delete, 1 checkpoint"),
            "{msg}"
        );

        let (code, msg) = run_str(&format!("journal inspect {dir}/definitely-missing"));
        assert_eq!(code, 1);
        assert!(msg.contains("cannot inspect"), "{msg}");
    }

    #[test]
    fn fixed_delta_mode() {
        let path = tmp("toy-seq3.txt");
        run_str(&format!("generate --dataset toy --out {path}"));
        let (code, report) = run_str(&format!("detect --input {path} --delta 1e12"));
        assert_eq!(code, 0);
        assert!(report.contains("1 quiet transitions"), "{report}");
    }
}
