//! Detection sessions and the sharded registry that owns them.
//!
//! A *session* is one [`OnlineCad`] stream plus the latest snapshot it
//! has seen (the base for `.cadpack` edge-delta bodies). Sessions are
//! addressed by a monotonically assigned numeric id and live in a
//! [`SessionMap`]: a fixed set of `Mutex<HashMap>` shards, so lookups
//! on different sessions rarely contend, while each session's own inner
//! mutex serialises its pushes — concurrent snapshots to *one* session
//! are ordered, snapshots to *different* sessions run in parallel.

use cad_commute::{EmbeddingOptions, EngineOptions, OracleProvider, PartitionMode, PartitionSpec};
use cad_core::{CadOptions, OnlineCad, ScoreKind, ThresholdMode, UpdateMode};
use cad_graph::WeightedGraph;
use cad_journal::{JournalConfig, RecordKind, SessionJournal};
use cad_obs::Json;
use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::{Duration, Instant};

/// Shards in the session map. A power of two so the id→shard map is a
/// mask; 16 is plenty for the worker counts a single box runs.
const N_SHARDS: usize = 16;

/// Everything a `POST /v1/sequences` body can configure.
#[derive(Debug, Clone)]
pub struct SessionSpec {
    /// Vertex-set size every snapshot must match.
    pub n_nodes: usize,
    /// Detector options (engine, score kind; threads pinned to 1 —
    /// parallelism comes from serving many sessions, not from one).
    pub opts: CadOptions,
    /// Threshold mode (fixed δ or running target-l).
    pub mode: ThresholdMode,
    /// Oracle update mode; `None` inherits the server default
    /// (`--update-mode`).
    pub update_mode: Option<UpdateMode>,
    /// Free-form label echoed back in status responses.
    pub label: String,
}

/// Parse the JSON body of a session-create request.
///
/// ```json
/// {"nodes": 64, "engine": "exact", "kind": "cad", "delta": 0.4}
/// {"nodes": 64, "engine": "approx", "k": 6, "l": 2, "label": "demo"}
/// ```
///
/// `nodes` is required. `engine` is one of `auto` (default), `exact`,
/// `approx`, `shortest-path`, `corrected`; `k` is the embedding
/// dimension for `approx`/`auto`. `kind` is `cad` (default), `adj` or
/// `com`. Exactly one of `delta` (fixed threshold — the mode whose
/// per-arrival output is bit-identical to batch detection) or `l`
/// (running-average target nodes per transition) may be given;
/// neither defaults to `l = 2`. `update_mode` is one of `rebuild`,
/// `incremental`, `auto`; omitted inherits the server's `--update-mode`
/// default. `partition` requests the block-partitioned oracle: either a
/// positive integer (the target block count, mode `auto`) or an object
/// `{"blocks": n, "mode": "auto"|"components"|"bfs"}`; push responses
/// then report the realised `blocks` and `boundary_edges`.
pub fn parse_spec(body: &[u8]) -> Result<SessionSpec, String> {
    let text = std::str::from_utf8(body).map_err(|_| "body is not UTF-8".to_string())?;
    let v = cad_obs::parse_json(text).map_err(|e| format!("body is not JSON: {e}"))?;
    let n_nodes = v
        .get("nodes")
        .and_then(Json::as_u64)
        .ok_or_else(|| "`nodes` (positive integer) is required".to_string())?;
    if n_nodes == 0 {
        return Err("`nodes` must be at least 1".to_string());
    }
    let k = match v.get("k") {
        Some(j) => {
            j.as_u64()
                .filter(|&k| k >= 1)
                .ok_or_else(|| "`k` must be a positive integer".to_string())? as usize
        }
        None => EmbeddingOptions::default().k,
    };
    let embedding = EmbeddingOptions {
        k,
        ..Default::default()
    };
    let engine = match v.get("engine").map(|j| j.as_str()) {
        None => EngineOptions::Auto {
            threshold: 512,
            embedding,
        },
        Some(Some("auto")) => EngineOptions::Auto {
            threshold: 512,
            embedding,
        },
        Some(Some("exact")) => EngineOptions::Exact,
        Some(Some("approx")) => EngineOptions::Approximate(embedding),
        Some(Some("shortest-path")) => EngineOptions::ShortestPath,
        Some(Some("corrected")) => EngineOptions::Corrected,
        Some(other) => {
            return Err(format!(
            "unknown `engine` {other:?} (want auto | exact | approx | shortest-path | corrected)"
        ))
        }
    };
    let kind = match v.get("kind").map(|j| j.as_str()) {
        None | Some(Some("cad")) => ScoreKind::Cad,
        Some(Some("adj")) => ScoreKind::Adj,
        Some(Some("com")) => ScoreKind::Com,
        Some(other) => return Err(format!("unknown `kind` {other:?} (want cad | adj | com)")),
    };
    let mode = match (v.get("delta"), v.get("l")) {
        (Some(_), Some(_)) => {
            return Err("`delta` and `l` are mutually exclusive".to_string());
        }
        (Some(d), None) => {
            let d = d
                .as_f64()
                .filter(|d| d.is_finite() && *d >= 0.0)
                .ok_or_else(|| "`delta` must be a finite non-negative number".to_string())?;
            ThresholdMode::Fixed(d)
        }
        (None, Some(l)) => {
            let l = l
                .as_u64()
                .filter(|&l| l >= 1)
                .ok_or_else(|| "`l` must be a positive integer".to_string())?;
            ThresholdMode::TargetNodes(l as usize)
        }
        (None, None) => ThresholdMode::TargetNodes(2),
    };
    let update_mode = match v.get("update_mode").map(|j| j.as_str()) {
        None => None,
        Some(Some(s)) => match UpdateMode::from_name(s) {
            Some(m) => Some(m),
            None => {
                return Err(format!(
                    "unknown `update_mode` {s:?} (want rebuild | incremental | auto)"
                ))
            }
        },
        Some(None) => {
            return Err("`update_mode` must be a string (rebuild | incremental | auto)".to_string())
        }
    };
    let partition = match v.get("partition") {
        None => None,
        Some(j) => {
            let (blocks, mode_j) = match j.as_u64() {
                Some(b) => (b, None),
                None => {
                    let b = j.get("blocks").and_then(Json::as_u64).ok_or_else(|| {
                        "`partition` must be a positive integer or an object with \
                         `blocks` (positive integer)"
                            .to_string()
                    })?;
                    (b, j.get("mode"))
                }
            };
            if blocks == 0 {
                return Err("`partition` blocks must be at least 1".to_string());
            }
            let mode = match mode_j.map(|m| m.as_str()) {
                None => PartitionMode::Auto,
                Some(Some(s)) => PartitionMode::parse(s).ok_or_else(|| {
                    format!("unknown partition `mode` {s:?} (want auto | components | bfs)")
                })?,
                Some(None) => {
                    return Err(
                        "partition `mode` must be a string (auto | components | bfs)".to_string(),
                    )
                }
            };
            Some(PartitionSpec {
                blocks: blocks as usize,
                mode,
            })
        }
    };
    let label = match v.get("label") {
        Some(j) => j
            .as_str()
            .ok_or_else(|| "`label` must be a string".to_string())?
            .to_string(),
        None => String::new(),
    };
    Ok(SessionSpec {
        n_nodes: n_nodes as usize,
        opts: CadOptions {
            engine,
            kind,
            threads: 1,
            partition,
        },
        mode,
        update_mode,
        label,
    })
}

/// Per-session token bucket for push rate limiting (`--max-push-rps`).
///
/// Refills continuously at `rate` tokens per second up to a burst of
/// `max(rate, 1)`; each accepted push spends one token. Lives inside
/// the session mutex, so no extra synchronization.
#[derive(Debug)]
pub struct TokenBucket {
    rate: f64,
    burst: f64,
    tokens: f64,
    last: Instant,
}

impl TokenBucket {
    /// A full bucket refilling at `rate` tokens per second.
    pub fn new(rate: f64) -> TokenBucket {
        let burst = rate.max(1.0);
        TokenBucket {
            rate,
            burst,
            tokens: burst,
            last: Instant::now(),
        }
    }

    /// Spend one token, or report how many seconds until one is
    /// available (the `Retry-After` the 429 carries).
    pub fn try_take(&mut self) -> Result<(), f64> {
        let now = Instant::now();
        let elapsed = now.duration_since(self.last).as_secs_f64();
        self.last = now;
        self.tokens = (self.tokens + elapsed * self.rate).min(self.burst);
        if self.tokens >= 1.0 {
            self.tokens -= 1.0;
            Ok(())
        } else {
            Err((1.0 - self.tokens) / self.rate)
        }
    }
}

/// The mutable core of one session, guarded by the session mutex.
pub struct SessionInner {
    /// The streaming detector.
    pub online: OnlineCad,
    /// Latest accepted snapshot — the base an edge-delta body applies
    /// to (`None` until the first snapshot).
    pub current: Option<WeightedGraph>,
    /// Snapshots accepted so far.
    pub instances: usize,
    /// Last create/push/status touch, for the idle-TTL sweeper.
    pub last_used: Instant,
    /// Write-ahead journal handle (`--journal-dir`); `None` when the
    /// server runs unjournaled. Appends happen under the session mutex,
    /// so records land in exactly the order pushes were applied.
    pub journal: Option<SessionJournal>,
    /// Push rate limiter (`--max-push-rps`); `None` means unlimited.
    pub bucket: Option<TokenBucket>,
    /// The resolved spec as journaled — re-used verbatim when
    /// compaction writes a checkpoint, so the round trip cannot drift.
    pub spec_json: String,
}

/// One detection session.
pub struct Session {
    /// The session's id (also its URL path segment).
    pub id: u64,
    /// Vertex-set size every snapshot must match.
    pub n_nodes: usize,
    /// Label from the create request.
    pub label: String,
    inner: Mutex<SessionInner>,
}

impl Session {
    /// Lock the session for one serialized push/status operation,
    /// refreshing its idle clock.
    pub fn lock(&self) -> MutexGuard<'_, SessionInner> {
        let mut inner = self.inner.lock().unwrap_or_else(|p| p.into_inner());
        inner.last_used = Instant::now();
        inner
    }

    /// Seconds since the session was last touched.
    fn idle(&self) -> Duration {
        let inner = self.inner.lock().unwrap_or_else(|p| p.into_inner());
        inner.last_used.elapsed()
    }
}

/// Why a session could not be created.
#[derive(Debug, PartialEq, Eq)]
pub enum CreateError {
    /// The registry is at its configured capacity.
    Full {
        /// The configured session cap.
        max_sessions: usize,
    },
    /// The journal could not record the create — the session is not
    /// durable, so it is not created at all.
    Journal(
        /// The underlying I/O failure.
        String,
    ),
}

/// The sharded session registry.
pub struct SessionMap {
    shards: Vec<Mutex<HashMap<u64, Arc<Session>>>>,
    next_id: AtomicU64,
    active: AtomicUsize,
    max_sessions: usize,
    default_update_mode: UpdateMode,
    journal: Option<(PathBuf, JournalConfig)>,
    push_rps: Option<f64>,
}

impl SessionMap {
    /// An empty registry capped at `max_sessions` live sessions.
    pub fn new(max_sessions: usize) -> Self {
        SessionMap {
            shards: (0..N_SHARDS).map(|_| Mutex::new(HashMap::new())).collect(),
            next_id: AtomicU64::new(1),
            active: AtomicUsize::new(0),
            max_sessions,
            default_update_mode: UpdateMode::default(),
            journal: None,
            push_rps: None,
        }
    }

    /// Set the update mode sessions inherit when their create spec does
    /// not choose one (the server's `--update-mode` flag).
    pub fn with_update_mode(mut self, mode: UpdateMode) -> Self {
        self.default_update_mode = mode;
        self
    }

    /// Journal every session's lifecycle under `root`
    /// (`--journal-dir`).
    pub fn with_journal(mut self, root: PathBuf, cfg: JournalConfig) -> Self {
        self.journal = Some((root, cfg));
        self
    }

    /// Cap pushes per session at `rate` per second (`--max-push-rps`).
    pub fn with_push_rps(mut self, rate: f64) -> Self {
        self.push_rps = Some(rate);
        self
    }

    fn shard(&self, id: u64) -> &Mutex<HashMap<u64, Arc<Session>>> {
        &self.shards[(id as usize) & (N_SHARDS - 1)]
    }

    /// Live sessions right now.
    pub fn len(&self) -> usize {
        self.active.load(Ordering::Relaxed)
    }

    /// Whether the registry holds no sessions.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Create a session from `spec`, wiring the oracle `provider`
    /// (the warm `--store-dir` cache) into its detector when present.
    ///
    /// When journaling is on, the create record is appended (and, under
    /// `--journal-fsync always`, durable) *before* the session becomes
    /// addressable — a journal failure fails the create.
    pub fn create(
        &self,
        spec: SessionSpec,
        provider: Option<Arc<dyn OracleProvider>>,
    ) -> Result<Arc<Session>, CreateError> {
        // Optimistic reservation: bump, then roll back if over cap —
        // two racing creates cannot both slip under the limit.
        let prev = self.active.fetch_add(1, Ordering::Relaxed);
        if prev >= self.max_sessions {
            self.active.fetch_sub(1, Ordering::Relaxed);
            return Err(CreateError::Full {
                max_sessions: self.max_sessions,
            });
        }
        let resolved = spec.update_mode.unwrap_or(self.default_update_mode);
        let mut online = OnlineCad::with_mode(spec.opts, spec.mode).with_update_mode(resolved);
        if let Some(p) = provider {
            online = online.with_provider(p);
        }
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let spec_json = crate::journal::spec_to_json(&spec, resolved);
        let journal = match &self.journal {
            Some((root, cfg)) => {
                let opened = SessionJournal::create(root, id, cfg.clone()).and_then(|mut j| {
                    j.append(RecordKind::Create, spec_json.as_bytes())?;
                    Ok(j)
                });
                match opened {
                    Ok(j) => Some(j),
                    Err(e) => {
                        self.active.fetch_sub(1, Ordering::Relaxed);
                        return Err(CreateError::Journal(e.to_string()));
                    }
                }
            }
            None => None,
        };
        let session = Arc::new(Session {
            id,
            n_nodes: spec.n_nodes,
            label: spec.label,
            inner: Mutex::new(SessionInner {
                online,
                current: None,
                instances: 0,
                last_used: Instant::now(),
                journal,
                bucket: self.push_rps.map(TokenBucket::new),
                spec_json,
            }),
        });
        self.shard(id)
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .insert(id, Arc::clone(&session));
        cad_obs::gauges::SERVE_SESSIONS_ACTIVE.inc();
        Ok(session)
    }

    /// Re-insert a session replayed from its journal at boot, keeping
    /// its original id (`next_id` advances past it, so new sessions
    /// never collide with recovered ones).
    pub fn restore(
        &self,
        rs: crate::journal::RecoveredSession,
        journal: SessionJournal,
    ) -> Result<Arc<Session>, CreateError> {
        let prev = self.active.fetch_add(1, Ordering::Relaxed);
        if prev >= self.max_sessions {
            self.active.fetch_sub(1, Ordering::Relaxed);
            return Err(CreateError::Full {
                max_sessions: self.max_sessions,
            });
        }
        self.next_id.fetch_max(rs.id + 1, Ordering::Relaxed);
        let session = Arc::new(Session {
            id: rs.id,
            n_nodes: rs.spec.n_nodes,
            label: rs.spec.label,
            inner: Mutex::new(SessionInner {
                online: rs.online,
                current: rs.current,
                instances: rs.instances,
                last_used: Instant::now(),
                journal: Some(journal),
                bucket: self.push_rps.map(TokenBucket::new),
                spec_json: rs.spec_json,
            }),
        });
        self.shard(rs.id)
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .insert(rs.id, Arc::clone(&session));
        cad_obs::gauges::SERVE_SESSIONS_ACTIVE.inc();
        Ok(session)
    }

    /// Look up a live session.
    pub fn get(&self, id: u64) -> Option<Arc<Session>> {
        self.shard(id)
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .get(&id)
            .cloned()
    }

    /// Remove a session, returning it if it existed.
    ///
    /// A journaled session gets a terminal delete record and its
    /// journal directory torn down — deletion (or TTL eviction) is as
    /// durable as creation, so a restart does not resurrect it.
    pub fn remove(&self, id: u64) -> Option<Arc<Session>> {
        let removed = self
            .shard(id)
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .remove(&id);
        if let Some(session) = &removed {
            self.active.fetch_sub(1, Ordering::Relaxed);
            cad_obs::gauges::SERVE_SESSIONS_ACTIVE.dec();
            let mut inner = session.inner.lock().unwrap_or_else(|p| p.into_inner());
            if let Some(mut journal) = inner.journal.take() {
                // Best-effort: the delete record makes the tombstone
                // redundant if directory removal is interrupted, and
                // recovery honours either.
                let _ = journal.append(RecordKind::Delete, b"");
                let _ = journal.destroy();
            }
        }
        removed
    }

    /// Compact every journaled session past its segment-count or byte
    /// threshold: snapshot the detector state under the session mutex,
    /// replace the record history with one checkpoint. Returns how many
    /// sessions were compacted. Runs on the sweeper thread.
    pub fn compact_journals(&self) -> usize {
        let mut compacted = 0;
        for shard in &self.shards {
            let sessions: Vec<Arc<Session>> = {
                let map = shard.lock().unwrap_or_else(|p| p.into_inner());
                map.values().cloned().collect()
            };
            for session in sessions {
                // Plain inner lock: background compaction must not
                // refresh the idle clock and defeat TTL eviction.
                let mut inner = session.inner.lock().unwrap_or_else(|p| p.into_inner());
                if !inner
                    .journal
                    .as_ref()
                    .is_some_and(SessionJournal::needs_compaction)
                {
                    continue;
                }
                let payload =
                    crate::journal::encode_checkpoint(&inner.spec_json, &inner.online.state());
                match inner
                    .journal
                    .as_mut()
                    .expect("checked above")
                    .compact(&payload)
                {
                    Ok(()) => compacted += 1,
                    Err(_) => cad_obs::events::record(
                        cad_obs::EventKind::Error,
                        "journal_error",
                        0.0,
                        session.id,
                    ),
                }
            }
        }
        compacted
    }

    /// Drop every session idle for longer than `ttl`; returns how many
    /// were evicted. An in-flight push holds the session `Arc`, so the
    /// work it is doing completes even if the sweep wins the race —
    /// the session just stops being addressable.
    pub fn sweep_idle(&self, ttl: Duration) -> usize {
        let mut evicted = 0;
        for shard in &self.shards {
            let expired: Vec<u64> = {
                let map = shard.lock().unwrap_or_else(|p| p.into_inner());
                map.iter()
                    .filter(|(_, s)| s.idle() > ttl)
                    .map(|(&id, _)| id)
                    .collect()
            };
            for id in expired {
                if self.remove(id).is_some() {
                    cad_obs::events::record(
                        cad_obs::EventKind::Eviction,
                        "session_evicted",
                        0.0,
                        id,
                    );
                    evicted += 1;
                }
            }
        }
        evicted
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_spec_accepts_the_documented_shapes() {
        let s = parse_spec(br#"{"nodes": 6, "engine": "exact", "delta": 0.4}"#).unwrap();
        assert_eq!(s.n_nodes, 6);
        assert!(matches!(s.opts.engine, EngineOptions::Exact));
        assert!(matches!(s.mode, ThresholdMode::Fixed(d) if d == 0.4));
        assert_eq!(s.opts.threads, 1);

        let s = parse_spec(br#"{"nodes": 9, "engine": "approx", "k": 6, "l": 3}"#).unwrap();
        match s.opts.engine {
            EngineOptions::Approximate(e) => assert_eq!(e.k, 6),
            other => panic!("wrong engine: {other:?}"),
        }
        assert!(matches!(s.mode, ThresholdMode::TargetNodes(3)));

        let s = parse_spec(br#"{"nodes": 4, "label": "demo"}"#).unwrap();
        assert!(matches!(s.mode, ThresholdMode::TargetNodes(2)));
        assert!(matches!(s.opts.engine, EngineOptions::Auto { .. }));
        assert_eq!(s.label, "demo");
        assert_eq!(s.update_mode, None, "omitted means inherit server default");

        let s = parse_spec(br#"{"nodes": 4, "update_mode": "incremental"}"#).unwrap();
        assert_eq!(s.update_mode, Some(UpdateMode::Incremental));

        for engine in ["shortest-path", "corrected"] {
            let body = format!(r#"{{"nodes": 4, "engine": "{engine}"}}"#);
            parse_spec(body.as_bytes()).unwrap();
        }
    }

    #[test]
    fn parse_spec_accepts_partition_shapes() {
        let s = parse_spec(br#"{"nodes": 8}"#).unwrap();
        assert_eq!(s.opts.partition, None, "monolithic by default");

        let s = parse_spec(br#"{"nodes": 8, "partition": 4}"#).unwrap();
        assert_eq!(
            s.opts.partition,
            Some(PartitionSpec {
                blocks: 4,
                mode: PartitionMode::Auto
            })
        );

        let s = parse_spec(br#"{"nodes": 8, "partition": {"blocks": 3, "mode": "bfs"}}"#).unwrap();
        assert_eq!(
            s.opts.partition,
            Some(PartitionSpec {
                blocks: 3,
                mode: PartitionMode::Bfs
            })
        );

        let s = parse_spec(br#"{"nodes": 8, "partition": {"blocks": 2}}"#).unwrap();
        assert_eq!(
            s.opts.partition,
            Some(PartitionSpec {
                blocks: 2,
                mode: PartitionMode::Auto
            })
        );

        for (body, needle) in [
            (&br#"{"nodes": 8, "partition": 0}"#[..], "at least 1"),
            (br#"{"nodes": 8, "partition": "four"}"#, "`partition`"),
            (br#"{"nodes": 8, "partition": {"mode": "bfs"}}"#, "`blocks`"),
            (
                br#"{"nodes": 8, "partition": {"blocks": 2, "mode": "warp"}}"#,
                "unknown partition `mode`",
            ),
            (
                br#"{"nodes": 8, "partition": {"blocks": 2, "mode": 7}}"#,
                "must be a string",
            ),
        ] {
            let err = parse_spec(body).expect_err("must reject");
            assert!(err.contains(needle), "{err:?} should mention {needle:?}");
        }
    }

    #[test]
    fn parse_spec_rejects_bad_bodies_with_messages() {
        for (body, needle) in [
            (&b"not json"[..], "not JSON"),
            (br#"{"edges": []}"#, "`nodes`"),
            (br#"{"nodes": 0}"#, "at least 1"),
            (br#"{"nodes": 4, "engine": "warp"}"#, "unknown `engine`"),
            (br#"{"nodes": 4, "kind": "odd"}"#, "unknown `kind`"),
            (
                br#"{"nodes": 4, "delta": 0.1, "l": 2}"#,
                "mutually exclusive",
            ),
            (br#"{"nodes": 4, "delta": -1.0}"#, "`delta`"),
            (br#"{"nodes": 4, "l": 0}"#, "`l`"),
            (br#"{"nodes": 4, "k": 0}"#, "`k`"),
            (br#"{"nodes": 4, "label": 7}"#, "`label`"),
            (
                br#"{"nodes": 4, "update_mode": "warp"}"#,
                "unknown `update_mode`",
            ),
            (br#"{"nodes": 4, "update_mode": 3}"#, "`update_mode`"),
        ] {
            let err = parse_spec(body).expect_err("must reject");
            assert!(err.contains(needle), "{err:?} should mention {needle:?}");
        }
    }

    #[test]
    fn create_applies_server_default_unless_spec_overrides() {
        let _g = crate::test_lock();
        cad_obs::reset();
        let map = SessionMap::new(4).with_update_mode(UpdateMode::Incremental);
        let inherited = map
            .create(parse_spec(br#"{"nodes": 4}"#).unwrap(), None)
            .unwrap();
        assert_eq!(
            inherited.lock().online.update_mode(),
            UpdateMode::Incremental
        );
        let explicit = map
            .create(
                parse_spec(br#"{"nodes": 4, "update_mode": "rebuild"}"#).unwrap(),
                None,
            )
            .unwrap();
        assert_eq!(explicit.lock().online.update_mode(), UpdateMode::Rebuild);
    }

    #[test]
    fn map_caps_sessions_and_counts_active() {
        let _g = crate::test_lock();
        cad_obs::reset();
        let map = SessionMap::new(2);
        let spec = || parse_spec(br#"{"nodes": 4}"#).unwrap();
        let a = map.create(spec(), None).unwrap();
        let b = map.create(spec(), None).unwrap();
        assert_ne!(a.id, b.id);
        assert_eq!(map.len(), 2);
        assert_eq!(cad_obs::gauges::SERVE_SESSIONS_ACTIVE.get(), 2);
        assert!(matches!(
            map.create(spec(), None).map(|_| ()),
            Err(CreateError::Full { max_sessions: 2 })
        ));
        assert!(map.remove(a.id).is_some());
        assert!(map.remove(a.id).is_none(), "double delete is a miss");
        assert_eq!(cad_obs::gauges::SERVE_SESSIONS_ACTIVE.get(), 1);
        map.create(spec(), None).expect("capacity freed");
        assert!(map.get(b.id).is_some());
        assert!(map.get(a.id).is_none());
    }

    #[test]
    fn sweep_evicts_only_idle_sessions() {
        let _g = crate::test_lock();
        cad_obs::reset();
        let map = SessionMap::new(8);
        let spec = || parse_spec(br#"{"nodes": 4}"#).unwrap();
        let old = map.create(spec(), None).unwrap();
        let fresh = map.create(spec(), None).unwrap();
        // Age the first session by rewinding its idle clock.
        old.inner.lock().unwrap().last_used = Instant::now() - Duration::from_secs(60);
        let evicted = map.sweep_idle(Duration::from_secs(30));
        assert_eq!(evicted, 1);
        assert!(map.get(old.id).is_none());
        assert!(map.get(fresh.id).is_some());
        assert_eq!(cad_obs::gauges::SERVE_SESSIONS_ACTIVE.get(), 1);
    }
}
