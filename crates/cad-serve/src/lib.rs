//! `cad-serve` — a concurrent HTTP detection service over the CAD
//! streaming detector.
//!
//! Zero-dependency (std + workspace crates), hand-rolled HTTP/1.1 on
//! `std::net` via the shared [`cad_obs::http`] plumbing. The service
//! turns [`cad_core::OnlineCad`] into a long-lived network resource:
//!
//! * [`session`] — detection sessions (one `OnlineCad` stream each) in
//!   a sharded registry with per-session serialization, a live-session
//!   cap, idle-TTL eviction, and optional per-session push rate
//!   limiting;
//! * [`journal`] — the serve-layer semantics over the [`cad_journal`]
//!   write-ahead log (`--journal-dir`): spec/delta/checkpoint payload
//!   codecs and the boot-time replay that rebuilds every session
//!   bit-identically after a crash;
//! * [`router`] — endpoint semantics: create sessions from a JSON spec,
//!   push snapshots (JSON edge lists or binary `.cadpack` edge deltas),
//!   query status, delete, `/healthz`, `/metrics`, and the
//!   `POST /v1/shutdown` drain trigger;
//! * [`server`] — the threads: one accept loop feeding a **bounded**
//!   queue (overflow is shed as `503` + `Retry-After`, counted in
//!   `serve.rejected_backpressure`), a fixed worker pool running
//!   keep-alive connection loops, an idle-session sweeper, and a
//!   graceful drain that finishes in-flight work before joining.
//!
//! The correctness anchor: a session created with a fixed `delta`
//! produces, per pushed snapshot, *bit-identical* anomaly sets and
//! scores to running `cad detect` over the same sequence — serving is
//! a transport, never a different algorithm.

#![warn(missing_docs)]

pub mod journal;
pub mod router;
pub mod server;
pub mod session;

pub use journal::{recover_all, replay, spec_to_json, RecoveredSession};
pub use router::{graph_error_code, route, Response, RouterCtx, DELTA_CONTENT_TYPE};
pub use server::{AccessLog, ServeConfig, Server, Shutdown};
pub use session::{parse_spec, Session, SessionMap, SessionSpec, TokenBucket};

/// Serialize tests that assert on the process-wide metric sinks.
#[cfg(test)]
pub(crate) fn test_lock() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
    LOCK.lock().unwrap_or_else(|p| p.into_inner())
}
