//! The concurrent HTTP server: accept loop, bounded worker queue,
//! keep-alive connection handling, idle-session sweeper and graceful
//! drain.
//!
//! Threading model:
//!
//! * **one accept thread** pulls connections off the listener and
//!   offers each to a bounded queue. A full queue is answered *from the
//!   accept thread* with `503` + `Retry-After` (and counted in
//!   `serve.rejected_backpressure`) — overload sheds load immediately
//!   instead of queueing unboundedly;
//! * **N worker threads** pop connections and run the keep-alive
//!   request loop (parse → [`crate::router::route`] → respond);
//! * **one sweeper thread** evicts sessions idle past the TTL.
//!
//! Drain ([`Server::drain`]) stops the accept loop (a self-connect
//! wakes it from `accept()`), closes the queue so workers finish
//! already-queued connections and exit, then joins every thread.
//! In-flight requests complete and get their responses; new
//! connections are refused by the closed listener.

use crate::router::{route_queued, Response, RouterCtx};
use crate::session::SessionMap;
use cad_core::UpdateMode;
use cad_journal::JournalConfig;
use cad_obs::http::{self, error_body, HttpLimits, Request};
use cad_obs::Json;
use std::collections::VecDeque;
use std::fs::File;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// A latched one-way signal: once requested, stays requested.
pub struct Shutdown {
    flag: AtomicBool,
    state: Mutex<()>,
    cv: Condvar,
}

impl Shutdown {
    /// A fresh, untripped signal.
    pub fn new() -> Self {
        Shutdown {
            flag: AtomicBool::new(false),
            state: Mutex::new(()),
            cv: Condvar::new(),
        }
    }

    /// Trip the signal and wake every waiter.
    pub fn request(&self) {
        self.flag.store(true, Ordering::SeqCst);
        let _guard = self.state.lock().unwrap_or_else(|p| p.into_inner());
        self.cv.notify_all();
    }

    /// Whether the signal has been tripped.
    pub fn is_requested(&self) -> bool {
        self.flag.load(Ordering::SeqCst)
    }

    /// Block until tripped.
    pub fn wait(&self) {
        let mut guard = self.state.lock().unwrap_or_else(|p| p.into_inner());
        while !self.is_requested() {
            guard = self.cv.wait(guard).unwrap_or_else(|p| p.into_inner());
        }
    }

    /// Block until tripped or `timeout` elapses; returns whether the
    /// signal is tripped.
    pub fn wait_timeout(&self, timeout: Duration) -> bool {
        let guard = self.state.lock().unwrap_or_else(|p| p.into_inner());
        if self.is_requested() {
            return true;
        }
        let _ = self
            .cv
            .wait_timeout(guard, timeout)
            .unwrap_or_else(|p| p.into_inner());
        self.is_requested()
    }
}

impl Default for Shutdown {
    fn default() -> Self {
        Self::new()
    }
}

struct QueueState {
    conns: VecDeque<(TcpStream, Instant)>,
    open: bool,
}

/// The bounded connection queue between the accept thread and workers.
/// Entries carry their enqueue time so the popping worker knows the
/// queue wait; the `serve_queue_depth` gauge tracks the live length.
struct ConnQueue {
    state: Mutex<QueueState>,
    cv: Condvar,
    cap: usize,
}

impl ConnQueue {
    fn new(cap: usize) -> Self {
        ConnQueue {
            state: Mutex::new(QueueState {
                conns: VecDeque::new(),
                open: true,
            }),
            cv: Condvar::new(),
            cap,
        }
    }

    /// Offer a connection; hands it back when the queue is full (the
    /// caller sheds it with a `503`).
    fn try_push(&self, conn: TcpStream) -> Result<(), TcpStream> {
        let mut state = self.state.lock().unwrap_or_else(|p| p.into_inner());
        if !state.open || state.conns.len() >= self.cap {
            return Err(conn);
        }
        state.conns.push_back((conn, Instant::now()));
        cad_obs::gauges::SERVE_QUEUE_DEPTH.inc();
        self.cv.notify_one();
        Ok(())
    }

    /// Pop the next connection and the seconds it waited, blocking
    /// while the queue is open and empty. `None` means closed *and*
    /// drained: time for the worker to exit. Queued connections are
    /// always served, even after close.
    fn pop(&self) -> Option<(TcpStream, f64)> {
        let mut state = self.state.lock().unwrap_or_else(|p| p.into_inner());
        loop {
            if let Some((conn, enqueued)) = state.conns.pop_front() {
                cad_obs::gauges::SERVE_QUEUE_DEPTH.dec();
                return Some((conn, enqueued.elapsed().as_secs_f64()));
            }
            if !state.open {
                return None;
            }
            state = self.cv.wait(state).unwrap_or_else(|p| p.into_inner());
        }
    }

    /// Stop accepting pushes and wake every blocked worker.
    fn close(&self) {
        let mut state = self.state.lock().unwrap_or_else(|p| p.into_inner());
        state.open = false;
        self.cv.notify_all();
    }
}

/// Server configuration (`cad serve` flags map onto this).
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address; port 0 picks a free port.
    pub addr: String,
    /// Worker threads handling connections.
    pub workers: usize,
    /// Connections that may wait for a worker before overflow turns
    /// into `503`s.
    pub queue_depth: usize,
    /// Cap on snapshot/request bodies, in bytes.
    pub max_body_bytes: usize,
    /// Live-session cap (`429` beyond).
    pub max_sessions: usize,
    /// Idle time after which the sweeper drops a session.
    pub session_ttl: Duration,
    /// How often the sweeper scans.
    pub sweep_interval: Duration,
    /// Per-connection socket read deadline (also bounds how long an
    /// idle keep-alive connection can pin a worker).
    pub read_timeout: Duration,
    /// Per-connection socket write deadline.
    pub write_timeout: Duration,
    /// Warm oracle-cache directory shared by every session.
    pub store_dir: Option<PathBuf>,
    /// Default oracle update mode for sessions whose create spec does
    /// not pick one (`--update-mode`).
    pub update_mode: UpdateMode,
    /// Structured NDJSON access log: a file path, `-` for stderr, or
    /// `None` to disable (`--access-log`). One line per request.
    pub access_log: Option<String>,
    /// Per-session write-ahead journal root (`--journal-dir`);
    /// `None` runs unjournaled. On start, every journal found under it
    /// is replayed into a live session before the listener answers.
    pub journal_dir: Option<PathBuf>,
    /// Journal tuning: fsync policy (`--journal-fsync`), rotation and
    /// compaction thresholds.
    pub journal: JournalConfig,
    /// Per-session push rate limit in requests per second
    /// (`--max-push-rps`); `None` is unlimited.
    pub max_push_rps: Option<f64>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 4,
            queue_depth: 64,
            max_body_bytes: 4 * 1024 * 1024,
            max_sessions: 256,
            session_ttl: Duration::from_secs(900),
            sweep_interval: Duration::from_secs(5),
            read_timeout: Duration::from_secs(10),
            write_timeout: Duration::from_secs(10),
            store_dir: None,
            update_mode: UpdateMode::default(),
            access_log: None,
            journal_dir: None,
            journal: JournalConfig::default(),
            max_push_rps: None,
        }
    }
}

enum LogSink {
    Stderr,
    File(File),
}

/// Shared handle to the access-log sink. Cloneable so the CLI's panic
/// hook can force buffered lines to the platter after the worker that
/// owned the request is already unwinding.
#[derive(Clone)]
pub struct AccessLog {
    sink: Arc<Mutex<LogSink>>,
}

impl AccessLog {
    fn stderr() -> AccessLog {
        AccessLog {
            sink: Arc::new(Mutex::new(LogSink::Stderr)),
        }
    }

    fn file(file: File) -> AccessLog {
        AccessLog {
            sink: Arc::new(Mutex::new(LogSink::File(file))),
        }
    }

    fn write_line(&self, line: &str) {
        let mut sink = self.sink.lock().unwrap_or_else(|p| p.into_inner());
        match &mut *sink {
            LogSink::Stderr => {
                let mut err = std::io::stderr().lock();
                let _ = writeln!(err, "{line}");
                let _ = err.flush();
            }
            LogSink::File(f) => {
                let _ = writeln!(f, "{line}");
                let _ = f.flush();
            }
        }
    }

    /// Flush and fsync the log so every written line survives the
    /// process: called on graceful drain and from the panic hook.
    pub fn sync(&self) {
        let mut sink = self.sink.lock().unwrap_or_else(|p| p.into_inner());
        match &mut *sink {
            LogSink::Stderr => {
                let _ = std::io::stderr().lock().flush();
            }
            LogSink::File(f) => {
                let _ = f.flush();
                let _ = f.sync_all();
            }
        }
    }
}

struct Shared {
    queue: ConnQueue,
    ctx: RouterCtx,
    limits: HttpLimits,
    /// The access-log sink, when enabled. One mutex-guarded writer:
    /// lines are small and already formatted when the lock is taken.
    access_log: Option<AccessLog>,
}

/// Write one NDJSON access-log line for a completed request. Every
/// field is observability-only; the detection path never reads it.
fn log_access(shared: &Shared, req: &Request, resp: &Response, worker: usize, queue_wait: f64) {
    let Some(log) = &shared.access_log else {
        return;
    };
    let mut fields = vec![
        ("ts_ms", Json::Num(cad_obs::events::now_ms() as f64)),
        (
            "trace_id",
            Json::Str(cad_obs::trace::id_hex(resp.meta.trace_id)),
        ),
        ("method", Json::Str(req.method.clone())),
        ("path", Json::Str(req.path.clone())),
        ("status", Json::Num(resp.status as f64)),
        ("worker", Json::Num(worker as f64)),
        ("queue_wait_secs", Json::Num(queue_wait)),
        ("handler_secs", Json::Num(resp.meta.handler_secs)),
    ];
    if resp.meta.session_id != 0 {
        fields.push(("session", Json::Num(resp.meta.session_id as f64)));
    }
    if let Some(mode) = resp.meta.update_mode {
        fields.push(("update_mode", Json::Str(mode.to_string())));
    }
    if let Some(reason) = resp.meta.fallback {
        fields.push(("fallback", Json::Str(reason.to_string())));
    }
    let line = Json::obj(fields).compact();
    log.write_line(&line);
}

/// A running detection service.
pub struct Server {
    addr: SocketAddr,
    shared: Arc<Shared>,
    accept: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
    sweeper: Option<JoinHandle<()>>,
    recovered_sessions: usize,
}

/// Answer an overflow connection with `503 Retry-After: 1` without ever
/// reading its request, then drain a bounded amount of whatever it sent
/// so closing does not RST the response away.
fn reject_busy(mut conn: TcpStream, write_timeout: Duration) {
    cad_obs::counters::SERVE_REJECTED_BACKPRESSURE.inc();
    let _ = conn.set_write_timeout(Some(write_timeout));
    let body = error_body("overloaded", "worker queue is full; retry shortly");
    if http::write_response(
        &mut conn,
        503,
        "application/json",
        body.as_bytes(),
        false,
        &[("Retry-After", "1".to_string())],
    )
    .is_err()
    {
        return;
    }
    let _ = conn.set_read_timeout(Some(Duration::from_millis(250)));
    let mut sink = [0u8; 4096];
    for _ in 0..64 {
        match conn.read(&mut sink) {
            Ok(0) | Err(_) => break,
            Ok(_) => {}
        }
    }
}

/// The per-connection keep-alive loop a worker runs. `queue_wait` is
/// the seconds the connection sat in the worker queue — charged to the
/// first request only; later keep-alive requests on the same
/// connection never waited.
fn serve_conn(mut conn: TcpStream, shared: &Shared, worker: usize, mut queue_wait: f64) {
    loop {
        match http::read_request(&mut conn, &shared.limits) {
            Ok(req) => {
                cad_obs::gauges::SERVE_INFLIGHT_REQUESTS.inc();
                let wait = queue_wait;
                queue_wait = 0.0;
                let resp = route_queued(&req, &shared.ctx, Some(wait), worker);
                cad_obs::gauges::SERVE_INFLIGHT_REQUESTS.dec();
                // Draining closes after the in-flight response; so does
                // any error status, which keeps framing mistakes from
                // poisoning a reused connection.
                let keep =
                    req.keep_alive && resp.status < 400 && !shared.ctx.shutdown.is_requested();
                let extra: Vec<(&str, String)> =
                    resp.extra.iter().map(|(k, v)| (*k, v.clone())).collect();
                // Log before writing: the moment the response bytes
                // land, the client may race ahead (and tests measure
                // from there), so the write stays the worker's last
                // act on this request.
                log_access(shared, &req, &resp, worker, wait);
                let wrote = http::write_response(
                    &mut conn,
                    resp.status,
                    resp.content_type,
                    &resp.body,
                    keep,
                    &extra,
                );
                if wrote.is_err() || !keep {
                    return;
                }
            }
            Err(err) => {
                if let Some(status) = http::status_for(&err) {
                    let name = match status {
                        408 => "timeout",
                        413 => "body_too_large",
                        431 => "head_too_large",
                        _ => "bad_request",
                    };
                    cad_obs::events::record(cad_obs::EventKind::Error, name, 0.0, status as u64);
                }
                http::respond_read_error(&mut conn, &err);
                return;
            }
        }
    }
}

impl Server {
    /// Bind and start the full thread complement.
    pub fn start(cfg: ServeConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(&cfg.addr)?;
        let addr = listener.local_addr()?;
        let provider: Option<Arc<dyn cad_commute::OracleProvider>> = match &cfg.store_dir {
            Some(dir) => {
                let store = cad_store::OracleStore::open(dir.clone()).map_err(|e| {
                    std::io::Error::other(format!("cannot open store `{}`: {e}", dir.display()))
                })?;
                Some(Arc::new(store))
            }
            None => None,
        };
        let access_log: Option<AccessLog> = match cfg.access_log.as_deref() {
            None => None,
            Some("-") => Some(AccessLog::stderr()),
            Some(path) => {
                let file = std::fs::OpenOptions::new()
                    .create(true)
                    .append(true)
                    .open(path)
                    .map_err(|e| {
                        std::io::Error::other(format!("cannot open access log `{path}`: {e}"))
                    })?;
                Some(AccessLog::file(file))
            }
        };
        let mut sessions = SessionMap::new(cfg.max_sessions).with_update_mode(cfg.update_mode);
        if let Some(rps) = cfg.max_push_rps {
            sessions = sessions.with_push_rps(rps);
        }
        let mut recovered_sessions = 0;
        if let Some(dir) = &cfg.journal_dir {
            std::fs::create_dir_all(dir)?;
            sessions = sessions.with_journal(dir.clone(), cfg.journal.clone());
            // Replay before any thread can touch the registry: boot
            // recovery is single-threaded and either completes or
            // fails the start — a durable server never serves from
            // partial state.
            recovered_sessions =
                crate::journal::recover_all(dir, &cfg.journal, &sessions, provider.clone())
                    .map_err(|e| std::io::Error::other(format!("journal recovery failed: {e}")))?;
        }
        let shared = Arc::new(Shared {
            queue: ConnQueue::new(cfg.queue_depth),
            ctx: RouterCtx {
                sessions,
                provider,
                shutdown: Arc::new(Shutdown::new()),
            },
            limits: HttpLimits {
                max_head_bytes: 8 * 1024,
                max_body_bytes: cfg.max_body_bytes,
                read_timeout: Some(cfg.read_timeout),
                write_timeout: Some(cfg.write_timeout),
            },
            access_log,
        });

        let workers: Vec<JoinHandle<()>> = (0..cfg.workers.max(1))
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("cad-serve-worker-{i}"))
                    .spawn(move || {
                        while let Some((conn, queue_wait)) = shared.queue.pop() {
                            serve_conn(conn, &shared, i, queue_wait);
                        }
                    })
                    .expect("spawn worker")
            })
            .collect();

        let sweeper = {
            let shared = Arc::clone(&shared);
            let ttl = cfg.session_ttl;
            let interval = cfg.sweep_interval;
            std::thread::Builder::new()
                .name("cad-serve-sweeper".to_string())
                .spawn(move || {
                    while !shared.ctx.shutdown.wait_timeout(interval) {
                        shared.ctx.sessions.sweep_idle(ttl);
                        shared.ctx.sessions.compact_journals();
                    }
                })
                .expect("spawn sweeper")
        };

        let accept = {
            let shared = Arc::clone(&shared);
            let write_timeout = cfg.write_timeout;
            std::thread::Builder::new()
                .name("cad-serve-accept".to_string())
                .spawn(move || {
                    for conn in listener.incoming() {
                        let draining = shared.ctx.shutdown.is_requested();
                        let Ok(conn) = conn else {
                            if draining {
                                break;
                            }
                            continue;
                        };
                        if let Err(conn) = shared.queue.try_push(conn) {
                            reject_busy(conn, write_timeout);
                        }
                        // Checked *after* the hand-off: a connection
                        // that raced the drain signal into the backlog
                        // was accepted before shutdown and still gets a
                        // worker, not a reset. (The drain's throwaway
                        // wake-up connection also lands in the queue;
                        // its immediate EOF reads as `Closed` and the
                        // worker moves on.)
                        if draining {
                            break;
                        }
                    }
                })
                .expect("spawn accept")
        };

        Ok(Server {
            addr,
            shared,
            accept: Some(accept),
            workers,
            sweeper: Some(sweeper),
            recovered_sessions,
        })
    }

    /// The bound address (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The drain signal (`POST /v1/shutdown` trips the same one).
    pub fn shutdown_signal(&self) -> Arc<Shutdown> {
        Arc::clone(&self.shared.ctx.shutdown)
    }

    /// A clone of the access-log sink handle, for callers (the CLI's
    /// panic hook) that must force it to disk out-of-band.
    pub fn access_log(&self) -> Option<AccessLog> {
        self.shared.access_log.clone()
    }

    /// How many sessions boot-time journal recovery replayed (0 when
    /// running unjournaled or from an empty `--journal-dir`).
    pub fn recovered_sessions(&self) -> usize {
        self.recovered_sessions
    }

    /// Block until something requests shutdown, then drain.
    pub fn serve_until_shutdown(self) {
        self.shared.ctx.shutdown.wait();
        self.drain();
    }

    /// Graceful drain: stop accepting, let in-flight and queued
    /// requests finish with responses, join every thread.
    pub fn drain(mut self) {
        self.shared.ctx.shutdown.request();
        // The accept thread is parked in accept(); a throwaway
        // self-connection wakes it so it can observe the flag.
        let _ = TcpStream::connect(self.addr);
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        self.shared.queue.close();
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
        if let Some(h) = self.sweeper.take() {
            let _ = h.join();
        }
        // Every acknowledged request's line reaches the platter before
        // the process exits: the log is only trustworthy forensics if
        // a crash right after drain cannot eat its tail.
        if let Some(log) = &self.shared.access_log {
            log.sync();
        }
        // Forensic dump: leave the flight recorder's last moments on
        // stderr so a drained process can still be debugged post-hoc.
        // Only when the operator opted into logging — tests and quiet
        // embedders keep their stderr clean.
        if self.shared.access_log.is_some() {
            let _ = cad_obs::recorder().dump(&mut std::io::stderr().lock());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{BufRead, BufReader, Write};

    fn test_config() -> ServeConfig {
        ServeConfig {
            read_timeout: Duration::from_secs(2),
            write_timeout: Duration::from_secs(2),
            sweep_interval: Duration::from_millis(50),
            ..Default::default()
        }
    }

    /// One round-trip on a fresh connection; returns (status, body).
    fn call(addr: SocketAddr, method: &str, path: &str, body: &[u8]) -> (u16, String) {
        call_with(addr, method, path, body, &[])
    }

    fn call_with(
        addr: SocketAddr,
        method: &str,
        path: &str,
        body: &[u8],
        headers: &[(&str, &str)],
    ) -> (u16, String) {
        let mut conn = TcpStream::connect(addr).expect("connect");
        let mut head = format!(
            "{method} {path} HTTP/1.1\r\nHost: t\r\nConnection: close\r\nContent-Length: {}\r\n",
            body.len()
        );
        for (k, v) in headers {
            head.push_str(&format!("{k}: {v}\r\n"));
        }
        head.push_str("\r\n");
        conn.write_all(head.as_bytes()).expect("write head");
        conn.write_all(body).expect("write body");
        read_response(&mut conn)
    }

    fn read_response(conn: &mut TcpStream) -> (u16, String) {
        let mut reader = BufReader::new(conn);
        let mut status_line = String::new();
        reader.read_line(&mut status_line).expect("status line");
        let status: u16 = status_line
            .split_whitespace()
            .nth(1)
            .expect("status code")
            .parse()
            .expect("numeric status");
        let mut content_length = 0usize;
        loop {
            let mut line = String::new();
            reader.read_line(&mut line).expect("header");
            let line = line.trim_end();
            if line.is_empty() {
                break;
            }
            if let Some(v) = line
                .to_ascii_lowercase()
                .strip_prefix("content-length:")
                .map(str::trim)
            {
                content_length = v.parse().expect("length");
            }
        }
        let mut body = vec![0u8; content_length];
        reader.read_exact(&mut body).expect("body");
        (status, String::from_utf8(body).expect("utf-8"))
    }

    #[test]
    fn end_to_end_session_lifecycle_over_tcp() {
        let _g = crate::test_lock();
        cad_obs::reset();
        let server = Server::start(test_config()).expect("start");
        let addr = server.addr();

        let (status, body) = call(
            addr,
            "POST",
            "/v1/sequences",
            br#"{"nodes": 6, "engine": "exact", "delta": 0.4}"#,
        );
        assert_eq!(status, 201, "{body}");
        let id = cad_obs::parse_json(&body)
            .unwrap()
            .get("id")
            .and_then(cad_obs::Json::as_u64)
            .unwrap();

        let push = format!("/v1/sequences/{id}/snapshots");
        let quiet = br#"{"nodes": 6, "edges": [[0, 1, 3.0], [0, 2, 3.0], [1, 2, 3.0], [3, 4, 3.0], [3, 5, 3.0], [4, 5, 3.0], [2, 3, 0.2]]}"#;
        let (status, body) = call(addr, "POST", &push, quiet);
        assert_eq!(status, 200, "{body}");

        let bridged = br#"{"nodes": 6, "edges": [[0, 1, 3.0], [0, 2, 3.0], [1, 2, 3.0], [3, 4, 3.0], [3, 5, 3.0], [4, 5, 3.0], [2, 3, 0.2], [0, 5, 1.5]]}"#;
        let (status, body) = call(addr, "POST", &push, bridged);
        assert_eq!(status, 200, "{body}");
        let v = cad_obs::parse_json(&body).unwrap();
        let edges = v
            .get("transition")
            .and_then(|t| t.get("edges"))
            .and_then(cad_obs::Json::as_arr)
            .expect("edges");
        assert_eq!(edges.len(), 1);

        let (status, body) = call(addr, "GET", "/metrics", b"");
        assert_eq!(status, 200);
        assert!(body.contains("serve_requests_total"), "{body}");
        assert!(body.contains("serve_sessions_active 1"), "{body}");

        let (status, _) = call(addr, "DELETE", &format!("/v1/sequences/{id}"), b"");
        assert_eq!(status, 200);

        let (status, body) = call(addr, "GET", "/healthz", b"");
        assert_eq!(status, 200);
        assert_eq!(body, "ok\n");

        server.drain();
    }

    #[test]
    fn drain_completes_in_flight_request_and_refuses_new_connections() {
        let _g = crate::test_lock();
        cad_obs::reset();
        let server = Server::start(test_config()).expect("start");
        let addr = server.addr();

        let (status, body) = call(
            addr,
            "POST",
            "/v1/sequences",
            br#"{"nodes": 3, "delta": 0.5}"#,
        );
        assert_eq!(status, 201, "{body}");
        let id = cad_obs::parse_json(&body)
            .unwrap()
            .get("id")
            .and_then(cad_obs::Json::as_u64)
            .unwrap();

        // Start a push but only send half the body...
        let snapshot = br#"{"nodes": 3, "edges": [[0, 1, 1.0], [1, 2, 2.0]]}"#;
        let mut conn = TcpStream::connect(addr).expect("connect");
        let head = format!(
            "POST /v1/sequences/{id}/snapshots HTTP/1.1\r\nHost: t\r\nConnection: close\r\nContent-Length: {}\r\n\r\n",
            snapshot.len()
        );
        conn.write_all(head.as_bytes()).unwrap();
        conn.write_all(&snapshot[..10]).unwrap();
        conn.flush().unwrap();

        // ...begin the drain from another thread while it is in flight...
        let drainer = std::thread::spawn(move || server.drain());
        std::thread::sleep(Duration::from_millis(100));

        // ...finish the body: the in-flight request must complete with
        // a real response.
        conn.write_all(&snapshot[10..]).unwrap();
        let (status, body) = read_response(&mut conn);
        assert_eq!(status, 200, "{body}");
        drainer.join().expect("drain finishes");

        // The listener is gone: connecting now fails or yields nothing.
        match TcpStream::connect(addr) {
            Err(_) => {}
            Ok(mut conn) => {
                let _ = conn.set_read_timeout(Some(Duration::from_millis(500)));
                let _ = conn.write_all(b"GET /healthz HTTP/1.1\r\nHost: t\r\n\r\n");
                let mut buf = Vec::new();
                let got = conn.read_to_end(&mut buf).unwrap_or(0);
                assert_eq!(got, 0, "drained server must not answer new requests");
            }
        }
    }

    /// Like [`call`] but also returns the raw response header block.
    fn call_with_headers(
        addr: SocketAddr,
        method: &str,
        path: &str,
        body: &[u8],
    ) -> (u16, String, String) {
        let mut conn = TcpStream::connect(addr).expect("connect");
        let head = format!(
            "{method} {path} HTTP/1.1\r\nHost: t\r\nConnection: close\r\nContent-Length: {}\r\n\r\n",
            body.len()
        );
        conn.write_all(head.as_bytes()).expect("write head");
        conn.write_all(body).expect("write body");
        let mut reader = BufReader::new(conn);
        let mut status_line = String::new();
        reader.read_line(&mut status_line).expect("status line");
        let status: u16 = status_line
            .split_whitespace()
            .nth(1)
            .expect("status code")
            .parse()
            .expect("numeric status");
        let mut headers = String::new();
        let mut content_length = 0usize;
        loop {
            let mut line = String::new();
            reader.read_line(&mut line).expect("header");
            if line.trim_end().is_empty() {
                break;
            }
            if let Some(v) = line
                .to_ascii_lowercase()
                .trim_end()
                .strip_prefix("content-length:")
                .map(str::trim)
            {
                content_length = v.parse().expect("length");
            }
            headers.push_str(&line);
        }
        let mut body = vec![0u8; content_length];
        reader.read_exact(&mut body).expect("body");
        (status, headers, String::from_utf8(body).expect("utf-8"))
    }

    #[test]
    fn access_log_and_trace_header_attribute_every_request() {
        let _g = crate::test_lock();
        cad_obs::reset();
        let dir = std::env::temp_dir().join(format!("cad-serve-log-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let log_path = dir.join("access.ndjson");
        let _ = std::fs::remove_file(&log_path);
        let server = Server::start(ServeConfig {
            access_log: Some(log_path.display().to_string()),
            ..test_config()
        })
        .expect("start");
        let addr = server.addr();

        let (status, headers, body) = call_with_headers(
            addr,
            "POST",
            "/v1/sequences",
            br#"{"nodes": 6, "engine": "exact", "delta": 0.4}"#,
        );
        assert_eq!(status, 201, "{body}");
        let id = cad_obs::parse_json(&body)
            .unwrap()
            .get("id")
            .and_then(cad_obs::Json::as_u64)
            .unwrap();
        assert!(
            headers.to_ascii_lowercase().contains("x-cad-trace-id:"),
            "{headers}"
        );

        let push = format!("/v1/sequences/{id}/snapshots");
        let quiet = br#"{"nodes": 6, "edges": [[0, 1, 3.0], [0, 2, 3.0], [1, 2, 3.0], [3, 4, 3.0], [3, 5, 3.0], [4, 5, 3.0], [2, 3, 0.2]]}"#;
        let (status, headers, body) = call_with_headers(addr, "POST", &push, quiet);
        assert_eq!(status, 200, "{body}");
        let trace_hex = headers
            .lines()
            .find_map(|l| {
                l.to_ascii_lowercase()
                    .starts_with("x-cad-trace-id:")
                    .then(|| l.split(':').nth(1).unwrap().trim().to_string())
            })
            .expect("trace header");
        assert_eq!(trace_hex.len(), 16, "{trace_hex}");

        server.drain();

        // One NDJSON line per request, each with a 16-hex trace id; the
        // push's line carries the same id the header announced, plus
        // its update outcome.
        let log = std::fs::read_to_string(&log_path).expect("access log written");
        let lines: Vec<&str> = log.lines().collect();
        assert_eq!(lines.len(), 2, "{log}");
        for line in &lines {
            let v = cad_obs::parse_json(line).expect("valid JSON line");
            let id = v.get("trace_id").and_then(cad_obs::Json::as_str).unwrap();
            assert_eq!(id.len(), 16);
            assert!(id.chars().all(|c| c.is_ascii_hexdigit()));
            assert!(v.get("status").is_some() && v.get("method").is_some());
            assert!(v.get("queue_wait_secs").is_some());
        }
        let push_line = cad_obs::parse_json(lines[1]).unwrap();
        assert_eq!(
            push_line.get("trace_id").and_then(cad_obs::Json::as_str),
            Some(trace_hex.as_str())
        );
        assert_eq!(
            push_line.get("update_mode").and_then(cad_obs::Json::as_str),
            Some("rebuild")
        );
        assert_eq!(
            push_line.get("session").and_then(cad_obs::Json::as_u64),
            Some(id)
        );
        let _ = std::fs::remove_file(&log_path);
    }

    #[test]
    fn ttl_sweeper_evicts_idle_sessions() {
        let _g = crate::test_lock();
        cad_obs::reset();
        let server = Server::start(ServeConfig {
            session_ttl: Duration::from_millis(100),
            sweep_interval: Duration::from_millis(25),
            ..test_config()
        })
        .expect("start");
        let addr = server.addr();
        let (status, body) = call(addr, "POST", "/v1/sequences", br#"{"nodes": 3}"#);
        assert_eq!(status, 201, "{body}");
        let id = cad_obs::parse_json(&body)
            .unwrap()
            .get("id")
            .and_then(cad_obs::Json::as_u64)
            .unwrap();
        let path = format!("/v1/sequences/{id}");
        let (status, _) = call(addr, "GET", &path, b"");
        assert_eq!(status, 200);
        // Let it idle past the TTL; the sweeper reaps it.
        std::thread::sleep(Duration::from_millis(400));
        let (status, _) = call(addr, "GET", &path, b"");
        assert_eq!(status, 404, "idle session must be swept");
        assert_eq!(cad_obs::gauges::SERVE_SESSIONS_ACTIVE.get(), 0);
        server.drain();
    }
}
