//! The concurrent HTTP server: accept loop, bounded worker queue,
//! keep-alive connection handling, idle-session sweeper and graceful
//! drain.
//!
//! Threading model:
//!
//! * **one accept thread** pulls connections off the listener and
//!   offers each to a bounded queue. A full queue is answered *from the
//!   accept thread* with `503` + `Retry-After` (and counted in
//!   `serve.rejected_backpressure`) — overload sheds load immediately
//!   instead of queueing unboundedly;
//! * **N worker threads** pop connections and run the keep-alive
//!   request loop (parse → [`crate::router::route`] → respond);
//! * **one sweeper thread** evicts sessions idle past the TTL.
//!
//! Drain ([`Server::drain`]) stops the accept loop (a self-connect
//! wakes it from `accept()`), closes the queue so workers finish
//! already-queued connections and exit, then joins every thread.
//! In-flight requests complete and get their responses; new
//! connections are refused by the closed listener.

use crate::router::{route, Response, RouterCtx};
use crate::session::SessionMap;
use cad_core::UpdateMode;
use cad_obs::http::{self, error_body, HttpLimits};
use std::collections::VecDeque;
use std::io::Read;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// A latched one-way signal: once requested, stays requested.
pub struct Shutdown {
    flag: AtomicBool,
    state: Mutex<()>,
    cv: Condvar,
}

impl Shutdown {
    /// A fresh, untripped signal.
    pub fn new() -> Self {
        Shutdown {
            flag: AtomicBool::new(false),
            state: Mutex::new(()),
            cv: Condvar::new(),
        }
    }

    /// Trip the signal and wake every waiter.
    pub fn request(&self) {
        self.flag.store(true, Ordering::SeqCst);
        let _guard = self.state.lock().unwrap_or_else(|p| p.into_inner());
        self.cv.notify_all();
    }

    /// Whether the signal has been tripped.
    pub fn is_requested(&self) -> bool {
        self.flag.load(Ordering::SeqCst)
    }

    /// Block until tripped.
    pub fn wait(&self) {
        let mut guard = self.state.lock().unwrap_or_else(|p| p.into_inner());
        while !self.is_requested() {
            guard = self.cv.wait(guard).unwrap_or_else(|p| p.into_inner());
        }
    }

    /// Block until tripped or `timeout` elapses; returns whether the
    /// signal is tripped.
    pub fn wait_timeout(&self, timeout: Duration) -> bool {
        let guard = self.state.lock().unwrap_or_else(|p| p.into_inner());
        if self.is_requested() {
            return true;
        }
        let _ = self
            .cv
            .wait_timeout(guard, timeout)
            .unwrap_or_else(|p| p.into_inner());
        self.is_requested()
    }
}

impl Default for Shutdown {
    fn default() -> Self {
        Self::new()
    }
}

struct QueueState {
    conns: VecDeque<TcpStream>,
    open: bool,
}

/// The bounded connection queue between the accept thread and workers.
struct ConnQueue {
    state: Mutex<QueueState>,
    cv: Condvar,
    cap: usize,
}

impl ConnQueue {
    fn new(cap: usize) -> Self {
        ConnQueue {
            state: Mutex::new(QueueState {
                conns: VecDeque::new(),
                open: true,
            }),
            cv: Condvar::new(),
            cap,
        }
    }

    /// Offer a connection; hands it back when the queue is full (the
    /// caller sheds it with a `503`).
    fn try_push(&self, conn: TcpStream) -> Result<(), TcpStream> {
        let mut state = self.state.lock().unwrap_or_else(|p| p.into_inner());
        if !state.open || state.conns.len() >= self.cap {
            return Err(conn);
        }
        state.conns.push_back(conn);
        self.cv.notify_one();
        Ok(())
    }

    /// Pop the next connection, blocking while the queue is open and
    /// empty. `None` means closed *and* drained: time for the worker to
    /// exit. Queued connections are always served, even after close.
    fn pop(&self) -> Option<TcpStream> {
        let mut state = self.state.lock().unwrap_or_else(|p| p.into_inner());
        loop {
            if let Some(conn) = state.conns.pop_front() {
                return Some(conn);
            }
            if !state.open {
                return None;
            }
            state = self.cv.wait(state).unwrap_or_else(|p| p.into_inner());
        }
    }

    /// Stop accepting pushes and wake every blocked worker.
    fn close(&self) {
        let mut state = self.state.lock().unwrap_or_else(|p| p.into_inner());
        state.open = false;
        self.cv.notify_all();
    }
}

/// Server configuration (`cad serve` flags map onto this).
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address; port 0 picks a free port.
    pub addr: String,
    /// Worker threads handling connections.
    pub workers: usize,
    /// Connections that may wait for a worker before overflow turns
    /// into `503`s.
    pub queue_depth: usize,
    /// Cap on snapshot/request bodies, in bytes.
    pub max_body_bytes: usize,
    /// Live-session cap (`429` beyond).
    pub max_sessions: usize,
    /// Idle time after which the sweeper drops a session.
    pub session_ttl: Duration,
    /// How often the sweeper scans.
    pub sweep_interval: Duration,
    /// Per-connection socket read deadline (also bounds how long an
    /// idle keep-alive connection can pin a worker).
    pub read_timeout: Duration,
    /// Per-connection socket write deadline.
    pub write_timeout: Duration,
    /// Warm oracle-cache directory shared by every session.
    pub store_dir: Option<PathBuf>,
    /// Default oracle update mode for sessions whose create spec does
    /// not pick one (`--update-mode`).
    pub update_mode: UpdateMode,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 4,
            queue_depth: 64,
            max_body_bytes: 4 * 1024 * 1024,
            max_sessions: 256,
            session_ttl: Duration::from_secs(900),
            sweep_interval: Duration::from_secs(5),
            read_timeout: Duration::from_secs(10),
            write_timeout: Duration::from_secs(10),
            store_dir: None,
            update_mode: UpdateMode::default(),
        }
    }
}

struct Shared {
    queue: ConnQueue,
    ctx: RouterCtx,
    limits: HttpLimits,
}

/// A running detection service.
pub struct Server {
    addr: SocketAddr,
    shared: Arc<Shared>,
    accept: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
    sweeper: Option<JoinHandle<()>>,
}

/// Answer an overflow connection with `503 Retry-After: 1` without ever
/// reading its request, then drain a bounded amount of whatever it sent
/// so closing does not RST the response away.
fn reject_busy(mut conn: TcpStream, write_timeout: Duration) {
    cad_obs::counters::SERVE_REJECTED_BACKPRESSURE.inc();
    let _ = conn.set_write_timeout(Some(write_timeout));
    let body = error_body("overloaded", "worker queue is full; retry shortly");
    if http::write_response(
        &mut conn,
        503,
        "application/json",
        body.as_bytes(),
        false,
        &[("Retry-After", "1".to_string())],
    )
    .is_err()
    {
        return;
    }
    let _ = conn.set_read_timeout(Some(Duration::from_millis(250)));
    let mut sink = [0u8; 4096];
    for _ in 0..64 {
        match conn.read(&mut sink) {
            Ok(0) | Err(_) => break,
            Ok(_) => {}
        }
    }
}

/// The per-connection keep-alive loop a worker runs.
fn serve_conn(mut conn: TcpStream, shared: &Shared) {
    loop {
        match http::read_request(&mut conn, &shared.limits) {
            Ok(req) => {
                let Response {
                    status,
                    content_type,
                    body,
                    extra,
                } = route(&req, &shared.ctx);
                // Draining closes after the in-flight response; so does
                // any error status, which keeps framing mistakes from
                // poisoning a reused connection.
                let keep = req.keep_alive && status < 400 && !shared.ctx.shutdown.is_requested();
                let extra: Vec<(&str, String)> =
                    extra.iter().map(|(k, v)| (*k, v.clone())).collect();
                if http::write_response(&mut conn, status, content_type, &body, keep, &extra)
                    .is_err()
                    || !keep
                {
                    return;
                }
            }
            Err(err) => {
                http::respond_read_error(&mut conn, &err);
                return;
            }
        }
    }
}

impl Server {
    /// Bind and start the full thread complement.
    pub fn start(cfg: ServeConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(&cfg.addr)?;
        let addr = listener.local_addr()?;
        let provider: Option<Arc<dyn cad_commute::OracleProvider>> = match &cfg.store_dir {
            Some(dir) => {
                let store = cad_store::OracleStore::open(dir.clone()).map_err(|e| {
                    std::io::Error::other(format!("cannot open store `{}`: {e}", dir.display()))
                })?;
                Some(Arc::new(store))
            }
            None => None,
        };
        let shared = Arc::new(Shared {
            queue: ConnQueue::new(cfg.queue_depth),
            ctx: RouterCtx {
                sessions: SessionMap::new(cfg.max_sessions).with_update_mode(cfg.update_mode),
                provider,
                shutdown: Arc::new(Shutdown::new()),
            },
            limits: HttpLimits {
                max_head_bytes: 8 * 1024,
                max_body_bytes: cfg.max_body_bytes,
                read_timeout: Some(cfg.read_timeout),
                write_timeout: Some(cfg.write_timeout),
            },
        });

        let workers: Vec<JoinHandle<()>> = (0..cfg.workers.max(1))
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("cad-serve-worker-{i}"))
                    .spawn(move || {
                        while let Some(conn) = shared.queue.pop() {
                            serve_conn(conn, &shared);
                        }
                    })
                    .expect("spawn worker")
            })
            .collect();

        let sweeper = {
            let shared = Arc::clone(&shared);
            let ttl = cfg.session_ttl;
            let interval = cfg.sweep_interval;
            std::thread::Builder::new()
                .name("cad-serve-sweeper".to_string())
                .spawn(move || {
                    while !shared.ctx.shutdown.wait_timeout(interval) {
                        shared.ctx.sessions.sweep_idle(ttl);
                    }
                })
                .expect("spawn sweeper")
        };

        let accept = {
            let shared = Arc::clone(&shared);
            let write_timeout = cfg.write_timeout;
            std::thread::Builder::new()
                .name("cad-serve-accept".to_string())
                .spawn(move || {
                    for conn in listener.incoming() {
                        if shared.ctx.shutdown.is_requested() {
                            break;
                        }
                        let Ok(conn) = conn else { continue };
                        if let Err(conn) = shared.queue.try_push(conn) {
                            reject_busy(conn, write_timeout);
                        }
                    }
                })
                .expect("spawn accept")
        };

        Ok(Server {
            addr,
            shared,
            accept: Some(accept),
            workers,
            sweeper: Some(sweeper),
        })
    }

    /// The bound address (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The drain signal (`POST /v1/shutdown` trips the same one).
    pub fn shutdown_signal(&self) -> Arc<Shutdown> {
        Arc::clone(&self.shared.ctx.shutdown)
    }

    /// Block until something requests shutdown, then drain.
    pub fn serve_until_shutdown(self) {
        self.shared.ctx.shutdown.wait();
        self.drain();
    }

    /// Graceful drain: stop accepting, let in-flight and queued
    /// requests finish with responses, join every thread.
    pub fn drain(mut self) {
        self.shared.ctx.shutdown.request();
        // The accept thread is parked in accept(); a throwaway
        // self-connection wakes it so it can observe the flag.
        let _ = TcpStream::connect(self.addr);
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        self.shared.queue.close();
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
        if let Some(h) = self.sweeper.take() {
            let _ = h.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{BufRead, BufReader, Write};

    fn test_config() -> ServeConfig {
        ServeConfig {
            read_timeout: Duration::from_secs(2),
            write_timeout: Duration::from_secs(2),
            sweep_interval: Duration::from_millis(50),
            ..Default::default()
        }
    }

    /// One round-trip on a fresh connection; returns (status, body).
    fn call(addr: SocketAddr, method: &str, path: &str, body: &[u8]) -> (u16, String) {
        call_with(addr, method, path, body, &[])
    }

    fn call_with(
        addr: SocketAddr,
        method: &str,
        path: &str,
        body: &[u8],
        headers: &[(&str, &str)],
    ) -> (u16, String) {
        let mut conn = TcpStream::connect(addr).expect("connect");
        let mut head = format!(
            "{method} {path} HTTP/1.1\r\nHost: t\r\nConnection: close\r\nContent-Length: {}\r\n",
            body.len()
        );
        for (k, v) in headers {
            head.push_str(&format!("{k}: {v}\r\n"));
        }
        head.push_str("\r\n");
        conn.write_all(head.as_bytes()).expect("write head");
        conn.write_all(body).expect("write body");
        read_response(&mut conn)
    }

    fn read_response(conn: &mut TcpStream) -> (u16, String) {
        let mut reader = BufReader::new(conn);
        let mut status_line = String::new();
        reader.read_line(&mut status_line).expect("status line");
        let status: u16 = status_line
            .split_whitespace()
            .nth(1)
            .expect("status code")
            .parse()
            .expect("numeric status");
        let mut content_length = 0usize;
        loop {
            let mut line = String::new();
            reader.read_line(&mut line).expect("header");
            let line = line.trim_end();
            if line.is_empty() {
                break;
            }
            if let Some(v) = line
                .to_ascii_lowercase()
                .strip_prefix("content-length:")
                .map(str::trim)
            {
                content_length = v.parse().expect("length");
            }
        }
        let mut body = vec![0u8; content_length];
        reader.read_exact(&mut body).expect("body");
        (status, String::from_utf8(body).expect("utf-8"))
    }

    #[test]
    fn end_to_end_session_lifecycle_over_tcp() {
        let _g = crate::test_lock();
        cad_obs::reset();
        let server = Server::start(test_config()).expect("start");
        let addr = server.addr();

        let (status, body) = call(
            addr,
            "POST",
            "/v1/sequences",
            br#"{"nodes": 6, "engine": "exact", "delta": 0.4}"#,
        );
        assert_eq!(status, 201, "{body}");
        let id = cad_obs::parse_json(&body)
            .unwrap()
            .get("id")
            .and_then(cad_obs::Json::as_u64)
            .unwrap();

        let push = format!("/v1/sequences/{id}/snapshots");
        let quiet = br#"{"nodes": 6, "edges": [[0, 1, 3.0], [0, 2, 3.0], [1, 2, 3.0], [3, 4, 3.0], [3, 5, 3.0], [4, 5, 3.0], [2, 3, 0.2]]}"#;
        let (status, body) = call(addr, "POST", &push, quiet);
        assert_eq!(status, 200, "{body}");

        let bridged = br#"{"nodes": 6, "edges": [[0, 1, 3.0], [0, 2, 3.0], [1, 2, 3.0], [3, 4, 3.0], [3, 5, 3.0], [4, 5, 3.0], [2, 3, 0.2], [0, 5, 1.5]]}"#;
        let (status, body) = call(addr, "POST", &push, bridged);
        assert_eq!(status, 200, "{body}");
        let v = cad_obs::parse_json(&body).unwrap();
        let edges = v
            .get("transition")
            .and_then(|t| t.get("edges"))
            .and_then(cad_obs::Json::as_arr)
            .expect("edges");
        assert_eq!(edges.len(), 1);

        let (status, body) = call(addr, "GET", "/metrics", b"");
        assert_eq!(status, 200);
        assert!(body.contains("serve_requests_total"), "{body}");
        assert!(body.contains("serve_sessions_active_total 1"), "{body}");

        let (status, _) = call(addr, "DELETE", &format!("/v1/sequences/{id}"), b"");
        assert_eq!(status, 200);

        let (status, body) = call(addr, "GET", "/healthz", b"");
        assert_eq!(status, 200);
        assert_eq!(body, "ok\n");

        server.drain();
    }

    #[test]
    fn drain_completes_in_flight_request_and_refuses_new_connections() {
        let _g = crate::test_lock();
        cad_obs::reset();
        let server = Server::start(test_config()).expect("start");
        let addr = server.addr();

        let (status, body) = call(
            addr,
            "POST",
            "/v1/sequences",
            br#"{"nodes": 3, "delta": 0.5}"#,
        );
        assert_eq!(status, 201, "{body}");
        let id = cad_obs::parse_json(&body)
            .unwrap()
            .get("id")
            .and_then(cad_obs::Json::as_u64)
            .unwrap();

        // Start a push but only send half the body...
        let snapshot = br#"{"nodes": 3, "edges": [[0, 1, 1.0], [1, 2, 2.0]]}"#;
        let mut conn = TcpStream::connect(addr).expect("connect");
        let head = format!(
            "POST /v1/sequences/{id}/snapshots HTTP/1.1\r\nHost: t\r\nConnection: close\r\nContent-Length: {}\r\n\r\n",
            snapshot.len()
        );
        conn.write_all(head.as_bytes()).unwrap();
        conn.write_all(&snapshot[..10]).unwrap();
        conn.flush().unwrap();

        // ...begin the drain from another thread while it is in flight...
        let drainer = std::thread::spawn(move || server.drain());
        std::thread::sleep(Duration::from_millis(100));

        // ...finish the body: the in-flight request must complete with
        // a real response.
        conn.write_all(&snapshot[10..]).unwrap();
        let (status, body) = read_response(&mut conn);
        assert_eq!(status, 200, "{body}");
        drainer.join().expect("drain finishes");

        // The listener is gone: connecting now fails or yields nothing.
        match TcpStream::connect(addr) {
            Err(_) => {}
            Ok(mut conn) => {
                let _ = conn.set_read_timeout(Some(Duration::from_millis(500)));
                let _ = conn.write_all(b"GET /healthz HTTP/1.1\r\nHost: t\r\n\r\n");
                let mut buf = Vec::new();
                let got = conn.read_to_end(&mut buf).unwrap_or(0);
                assert_eq!(got, 0, "drained server must not answer new requests");
            }
        }
    }

    #[test]
    fn ttl_sweeper_evicts_idle_sessions() {
        let _g = crate::test_lock();
        cad_obs::reset();
        let server = Server::start(ServeConfig {
            session_ttl: Duration::from_millis(100),
            sweep_interval: Duration::from_millis(25),
            ..test_config()
        })
        .expect("start");
        let addr = server.addr();
        let (status, body) = call(addr, "POST", "/v1/sequences", br#"{"nodes": 3}"#);
        assert_eq!(status, 201, "{body}");
        let id = cad_obs::parse_json(&body)
            .unwrap()
            .get("id")
            .and_then(cad_obs::Json::as_u64)
            .unwrap();
        let path = format!("/v1/sequences/{id}");
        let (status, _) = call(addr, "GET", &path, b"");
        assert_eq!(status, 200);
        // Let it idle past the TTL; the sweeper reaps it.
        std::thread::sleep(Duration::from_millis(400));
        let (status, _) = call(addr, "GET", &path, b"");
        assert_eq!(status, 404, "idle session must be swept");
        assert_eq!(cad_obs::counters::SERVE_SESSIONS_ACTIVE.get(), 0);
        server.drain();
    }
}
